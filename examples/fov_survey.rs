//! Directional (field-of-view) survey at the paper's three locations —
//! the experiment behind Figure 1 — with an ASCII polar rendering and a
//! comparison of all four FoV estimators.
//!
//! ```sh
//! cargo run --release --example fov_survey [seed]
//! ```

use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::fov::FovMethod;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    for scenario in paper_scenarios() {
        let traffic = TrafficSim::generate(
            TrafficConfig {
                count: 70,
                ..TrafficConfig::paper_default(scenario.site.position)
            },
            seed,
        );
        let result = run_survey(
            &scenario.world,
            &scenario.site,
            &traffic,
            &SurveyConfig::default(),
            seed,
        );

        println!("================================================================");
        println!(
            "site '{}' — {} aircraft in 100 km, {} observed, {} messages",
            scenario.site.name,
            result.points.len(),
            result.points.iter().filter(|p| p.observed).count(),
            result.total_messages,
        );
        render_polar(&result);

        println!("  estimator comparison (truth: {:.0}° @ {:.0}°):",
            scenario.expected_fov.width_deg, scenario.expected_fov.center_deg());
        for method in [
            FovMethod::default_histogram(),
            FovMethod::default_knn(),
            FovMethod::default_svm(),
            FovMethod::default_logistic(),
        ] {
            let est = FovEstimator::new(method).estimate(&result.points);
            println!(
                "    {:17} → {:5.0}° wide @ {:3.0}°   IoU {:.2}",
                method.name(),
                est.estimated.width_deg,
                est.estimated.center_deg(),
                est.iou(&scenario.expected_fov),
            );
        }
        println!();
    }
}

/// A compact text version of Figure 1: rows = range rings, columns =
/// bearing; 'O' = observed aircraft, '.' = missed.
fn render_polar(result: &SurveyResult) {
    const COLS: usize = 36; // 10° per column
    const RINGS: usize = 5; // 20 km per ring
    let mut grid = vec![vec![' '; COLS]; RINGS];
    for p in &result.points {
        let col = ((p.bearing_deg / 10.0) as usize).min(COLS - 1);
        let ring = ((p.range_m / 20_000.0) as usize).min(RINGS - 1);
        let mark = if p.observed { 'O' } else { '.' };
        // Observed wins the cell if both kinds land there.
        if grid[ring][col] != 'O' {
            grid[ring][col] = mark;
        }
    }
    println!("         N                   E                   S                   W");
    for (i, row) in grid.iter().enumerate() {
        let label = format!("{:>3} km", (i + 1) * 20);
        println!("  {label} |{}|", row.iter().collect::<String>());
    }
    println!("         (O = ADS-B received, . = aircraft present but not received)");
}
