//! What a sensor node actually ships: spectrum data. This example renders
//! the Welch PSD each paper location would report for the same ATSC
//! channel — making visceral why calibration matters: the indoor node's
//! "spectrum occupancy" product is tens of dB of fiction.
//!
//! ```sh
//! cargo run --release --example spectrum_monitor [seed]
//! ```

use aircal::dsp::psd::welch_psd;
use aircal::dsp::window::Window;
use aircal::prelude::*;
use aircal_rfprop::LinkBudget;
use aircal_sdr::{Frontend, FrontendConfig};
use aircal_tv::{paper_tv_towers, synth::synthesize_8vsb};
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let fs = 8e6;
    let towers = paper_tv_towers(&aircal_env::scenarios::testbed_origin());
    let tower = &towers[1]; // 473 MHz, west
    println!("monitoring {} from the paper's three locations\n", tower.name);

    for scenario in paper_scenarios() {
        // Channel + front end, exactly as the TV probe does it.
        let path = scenario.world.path_profile(
            &scenario.site,
            &tower.position,
            tower.channel.center_hz(),
        );
        let bearing = scenario.site.position.bearing_deg(&tower.position);
        let elevation = scenario.site.position.elevation_deg(&tower.position);
        let rx_gain = scenario.site.antenna.gain_dbi(bearing, elevation);
        let budget = LinkBudget::new(tower.erp_dbm, 0.0, rx_gain);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rx_dbm = budget.sample_rx_dbm(&path, &mut rng);

        let mut fe_cfg = FrontendConfig::bladerf_xa9(tower.channel.center_hz(), fs);
        fe_cfg.full_scale_dbm = -25.0;
        let fe = Frontend::new(fe_cfg);
        let waveform = synthesize_8vsb(32_768, fs);
        let iq = fe.render_burst(&waveform, rx_dbm, 0.0, &mut rng);

        // The node's product: a Welch PSD of the capture.
        let psd = welch_psd(&iq, 128, 0.5, Window::Hann).expect("capture long enough");
        println!(
            "{} (path obstruction {:.0} dB):",
            scenario.site.name,
            path.diffraction_db + path.penetration_db
        );
        render_psd(&psd, fs);
        println!();
    }
}

/// ASCII PSD: bins reordered to ascending frequency, log scale.
fn render_psd(psd: &[f64], fs: f64) {
    let n = psd.len();
    // Reorder two-sided FFT bins to −fs/2 … +fs/2.
    let ordered: Vec<f64> = (0..n).map(|i| psd[(i + n / 2) % n]).collect();
    let cols = 64;
    let per_col = n / cols;
    let col_db: Vec<f64> = (0..cols)
        .map(|c| {
            let sum: f64 = ordered[c * per_col..(c + 1) * per_col].iter().sum();
            10.0 * (sum / per_col as f64).max(1e-15).log10()
        })
        .collect();
    for level in (0..8).rev() {
        let threshold = -100.0 + level as f64 * 10.0;
        let row: String = col_db
            .iter()
            .map(|&db| if db >= threshold { '█' } else { ' ' })
            .collect();
        println!("  {threshold:>5.0} dB |{row}|");
    }
    println!(
        "           {:^66}",
        format!("{:.1} MHz span (channel centered)", fs / 1e6)
    );
}
