//! Frequency-response evaluation at the paper's three locations — the
//! cellular RSRP experiment of Figure 3 and the broadcast-TV band-power
//! experiment of Figure 4, printed as bar tables.
//!
//! ```sh
//! cargo run --release --example frequency_sweep [seed]
//! ```

use aircal::prelude::*;
use aircal_cellular::{paper_towers, CellScanner};
use aircal_tv::{paper_tv_towers, TvPowerProbe};

fn bar(db_above_floor: f64) -> String {
    "#".repeat((db_above_floor.max(0.0) / 2.0).round() as usize)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let scenarios = paper_scenarios();

    println!("== Cellular RSRP (Figure 3) ==========================================");
    let scanner = CellScanner::default();
    for s in &scenarios {
        let db = paper_towers(&s.world.origin);
        println!("\n  location: {}", s.site.name);
        for m in scanner.scan(&s.world, &s.site, &db, seed) {
            match m.rsrp_dbm {
                Some(rsrp) => println!(
                    "    {:8} {:6.0} MHz  RSRP {rsrp:7.1} dBm  |{}",
                    m.tower_name,
                    m.freq_hz / 1e6,
                    bar(rsrp + 105.0),
                ),
                None => println!(
                    "    {:8} {:6.0} MHz  RSRP    ---- dBm  (no sync — missing bar)",
                    m.tower_name,
                    m.freq_hz / 1e6,
                ),
            }
        }
    }

    println!("\n== Broadcast TV band power (Figure 4) ================================");
    let probe = TvPowerProbe::default();
    for s in &scenarios {
        let towers = paper_tv_towers(&s.world.origin);
        println!("\n  location: {}", s.site.name);
        for m in probe.sweep(&s.world, &s.site, &towers, seed) {
            println!(
                "    RF {:2} {:5.0} MHz  power {:7.1} dBFS  |{}",
                m.rf_channel,
                m.center_hz / 1e6,
                m.power_dbfs,
                bar(m.power_dbfs + 60.0),
            );
        }
    }

    println!(
        "\nNote the paper's two signatures: indoors only the 731 MHz cell survives\n\
         (700 MHz penetrates walls), and the 521 MHz TV channel is anomalously\n\
         strong behind the window (its transmitter sits in the window's view)."
    );
}
