//! The whole vision, end to end: a crowd-sourced network of sensor nodes
//! (each on its own thread), a cloud that audits them with commissioned
//! measurements, claim verification, and the rentable-node marketplace.
//!
//! ```sh
//! cargo run --release --example marketplace [seed]
//! ```

use aircal::net::{spawn_node_with_faults, Cloud, LinkFaults, NodeAgent, NodeBehavior};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);

    // The shared sky every node hears, and the tracking service the cloud
    // consults as ground truth.
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 45,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        seed,
    ));

    let cloud = Cloud::new(sky.clone());

    // Five operators sign up: three honest installs of varying quality,
    // one who lies about being outdoors, one who fabricates receptions.
    let roster: [(ScenarioKind, NodeBehavior); 5] = [
        (ScenarioKind::OpenField, NodeBehavior::Honest),
        (ScenarioKind::Rooftop, NodeBehavior::Honest),
        (ScenarioKind::Indoor, NodeBehavior::Honest),
        (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims),
        (ScenarioKind::UrbanCanyon, NodeBehavior::Fabricator { ghosts: 100 }),
    ];
    println!("registering {} nodes…", roster.len() + 1);
    for (i, (kind, behavior)) in roster.into_iter().enumerate() {
        let agent = NodeAgent::new(Scenario::build(kind), behavior, sky.clone());
        let name = cloud
            .register(aircal::net::spawn_node(agent, 0.0, seed + i as u64))
            .expect("registration");
        println!("  + {name}");
    }
    // A sixth operator with a good install but a dying host daemon: it
    // answers the survey, then drops off mid-audit. The audit degrades
    // to a partial verdict instead of aborting.
    let mut flaky = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    flaky.claims.name = "open-field-flaky".into();
    let name = cloud
        .register(spawn_node_with_faults(
            flaky,
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            seed + 100,
        ))
        .expect("registration");
    println!("  + {name} (daemon will crash mid-audit)");

    println!("\nauditing (commissioned surveys + cross-band sweeps)…\n");
    let verdicts = cloud.audit_all(seed ^ 0xA0D17);

    println!(
        "{:16} {:>8} {:>9} {:>10} {:>7} {:>8} {:>9}  flags",
        "node", "claims", "measured", "claim OK?", "trust", "audit", "approved"
    );
    for (name, verdict) in &verdicts {
        match verdict {
            Some(v) => println!(
                "{:16} {:>8} {:>9} {:>10} {:>7.0} {:>8} {:>9}  {}",
                name,
                if v.claims.outdoor { "outdoor" } else { "indoor" },
                if v.install.outdoor { "outdoor" } else { "indoor" },
                if v.outdoor_claim_verified { "yes" } else { "NO" },
                v.trust.score,
                if v.is_complete() { "full" } else { "partial" },
                if v.approved { "yes" } else { "NO" },
                if v.trust.flags.is_empty() {
                    "-".to_string()
                } else {
                    v.trust.flags.join("; ")
                },
            ),
            None => println!("{name:16} UNREACHABLE"),
        }
    }

    println!("\nnode health:");
    for (name, health, failures) in cloud.health_report() {
        println!("  {name:16} {health} ({failures} consecutive failed audits)");
    }

    println!("\nwire traffic (attempts / ok / retries / gave up):");
    for (name, s) in cloud.link_stats() {
        println!(
            "  {name:16} {:>3} / {:>3} / {:>3} / {:>3}",
            s.attempts, s.ok, s.retries, s.gave_up
        );
    }

    println!("\nmarketplace (approved nodes, cheapest first):");
    for (name, price, trust) in cloud.marketplace() {
        println!("  {name:16} {price:>5.2}/h  trust {trust:.0}");
    }
    cloud.shutdown();
}
