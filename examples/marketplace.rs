//! The whole vision, end to end: a crowd-sourced network of sensor nodes
//! (each on its own thread), a cloud that audits them with commissioned
//! measurements, claim verification, and the rentable-node marketplace.
//!
//! ```sh
//! cargo run --release --example marketplace [seed] [--trace]
//! ```
//!
//! `--trace` records the cloud's audit event log and metric counters and
//! prints them after the marketplace listing.

use aircal::net::{spawn_node_with_faults, Cloud, LinkFaults, NodeAgent, NodeBehavior};
use aircal::obs::{fmt, Obs};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);

    // The shared sky every node hears, and the tracking service the cloud
    // consults as ground truth.
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 45,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        seed,
    ));

    let mut cloud = Cloud::new(sky.clone());
    if traced {
        cloud.obs = Obs::recording();
    }

    // Five operators sign up: three honest installs of varying quality,
    // one who lies about being outdoors, one who fabricates receptions.
    let roster: [(ScenarioKind, NodeBehavior); 5] = [
        (ScenarioKind::OpenField, NodeBehavior::Honest),
        (ScenarioKind::Rooftop, NodeBehavior::Honest),
        (ScenarioKind::Indoor, NodeBehavior::Honest),
        (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims),
        (ScenarioKind::UrbanCanyon, NodeBehavior::Fabricator { ghosts: 100 }),
    ];
    println!("registering {} nodes…", roster.len() + 1);
    for (i, (kind, behavior)) in roster.into_iter().enumerate() {
        let agent = NodeAgent::new(Scenario::build(kind), behavior, sky.clone());
        let name = cloud
            .register(aircal::net::spawn_node(agent, 0.0, seed + i as u64))
            .expect("registration");
        println!("  + {name}");
    }
    // A sixth operator with a good install but a dying host daemon: it
    // answers the survey, then drops off mid-audit. The audit degrades
    // to a partial verdict instead of aborting.
    let mut flaky = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    flaky.claims.name = "open-field-flaky".into();
    let name = cloud
        .register(spawn_node_with_faults(
            flaky,
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            seed + 100,
        ))
        .expect("registration");
    println!("  + {name} (daemon will crash mid-audit)");

    println!("\nauditing (commissioned surveys + cross-band sweeps)…\n");
    let verdicts = cloud.audit_all(seed ^ 0xA0D17);

    println!("{}", fmt::section("verdicts"));
    let mut table = fmt::Table::new(&[
        "node", "claims", "measured", "claim OK?", "trust", "audit", "approved", "flags",
    ]);
    for (name, verdict) in &verdicts {
        match verdict {
            Some(v) => {
                table.row(&[
                    name.clone(),
                    if v.claims.outdoor { "outdoor" } else { "indoor" }.to_string(),
                    if v.install.outdoor { "outdoor" } else { "indoor" }.to_string(),
                    if v.outdoor_claim_verified { "yes" } else { "NO" }.to_string(),
                    format!("{:.0}", v.trust.score),
                    if v.is_complete() { "full" } else { "partial" }.to_string(),
                    if v.approved { "yes" } else { "NO" }.to_string(),
                    if v.trust.flags.is_empty() {
                        "-".to_string()
                    } else {
                        v.trust.flags.join("; ")
                    },
                ]);
            }
            None => {
                table.row(&[name.clone(), "UNREACHABLE".to_string()]);
            }
        }
    }
    println!("{}", table.render());

    println!("\n{}", fmt::section("node health"));
    for (name, health, failures) in cloud.health_report() {
        println!("{}", fmt::kv(&name, format!("{health} ({failures} consecutive failed audits)")));
    }

    println!("\n{}", fmt::section("wire traffic"));
    let mut wire = fmt::Table::new(&["node", "attempts", "ok", "retries", "gave up"]);
    for (name, s) in cloud.link_stats() {
        wire.row(&[
            name,
            s.attempts.to_string(),
            s.ok.to_string(),
            s.retries.to_string(),
            s.gave_up.to_string(),
        ]);
    }
    println!("{}", wire.render());

    println!("\n{}", fmt::section("marketplace (approved nodes, cheapest first)"));
    for (name, price, trust) in cloud.marketplace() {
        println!("{}", fmt::kv(&name, format!("{price:.2}/h  trust {trust:.0}")));
    }

    if traced {
        println!("\n{}", fmt::section("audit event log (JSON lines)"));
        print!("{}", cloud.obs.events_jsonl());
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&cloud.obs.snapshot()) {
            println!("{line}");
        }
    }
    cloud.shutdown();
}
