//! The whole vision, end to end: a crowd-sourced network of sensor nodes
//! (each on its own thread), a cloud that audits them with commissioned
//! measurements, claim verification, and the rentable-node marketplace.
//!
//! ```sh
//! cargo run --release --example marketplace [seed] [--trace] [--adversary <kind>]
//! ```
//!
//! `--trace` records the cloud's audit event log and metric counters and
//! prints them after the marketplace listing.
//!
//! `--adversary spoof|replay|gain|frozen|poison` adds a *compromised*
//! node — honest claims, adversarial data plane — and runs a multi-round
//! audit campaign instead of a single round, so the cross-sensor
//! consistency checks can walk it down the quarantine ladder to
//! eviction. The residual table shows each node's deviation from the
//! fleet's robustly fused consensus.

use aircal::net::{spawn_node_with_faults, AdversaryKind, Cloud, LinkFaults, NodeAgent, NodeBehavior};
use aircal::obs::{fmt, Obs};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let adversary: Option<AdversaryKind> = args
        .iter()
        .position(|a| a == "--adversary")
        .map(|i| {
            let kind = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--adversary needs a kind (spoof|replay|gain|frozen|poison)");
                std::process::exit(2);
            });
            AdversaryKind::parse(kind).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        });
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p == "--adversary")
        })
        .find_map(|(_, s)| s.parse().ok())
        .unwrap_or(77);

    // The shared sky every node hears, and the tracking service the cloud
    // consults as ground truth.
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 45,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        seed,
    ));

    let mut cloud = Cloud::new(sky.clone());
    if traced {
        cloud.obs = Obs::recording();
    }

    // Five operators sign up: three honest installs of varying quality,
    // one who lies about being outdoors, one who fabricates receptions.
    let roster: [(ScenarioKind, NodeBehavior); 5] = [
        (ScenarioKind::OpenField, NodeBehavior::Honest),
        (ScenarioKind::Rooftop, NodeBehavior::Honest),
        (ScenarioKind::Indoor, NodeBehavior::Honest),
        (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims),
        (ScenarioKind::UrbanCanyon, NodeBehavior::Fabricator { ghosts: 100 }),
    ];
    println!("registering {} nodes…", roster.len() + 1);
    for (i, (kind, behavior)) in roster.into_iter().enumerate() {
        let agent = NodeAgent::new(Scenario::build(kind), behavior, sky.clone());
        let name = cloud
            .register(aircal::net::spawn_node(agent, 0.0, seed + i as u64))
            .expect("registration");
        println!("  + {name}");
    }
    // A sixth operator with a good install but a dying host daemon: it
    // answers the survey, then drops off mid-audit. The audit degrades
    // to a partial verdict instead of aborting.
    let mut flaky = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    flaky.claims.name = "open-field-flaky".into();
    let name = cloud
        .register(spawn_node_with_faults(
            flaky,
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            seed + 100,
        ))
        .expect("registration");
    println!("  + {name} (daemon will crash mid-audit)");

    // A compromised operator: the claims are honest, the *data plane*
    // lies. Only the cross-sensor consistency checks can catch it.
    if let Some(kind) = adversary {
        let mut agent = NodeAgent::with_adversary(
            Scenario::build(ScenarioKind::OpenField),
            sky.clone(),
            kind,
            seed ^ 0xBAD,
        );
        agent.claims.name = "open-field-compromised".into();
        let name = cloud
            .register(aircal::net::spawn_node(agent, 0.0, seed + 200))
            .expect("registration");
        println!("  + {name} (compromised: {kind})");
    }

    // One audit round is enough for honest-vs-dishonest claims; the
    // quarantine ladder needs consecutive convictions, so a compromised
    // fleet gets a campaign. Each round commissions fresh seeds —
    // replayed or frozen reports are only evidence under a *new* seed.
    let rounds: u64 = if adversary.is_some() { 7 } else { 1 };
    println!("\nauditing (commissioned surveys + cross-band sweeps, {rounds} round(s))…\n");
    let mut verdicts = Vec::new();
    for round in 0..rounds {
        verdicts = cloud.audit_all((seed ^ 0xA0D17).wrapping_add(round.wrapping_mul(0x9E37)));
        if adversary.is_some() {
            let ladder: Vec<String> = cloud
                .health_report()
                .iter()
                .map(|(name, health, _)| format!("{name}={health}"))
                .collect();
            println!("round {round}: {}", ladder.join("  "));
        }
    }

    println!("{}", fmt::section("verdicts"));
    let mut table = fmt::Table::new(&[
        "node", "claims", "measured", "claim OK?", "trust", "audit", "approved", "flags",
    ]);
    for (name, verdict) in &verdicts {
        match verdict {
            Some(v) => {
                table.row(&[
                    name.clone(),
                    if v.claims.outdoor { "outdoor" } else { "indoor" }.to_string(),
                    if v.install.outdoor { "outdoor" } else { "indoor" }.to_string(),
                    if v.outdoor_claim_verified { "yes" } else { "NO" }.to_string(),
                    format!("{:.0}", v.trust.score),
                    if v.is_complete() { "full" } else { "partial" }.to_string(),
                    if v.approved { "yes" } else { "NO" }.to_string(),
                    if v.trust.flags.is_empty() {
                        "-".to_string()
                    } else {
                        v.trust.flags.join("; ")
                    },
                ]);
            }
            None => {
                table.row(&[name.clone(), "UNREACHABLE".to_string()]);
            }
        }
    }
    println!("{}", table.render());

    println!("\n{}", fmt::section("consensus residuals (vs robust fused profile)"));
    let anomalies = cloud.anomaly_report();
    let mut residuals = fmt::Table::new(&["node", "residual", "anomaly run", "evidence"]);
    for (name, verdict) in &verdicts {
        let (run, reason) = anomalies
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, run, reason)| (*run, reason.clone()))
            .unwrap_or((0, None));
        residuals.row(&[
            name.clone(),
            match verdict.as_ref().and_then(|v| v.consensus_residual_db) {
                Some(db) => format!("{db:.1} dB"),
                None => "-".to_string(),
            },
            run.to_string(),
            reason.unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", residuals.render());

    println!("\n{}", fmt::section("node health"));
    for (name, health, failures) in cloud.health_report() {
        println!("{}", fmt::kv(&name, format!("{health} ({failures} consecutive failed audits)")));
    }

    println!("\n{}", fmt::section("wire traffic"));
    let mut wire = fmt::Table::new(&["node", "attempts", "ok", "retries", "gave up"]);
    for (name, s) in cloud.link_stats() {
        wire.row(&[
            name,
            s.attempts.to_string(),
            s.ok.to_string(),
            s.retries.to_string(),
            s.gave_up.to_string(),
        ]);
    }
    println!("{}", wire.render());

    println!("\n{}", fmt::section("marketplace (approved nodes, cheapest first)"));
    for (name, price, trust) in cloud.marketplace() {
        println!("{}", fmt::kv(&name, format!("{price:.2}/h  trust {trust:.0}")));
    }

    if traced {
        println!("\n{}", fmt::section("audit event log (JSON lines)"));
        print!("{}", cloud.obs.events_jsonl());
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&cloud.obs.snapshot()) {
            println!("{line}");
        }
    }
    cloud.shutdown();
}
