//! Quickstart: calibrate one sensor node and print its report.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```

use aircal::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // The paper's Location ①: a rooftop sensor with an open western view.
    let scenario = Scenario::build(ScenarioKind::Rooftop);

    println!("calibrating '{}' (seed {seed})…\n", scenario.site.name);
    let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, seed);

    println!("{}\n", report.headline());
    println!(
        "field of view : {:>6.1}° wide, centered {:.0}° (truth: {:.0}° wide @ {:.0}°, IoU {:.2})",
        report.fov.estimated.width_deg,
        report.fov.estimated.center_deg(),
        scenario.expected_fov.width_deg,
        scenario.expected_fov.center_deg(),
        report.fov.iou(&scenario.expected_fov),
    );
    println!(
        "survey        : {}/{} aircraft observed, {} messages, farthest {:.0} km",
        report.survey.aircraft_observed,
        report.survey.aircraft_total,
        report.survey.messages,
        report.survey.max_observed_range_m / 1_000.0,
    );
    println!("bands         :");
    for b in &report.frequency.bands {
        let value = b
            .measured_db
            .map(|v| format!("{v:7.1}"))
            .unwrap_or_else(|| "   ----".into());
        println!(
            "  {:22} {:7.1} MHz  measured {value}  verdict {}",
            b.label,
            b.freq_hz / 1e6,
            b.verdict()
        );
    }
    println!(
        "installation  : {} (p_outdoor = {:.2})",
        if report.install.outdoor { "OUTDOOR" } else { "INDOOR" },
        report.install.probability_outdoor,
    );
    println!(
        "trust         : {:.0}/100 {}",
        report.trust.score,
        if report.trust.flags.is_empty() {
            "(no flags)".to_string()
        } else {
            format!("flags: {:?}", report.trust.flags)
        }
    );
}
