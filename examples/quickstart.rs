//! Quickstart: calibrate one sensor node and print its report.
//!
//! ```sh
//! cargo run --release --example quickstart [seed] [--trace]
//! ```
//!
//! `--trace` enables the deterministic tracer and the metrics registry:
//! the report is bit-identical either way, and the run ends with a span
//! table plus the pipeline counters.

use aircal::obs::fmt;
use aircal::obs::{trace, Obs};
use aircal::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // The paper's Location ①: a rooftop sensor with an open western view.
    let scenario = Scenario::build(ScenarioKind::Rooftop);

    let obs = if traced { Obs::recording() } else { Obs::disabled() };
    if traced {
        trace::enable();
    }
    println!("calibrating '{}' (seed {seed})…\n", scenario.site.name);
    let report = Calibrator::quick()
        .with_obs(obs.clone())
        .calibrate(&scenario.world, &scenario.site, seed);
    trace::disable();

    println!("{}\n", report.headline());
    println!(
        "{}",
        fmt::kv(
            "field_of_view",
            format!(
                "{:.1}° wide @ {:.0}° (truth {:.0}° @ {:.0}°, IoU {:.2})",
                report.fov.estimated.width_deg,
                report.fov.estimated.center_deg(),
                scenario.expected_fov.width_deg,
                scenario.expected_fov.center_deg(),
                report.fov.iou(&scenario.expected_fov),
            )
        )
    );
    println!(
        "{}",
        fmt::kv(
            "survey",
            format!(
                "{}/{} aircraft observed, {} messages, farthest {:.0} km",
                report.survey.aircraft_observed,
                report.survey.aircraft_total,
                report.survey.messages,
                report.survey.max_observed_range_m / 1_000.0,
            )
        )
    );
    println!(
        "{}",
        fmt::kv(
            "installation",
            format!(
                "{} (p_outdoor = {:.2})",
                if report.install.outdoor { "OUTDOOR" } else { "INDOOR" },
                report.install.probability_outdoor,
            )
        )
    );
    println!(
        "{}",
        fmt::kv(
            "trust",
            format!(
                "{:.0}/100 {}",
                report.trust.score,
                if report.trust.flags.is_empty() {
                    "(no flags)".to_string()
                } else {
                    format!("flags: {:?}", report.trust.flags)
                }
            )
        )
    );

    println!("\n{}", fmt::section("band profile"));
    let mut bands = fmt::Table::new(&["band", "MHz", "measured", "verdict"]);
    for b in &report.frequency.bands {
        bands.row(&[
            b.label.clone(),
            format!("{:.1}", b.freq_hz / 1e6),
            b.measured_db
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "----".into()),
            b.verdict().to_string(),
        ]);
    }
    println!("{}", bands.render());

    if traced {
        println!("\n{}", fmt::section("trace"));
        println!("{}", fmt::span_table(&trace::summarize(&trace::drain())));
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&obs.snapshot()) {
            println!("{line}");
        }
    }
}
