//! Run a deterministic fleet-scale measurement campaign through the
//! discrete-event engine and compare the two scheduling policies.
//!
//! ```sh
//! cargo run --release --example fleet_scale [nodes] [seed] [--workers N]
//! ```
//!
//! Defaults: 1000 nodes, seed 42, workers 1. The engine's contract is
//! that `--workers` changes wall-clock only — the digest printed at the
//! end is bit-identical at any worker count, so you can verify the
//! determinism guarantee from the shell:
//!
//! ```sh
//! cargo run --release --example fleet_scale -- 1000 42 --workers 1
//! cargo run --release --example fleet_scale -- 1000 42 --workers 8
//! ```

use aircal::obs::Obs;
use aircal::sim::{run_with_obs, CampaignConfig, SchedulerKind};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut workers = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--workers" {
            workers = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--workers takes a number");
        } else {
            positional.push(a.clone());
        }
    }
    let nodes: usize = positional
        .first()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let seed: u64 = positional
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    println!("fleet-scale campaign: {nodes} nodes, seed {seed}, {workers} worker(s)\n");

    for scheduler in [SchedulerKind::RoundRobin, SchedulerKind::UtilityDriven] {
        let mut cfg = CampaignConfig::paper_default(nodes, seed);
        cfg.scheduler = scheduler;
        cfg.workers = workers;
        // Enough loss that the policies visibly diverge.
        cfg.faults.lossy_fraction = 0.3;
        cfg.faults.drop_probability = 0.5;

        let obs = Obs::recording();
        let start = Instant::now();
        let result = run_with_obs(&cfg, &obs);
        let wall = start.elapsed().as_secs_f64();

        println!("── scheduler: {} ──", result.scheduler);
        println!("  events            {}", result.events);
        println!(
            "  wall              {:.3} s  ({:.0} events/s)",
            wall,
            result.events as f64 / wall
        );
        println!(
            "  90% coverage at   {}",
            result
                .coverage90_tick
                .map_or("never".to_string(), |t| format!("tick {t}"))
        );
        println!(
            "  tasks completed   {}  (drops: {} req / {} resp, corrupt: {})",
            result.completed_tasks,
            result.dropped_requests,
            result.dropped_responses,
            result.corrupt_deliveries
        );
        println!(
            "  fleet health      {:?}  ({} daemons crashed)",
            result.health_counts, result.crashed_nodes
        );
        println!("  audit rounds flagged anomalies: {}", result.anomaly_flags);
        println!(
            "  sim.* metrics     dispatches={} delivered={} audits={}",
            obs.counter("sim.dispatches"),
            obs.counter("sim.dispatch.delivered"),
            obs.counter("sim.audit.rounds"),
        );
        println!("  campaign digest   {}\n", result.digest);
    }

    println!("Same seed + same scheduler ⇒ same digest, at any --workers.");
}
