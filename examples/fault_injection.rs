//! Fault injection: show that the calibration pipeline catches the
//! installation problems the paper lists — "the efficiency of the antenna
//! and the sensitivity of the SDR in the desired spectrum bands, potential
//! obstruction of the antenna …, installation issues such as damaged
//! antenna cables" — and fabricated data.
//!
//! ```sh
//! cargo run --release --example fault_injection [seed]
//! ```

use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::trust::{fabricate_survey, TrustAuditor};
use aircal_core::freqprofile::FrequencyProfiler;
use aircal_core::fov::FovEstimator;
use aircal_sdr::FrontendFault;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    let scenario = Scenario::build(ScenarioKind::OpenField);
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 50,
            ..TrafficConfig::paper_default(scenario.site.position)
        },
        seed,
    );
    let cells = aircal_cellular::paper_towers(&scenario.world.origin);
    let tv = aircal_tv::paper_tv_towers(&scenario.world.origin);
    let profile =
        FrequencyProfiler::default().profile(&scenario.world, &scenario.site, &cells, &tv, seed);

    let faults: [(&str, FrontendFault); 4] = [
        ("healthy", FrontendFault::None),
        ("8 dB cable loss", FrontendFault::CableLoss { db: 8.0 }),
        (
            "deaf above 900 MHz",
            FrontendFault::DeafAbove {
                cutoff_hz: 900e6,
                loss_db: 40.0,
            },
        ),
        ("dead front end", FrontendFault::Dead),
    ];

    println!(
        "{:20} {:>9} {:>9} {:>9} {:>7}  flags",
        "condition", "observed", "messages", "maxrange", "trust"
    );
    for (label, fault) in faults {
        let cfg = SurveyConfig {
            fault,
            ..SurveyConfig::quick()
        };
        let survey = run_survey(&scenario.world, &scenario.site, &traffic, &cfg, seed);
        let fov = FovEstimator::default().estimate(&survey.points);
        let trust =
            TrustAuditor::default().audit(&survey, &profile, &traffic, fov.open_fraction());
        print_row(label, &survey, trust.score, &trust.flags);
    }

    // The cheater: an operator who claims to have heard everything.
    let honest = run_survey(
        &scenario.world,
        &scenario.site,
        &traffic,
        &SurveyConfig::quick(),
        seed,
    );
    let fake = fabricate_survey(&honest, honest.total_messages / 12);
    let fov = FovEstimator::default().estimate(&fake.points);
    let trust = TrustAuditor::default().audit(&fake, &profile, &traffic, fov.open_fraction());
    print_row("fabricated data", &fake, trust.score, &trust.flags);
}

fn print_row(label: &str, survey: &SurveyResult, trust: f64, flags: &[String]) {
    println!(
        "{:20} {:>8.0}% {:>9} {:>6.0} km {:>7.0}  {}",
        label,
        survey.observation_rate() * 100.0,
        survey.total_messages,
        survey.max_observed_range_m() / 1_000.0,
        trust,
        if flags.is_empty() {
            "-".to_string()
        } else {
            flags.join("; ")
        }
    );
}
