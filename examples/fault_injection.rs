//! Fault injection: show that the calibration pipeline catches the
//! installation problems the paper lists — "the efficiency of the antenna
//! and the sensitivity of the SDR in the desired spectrum bands, potential
//! obstruction of the antenna …, installation issues such as damaged
//! antenna cables" — and fabricated data. Then repeat the exercise one
//! layer down: the *network* fails (burst outages, crashed daemons,
//! wedged threads, garbled frames) and the audit degrades instead of
//! aborting.
//!
//! ```sh
//! cargo run --release --example fault_injection [seed] [--trace]
//! ```
//!
//! `--trace` additionally records the cloud's structured audit log and
//! prints it as JSON lines — the replayable record of why each node
//! ended up degraded or quarantined.

use aircal::net::{
    spawn_node_with_faults, BurstOutage, Cloud, LinkFaults, NodeAgent, NodeBehavior, RetryPolicy,
};
use aircal::obs::{fmt, Obs};
use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::fov::FovEstimator;
use aircal_core::freqprofile::FrequencyProfiler;
use aircal_core::trust::{fabricate_survey, TrustAuditor};
use aircal_sdr::FrontendFault;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    let scenario = Scenario::build(ScenarioKind::OpenField);
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 50,
            ..TrafficConfig::paper_default(scenario.site.position)
        },
        seed,
    );
    let cells = aircal_cellular::paper_towers(&scenario.world.origin);
    let tv = aircal_tv::paper_tv_towers(&scenario.world.origin);
    let profile =
        FrequencyProfiler::default().profile(&scenario.world, &scenario.site, &cells, &tv, seed);

    let faults: [(&str, FrontendFault); 4] = [
        ("healthy", FrontendFault::None),
        ("8 dB cable loss", FrontendFault::CableLoss { db: 8.0 }),
        (
            "deaf above 900 MHz",
            FrontendFault::DeafAbove {
                cutoff_hz: 900e6,
                loss_db: 40.0,
            },
        ),
        ("dead front end", FrontendFault::Dead),
    ];

    println!("{}", fmt::section("front-end faults"));
    let mut table = front_end_table();
    for (label, fault) in faults {
        let cfg = SurveyConfig {
            fault,
            ..SurveyConfig::quick()
        };
        let survey = run_survey(&scenario.world, &scenario.site, &traffic, &cfg, seed);
        let fov = FovEstimator::default().estimate(&survey.points);
        let trust =
            TrustAuditor::default().audit(&survey, &profile, &traffic, fov.open_fraction());
        push_row(&mut table, label, &survey, trust.score, &trust.flags);
    }

    // The cheater: an operator who claims to have heard everything.
    let honest = run_survey(
        &scenario.world,
        &scenario.site,
        &traffic,
        &SurveyConfig::quick(),
        seed,
    );
    let fake = fabricate_survey(&honest, honest.total_messages / 12);
    let fov = FovEstimator::default().estimate(&fake.points);
    let trust = TrustAuditor::default().audit(&fake, &profile, &traffic, fov.open_fraction());
    push_row(&mut table, "fabricated data", &fake, trust.score, &trust.flags);
    println!("{}", table.render());

    network_chaos(seed, traced);
}

/// The same story one layer down: faults in the node⇄cloud link instead
/// of the RF front end. Audits degrade to partial verdicts, repeated
/// failures quarantine a node, and a clean audit re-admits it.
fn network_chaos(seed: u64, traced: bool) {
    println!("\n{}\n", fmt::section("network chaos: same fleet, faulty links"));
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(aircal_env::scenarios::testbed_origin())
        },
        seed,
    ));
    let mut cloud = Cloud::new(sky.clone());
    if traced {
        cloud.obs = Obs::recording();
    }
    cloud.retry_policy = RetryPolicy::quick();
    cloud.retry_policy.budgets.tv = Duration::from_secs(1);

    // Registration is node-side request 0 and wire attempt 0; each audit
    // is 4 more of each (plus retries on the wire side).
    let roster: [(&str, LinkFaults); 4] = [
        ("clean-link", LinkFaults::none()),
        (
            // Wire attempts 2–3 (the first audit's survey) are swallowed
            // by an outage; the retries ride it out.
            "burst-outage",
            LinkFaults {
                burst_outages: vec![BurstOutage { start: 2, len: 2 }],
                ..LinkFaults::none()
            },
        ),
        (
            // The host daemon dies mid-audit and stays dead: partial
            // verdict in round 1, unreachable after, quarantined.
            "crashed-daemon",
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
        ),
        (
            // Wedges on every tv attempt of audit 1 (node-side requests
            // 4–6), then behaves: degraded, then re-admitted.
            "wedged-then-ok",
            LinkFaults {
                hang_on: vec![4, 5, 6],
                ..LinkFaults::none()
            },
        ),
    ];
    for (i, (name, faults)) in roster.into_iter().enumerate() {
        let mut agent = NodeAgent::new(
            Scenario::build(ScenarioKind::OpenField),
            NodeBehavior::Honest,
            sky.clone(),
        );
        agent.claims.name = name.to_string();
        cloud
            .register(spawn_node_with_faults(agent, faults, seed + i as u64))
            .expect("all daemons alive at registration");
    }

    for round in 1u64..=3 {
        let verdicts = cloud.audit_all(seed ^ (0xC0A5 + round));
        println!("{}", fmt::section(&format!("audit round {round}")));
        let mut table = fmt::Table::new(&["node", "outcome", "health"]);
        let health = cloud.health_report();
        for ((name, verdict), (_, state, fails)) in verdicts.iter().zip(&health) {
            let outcome = match verdict {
                None => "unreachable".to_string(),
                Some(v) if v.is_complete() => format!("complete, trust {:.0}", v.trust.score),
                Some(v) => format!(
                    "partial (lost: {}), trust {:.0}",
                    v.failed_steps
                        .iter()
                        .map(|f| f.step.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    v.trust.score
                ),
            };
            table.row(&[
                name.clone(),
                outcome,
                format!("{state} ({fails} consecutive)"),
            ]);
        }
        println!("{}", table.render());
    }

    println!("\n{}", fmt::section("wire counters"));
    let mut table = fmt::Table::new(&[
        "node", "attempts", "ok", "retries", "dropped", "timeout", "sendfail", "gaveup",
    ]);
    for (name, s) in cloud.link_stats() {
        table.row(&[
            name,
            s.attempts.to_string(),
            s.ok.to_string(),
            s.retries.to_string(),
            s.dropped.to_string(),
            s.timeouts.to_string(),
            s.send_failed.to_string(),
            s.gave_up.to_string(),
        ]);
    }
    println!("{}", table.render());

    if traced {
        println!("\n{}", fmt::section("audit event log (JSON lines)"));
        print!("{}", cloud.obs.events_jsonl());
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&cloud.obs.snapshot()) {
            println!("{line}");
        }
    }
    cloud.shutdown();
}

fn front_end_table() -> fmt::Table {
    fmt::Table::new(&["condition", "observed", "messages", "maxrange", "trust", "flags"])
}

fn push_row(table: &mut fmt::Table, label: &str, survey: &SurveyResult, trust: f64, flags: &[String]) {
    table.row(&[
        label.to_string(),
        format!("{:.0}%", survey.observation_rate() * 100.0),
        survey.total_messages.to_string(),
        format!("{:.0} km", survey.max_observed_range_m() / 1_000.0),
        format!("{trust:.0}"),
        if flags.is_empty() {
            "-".to_string()
        } else {
            flags.join("; ")
        },
    ]);
}
