//! Fault injection: show that the calibration pipeline catches the
//! installation problems the paper lists — "the efficiency of the antenna
//! and the sensitivity of the SDR in the desired spectrum bands, potential
//! obstruction of the antenna …, installation issues such as damaged
//! antenna cables" — and fabricated data. Then repeat the exercise one
//! layer down: the *network* fails (burst outages, crashed daemons,
//! wedged threads, garbled frames) and the audit degrades instead of
//! aborting.
//!
//! ```sh
//! cargo run --release --example fault_injection [seed]
//! ```

use aircal::net::{
    spawn_node_with_faults, BurstOutage, Cloud, LinkFaults, NodeAgent, NodeBehavior, RetryPolicy,
};
use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::trust::{fabricate_survey, TrustAuditor};
use aircal_core::freqprofile::FrequencyProfiler;
use aircal_core::fov::FovEstimator;
use aircal_sdr::FrontendFault;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    let scenario = Scenario::build(ScenarioKind::OpenField);
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 50,
            ..TrafficConfig::paper_default(scenario.site.position)
        },
        seed,
    );
    let cells = aircal_cellular::paper_towers(&scenario.world.origin);
    let tv = aircal_tv::paper_tv_towers(&scenario.world.origin);
    let profile =
        FrequencyProfiler::default().profile(&scenario.world, &scenario.site, &cells, &tv, seed);

    let faults: [(&str, FrontendFault); 4] = [
        ("healthy", FrontendFault::None),
        ("8 dB cable loss", FrontendFault::CableLoss { db: 8.0 }),
        (
            "deaf above 900 MHz",
            FrontendFault::DeafAbove {
                cutoff_hz: 900e6,
                loss_db: 40.0,
            },
        ),
        ("dead front end", FrontendFault::Dead),
    ];

    println!(
        "{:20} {:>9} {:>9} {:>9} {:>7}  flags",
        "condition", "observed", "messages", "maxrange", "trust"
    );
    for (label, fault) in faults {
        let cfg = SurveyConfig {
            fault,
            ..SurveyConfig::quick()
        };
        let survey = run_survey(&scenario.world, &scenario.site, &traffic, &cfg, seed);
        let fov = FovEstimator::default().estimate(&survey.points);
        let trust =
            TrustAuditor::default().audit(&survey, &profile, &traffic, fov.open_fraction());
        print_row(label, &survey, trust.score, &trust.flags);
    }

    // The cheater: an operator who claims to have heard everything.
    let honest = run_survey(
        &scenario.world,
        &scenario.site,
        &traffic,
        &SurveyConfig::quick(),
        seed,
    );
    let fake = fabricate_survey(&honest, honest.total_messages / 12);
    let fov = FovEstimator::default().estimate(&fake.points);
    let trust = TrustAuditor::default().audit(&fake, &profile, &traffic, fov.open_fraction());
    print_row("fabricated data", &fake, trust.score, &trust.flags);

    network_chaos(seed);
}

/// The same story one layer down: faults in the node⇄cloud link instead
/// of the RF front end. Audits degrade to partial verdicts, repeated
/// failures quarantine a node, and a clean audit re-admits it.
fn network_chaos(seed: u64) {
    println!("\n── network chaos: same fleet, faulty links ──\n");
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(aircal_env::scenarios::testbed_origin())
        },
        seed,
    ));
    let mut cloud = Cloud::new(sky.clone());
    cloud.retry_policy = RetryPolicy::quick();
    cloud.retry_policy.budgets.tv = Duration::from_secs(1);

    // Registration is node-side request 0 and wire attempt 0; each audit
    // is 4 more of each (plus retries on the wire side).
    let roster: [(&str, LinkFaults); 4] = [
        ("clean-link", LinkFaults::none()),
        (
            // Wire attempts 2–3 (the first audit's survey) are swallowed
            // by an outage; the retries ride it out.
            "burst-outage",
            LinkFaults {
                burst_outages: vec![BurstOutage { start: 2, len: 2 }],
                ..LinkFaults::none()
            },
        ),
        (
            // The host daemon dies mid-audit and stays dead: partial
            // verdict in round 1, unreachable after, quarantined.
            "crashed-daemon",
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
        ),
        (
            // Wedges on every tv attempt of audit 1 (node-side requests
            // 4–6), then behaves: degraded, then re-admitted.
            "wedged-then-ok",
            LinkFaults {
                hang_on: vec![4, 5, 6],
                ..LinkFaults::none()
            },
        ),
    ];
    for (i, (name, faults)) in roster.into_iter().enumerate() {
        let mut agent = NodeAgent::new(
            Scenario::build(ScenarioKind::OpenField),
            NodeBehavior::Honest,
            sky.clone(),
        );
        agent.claims.name = name.to_string();
        cloud
            .register(spawn_node_with_faults(agent, faults, seed + i as u64))
            .expect("all daemons alive at registration");
    }

    for round in 1u64..=3 {
        let verdicts = cloud.audit_all(seed ^ (0xC0A5 + round));
        println!("audit round {round}:");
        let health = cloud.health_report();
        for ((name, verdict), (_, state, fails)) in verdicts.iter().zip(&health) {
            let outcome = match verdict {
                None => "unreachable".to_string(),
                Some(v) if v.is_complete() => format!("complete, trust {:.0}", v.trust.score),
                Some(v) => format!(
                    "partial (lost: {}), trust {:.0}",
                    v.failed_steps
                        .iter()
                        .map(|f| f.step.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    v.trust.score
                ),
            };
            println!("  {name:16} {outcome:36} → {state} ({fails} consecutive)");
        }
    }

    println!("\nwire counters:");
    println!(
        "  {:16} {:>8} {:>4} {:>7} {:>8} {:>8} {:>9} {:>7}",
        "node", "attempts", "ok", "retries", "dropped", "timeout", "sendfail", "gaveup"
    );
    for (name, s) in cloud.link_stats() {
        println!(
            "  {:16} {:>8} {:>4} {:>7} {:>8} {:>8} {:>9} {:>7}",
            name, s.attempts, s.ok, s.retries, s.dropped, s.timeouts, s.send_failed, s.gave_up
        );
    }
    cloud.shutdown();
}

fn print_row(label: &str, survey: &SurveyResult, trust: f64, flags: &[String]) {
    println!(
        "{:20} {:>8.0}% {:>9} {:>6.0} km {:>7.0}  {}",
        label,
        survey.observation_rate() * 100.0,
        survey.total_messages,
        survey.max_observed_range_m() / 1_000.0,
        trust,
        if flags.is_empty() {
            "-".to_string()
        } else {
            flags.join("; ")
        }
    );
}
