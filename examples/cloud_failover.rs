//! Demonstrate the crash-tolerant cloud: a fleet campaign with cloud
//! crashes, a network partition, and at-least-once delivery faults,
//! recovered from the write-ahead journal — bit-identical to the same
//! campaign with a cloud that never dies.
//!
//! ```sh
//! cargo run --release --example cloud_failover [nodes] [seed] \
//!     [--crash-every N] [--restart-delay D] [--partition START:HEAL:MOD:REM]
//! ```
//!
//! Defaults: 1000 nodes, seed 42, a crash every 150 ticks with instant
//! restart, and a partition severing every 5th node from tick 200 to
//! 320. The final table shows the recovery ledger (journal appends,
//! replayed records, downtime) and diffs the faulted campaign's cloud
//! digest against its fault-free twin: crashes, duplicates, and
//! reorders must be invisible; the partition (which really does change
//! scheduling) is reported but excluded from the twin.

use aircal::obs::Obs;
use aircal::sim::{run_with_obs, CampaignConfig, PartitionSpec};
use std::time::Instant;

fn parse_partition(s: &str) -> PartitionSpec {
    let parts: Vec<u64> = s.split(':').map(|p| p.parse().expect("partition field")).collect();
    assert_eq!(parts.len(), 4, "--partition takes START:HEAL:MOD:REM");
    PartitionSpec {
        start_tick: parts[0],
        heal_tick: parts[1],
        modulus: parts[2] as u32,
        remainder: parts[3] as u32,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut crash_every = 150u64;
    let mut restart_delay = 0u64;
    let mut partition = Some(PartitionSpec {
        start_tick: 200,
        heal_tick: 320,
        modulus: 5,
        remainder: 2,
    });
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--crash-every" => {
                crash_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--crash-every takes ticks");
            }
            "--restart-delay" => {
                restart_delay = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--restart-delay takes ticks");
            }
            "--partition" => {
                partition = Some(parse_partition(it.next().expect("--partition takes a spec")));
            }
            "--no-partition" => partition = None,
            other => positional.push(other.to_string()),
        }
    }
    let nodes: usize = positional
        .first()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let seed: u64 = positional
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    let mut cfg = CampaignConfig::paper_default(nodes, seed);
    if crash_every > 0 {
        cfg.recovery.crash_ticks = (1..cfg.max_ticks / crash_every.max(1) + 1)
            .map(|i| i * crash_every)
            .filter(|&t| t < cfg.max_ticks)
            .collect();
    }
    cfg.recovery.restart_delay_ticks = restart_delay;
    cfg.recovery.duplicate_fraction = 0.3;
    cfg.recovery.reorder_fraction = 0.3;
    if let Some(p) = partition {
        cfg.recovery.partitions = vec![p];
    }

    println!(
        "cloud failover: {nodes} nodes, seed {seed}, crash every {crash_every} ticks \
         (restart delay {restart_delay}), partition {:?}\n",
        partition
    );

    let obs = Obs::recording();
    let start = Instant::now();
    let faulted = run_with_obs(&cfg, &obs);
    let wall = start.elapsed().as_secs_f64();

    println!("── recovery ledger ──");
    println!("  cloud crashes      {}", faulted.recoveries);
    println!("  journal appends    {}", faulted.wal_appends);
    println!("  journal syncs      {}", faulted.wal_syncs);
    println!("  replayed records   {}", faulted.replayed_records);
    println!("  downtime ticks     {}", faulted.recovery_ticks);
    println!("  backlogged reports {}", faulted.backlogged_reports);
    println!("  deduped replays    {}", faulted.deduped_reports);
    println!(
        "  duplicates/reorders {}/{}",
        faulted.duplicated_deliveries, faulted.reordered_deliveries
    );
    println!("  wall               {wall:.3} s");
    if faulted.invariant_violations.is_empty() {
        println!("  invariants         all held");
    } else {
        println!("  INVARIANT VIOLATIONS:");
        for v in &faulted.invariant_violations {
            println!("    {v}");
        }
    }

    // The fault-free twin: same seed and fleet, no crashes, duplicates,
    // reorders, or delayed restarts. Partitions and restart delays
    // genuinely change scheduling, so the twin only exists when the
    // faulted run's extras are the digest-invisible kind.
    if partition.is_none() && restart_delay == 0 {
        let mut clean_cfg = CampaignConfig::paper_default(nodes, seed);
        clean_cfg.recovery = Default::default();
        let clean = run_with_obs(&clean_cfg, &Obs::default());
        let identical = clean.state_digest == faulted.state_digest
            && clean.trust_table == faulted.trust_table;
        println!("\n── fault-free twin ──");
        println!("  faulted digest  {}", faulted.state_digest);
        println!("  clean digest    {}", clean.state_digest);
        println!(
            "  bit-identical   {}",
            if identical { "yes" } else { "NO — recovery is leaking state" }
        );
        if !identical {
            std::process::exit(1);
        }
    } else {
        println!("\n(run with --no-partition --restart-delay 0 to diff against the fault-free twin)");
        println!("  final digest    {}", faulted.state_digest);
        println!(
            "  90% coverage    {}",
            faulted
                .coverage90_tick
                .map_or("never".to_string(), |t| format!("tick {t}"))
        );
    }
    if !faulted.invariant_violations.is_empty() {
        std::process::exit(1);
    }
}
