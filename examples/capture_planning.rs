//! Measurement scheduling (§5 future work): decide *when* to run ADS-B
//! captures so each one sees as much fresh traffic as possible.
//!
//! ```sh
//! cargo run --release --example capture_planning [n_captures]
//! ```

use aircal_core::scheduler::{MeasurementScheduler, TrafficDensityModel};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let density = TrafficDensityModel::default();
    println!("expected aircraft in the 100 km disc by hour:");
    for h in (0..24).step_by(2) {
        let e = density.expected_aircraft(h as f64);
        println!("  {:02}:00  {:>5.1}  |{}", h, e, "#".repeat(e as usize / 2));
    }

    let scheduler = MeasurementScheduler::default();
    let plan = scheduler.plan(n);
    println!("\nplanned {} capture windows:", plan.len());
    for c in &plan {
        println!(
            "  {:02}:{:02}  expected {:>5.1} aircraft  (marginal value {:.1})",
            c.start_hour as u32,
            ((c.start_hour % 1.0) * 60.0).round() as u32,
            c.expected_aircraft,
            c.marginal_value,
        );
    }
    let total: f64 = plan.iter().map(|c| c.marginal_value).sum();
    println!("\ntotal discounted information: {total:.1}");
}
