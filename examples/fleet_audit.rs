//! Audit a whole fleet of sensor nodes and rank them for the rental
//! marketplace the paper envisions (§2: "node operators offer spectrum
//! sensing as a service and users pay to rent these services").
//!
//! ```sh
//! cargo run --release --example fleet_audit [seed] [--trace] [--adversary <kind>]
//! ```
//!
//! `--adversary spoof|replay|gain|frozen|poison` corrupts the top-ranked
//! node's frequency profile the way that misbehaviour would on the wire,
//! then shows how coordinate-wise median fusion shrugs it off: the
//! fused consensus barely moves, and the residual table singles the
//! liar out.

use aircal::net::AdversaryKind;
use aircal::obs::fmt;
use aircal::obs::{trace, Obs};
use aircal::prelude::*;
use aircal_core::freqprofile::FrequencyProfile;
use aircal_core::robust::{fuse_profiles, residual_db, residual_score, FusionRule};

/// Corrupt a reported profile the way each adversary kind would:
/// inflated gain, progressive poison drift across the sweep, a frozen
/// (flat) front end, a stale copy of someone else's report, or spoofed
/// too-good-to-be-true powers.
fn corrupt_profile(profile: &mut FrequencyProfile, stale: &FrequencyProfile, kind: AdversaryKind) {
    match kind {
        AdversaryKind::GainInflate { db } => {
            for b in &mut profile.bands {
                if let Some(m) = b.measured_db.as_mut() {
                    *m += db;
                }
            }
        }
        AdversaryKind::CalibrationPoison { db_per_round } => {
            for (i, b) in profile.bands.iter_mut().enumerate() {
                if let Some(m) = b.measured_db.as_mut() {
                    *m += db_per_round * i as f64;
                }
            }
        }
        AdversaryKind::FrozenFrontend => {
            let stuck = profile
                .bands
                .iter()
                .find_map(|b| b.measured_db)
                .unwrap_or(-60.0);
            for b in &mut profile.bands {
                if b.measured_db.is_some() {
                    b.measured_db = Some(stuck);
                }
            }
        }
        AdversaryKind::ReplayStale => *profile = stale.clone(),
        AdversaryKind::SpoofAdsb { .. } => {
            for b in &mut profile.bands {
                if b.measured_db.is_some() {
                    b.measured_db = Some(b.expected_clear_db + 10.0);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let adversary: Option<AdversaryKind> = args
        .iter()
        .position(|a| a == "--adversary")
        .map(|i| {
            let kind = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--adversary needs a kind (spoof|replay|gain|frozen|poison)");
                std::process::exit(2);
            });
            AdversaryKind::parse(kind).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        });
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p == "--adversary")
        })
        .find_map(|(_, s)| s.parse().ok())
        .unwrap_or(5);

    let obs = if traced { Obs::recording() } else { Obs::disabled() };
    if traced {
        trace::enable();
    }
    let fleet = all_scenarios();
    println!("auditing {} nodes…\n", fleet.len());
    let report = FleetAuditor::new(Calibrator::quick().with_obs(obs.clone())).audit(&fleet, seed);
    trace::disable();

    println!("{}", fmt::section("fleet ranking"));
    let mut table = fmt::Table::new(&[
        "rank", "node", "trust", "fov", "bands", "maxrange", "install", "flags",
    ]);
    for n in &report.nodes {
        let r = &n.report;
        table.row(&[
            n.rank.to_string(),
            n.name.clone(),
            format!("{:.0}", r.trust.score),
            format!("{:.0}°", r.fov.estimated.width_deg),
            format!("{:.0}%", r.frequency.usable_fraction() * 100.0),
            format!("{:.0} km", r.survey.max_observed_range_m / 1_000.0),
            if r.install.outdoor { "outdoor" } else { "indoor" }.to_string(),
            if r.trust.flags.is_empty() {
                "-".to_string()
            } else {
                r.trust.flags.join("; ")
            },
        ]);
    }
    println!("{}", table.render());

    // Robust-fusion consensus: every node's frequency profile, fused with
    // the coordinate-wise median. With `--adversary` the top-ranked node's
    // report is corrupted on the wire and the fleet re-fused: the median
    // consensus barely moves (it tolerates a minority of liars), so honest
    // residuals stay put while the victim's jumps by the corruption.
    let honest: Vec<(String, FrequencyProfile)> = report
        .nodes
        .iter()
        .map(|n| (n.name.clone(), n.report.frequency.clone()))
        .collect();
    let honest_refs: Vec<&FrequencyProfile> = honest.iter().map(|(_, p)| p).collect();
    let honest_fused = fuse_profiles(&honest_refs, FusionRule::Median);

    println!("\n{}", fmt::section("consensus residuals (median fusion)"));
    let fmt_db = |r: Option<f64>| r.map_or_else(|| "-".to_string(), |db| format!("{db:.1} dB"));
    if let Some(kind) = adversary {
        let mut corrupted = honest.clone();
        let stale = corrupted[corrupted.len() - 1].1.clone();
        let victim = {
            let (name, profile) = &mut corrupted[0];
            corrupt_profile(profile, &stale, kind);
            name.clone()
        };
        println!("{}", fmt::kv("compromised on the wire", format!("{victim} ({kind})")));
        let refs: Vec<&FrequencyProfile> = corrupted.iter().map(|(_, p)| p).collect();
        let fused = fuse_profiles(&refs, FusionRule::Median);

        let mut residuals =
            fmt::Table::new(&["node", "honest", "under attack", "shift", "status"]);
        for ((name, before), (_, after)) in honest.iter().zip(&corrupted) {
            let r0 = residual_db(before, &honest_fused);
            let r1 = residual_db(after, &fused);
            residuals.row(&[
                name.clone(),
                fmt_db(r0),
                fmt_db(r1),
                match (r0, r1) {
                    (Some(a), Some(b)) => format!("{:+.1} dB", b - a),
                    _ => "-".to_string(),
                },
                if *name == victim { "CORRUPTED" } else { "honest" }.to_string(),
            ]);
        }
        println!("{}", residuals.render());
    } else {
        let mut residuals = fmt::Table::new(&["node", "residual", "score"]);
        for (name, profile) in &honest {
            let res = residual_db(profile, &honest_fused);
            residuals.row(&[
                name.clone(),
                fmt_db(res),
                res.map_or_else(|| "-".to_string(), |db| format!("{:.2}", residual_score(db, 10.0))),
            ]);
        }
        println!("{}", residuals.render());
    }

    // A renter's query: outdoor nodes with at least 90° of sky and full
    // band coverage.
    let eligible = report.filter(|r| {
        r.install.outdoor && r.fov.estimated.width_deg >= 90.0 && r.frequency.usable_fraction() >= 0.99
    });
    println!(
        "\n{}",
        fmt::kv(
            "rentable (outdoor, ≥90° sky, all bands)",
            format!("{:?}", eligible.iter().map(|n| n.name.as_str()).collect::<Vec<_>>())
        )
    );

    if traced {
        println!("\n{}", fmt::section("trace"));
        println!("{}", fmt::span_table(&trace::summarize(&trace::drain())));
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&obs.snapshot()) {
            println!("{line}");
        }
    }
}
