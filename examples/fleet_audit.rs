//! Audit a whole fleet of sensor nodes and rank them for the rental
//! marketplace the paper envisions (§2: "node operators offer spectrum
//! sensing as a service and users pay to rent these services").
//!
//! ```sh
//! cargo run --release --example fleet_audit [seed] [--trace]
//! ```

use aircal::obs::fmt;
use aircal::obs::{trace, Obs};
use aircal::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let traced = args.iter().any(|a| a == "--trace");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let obs = if traced { Obs::recording() } else { Obs::disabled() };
    if traced {
        trace::enable();
    }
    let fleet = all_scenarios();
    println!("auditing {} nodes…\n", fleet.len());
    let report = FleetAuditor::new(Calibrator::quick().with_obs(obs.clone())).audit(&fleet, seed);
    trace::disable();

    println!("{}", fmt::section("fleet ranking"));
    let mut table = fmt::Table::new(&[
        "rank", "node", "trust", "fov", "bands", "maxrange", "install", "flags",
    ]);
    for n in &report.nodes {
        let r = &n.report;
        table.row(&[
            n.rank.to_string(),
            n.name.clone(),
            format!("{:.0}", r.trust.score),
            format!("{:.0}°", r.fov.estimated.width_deg),
            format!("{:.0}%", r.frequency.usable_fraction() * 100.0),
            format!("{:.0} km", r.survey.max_observed_range_m / 1_000.0),
            if r.install.outdoor { "outdoor" } else { "indoor" }.to_string(),
            if r.trust.flags.is_empty() {
                "-".to_string()
            } else {
                r.trust.flags.join("; ")
            },
        ]);
    }
    println!("{}", table.render());

    // A renter's query: outdoor nodes with at least 90° of sky and full
    // band coverage.
    let eligible = report.filter(|r| {
        r.install.outdoor && r.fov.estimated.width_deg >= 90.0 && r.frequency.usable_fraction() >= 0.99
    });
    println!(
        "\n{}",
        fmt::kv(
            "rentable (outdoor, ≥90° sky, all bands)",
            format!("{:?}", eligible.iter().map(|n| n.name.as_str()).collect::<Vec<_>>())
        )
    );

    if traced {
        println!("\n{}", fmt::section("trace"));
        println!("{}", fmt::span_table(&trace::summarize(&trace::drain())));
        println!("\n{}", fmt::section("metrics"));
        for line in fmt::counter_lines(&obs.snapshot()) {
            println!("{line}");
        }
    }
}
