//! Audit a whole fleet of sensor nodes and rank them for the rental
//! marketplace the paper envisions (§2: "node operators offer spectrum
//! sensing as a service and users pay to rent these services").
//!
//! ```sh
//! cargo run --release --example fleet_audit [seed]
//! ```

use aircal::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let fleet = all_scenarios();
    println!("auditing {} nodes…\n", fleet.len());
    let report = FleetAuditor::new(Calibrator::quick()).audit(&fleet, seed);

    println!(
        "{:>4}  {:14} {:>6}  {:>9}  {:>7}  {:>8}  {:8}  flags",
        "rank", "node", "trust", "fov", "bands", "maxrange", "install"
    );
    for n in &report.nodes {
        let r = &n.report;
        println!(
            "{:>4}  {:14} {:>6.0}  {:>7.0}°  {:>6.0}%  {:>5.0} km  {:8}  {}",
            n.rank,
            n.name,
            r.trust.score,
            r.fov.estimated.width_deg,
            r.frequency.usable_fraction() * 100.0,
            r.survey.max_observed_range_m / 1_000.0,
            if r.install.outdoor { "outdoor" } else { "indoor" },
            if r.trust.flags.is_empty() {
                "-".to_string()
            } else {
                r.trust.flags.join("; ")
            }
        );
    }

    // A renter's query: outdoor nodes with at least 90° of sky and full
    // band coverage.
    let eligible = report.filter(|r| {
        r.install.outdoor && r.fov.estimated.width_deg >= 90.0 && r.frequency.usable_fraction() >= 0.99
    });
    println!(
        "\nrentable for 'outdoor, ≥90° sky, all bands': {:?}",
        eligible.iter().map(|n| n.name.as_str()).collect::<Vec<_>>()
    );
}
