//! ICAO 24-bit aircraft addresses.
//!
//! The paper's matching step keys on exactly this: "We use the ICAO
//! aircraft address to identify the airplane that transmitted a given
//! ADS-B message", then compares against the ground-truth service's
//! aircraft list.

use serde::{Deserialize, Serialize};

/// A 24-bit ICAO aircraft address (the globally-unique transponder ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IcaoAddress(u32);

impl IcaoAddress {
    /// Construct from a raw value; the top 8 bits are masked off.
    pub const fn new(raw: u32) -> Self {
        Self(raw & 0xFF_FFFF)
    }

    /// The raw 24-bit value.
    pub const fn value(&self) -> u32 {
        self.0
    }

    /// Parse a 6-hex-digit address string (e.g. `"A1B2C3"`).
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 6 {
            return None;
        }
        u32::from_str_radix(s, 16).ok().map(Self::new)
    }
}

impl core::fmt::Display for IcaoAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:06X}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_24_bits() {
        assert_eq!(IcaoAddress::new(0xFF_AB_CD_EF).value(), 0xAB_CD_EF);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let a = IcaoAddress::new(0x00_0A_1B);
        assert_eq!(a.to_string(), "000A1B");
        assert_eq!(IcaoAddress::parse_hex("000A1B"), Some(a));
        assert_eq!(IcaoAddress::parse_hex("000a1b"), Some(a));
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert_eq!(IcaoAddress::parse_hex(""), None);
        assert_eq!(IcaoAddress::parse_hex("12345"), None);
        assert_eq!(IcaoAddress::parse_hex("1234567"), None);
        assert_eq!(IcaoAddress::parse_hex("GHIJKL"), None);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(IcaoAddress::new(1) < IcaoAddress::new(2));
    }
}
