//! Bit-field access over byte arrays (MSB-first, as Mode S is specified).

/// Read `len` bits (≤ 64) starting at bit index `start` (0 = MSB of byte 0)
/// from `bytes`, returning them right-aligned in a `u64`.
///
/// Out-of-range reads are a caller bug; this panics in debug and clamps in
/// release via `get`-style indexing — callers in this crate always validate
/// lengths first.
pub fn get_bits(bytes: &[u8], start: usize, len: usize) -> u64 {
    debug_assert!(len <= 64);
    debug_assert!(start + len <= bytes.len() * 8);
    let mut acc = 0u64;
    for i in 0..len {
        let bit_idx = start + i;
        let byte = bytes[bit_idx / 8];
        let bit = (byte >> (7 - (bit_idx % 8))) & 1;
        acc = (acc << 1) | bit as u64;
    }
    acc
}

/// Write the low `len` bits of `value` into `bytes` starting at bit index
/// `start` (MSB-first).
pub fn set_bits(bytes: &mut [u8], start: usize, len: usize, value: u64) {
    debug_assert!(len <= 64);
    debug_assert!(start + len <= bytes.len() * 8);
    for i in 0..len {
        let bit = (value >> (len - 1 - i)) & 1;
        let bit_idx = start + i;
        let mask = 1u8 << (7 - (bit_idx % 8));
        if bit == 1 {
            bytes[bit_idx / 8] |= mask;
        } else {
            bytes[bit_idx / 8] &= !mask;
        }
    }
}

/// Expand bytes into individual bits, MSB-first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).map(move |i| (b >> (7 - i)) & 1 == 1))
        .collect()
}

/// Pack bits (MSB-first) into bytes; the last byte is zero-padded.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_bits_spans_bytes() {
        let bytes = [0b1010_1100, 0b0101_0011];
        assert_eq!(get_bits(&bytes, 0, 4), 0b1010);
        assert_eq!(get_bits(&bytes, 4, 8), 0b1100_0101);
        assert_eq!(get_bits(&bytes, 15, 1), 1);
        assert_eq!(get_bits(&bytes, 0, 16), 0b1010_1100_0101_0011);
    }

    #[test]
    fn set_then_get_round_trip() {
        let mut bytes = [0u8; 4];
        set_bits(&mut bytes, 5, 11, 0b101_0110_1011);
        assert_eq!(get_bits(&bytes, 5, 11), 0b101_0110_1011);
        // Neighbors untouched.
        assert_eq!(get_bits(&bytes, 0, 5), 0);
        assert_eq!(get_bits(&bytes, 16, 16), 0);
    }

    #[test]
    fn set_bits_clears_previous_ones() {
        let mut bytes = [0xFFu8; 2];
        set_bits(&mut bytes, 4, 8, 0);
        assert_eq!(bytes, [0xF0, 0x0F]);
    }

    #[test]
    fn bit_byte_conversions() {
        let bytes = [0x8D, 0x40];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 16);
        assert!(bits[0]); // MSB of 0x8D
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    #[test]
    fn bits_to_bytes_pads_last_byte() {
        let bits = [true, false, true];
        assert_eq!(bits_to_bytes(&bits), vec![0b1010_0000]);
    }

    proptest! {
        #[test]
        fn random_round_trip(
            bytes in proptest::collection::vec(any::<u8>(), 4..16),
            start in 0usize..32,
            len in 1usize..33,
        ) {
            prop_assume!(start + len <= bytes.len() * 8);
            let mut copy = bytes.clone();
            let v = get_bits(&bytes, start, len);
            set_bits(&mut copy, start, len, v);
            prop_assert_eq!(&copy, &bytes, "set(get(x)) must be identity");
        }

        #[test]
        fn bits_bytes_identity(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
            prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        }
    }
}
