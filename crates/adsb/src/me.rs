//! The 56-bit ME (message/extended squitter) payloads.
//!
//! Three payload types cover everything the paper's pipeline uses: airborne
//! position (what the survey plots), airborne velocity, and identification
//! (callsigns, for operator-facing reports).

use crate::altitude::{decode_altitude_ft, encode_altitude_ft};
use crate::bits::{get_bits, set_bits};
use crate::cpr::{CprFormat, CprPosition};
use crate::AdsbError;
use serde::{Deserialize, Serialize};

/// The 6-bit character set used by identification messages.
const CHARSET: &[u8; 64] =
    b"#ABCDEFGHIJKLMNOPQRSTUVWXYZ##### ###############0123456789######";

/// A decoded (or to-be-encoded) ME payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MePayload {
    /// Airborne position, TC 9–18 (barometric altitude).
    AirbornePosition {
        /// Barometric altitude, feet.
        altitude_ft: f64,
        /// CPR-encoded position.
        cpr: CprPosition,
    },
    /// Surface position, TC 5–8 (taxiing/parked aircraft; CPR on the 90°
    /// surface grid, ground movement and track instead of altitude).
    SurfacePosition {
        /// Ground speed in knots, `None` = not available.
        ground_speed_kt: Option<f64>,
        /// Ground track in degrees, `None` = invalid.
        track_deg: Option<f64>,
        /// CPR-encoded position (surface flavor).
        cpr: CprPosition,
    },
    /// Airborne velocity over ground, TC 19 subtype 1.
    AirborneVelocity {
        /// East component of ground velocity, knots (positive east).
        east_kt: f64,
        /// North component of ground velocity, knots (positive north).
        north_kt: f64,
        /// Vertical rate, ft/min (positive climbing).
        vertical_rate_fpm: f64,
    },
    /// Aircraft identification (callsign), TC 4 (category A).
    Identification {
        /// Up to 8 characters, A–Z / 0–9 / space.
        callsign: String,
    },
}

impl MePayload {
    /// The type code this payload encodes with.
    pub fn type_code(&self) -> u8 {
        match self {
            MePayload::AirbornePosition { .. } => 11,
            MePayload::SurfacePosition { .. } => 6,
            MePayload::AirborneVelocity { .. } => 19,
            MePayload::Identification { .. } => 4,
        }
    }

    /// Encode into the 7-byte ME field.
    pub fn encode(&self) -> [u8; 7] {
        let mut me = [0u8; 7];
        match self {
            MePayload::AirbornePosition { altitude_ft, cpr } => {
                set_bits(&mut me, 0, 5, 11); // TC 11: airborne position, NUCp 7
                set_bits(&mut me, 8, 12, encode_altitude_ft(*altitude_ft) as u64);
                set_bits(&mut me, 21, 1, cpr.format.bit() as u64);
                set_bits(&mut me, 22, 17, cpr.lat_cpr as u64);
                set_bits(&mut me, 39, 17, cpr.lon_cpr as u64);
            }
            MePayload::SurfacePosition {
                ground_speed_kt,
                track_deg,
                cpr,
            } => {
                set_bits(&mut me, 0, 5, 6); // TC 6: surface position
                set_bits(&mut me, 5, 7, encode_movement(*ground_speed_kt) as u64);
                if let Some(trk) = track_deg {
                    set_bits(&mut me, 12, 1, 1); // track status: valid
                    let quantized =
                        ((trk.rem_euclid(360.0)) * 128.0 / 360.0).round() as u64 % 128;
                    set_bits(&mut me, 13, 7, quantized);
                }
                set_bits(&mut me, 21, 1, cpr.format.bit() as u64);
                set_bits(&mut me, 22, 17, cpr.lat_cpr as u64);
                set_bits(&mut me, 39, 17, cpr.lon_cpr as u64);
            }
            MePayload::AirborneVelocity {
                east_kt,
                north_kt,
                vertical_rate_fpm,
            } => {
                set_bits(&mut me, 0, 5, 19); // TC 19
                set_bits(&mut me, 5, 3, 1); // subtype 1: ground speed
                let (dew, vew) = encode_component(*east_kt);
                let (dns, vns) = encode_component(*north_kt);
                set_bits(&mut me, 13, 1, dew);
                set_bits(&mut me, 14, 10, vew);
                set_bits(&mut me, 24, 1, dns);
                set_bits(&mut me, 25, 10, vns);
                // Vertical rate: 64 ft/min units, sign bit, VrSrc = baro.
                let vr = (vertical_rate_fpm / 64.0).round();
                let svr = if vr < 0.0 { 1 } else { 0 };
                let vr_field = (vr.abs() as u64 + 1).min(511);
                set_bits(&mut me, 36, 1, svr);
                set_bits(&mut me, 37, 9, vr_field);
            }
            MePayload::Identification { callsign } => {
                set_bits(&mut me, 0, 5, 4); // TC 4: category A
                let padded: Vec<u8> = callsign
                    .bytes()
                    .chain(std::iter::repeat(b' '))
                    .take(8)
                    .collect();
                for (i, &c) in padded.iter().enumerate() {
                    let code = CHARSET.iter().position(|&x| x == c).unwrap_or(32) as u64;
                    set_bits(&mut me, 8 + 6 * i, 6, code);
                }
            }
        }
        me
    }

    /// Decode a 7-byte ME field.
    pub fn decode(me: &[u8; 7]) -> Result<Self, AdsbError> {
        let tc = get_bits(me, 0, 5) as u8;
        match tc {
            5..=8 => {
                let movement = get_bits(me, 5, 7) as u8;
                let track_valid = get_bits(me, 12, 1) == 1;
                let track_deg = track_valid
                    .then(|| get_bits(me, 13, 7) as f64 * 360.0 / 128.0);
                let format = CprFormat::from_bit(get_bits(me, 21, 1) as u8);
                Ok(MePayload::SurfacePosition {
                    ground_speed_kt: decode_movement(movement),
                    track_deg,
                    cpr: CprPosition {
                        format,
                        lat_cpr: get_bits(me, 22, 17) as u32,
                        lon_cpr: get_bits(me, 39, 17) as u32,
                    },
                })
            }
            9..=18 => {
                let alt_field = get_bits(me, 8, 12) as u16;
                let altitude_ft = decode_altitude_ft(alt_field)?;
                let format = CprFormat::from_bit(get_bits(me, 21, 1) as u8);
                Ok(MePayload::AirbornePosition {
                    altitude_ft,
                    cpr: CprPosition {
                        format,
                        lat_cpr: get_bits(me, 22, 17) as u32,
                        lon_cpr: get_bits(me, 39, 17) as u32,
                    },
                })
            }
            19 => {
                let st = get_bits(me, 5, 3);
                if st != 1 {
                    return Err(AdsbError::InvalidField("velocity subtype != 1"));
                }
                let east_kt = decode_component(get_bits(me, 13, 1), get_bits(me, 14, 10))?;
                let north_kt = decode_component(get_bits(me, 24, 1), get_bits(me, 25, 10))?;
                let svr = get_bits(me, 36, 1);
                let vr_field = get_bits(me, 37, 9);
                let vertical_rate_fpm = if vr_field == 0 {
                    0.0
                } else {
                    let mag = (vr_field as f64 - 1.0) * 64.0;
                    if svr == 1 {
                        -mag
                    } else {
                        mag
                    }
                };
                Ok(MePayload::AirborneVelocity {
                    east_kt,
                    north_kt,
                    vertical_rate_fpm,
                })
            }
            1..=4 => {
                let mut callsign = String::with_capacity(8);
                for i in 0..8 {
                    let code = get_bits(me, 8 + 6 * i, 6) as usize;
                    callsign.push(CHARSET[code] as char);
                }
                Ok(MePayload::Identification {
                    callsign: callsign.trim_end().to_string(),
                })
            }
            other => Err(AdsbError::UnsupportedTypeCode(other)),
        }
    }

    /// Ground speed in knots for a velocity payload, `None` otherwise.
    pub fn ground_speed_kt(&self) -> Option<f64> {
        match self {
            MePayload::AirborneVelocity {
                east_kt, north_kt, ..
            } => Some((east_kt * east_kt + north_kt * north_kt).sqrt()),
            _ => None,
        }
    }

    /// Track angle (degrees clockwise from north) for a velocity payload.
    pub fn track_deg(&self) -> Option<f64> {
        match self {
            MePayload::AirborneVelocity {
                east_kt, north_kt, ..
            } => {
                let t = east_kt.atan2(*north_kt).to_degrees();
                Some(if t < 0.0 { t + 360.0 } else { t })
            }
            _ => None,
        }
    }
}

/// The DO-260B surface "movement" field: a 7-bit nonuniform quantizer for
/// ground speed. Segment boundaries per the spec (Table 2-79):
/// value 1 = stopped, 2–8 step 0.125 kt, 9–12 step 0.25, 13–38 step 0.5,
/// 39–93 step 1, 94–108 step 2, 109–123 step 5, 124 = ≥175 kt.
fn encode_movement(speed_kt: Option<f64>) -> u8 {
    let Some(v) = speed_kt else { return 0 };
    let v = v.max(0.0);
    if v < 0.125 {
        1
    } else if v < 1.0 {
        (2.0 + ((v - 0.125) / 0.125).floor()) as u8
    } else if v < 2.0 {
        (9.0 + ((v - 1.0) / 0.25).floor()) as u8
    } else if v < 15.0 {
        (13.0 + ((v - 2.0) / 0.5).floor()) as u8
    } else if v < 70.0 {
        (39.0 + (v - 15.0).floor()) as u8
    } else if v < 100.0 {
        (94.0 + ((v - 70.0) / 2.0).floor()) as u8
    } else if v < 175.0 {
        (109.0 + ((v - 100.0) / 5.0).floor()) as u8
    } else {
        124
    }
}

/// Decode the movement field to a representative speed (segment lower
/// edge), `None` for "no information" / reserved values.
fn decode_movement(field: u8) -> Option<f64> {
    match field {
        0 | 125.. => None,
        1 => Some(0.0),
        2..=8 => Some(0.125 + (field - 2) as f64 * 0.125),
        9..=12 => Some(1.0 + (field - 9) as f64 * 0.25),
        13..=38 => Some(2.0 + (field - 13) as f64 * 0.5),
        39..=93 => Some(15.0 + (field - 39) as f64),
        94..=108 => Some(70.0 + (field - 94) as f64 * 2.0),
        109..=123 => Some(100.0 + (field - 109) as f64 * 5.0),
        124 => Some(175.0),
    }
}

/// Encode one signed velocity component into (direction bit, 10-bit field).
/// Field value 0 = "no information"; v = field − 1 kt.
fn encode_component(v_kt: f64) -> (u64, u64) {
    let dir = if v_kt < 0.0 { 1 } else { 0 };
    let field = (v_kt.abs().round() as u64 + 1).min(1023);
    (dir, field)
}

/// Decode one velocity component.
fn decode_component(dir: u64, field: u64) -> Result<f64, AdsbError> {
    if field == 0 {
        return Err(AdsbError::InvalidField("velocity component unavailable"));
    }
    let mag = (field - 1) as f64;
    Ok(if dir == 1 { -mag } else { mag })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpr;
    use proptest::prelude::*;

    #[test]
    fn position_round_trip() {
        let original = MePayload::AirbornePosition {
            altitude_ft: 35_000.0,
            cpr: cpr::encode(37.8716, -122.2727, CprFormat::Even),
        };
        let decoded = MePayload::decode(&original.encode()).unwrap();
        assert_eq!(original, decoded);
    }

    #[test]
    fn surface_position_round_trip() {
        let original = MePayload::SurfacePosition {
            ground_speed_kt: Some(17.0),
            track_deg: Some(90.0),
            cpr: cpr::encode_surface(37.6213, -122.3790, CprFormat::Odd),
        };
        let decoded = MePayload::decode(&original.encode()).unwrap();
        assert_eq!(original, decoded);
    }

    #[test]
    fn surface_stopped_and_unknown() {
        for gs in [None, Some(0.0)] {
            let original = MePayload::SurfacePosition {
                ground_speed_kt: gs,
                track_deg: None,
                cpr: cpr::encode_surface(37.62, -122.38, CprFormat::Even),
            };
            let decoded = MePayload::decode(&original.encode()).unwrap();
            assert_eq!(original, decoded);
        }
    }

    #[test]
    fn movement_table_round_trips_on_segment_edges() {
        // Representative speeds from each quantizer segment survive an
        // encode/decode cycle exactly.
        for v in [0.0, 0.125, 0.5, 1.0, 1.75, 2.0, 7.5, 15.0, 42.0, 70.0, 98.0, 100.0, 170.0, 175.0]
        {
            let decoded = decode_movement(encode_movement(Some(v))).unwrap();
            assert!(
                (decoded - v).abs() < 1e-9,
                "speed {v} decoded as {decoded}"
            );
        }
        assert_eq!(decode_movement(encode_movement(None)), None);
        // Above the top segment everything saturates at 175.
        assert_eq!(decode_movement(encode_movement(Some(999.0))), Some(175.0));
    }

    #[test]
    fn movement_quantization_monotone() {
        let mut prev = -1.0;
        for i in 0..600 {
            let v = i as f64 * 0.33;
            let q = decode_movement(encode_movement(Some(v))).unwrap();
            assert!(q >= prev, "at {v}: {q} < {prev}");
            assert!(q <= v + 1e-9, "quantizer must floor, {q} > {v}");
            prev = q;
        }
    }

    #[test]
    fn surface_track_quantization() {
        // 128-step track: 2.8125° resolution.
        let original = MePayload::SurfacePosition {
            ground_speed_kt: Some(10.0),
            track_deg: Some(123.0),
            cpr: cpr::encode_surface(37.62, -122.38, CprFormat::Even),
        };
        match MePayload::decode(&original.encode()).unwrap() {
            MePayload::SurfacePosition { track_deg, .. } => {
                let t = track_deg.unwrap();
                assert!((t - 123.0).abs() <= 360.0 / 128.0, "track {t}");
            }
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn velocity_round_trip_and_derived() {
        let original = MePayload::AirborneVelocity {
            east_kt: -120.0,
            north_kt: 350.0,
            vertical_rate_fpm: -1_280.0,
        };
        let decoded = MePayload::decode(&original.encode()).unwrap();
        assert_eq!(original, decoded);
        let gs = decoded.ground_speed_kt().unwrap();
        assert!((gs - (120.0f64 * 120.0 + 350.0 * 350.0).sqrt()).abs() < 0.5);
        let track = decoded.track_deg().unwrap();
        assert!((track - 341.08).abs() < 0.5, "track {track}");
    }

    #[test]
    fn identification_round_trip() {
        let original = MePayload::Identification {
            callsign: "UAL123".to_string(),
        };
        let decoded = MePayload::decode(&original.encode()).unwrap();
        assert_eq!(original, decoded);
    }

    #[test]
    fn identification_reference_vector() {
        // 8D4840D6202CC371C32CE0576098 → callsign KLM1023_ ("KLM1023").
        let me: [u8; 7] = [0x20, 0x2C, 0xC3, 0x71, 0xC3, 0x2C, 0xE0];
        match MePayload::decode(&me).unwrap() {
            MePayload::Identification { callsign } => assert_eq!(callsign, "KLM1023"),
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn unsupported_type_codes_rejected() {
        let mut me = [0u8; 7];
        set_bits(&mut me, 0, 5, 28); // aircraft status — not implemented
        assert_eq!(
            MePayload::decode(&me),
            Err(AdsbError::UnsupportedTypeCode(28))
        );
        set_bits(&mut me, 0, 5, 0);
        assert!(MePayload::decode(&me).is_err());
    }

    #[test]
    fn type_codes_match_spec_ranges() {
        assert_eq!(
            MePayload::AirbornePosition {
                altitude_ft: 0.0,
                cpr: cpr::encode(0.0, 0.0, CprFormat::Even)
            }
            .type_code(),
            11
        );
    }

    #[test]
    fn zero_velocity_round_trip() {
        let original = MePayload::AirborneVelocity {
            east_kt: 0.0,
            north_kt: 0.0,
            vertical_rate_fpm: 0.0,
        };
        let decoded = MePayload::decode(&original.encode()).unwrap();
        assert_eq!(original, decoded);
        assert_eq!(decoded.ground_speed_kt(), Some(0.0));
    }

    proptest! {
        /// Velocity components round-trip to 1 kt resolution.
        #[test]
        fn velocity_round_trip_random(
            e in -900.0f64..900.0,
            n in -900.0f64..900.0,
            vr in -6000.0f64..6000.0,
        ) {
            let original = MePayload::AirborneVelocity {
                east_kt: e.round(),
                north_kt: n.round(),
                vertical_rate_fpm: (vr / 64.0).round() * 64.0,
            };
            let decoded = MePayload::decode(&original.encode()).unwrap();
            prop_assert_eq!(original, decoded);
        }

        /// Callsigns of valid characters round-trip.
        #[test]
        fn callsign_round_trip(s in "[A-Z0-9]{1,8}") {
            let original = MePayload::Identification { callsign: s.clone() };
            let decoded = MePayload::decode(&original.encode()).unwrap();
            prop_assert_eq!(original, decoded);
        }
    }
}
