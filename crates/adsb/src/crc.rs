//! Mode S CRC-24 parity (generator polynomial 0x1FFF409).
//!
//! Extended squitters place the 24-bit remainder directly in the PI field
//! (no address overlay for DF17 broadcast), so a receiver recomputes the
//! CRC over the first 88 bits and compares.

/// The Mode S generator polynomial, 25 bits: x²⁴ + … (0x1FFF409), here as
/// the 24-bit representation used in the bitwise long division.
pub const POLY: u32 = 0xFFF409;

/// Compute the Mode S CRC-24 over `data` (bitwise long division,
/// MSB-first). For a full 112-bit frame pass the first 11 bytes.
pub fn crc24(data: &[u8]) -> u32 {
    let mut crc: u32 = 0;
    for &byte in data {
        crc ^= (byte as u32) << 16;
        for _ in 0..8 {
            crc <<= 1;
            if crc & 0x1_000000 != 0 {
                crc ^= POLY;
            }
        }
    }
    crc & 0xFFFFFF
}

/// Verify a 14-byte (112-bit) frame: CRC over bytes 0..11 must equal the
/// PI field in bytes 11..14.
pub fn verify_frame(frame: &[u8; 14]) -> bool {
    let computed = crc24(&frame[..11]);
    let stored = ((frame[11] as u32) << 16) | ((frame[12] as u32) << 8) | frame[13] as u32;
    computed == stored
}

/// Fill in the PI field of a 14-byte frame from its first 11 bytes.
pub fn apply_parity(frame: &mut [u8; 14]) {
    let crc = crc24(&frame[..11]);
    frame[11] = (crc >> 16) as u8;
    frame[12] = (crc >> 8) as u8;
    frame[13] = crc as u8;
}

/// Verify a 7-byte (56-bit) short frame (DF11 acquisition squitter with
/// interrogator code 0): CRC over bytes 0..4 must equal bytes 4..7.
pub fn verify_short_frame(frame: &[u8; 7]) -> bool {
    let computed = crc24(&frame[..4]);
    let stored = ((frame[4] as u32) << 16) | ((frame[5] as u32) << 8) | frame[6] as u32;
    computed == stored
}

/// Fill in the parity of a 7-byte short frame from its first 4 bytes.
pub fn apply_short_parity(frame: &mut [u8; 7]) {
    let crc = crc24(&frame[..4]);
    frame[4] = (crc >> 16) as u8;
    frame[5] = (crc >> 8) as u8;
    frame[6] = crc as u8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Known-good frame from the 1090 MHz Riddle (Junzi Sun, §2): a DF17
    /// airborne-position squitter whose CRC must come out to its PI field.
    #[test]
    fn known_reference_frame_verifies() {
        // 8D406B902015A678D4D220AA4BDA — a widely-used test vector.
        let frame: [u8; 14] = [
            0x8D, 0x40, 0x6B, 0x90, 0x20, 0x15, 0xA6, 0x78, 0xD4, 0xD2, 0x20, 0xAA, 0x4B, 0xDA,
        ];
        assert!(verify_frame(&frame));
    }

    #[test]
    fn second_reference_frame_verifies() {
        // 8D4840D6202CC371C32CE0576098 — identification message test vector.
        let frame: [u8; 14] = [
            0x8D, 0x48, 0x40, 0xD6, 0x20, 0x2C, 0xC3, 0x71, 0xC3, 0x2C, 0xE0, 0x57, 0x60, 0x98,
        ];
        assert!(verify_frame(&frame));
    }

    #[test]
    fn apply_then_verify() {
        let mut frame = [0u8; 14];
        frame[0] = 0x8D;
        frame[1..4].copy_from_slice(&[0xAB, 0xCD, 0xEF]);
        apply_parity(&mut frame);
        assert!(verify_frame(&frame));
    }

    #[test]
    fn single_bit_error_detected() {
        let mut frame: [u8; 14] = [
            0x8D, 0x40, 0x6B, 0x90, 0x20, 0x15, 0xA6, 0x78, 0xD4, 0xD2, 0x20, 0xAA, 0x4B, 0xDA,
        ];
        for byte in 0..14 {
            for bit in 0..8 {
                frame[byte] ^= 1 << bit;
                assert!(!verify_frame(&frame), "flip {byte}.{bit} undetected");
                frame[byte] ^= 1 << bit;
            }
        }
        assert!(verify_frame(&frame), "restored frame must verify");
    }

    #[test]
    fn crc_of_zeros_is_zero() {
        assert_eq!(crc24(&[0u8; 11]), 0);
    }

    proptest! {
        /// Any frame stamped with apply_parity must verify.
        #[test]
        fn stamped_frames_always_verify(payload in proptest::collection::vec(any::<u8>(), 11)) {
            let mut frame = [0u8; 14];
            frame[..11].copy_from_slice(&payload);
            apply_parity(&mut frame);
            prop_assert!(verify_frame(&frame));
        }

        /// All double-bit errors within the first 88 bits are detected
        /// (CRC-24 has minimum distance ≥ 6 over this length).
        #[test]
        fn double_bit_errors_detected(
            payload in proptest::collection::vec(any::<u8>(), 11),
            b1 in 0usize..88,
            b2 in 0usize..88,
        ) {
            prop_assume!(b1 != b2);
            let mut frame = [0u8; 14];
            frame[..11].copy_from_slice(&payload);
            apply_parity(&mut frame);
            frame[b1 / 8] ^= 1 << (7 - b1 % 8);
            frame[b2 / 8] ^= 1 << (7 - b2 % 8);
            prop_assert!(!verify_frame(&frame));
        }
    }
}
