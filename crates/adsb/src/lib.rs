//! Mode S / ADS-B (1090 MHz extended squitter): frames, CPR positions,
//! CRC-24, PPM modulation and a dump1090-style decoder.
//!
//! The paper receives ADS-B with the `dump1090` program; this crate is the
//! equivalent implementation the simulation decodes with, built from the
//! DO-260B framing rules (via Junzi Sun's *1090 MHz Riddle*, the paper's
//! ref \[34\]):
//!
//! * **Frames** ([`crc`], [`frame`]): the 112-bit DF17 extended squitter —
//!   `DF(5) CA(3) ICAO(24) ME(56) PI(24)`, PI being CRC-24 parity over the
//!   first 88 bits — and the 56-bit DF11 acquisition squitter every Mode S
//!   transponder emits.
//! * **ME payloads** ([`me`]): airborne position (TC 9–18, CPR-encoded),
//!   surface position (TC 5–8, movement/track fields), airborne velocity
//!   (TC 19 subtype 1), aircraft identification (TC 1–4).
//! * **CPR** ([`cpr`]): the compact position reporting scheme — airborne
//!   and surface grids, global (even/odd pair) and local decoding.
//! * **PHY** ([`ppm`], [`decoder`]): 2 Msps pulse-position modulation, the
//!   16-sample preamble, energy-based bit slicing with per-bit confidence,
//!   and a scanning decoder that finds and decodes bursts in raw IQ.
//!
//! Everything round-trips: `encode → modulate → (channel) → demodulate →
//! decode` is exercised end-to-end by the integration tests and by every
//! simulated survey in `aircal-core`.

pub mod altitude;
pub mod bits;
pub mod cpr;
pub mod crc;
pub mod decoder;
pub mod frame;
pub mod icao;
pub mod me;
pub mod ppm;

pub use cpr::{CprFormat, CprPair};
pub use decoder::{DecodeScratch, DecodedMessage, Decoder, DecoderConfig};
pub use frame::{AdsbFrame, FRAME_BITS, FRAME_BYTES};
pub use icao::IcaoAddress;
pub use me::MePayload;

/// The 1090ES downlink carrier frequency, Hz.
pub const ADSB_FREQ_HZ: f64 = 1.090e9;
/// The UAT alternative frequency (978 MHz), Hz — mentioned by the paper but
/// not modeled beyond the constant.
pub const UAT_FREQ_HZ: f64 = 0.978e9;
/// Native sample rate of the PPM waveform (half-microsecond chips), Hz.
pub const SAMPLE_RATE_HZ: f64 = 2.0e6;

/// Errors produced while decoding ADS-B data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdsbError {
    /// CRC parity check failed (corrupted or truncated frame).
    BadParity,
    /// The downlink format is not 17 (not an extended squitter).
    UnsupportedFormat(u8),
    /// ME payload has an unknown/unsupported type code.
    UnsupportedTypeCode(u8),
    /// A field held an out-of-range value (message explains which).
    InvalidField(&'static str),
    /// Global CPR decode failed (e.g. frames straddle a zone boundary).
    CprDecodeFailed,
}

impl core::fmt::Display for AdsbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdsbError::BadParity => write!(f, "CRC-24 parity check failed"),
            AdsbError::UnsupportedFormat(df) => write!(f, "unsupported downlink format {df}"),
            AdsbError::UnsupportedTypeCode(tc) => write!(f, "unsupported ME type code {tc}"),
            AdsbError::InvalidField(what) => write!(f, "invalid field: {what}"),
            AdsbError::CprDecodeFailed => write!(f, "global CPR decode failed"),
        }
    }
}

impl std::error::Error for AdsbError {}
