//! Mode S pulse-position modulation at 2 Msps (half-microsecond chips).
//!
//! The downlink waveform is on-off keying of 0.5 µs pulses:
//!
//! * **Preamble** (8 µs, 16 chips): pulses at 0, 1.0, 3.5 and 4.5 µs —
//!   the pattern every receiver (dump1090 included) correlates against;
//! * **Data** (112 µs, 224 chips): each bit occupies 1 µs; a `1` puts the
//!   pulse in the first half, a `0` in the second.
//!
//! At the native 2 Msps, one chip is exactly one sample, so a full frame is
//! 240 samples.

use crate::bits::bytes_to_bits;
use crate::{FRAME_BYTES, SAMPLE_RATE_HZ};
use aircal_dsp::Cplx;

/// Chips in the preamble.
pub const PREAMBLE_CHIPS: usize = 16;
/// Chips in the data section (112 bits × 2).
pub const DATA_CHIPS: usize = 224;
/// Total samples in a modulated frame at 2 Msps.
pub const FRAME_SAMPLES: usize = PREAMBLE_CHIPS + DATA_CHIPS;

/// The preamble chip pattern (1 = pulse).
pub const PREAMBLE_PATTERN: [u8; PREAMBLE_CHIPS] =
    [1, 0, 1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0];

/// Chip offsets of the four preamble pulses (the `1`s in
/// [`PREAMBLE_PATTERN`]) — the only samples that contribute to preamble
/// correlation, which the decoder's gated scan exploits.
pub const PREAMBLE_PULSES: [usize; 4] = [0, 2, 7, 9];

/// Duration of one frame in seconds (120 µs).
pub fn frame_duration_s() -> f64 {
    FRAME_SAMPLES as f64 / SAMPLE_RATE_HZ
}

/// The preamble as a fixed complex template (unit-amplitude pulses),
/// usable without allocation by the gated scan's exact-correlation
/// kernel; [`preamble_template`] is its `Vec` form.
pub const PREAMBLE_TEMPLATE: [Cplx; PREAMBLE_CHIPS] = build_preamble_template();

const fn build_preamble_template() -> [Cplx; PREAMBLE_CHIPS] {
    let mut t = [Cplx::ZERO; PREAMBLE_CHIPS];
    let mut i = 0;
    while i < PREAMBLE_CHIPS {
        if PREAMBLE_PATTERN[i] == 1 {
            t[i] = Cplx::ONE;
        }
        i += 1;
    }
    t
}

/// The preamble as a complex template (unit amplitude), for correlation.
pub fn preamble_template() -> Vec<Cplx> {
    PREAMBLE_TEMPLATE.to_vec()
}

/// Samples in a modulated *short* (56-bit) frame at 2 Msps.
pub const SHORT_FRAME_SAMPLES: usize = PREAMBLE_CHIPS + 2 * 56;

/// Modulate any Mode S byte string (7 or 14 bytes) into baseband samples
/// with the given pulse amplitude and carrier phase.
pub fn modulate_bytes(frame: &[u8], amplitude: f64, phase_rad: f64) -> Vec<Cplx> {
    let pulse = Cplx::from_polar(amplitude, phase_rad);
    let mut samples = vec![Cplx::ZERO; PREAMBLE_CHIPS + 16 * frame.len()];
    for (i, &c) in PREAMBLE_PATTERN.iter().enumerate() {
        if c == 1 {
            samples[i] = pulse;
        }
    }
    for (bit_idx, bit) in bytes_to_bits(frame).iter().enumerate() {
        let base = PREAMBLE_CHIPS + 2 * bit_idx;
        if *bit {
            samples[base] = pulse;
        } else {
            samples[base + 1] = pulse;
        }
    }
    samples
}

/// Modulate a 14-byte frame into 240 complex baseband samples with the
/// given pulse amplitude and carrier phase.
pub fn modulate(frame: &[u8; FRAME_BYTES], amplitude: f64, phase_rad: f64) -> Vec<Cplx> {
    modulate_bytes(frame, amplitude, phase_rad)
}

/// Result of demodulating one frame's worth of samples.
#[derive(Debug, Clone, Default)]
pub struct Demodulated {
    /// The recovered bytes (7 or 14; parity not yet checked).
    pub bytes: Vec<u8>,
    /// Per-bit confidence in [0, 1]: energy asymmetry between chip halves.
    pub confidences: Vec<f64>,
    /// Mean pulse power (linear) — the dump1090-style RSSI numerator.
    pub signal_power: f64,
    /// Reused `|chip|²` buffer, filled by the vectorized magnitude kernel.
    chip_mags: Vec<f64>,
}

impl Demodulated {
    /// The weakest bit decision's confidence.
    pub fn min_confidence(&self) -> f64 {
        self.confidences.iter().cloned().fold(1.0, f64::min)
    }

    /// RSSI in dBFS given that samples are full-scale-relative.
    pub fn rssi_dbfs(&self) -> f64 {
        aircal_dsp::lin_to_db(self.signal_power.max(1e-30))
    }
}

/// Demodulate `n_bits` (starting at the preamble) into bytes and per-bit
/// confidences. Returns `None` if the slice is too short.
pub fn demodulate_bits(samples: &[Cplx], n_bits: usize) -> Option<Demodulated> {
    let mut out = Demodulated::default();
    demodulate_bits_into(samples, n_bits, &mut out).then_some(out)
}

/// [`demodulate_bits`] into a caller-owned [`Demodulated`] whose buffers
/// are reused across calls, keeping the decode loop allocation-free.
/// Returns `false` (leaving `out` cleared) if the slice is too short.
pub fn demodulate_bits_into(samples: &[Cplx], n_bits: usize, out: &mut Demodulated) -> bool {
    out.bytes.clear();
    out.confidences.clear();
    out.signal_power = 0.0;
    if samples.len() < PREAMBLE_CHIPS + 2 * n_bits {
        return false;
    }
    out.bytes.resize(n_bits.div_ceil(8), 0u8);
    // One vectorized magnitude pass over the data chips; the bit loop then
    // reads plain f64s (same values as per-sample `norm_sq`).
    out.chip_mags.resize(2 * n_bits, 0.0);
    (aircal_dsp::kernels().norm_sq_map)(
        &samples[PREAMBLE_CHIPS..PREAMBLE_CHIPS + 2 * n_bits],
        &mut out.chip_mags,
    );
    let mut pulse_power = 0.0;
    for bit_idx in 0..n_bits {
        let first = out.chip_mags[2 * bit_idx];
        let second = out.chip_mags[2 * bit_idx + 1];
        let bit = first > second;
        if bit {
            out.bytes[bit_idx / 8] |= 1 << (7 - bit_idx % 8);
        }
        let total = first + second;
        out.confidences.push(if total > 0.0 {
            (first - second).abs() / total
        } else {
            0.0
        });
        pulse_power += first.max(second);
    }
    out.signal_power = pulse_power / n_bits as f64;
    true
}

/// Demodulate 240 samples (starting at the preamble) as a 112-bit frame.
pub fn demodulate(samples: &[Cplx]) -> Option<Demodulated> {
    demodulate_bits(samples, 112)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame_bytes() -> [u8; FRAME_BYTES] {
        [
            0x8D, 0x48, 0x40, 0xD6, 0x20, 0x2C, 0xC3, 0x71, 0xC3, 0x2C, 0xE0, 0x57, 0x60, 0x98,
        ]
    }

    #[test]
    fn frame_geometry() {
        assert_eq!(FRAME_SAMPLES, 240);
        assert!((frame_duration_s() - 120e-6).abs() < 1e-12);
    }

    #[test]
    fn clean_round_trip() {
        let tx = modulate(&frame_bytes(), 0.7, 0.3);
        let rx = demodulate(&tx).unwrap();
        assert_eq!(rx.bytes, frame_bytes());
        assert_eq!(rx.min_confidence(), 1.0);
        assert!((rx.signal_power - 0.49).abs() < 1e-9);
    }

    #[test]
    fn exactly_one_pulse_per_bit() {
        let tx = modulate(&frame_bytes(), 1.0, 0.0);
        for bit in 0..112 {
            let base = PREAMBLE_CHIPS + 2 * bit;
            let pulses =
                (tx[base].abs() > 0.5) as u32 + (tx[base + 1].abs() > 0.5) as u32;
            assert_eq!(pulses, 1, "bit {bit}");
        }
    }

    #[test]
    fn preamble_matches_pattern() {
        let tx = modulate(&frame_bytes(), 1.0, 0.0);
        for (i, &c) in PREAMBLE_PATTERN.iter().enumerate() {
            assert_eq!(tx[i].abs() > 0.5, c == 1, "chip {i}");
        }
    }

    #[test]
    fn short_input_returns_none() {
        assert!(demodulate(&[Cplx::ZERO; 239]).is_none());
    }

    #[test]
    fn noise_lowers_confidence() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut tx = modulate(&frame_bytes(), 1.0, 0.0);
        for s in tx.iter_mut() {
            *s += Cplx::new(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2));
        }
        let rx = demodulate(&tx).unwrap();
        assert!(rx.min_confidence() < 1.0);
        // Still decodes at this SNR.
        assert_eq!(rx.bytes, frame_bytes());
    }

    #[test]
    fn rssi_tracks_amplitude() {
        let strong = demodulate(&modulate(&frame_bytes(), 0.5, 0.0)).unwrap();
        let weak = demodulate(&modulate(&frame_bytes(), 0.05, 0.0)).unwrap();
        assert!((strong.rssi_dbfs() - weak.rssi_dbfs() - 20.0).abs() < 0.1);
    }

    proptest! {
        /// Modulation → demodulation is the identity on bytes for any
        /// payload and any carrier phase, on a clean channel.
        #[test]
        fn random_payload_round_trip(
            payload in proptest::collection::vec(any::<u8>(), FRAME_BYTES),
            phase in 0.0f64..core::f64::consts::TAU,
            amp in 0.01f64..1.0,
        ) {
            let mut frame = [0u8; FRAME_BYTES];
            frame.copy_from_slice(&payload);
            let rx = demodulate(&modulate(&frame, amp, phase)).unwrap();
            prop_assert_eq!(rx.bytes, frame);
        }
    }
}
