//! The 12-bit barometric altitude field of airborne-position messages.
//!
//! We implement the Q = 1 encoding (25 ft resolution, −1000…50175 ft),
//! which covers every aircraft the simulation generates; the legacy
//! 100 ft Gillham encoding (Q = 0) is rejected as unsupported.

use crate::AdsbError;

/// Altitude resolution with Q = 1, feet.
const Q_BIT_RESOLUTION_FT: i32 = 25;
/// Encoding offset, feet.
const OFFSET_FT: i32 = -1000;

/// Encode a barometric altitude (feet) into the 12-bit AC field (Q = 1).
///
/// Values are clamped to the representable range −1000…50175 ft.
pub fn encode_altitude_ft(alt_ft: f64) -> u16 {
    let n = ((alt_ft as i32 - OFFSET_FT) / Q_BIT_RESOLUTION_FT).clamp(0, 0x7FF) as u16;
    // Layout: N[10..4] Q N[3..0] — the Q bit sits between bits 4 and 5.
    let high = (n >> 4) & 0x7F;
    let low = n & 0xF;
    (high << 5) | (1 << 4) | low
}

/// Decode a 12-bit AC field into feet. Only Q = 1 is supported.
pub fn decode_altitude_ft(field: u16) -> Result<f64, AdsbError> {
    let field = field & 0xFFF;
    if field == 0 {
        return Err(AdsbError::InvalidField("altitude field is zero (unavailable)"));
    }
    if field & (1 << 4) == 0 {
        return Err(AdsbError::InvalidField("Q=0 (Gillham) altitude not supported"));
    }
    let n = (((field >> 5) & 0x7F) << 4) | (field & 0xF);
    Ok((n as i32 * Q_BIT_RESOLUTION_FT + OFFSET_FT) as f64)
}

/// Convert meters to feet.
pub fn m_to_ft(m: f64) -> f64 {
    m / 0.3048
}

/// Convert feet to meters.
pub fn ft_to_m(ft: f64) -> f64 {
    ft * 0.3048
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_reference_value() {
        // From the 1090 MHz Riddle: AC field 0xC38 decodes to 38000 ft.
        assert_eq!(decode_altitude_ft(0xC38).unwrap(), 38_000.0);
    }

    #[test]
    fn sea_level_round_trip() {
        let f = encode_altitude_ft(0.0);
        assert_eq!(decode_altitude_ft(f).unwrap(), 0.0);
    }

    #[test]
    fn cruise_altitude_round_trip() {
        let f = encode_altitude_ft(35_000.0);
        assert_eq!(decode_altitude_ft(f).unwrap(), 35_000.0);
    }

    #[test]
    fn zero_field_rejected() {
        assert!(decode_altitude_ft(0).is_err());
    }

    #[test]
    fn gillham_rejected() {
        // Any field with Q = 0 (bit 4 clear) and non-zero content.
        assert!(decode_altitude_ft(0b1000_0000_0000).is_err());
    }

    #[test]
    fn clamps_out_of_range() {
        let lo = decode_altitude_ft(encode_altitude_ft(-5_000.0)).unwrap();
        assert_eq!(lo, -1_000.0);
        let hi = decode_altitude_ft(encode_altitude_ft(99_999.0)).unwrap();
        assert_eq!(hi, 50_175.0);
    }

    #[test]
    fn unit_conversions() {
        assert!((m_to_ft(0.3048) - 1.0).abs() < 1e-12);
        assert!((ft_to_m(m_to_ft(123.0)) - 123.0).abs() < 1e-9);
    }

    proptest! {
        /// Round trip is exact to the 25 ft resolution in range.
        #[test]
        fn round_trip_within_resolution(alt in -1000.0f64..50_175.0) {
            let decoded = decode_altitude_ft(encode_altitude_ft(alt)).unwrap();
            prop_assert!((decoded - alt).abs() < 25.0);
        }
    }
}
