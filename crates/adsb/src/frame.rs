//! The 112-bit DF17 extended squitter frame.

use crate::bits::{get_bits, set_bits};
use crate::crc::{apply_parity, verify_frame};
use crate::icao::IcaoAddress;
use crate::me::MePayload;
use crate::AdsbError;
use serde::{Deserialize, Serialize};

/// Bits in an extended squitter.
pub const FRAME_BITS: usize = 112;
/// Bytes in an extended squitter.
pub const FRAME_BYTES: usize = 14;
/// Bits in a short (Mode S acquisition) squitter.
pub const SHORT_FRAME_BITS: usize = 56;
/// Bytes in a short squitter.
pub const SHORT_FRAME_BYTES: usize = 7;

/// Downlink format 17 (civil ADS-B extended squitter).
pub const DF_EXTENDED_SQUITTER: u8 = 17;
/// Downlink format 11 (all-call reply / acquisition squitter).
pub const DF_ALL_CALL: u8 = 11;

/// A complete DF17 frame: address plus decoded payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdsbFrame {
    /// Transmitting aircraft's ICAO address.
    pub icao: IcaoAddress,
    /// Transponder capability field (CA); 5 = airborne, level 2+.
    pub capability: u8,
    /// The ME payload.
    pub payload: MePayload,
}

impl AdsbFrame {
    /// Build a frame with the standard airborne capability value.
    pub fn new(icao: IcaoAddress, payload: MePayload) -> Self {
        Self {
            icao,
            capability: 5,
            payload,
        }
    }

    /// Serialize to 14 bytes with valid parity.
    pub fn encode(&self) -> [u8; FRAME_BYTES] {
        let mut bytes = [0u8; FRAME_BYTES];
        set_bits(&mut bytes, 0, 5, DF_EXTENDED_SQUITTER as u64);
        set_bits(&mut bytes, 5, 3, (self.capability & 0x7) as u64);
        set_bits(&mut bytes, 8, 24, self.icao.value() as u64);
        let me = self.payload.encode();
        bytes[4..11].copy_from_slice(&me);
        apply_parity(&mut bytes);
        bytes
    }

    /// Parse 14 bytes: checks parity, downlink format, then the payload.
    pub fn decode(bytes: &[u8; FRAME_BYTES]) -> Result<Self, AdsbError> {
        if !verify_frame(bytes) {
            return Err(AdsbError::BadParity);
        }
        let df = get_bits(bytes, 0, 5) as u8;
        if df != DF_EXTENDED_SQUITTER {
            return Err(AdsbError::UnsupportedFormat(df));
        }
        let capability = get_bits(bytes, 5, 3) as u8;
        let icao = IcaoAddress::new(get_bits(bytes, 8, 24) as u32);
        let mut me = [0u8; 7];
        me.copy_from_slice(&bytes[4..11]);
        let payload = MePayload::decode(&me)?;
        Ok(Self {
            icao,
            capability,
            payload,
        })
    }
}

/// A DF11 acquisition squitter: the 1 Hz "I exist" broadcast every Mode S
/// transponder emits, ADS-B-capable or not. Carries only identity — which
/// is exactly what the paper's presence-matching needs ("binary presence
/// or absence of ADS-B messages … is a useful indicator").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShortSquitter {
    /// Transponder address.
    pub icao: IcaoAddress,
    /// Capability field.
    pub capability: u8,
}

impl ShortSquitter {
    /// Build an acquisition squitter (CA 5 = airborne, level 2+).
    pub fn new(icao: IcaoAddress) -> Self {
        Self {
            icao,
            capability: 5,
        }
    }

    /// Serialize to 7 bytes with valid parity (interrogator code 0).
    pub fn encode(&self) -> [u8; SHORT_FRAME_BYTES] {
        let mut bytes = [0u8; SHORT_FRAME_BYTES];
        set_bits(&mut bytes, 0, 5, DF_ALL_CALL as u64);
        set_bits(&mut bytes, 5, 3, (self.capability & 0x7) as u64);
        set_bits(&mut bytes, 8, 24, self.icao.value() as u64);
        crate::crc::apply_short_parity(&mut bytes);
        bytes
    }

    /// Parse 7 bytes.
    pub fn decode(bytes: &[u8; SHORT_FRAME_BYTES]) -> Result<Self, AdsbError> {
        if !crate::crc::verify_short_frame(bytes) {
            return Err(AdsbError::BadParity);
        }
        let df = get_bits(bytes, 0, 5) as u8;
        if df != DF_ALL_CALL {
            return Err(AdsbError::UnsupportedFormat(df));
        }
        Ok(Self {
            capability: get_bits(bytes, 5, 3) as u8,
            icao: IcaoAddress::new(get_bits(bytes, 8, 24) as u32),
        })
    }
}

/// Any decodable Mode S downlink frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModeSFrame {
    /// 56-bit DF11 acquisition squitter.
    Short(ShortSquitter),
    /// 112-bit DF17 extended squitter.
    Extended(AdsbFrame),
}

impl ModeSFrame {
    /// The transmitting aircraft's address.
    pub fn icao(&self) -> IcaoAddress {
        match self {
            ModeSFrame::Short(s) => s.icao,
            ModeSFrame::Extended(f) => f.icao,
        }
    }

    /// The downlink format.
    pub fn df(&self) -> u8 {
        match self {
            ModeSFrame::Short(_) => DF_ALL_CALL,
            ModeSFrame::Extended(_) => DF_EXTENDED_SQUITTER,
        }
    }

    /// Serialize to the on-air byte string (7 or 14 bytes).
    pub fn encode_bytes(&self) -> Vec<u8> {
        match self {
            ModeSFrame::Short(s) => s.encode().to_vec(),
            ModeSFrame::Extended(f) => f.encode().to_vec(),
        }
    }

    /// The ADS-B payload, if this is an extended squitter.
    pub fn payload(&self) -> Option<&MePayload> {
        match self {
            ModeSFrame::Short(_) => None,
            ModeSFrame::Extended(f) => Some(&f.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpr::{self, CprFormat};
    use proptest::prelude::*;

    fn sample_frame() -> AdsbFrame {
        AdsbFrame::new(
            IcaoAddress::new(0xA1B2C3),
            MePayload::AirbornePosition {
                altitude_ft: 12_000.0,
                cpr: cpr::encode(37.9, -122.3, CprFormat::Odd),
            },
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample_frame();
        let decoded = AdsbFrame::decode(&f.encode()).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn reference_identification_frame_decodes() {
        let bytes: [u8; 14] = [
            0x8D, 0x48, 0x40, 0xD6, 0x20, 0x2C, 0xC3, 0x71, 0xC3, 0x2C, 0xE0, 0x57, 0x60, 0x98,
        ];
        let f = AdsbFrame::decode(&bytes).unwrap();
        assert_eq!(f.icao.to_string(), "4840D6");
        assert_eq!(
            f.payload,
            MePayload::Identification {
                callsign: "KLM1023".to_string()
            }
        );
    }

    #[test]
    fn corrupted_frame_rejected() {
        let mut bytes = sample_frame().encode();
        bytes[6] ^= 0x10;
        assert_eq!(AdsbFrame::decode(&bytes), Err(AdsbError::BadParity));
    }

    #[test]
    fn wrong_downlink_format_rejected() {
        let mut bytes = sample_frame().encode();
        // Rewrite DF to 11 (all-call reply) and re-stamp parity.
        set_bits(&mut bytes, 0, 5, 11);
        crate::crc::apply_parity(&mut bytes);
        assert_eq!(AdsbFrame::decode(&bytes), Err(AdsbError::UnsupportedFormat(11)));
    }

    #[test]
    fn first_byte_is_8d_for_ca5() {
        // DF17/CA5 frames famously start with 0x8D.
        assert_eq!(sample_frame().encode()[0], 0x8D);
    }

    #[test]
    fn short_squitter_round_trip() {
        let s = ShortSquitter::new(IcaoAddress::new(0x4840D6));
        let decoded = ShortSquitter::decode(&s.encode()).unwrap();
        assert_eq!(s, decoded);
        // DF11/CA5 frames start with 0x5D.
        assert_eq!(s.encode()[0], 0x5D);
    }

    #[test]
    fn short_squitter_corruption_rejected() {
        let mut bytes = ShortSquitter::new(IcaoAddress::new(0x123456)).encode();
        bytes[2] ^= 0x04;
        assert_eq!(ShortSquitter::decode(&bytes), Err(AdsbError::BadParity));
    }

    #[test]
    fn mode_s_frame_accessors() {
        let short = ModeSFrame::Short(ShortSquitter::new(IcaoAddress::new(0xAAAAAA)));
        let ext = ModeSFrame::Extended(sample_frame());
        assert_eq!(short.df(), 11);
        assert_eq!(ext.df(), 17);
        assert_eq!(short.icao().value(), 0xAAAAAA);
        assert!(short.payload().is_none());
        assert!(ext.payload().is_some());
        assert_eq!(short.encode_bytes().len(), 7);
        assert_eq!(ext.encode_bytes().len(), 14);
    }

    proptest! {
        #[test]
        fn random_icao_round_trip(raw in 0u32..0x1_000_000) {
            let f = AdsbFrame::new(
                IcaoAddress::new(raw),
                MePayload::Identification { callsign: "TEST".into() },
            );
            let decoded = AdsbFrame::decode(&f.encode()).unwrap();
            prop_assert_eq!(decoded.icao.value(), raw);
        }
    }
}
