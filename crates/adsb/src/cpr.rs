//! Compact Position Reporting (CPR) for airborne positions.
//!
//! ADS-B squeezes latitude/longitude into 17 + 17 bits by alternating
//! between an *even* and an *odd* zone grid. A receiver that has both
//! flavors within ~10 s recovers the unambiguous ("global") position; with
//! a known reference within ~180 NM it can decode a single message
//! ("local"). Implemented per DO-260B as presented in *The 1090 MHz
//! Riddle* (the paper's ref \[34\]).

use crate::AdsbError;
use serde::{Deserialize, Serialize};

/// Number of latitude zones per hemisphere half (DO-260B NZ).
const NZ: f64 = 15.0;
/// CPR fixed-point scale, 2¹⁷.
const SCALE: f64 = 131_072.0;

/// Which zone grid a position message uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CprFormat {
    /// F = 0.
    Even,
    /// F = 1.
    Odd,
}

impl CprFormat {
    /// The F bit value.
    pub fn bit(&self) -> u8 {
        match self {
            CprFormat::Even => 0,
            CprFormat::Odd => 1,
        }
    }

    /// From the F bit.
    pub fn from_bit(b: u8) -> Self {
        if b & 1 == 0 {
            CprFormat::Even
        } else {
            CprFormat::Odd
        }
    }

    fn index(&self) -> f64 {
        self.bit() as f64
    }
}

/// An encoded CPR position: two 17-bit fields plus the format flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CprPosition {
    pub format: CprFormat,
    /// 17-bit encoded latitude.
    pub lat_cpr: u32,
    /// 17-bit encoded longitude.
    pub lon_cpr: u32,
}

/// An even/odd message pair ready for global decoding.
#[derive(Debug, Clone, Copy)]
pub struct CprPair {
    pub even: CprPosition,
    pub odd: CprPosition,
    /// Which of the two arrived most recently (decode is anchored there).
    pub latest: CprFormat,
}

/// Always-positive floating modulo.
fn fmod_pos(a: f64, b: f64) -> f64 {
    let r = a % b;
    if r < 0.0 {
        r + b
    } else {
        r
    }
}

/// The NL function: number of longitude zones at a latitude.
pub fn nl(lat_deg: f64) -> u32 {
    let lat = lat_deg.abs();
    if lat < 1e-9 {
        return 59;
    }
    if (lat - 87.0).abs() < 1e-9 {
        return 2;
    }
    if lat > 87.0 {
        return 1;
    }
    let a = 1.0 - (core::f64::consts::PI / (2.0 * NZ)).cos();
    let b = (core::f64::consts::PI * lat / 180.0).cos().powi(2);
    let arg = (1.0 - a / b).clamp(-1.0, 1.0);
    (core::f64::consts::TAU / arg.acos()).floor() as u32
}

/// Encode an airborne position into CPR fields.
pub fn encode(lat_deg: f64, lon_deg: f64, format: CprFormat) -> CprPosition {
    let i = format.index();
    let dlat = 360.0 / (4.0 * NZ - i);
    let yz = (SCALE * fmod_pos(lat_deg, dlat) / dlat + 0.5).floor();
    let rlat = dlat * (yz / SCALE + (lat_deg / dlat).floor());
    let nl_r = nl(rlat) as f64;
    let dlon = 360.0 / (nl_r - i).max(1.0);
    let xz = (SCALE * fmod_pos(lon_deg, dlon) / dlon + 0.5).floor();
    CprPosition {
        format,
        lat_cpr: (yz as i64).rem_euclid(SCALE as i64) as u32,
        lon_cpr: (xz as i64).rem_euclid(SCALE as i64) as u32,
    }
}

/// Globally decode an even/odd pair into (lat, lon) degrees.
///
/// Fails if the two messages fall in different NL zones (the aircraft
/// crossed a zone boundary between them) — callers then wait for a fresh
/// pair, exactly as dump1090 does.
pub fn decode_global(pair: &CprPair) -> Result<(f64, f64), AdsbError> {
    let cl_e = pair.even.lat_cpr as f64 / SCALE;
    let cl_o = pair.odd.lat_cpr as f64 / SCALE;
    let dlat_e = 360.0 / (4.0 * NZ);
    let dlat_o = 360.0 / (4.0 * NZ - 1.0);

    let j = (59.0 * cl_e - 60.0 * cl_o + 0.5).floor();
    let mut lat_e = dlat_e * (fmod_pos(j, 60.0) + cl_e);
    let mut lat_o = dlat_o * (fmod_pos(j, 59.0) + cl_o);
    if lat_e >= 270.0 {
        lat_e -= 360.0;
    }
    if lat_o >= 270.0 {
        lat_o -= 360.0;
    }
    if nl(lat_e) != nl(lat_o) {
        return Err(AdsbError::CprDecodeFailed);
    }

    let (lat, i, cpr_lon_latest) = match pair.latest {
        CprFormat::Even => (lat_e, 0.0, pair.even.lon_cpr as f64 / SCALE),
        CprFormat::Odd => (lat_o, 1.0, pair.odd.lon_cpr as f64 / SCALE),
    };
    if !(-90.0..=90.0).contains(&lat) {
        return Err(AdsbError::CprDecodeFailed);
    }

    let nl_lat = nl(lat) as f64;
    let ni = (nl_lat - i).max(1.0);
    let dlon = 360.0 / ni;
    let cl_lon_e = pair.even.lon_cpr as f64 / SCALE;
    let cl_lon_o = pair.odd.lon_cpr as f64 / SCALE;
    let m = (cl_lon_e * (nl_lat - 1.0) - cl_lon_o * nl_lat + 0.5).floor();
    let mut lon = dlon * (fmod_pos(m, ni) + cpr_lon_latest);
    if lon >= 180.0 {
        lon -= 360.0;
    }
    Ok((lat, lon))
}

/// Encode a **surface** position (TC 5–8). Surface CPR uses a 90° span
/// instead of 360°, quadrupling resolution (~1.25 m).
pub fn encode_surface(lat_deg: f64, lon_deg: f64, format: CprFormat) -> CprPosition {
    let i = format.index();
    let dlat = 90.0 / (4.0 * NZ - i);
    let yz = (SCALE * fmod_pos(lat_deg, dlat) / dlat + 0.5).floor();
    let rlat = dlat * (yz / SCALE + (lat_deg / dlat).floor());
    let nl_r = nl(rlat) as f64;
    let dlon = 90.0 / (nl_r - i).max(1.0);
    let xz = (SCALE * fmod_pos(lon_deg, dlon) / dlon + 0.5).floor();
    CprPosition {
        format,
        lat_cpr: (yz as i64).rem_euclid(SCALE as i64) as u32,
        lon_cpr: (xz as i64).rem_euclid(SCALE as i64) as u32,
    }
}

/// Locally decode a **surface** position against a reference within a
/// quarter zone (~45 NM). Surface global decode is ambiguous by design
/// (four solutions 90° apart); receivers always use the local form.
pub fn decode_surface_local(
    pos: &CprPosition,
    ref_lat_deg: f64,
    ref_lon_deg: f64,
) -> Result<(f64, f64), AdsbError> {
    let i = pos.format.index();
    let cl = pos.lat_cpr as f64 / SCALE;
    let dlat = 90.0 / (4.0 * NZ - i);
    let j = (ref_lat_deg / dlat).floor() + (fmod_pos(ref_lat_deg, dlat) / dlat - cl + 0.5).floor();
    let lat = dlat * (j + cl);
    if !(-90.0..=90.0).contains(&lat) {
        return Err(AdsbError::CprDecodeFailed);
    }
    let cl_lon = pos.lon_cpr as f64 / SCALE;
    let dlon = 90.0 / (nl(lat) as f64 - i).max(1.0);
    let m =
        (ref_lon_deg / dlon).floor() + (fmod_pos(ref_lon_deg, dlon) / dlon - cl_lon + 0.5).floor();
    let lon = dlon * (m + cl_lon);
    Ok((lat, lon))
}

/// Locally decode a single message against a reference position known to be
/// within half a zone (~180 NM for latitude).
pub fn decode_local(
    pos: &CprPosition,
    ref_lat_deg: f64,
    ref_lon_deg: f64,
) -> Result<(f64, f64), AdsbError> {
    let i = pos.format.index();
    let cl = pos.lat_cpr as f64 / SCALE;
    let dlat = 360.0 / (4.0 * NZ - i);
    let j = (ref_lat_deg / dlat).floor() + (fmod_pos(ref_lat_deg, dlat) / dlat - cl + 0.5).floor();
    let lat = dlat * (j + cl);
    if !(-90.0..=90.0).contains(&lat) {
        return Err(AdsbError::CprDecodeFailed);
    }
    let cl_lon = pos.lon_cpr as f64 / SCALE;
    let dlon = 360.0 / (nl(lat) as f64 - i).max(1.0);
    let m =
        (ref_lon_deg / dlon).floor() + (fmod_pos(ref_lon_deg, dlon) / dlon - cl_lon + 0.5).floor();
    let lon = dlon * (m + cl_lon);
    Ok((lat, lon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nl_reference_values() {
        // Table values from DO-260B.
        assert_eq!(nl(0.0), 59);
        assert_eq!(nl(10.0), 59);
        assert_eq!(nl(10.47047130), 58);
        assert_eq!(nl(40.0), 45);
        assert_eq!(nl(87.0), 2);
        assert_eq!(nl(88.0), 1);
        assert_eq!(nl(-40.0), 45);
    }

    /// The 1090 MHz Riddle's worked global-decode example.
    #[test]
    fn riddle_global_decode_example() {
        // Even: 8D40621D58C382D690C8AC2863A7 → lat_cpr 93000, lon_cpr 51372
        // Odd:  8D40621D58C386435CC412692AD6 → lat_cpr 74158, lon_cpr 50194
        // Expected: lat 52.2572, lon 3.91937 (newest = even).
        let pair = CprPair {
            even: CprPosition {
                format: CprFormat::Even,
                lat_cpr: 93000,
                lon_cpr: 51372,
            },
            odd: CprPosition {
                format: CprFormat::Odd,
                lat_cpr: 74158,
                lon_cpr: 50194,
            },
            latest: CprFormat::Even,
        };
        let (lat, lon) = decode_global(&pair).unwrap();
        assert!((lat - 52.25720).abs() < 1e-4, "lat {lat}");
        assert!((lon - 3.91937).abs() < 1e-4, "lon {lon}");
    }

    #[test]
    fn encode_decode_global_round_trip_berkeley() {
        let (lat, lon) = (37.8716, -122.2727);
        let pair = CprPair {
            even: encode(lat, lon, CprFormat::Even),
            odd: encode(lat, lon, CprFormat::Odd),
            latest: CprFormat::Even,
        };
        let (dlat, dlon) = decode_global(&pair).unwrap();
        assert!((dlat - lat).abs() < 1e-4, "lat {dlat}");
        assert!((dlon - lon).abs() < 1e-4, "lon {dlon}");
    }

    #[test]
    fn local_decode_round_trip() {
        let (lat, lon) = (37.95, -122.10);
        for fmt in [CprFormat::Even, CprFormat::Odd] {
            let pos = encode(lat, lon, fmt);
            let (dlat, dlon) = decode_local(&pos, 37.8716, -122.2727).unwrap();
            assert!((dlat - lat).abs() < 1e-4, "{fmt:?} lat {dlat}");
            assert!((dlon - lon).abs() < 1e-4, "{fmt:?} lon {dlon}");
        }
    }

    #[test]
    fn southern_hemisphere_round_trip() {
        let (lat, lon) = (-33.8688, 151.2093); // Sydney
        let pair = CprPair {
            even: encode(lat, lon, CprFormat::Even),
            odd: encode(lat, lon, CprFormat::Odd),
            latest: CprFormat::Odd,
        };
        let (dlat, dlon) = decode_global(&pair).unwrap();
        assert!((dlat - lat).abs() < 1e-4, "lat {dlat}");
        assert!((dlon - lon).abs() < 1e-4, "lon {dlon}");
    }

    #[test]
    fn format_bit_round_trip() {
        assert_eq!(CprFormat::from_bit(CprFormat::Even.bit()), CprFormat::Even);
        assert_eq!(CprFormat::from_bit(CprFormat::Odd.bit()), CprFormat::Odd);
    }

    #[test]
    fn encoded_fields_fit_17_bits() {
        for lat in [-80.0, -10.0, 0.0, 37.87, 80.0] {
            for lon in [-179.0, -122.0, 0.0, 150.0, 179.9] {
                for fmt in [CprFormat::Even, CprFormat::Odd] {
                    let p = encode(lat, lon, fmt);
                    assert!(p.lat_cpr < 131_072);
                    assert!(p.lon_cpr < 131_072);
                }
            }
        }
    }

    #[test]
    fn surface_local_round_trip() {
        // A taxiing aircraft at SFO, reference = the airport.
        let (lat, lon) = (37.6213, -122.3790);
        for fmt in [CprFormat::Even, CprFormat::Odd] {
            let pos = encode_surface(lat, lon, fmt);
            let (dlat, dlon) = decode_surface_local(&pos, 37.615, -122.39).unwrap();
            assert!((dlat - lat).abs() < 3e-5, "{fmt:?} lat {dlat}");
            assert!((dlon - lon).abs() < 3e-5, "{fmt:?} lon {dlon}");
        }
    }

    #[test]
    fn surface_resolution_finer_than_airborne() {
        // Same point, both encodings: the surface grid is 4× finer, so a
        // small offset distinguishable on the surface grid may alias on
        // the airborne one. Check the zone sizes directly.
        let p = encode_surface(37.0, -122.0, CprFormat::Even);
        let (lat1, _) = decode_surface_local(&p, 37.0, -122.0).unwrap();
        let dlat_surface = 90.0 / 60.0 / 131_072.0;
        assert!((lat1 - 37.0).abs() <= 2.0 * dlat_surface + 1e-9);
    }

    proptest! {
        /// Global decode of a same-position even/odd pair recovers the
        /// position to CPR resolution (~5.1 m ≈ 1e-4°) at mid latitudes.
        #[test]
        fn global_round_trip(lat in -60.0f64..60.0, lon in -179.0f64..179.0) {
            let pair = CprPair {
                even: encode(lat, lon, CprFormat::Even),
                odd: encode(lat, lon, CprFormat::Odd),
                latest: CprFormat::Even,
            };
            // A pair straddling an NL boundary may legitimately fail.
            if let Ok((dlat, dlon)) = decode_global(&pair) {
                prop_assert!((dlat - lat).abs() < 5e-4, "lat {} vs {}", dlat, lat);
                prop_assert!((dlon - lon).abs() < 5e-4, "lon {} vs {}", dlon, lon);
            }
        }

        /// Local decode with a nearby reference recovers the position.
        #[test]
        fn local_round_trip(
            lat in -60.0f64..60.0,
            lon in -170.0f64..170.0,
            dlat in -0.3f64..0.3,
            dlon in -0.3f64..0.3,
        ) {
            let pos = encode(lat, lon, CprFormat::Odd);
            let (rlat, rlon) = (lat + dlat, lon + dlon);
            let (got_lat, got_lon) = decode_local(&pos, rlat, rlon).unwrap();
            prop_assert!((got_lat - lat).abs() < 5e-4);
            prop_assert!((got_lon - lon).abs() < 5e-4);
        }
    }
}
