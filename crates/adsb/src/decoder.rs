//! A dump1090-style scanning decoder: find preambles in raw IQ, slice bits,
//! check parity, emit messages.

use crate::frame::{AdsbFrame, ModeSFrame, ShortSquitter, DF_ALL_CALL, DF_EXTENDED_SQUITTER};
use crate::ppm::{self, FRAME_SAMPLES, SHORT_FRAME_SAMPLES};
use crate::{AdsbError, SAMPLE_RATE_HZ};
use aircal_dsp::corr::find_peaks_into;
use aircal_dsp::Cplx;
use serde::{Deserialize, Serialize};

/// Preamble correlation with a power gate — the decoder's scan fast path.
///
/// Produces the same values as
/// `normalized_correlation(iq, &ppm::preamble_template())` at every lag
/// that could reach `threshold`, and writes `0.0` at lags provably below
/// it. Sample magnitudes are computed once for the whole capture and
/// reused for both the running window energy and the gate.
///
/// The gate is the Cauchy–Schwarz bound: with the four unit preamble
/// pulses as template, `|Σ_pulses s|² ≤ 4·Σ_pulses |s|²`, so
/// `corr² ≤ (Σ_pulses |s|²) / w_energy`. When that bound is already
/// below `threshold²`, the exact correlation (4 complex adds, a sqrt and
/// a divide per lag) is skipped. Gated lags can never enter the peak set
/// (their true value is below threshold too), and since every reported
/// candidate's own value is exact and neighbors' true values are below
/// it, the resulting peak list is **identical** to the ungated scan —
/// the gate changes throughput, not decodes.
pub fn gated_preamble_correlation(iq: &[Cplx], threshold: f64) -> Vec<f64> {
    let mut mags = Vec::new();
    let mut out = Vec::new();
    gated_preamble_correlation_into(iq, threshold, &mut mags, &mut out);
    out
}

/// [`gated_preamble_correlation`] into caller-owned buffers: `mags` holds
/// the per-sample magnitudes, `out` the gated correlation. Both are
/// cleared and refilled; reusing them keeps the scan loop allocation-free.
pub fn gated_preamble_correlation_into(
    iq: &[Cplx],
    threshold: f64,
    mags: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    out.clear();
    let m = ppm::PREAMBLE_CHIPS;
    if iq.len() < m {
        return;
    }
    let kernels = aircal_dsp::kernels();
    mags.resize(iq.len(), 0.0);
    (kernels.norm_sq_map)(iq, mags);
    // Canonical lane reduction over the template yields exactly 4.0 (one
    // unit pulse per contributing lane), so the closed form stays
    // bit-identical to `normalized_correlation`'s `energy(template)`.
    let t_energy = ppm::PREAMBLE_PULSES.len() as f64;
    let thr_sq = threshold * threshold;
    let n = iq.len() - m + 1;
    // Lane-reduced like the ungated scan's `energy(&signal[..m])`: the
    // per-element values are identical (`norm_sq_map` output), and the
    // lane assignment and tree match, so the two inits agree bitwise.
    let mut w_energy: f64 = (kernels.sum_f64)(&mags[..m]);
    for i in 0..n {
        let pulse_sum: f64 = ppm::PREAMBLE_PULSES.iter().map(|&k| mags[i + k]).sum();
        if pulse_sum < thr_sq * w_energy {
            out.push(0.0);
        } else {
            // The exact value must match the ungated scan bit-for-bit, so
            // it runs the same matched-filter kernel over the full
            // 16-chip template rather than the 4-pulse shortcut.
            let acc = (kernels.cdot_conj)(&iq[i..i + m], &ppm::PREAMBLE_TEMPLATE);
            let denom = (t_energy * w_energy).sqrt();
            out.push(if denom < 1e-30 { 0.0 } else { acc.abs() / denom });
        }
        if i + m < iq.len() {
            w_energy += mags[i + m] - mags[i];
            if w_energy < 0.0 {
                w_energy = 0.0;
            }
        }
    }
}

/// Decoder tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Normalized preamble-correlation threshold in (0, 1]; dump1090's
    /// default detector corresponds to roughly 0.60 here.
    pub preamble_threshold: f64,
    /// Candidate frames whose weakest bit decision falls below this
    /// confidence are attempted anyway (CRC is the final arbiter), but the
    /// value is reported so callers can study marginal decodes.
    pub min_reported_confidence: f64,
    /// Maximum number of low-confidence bits to try flipping when the CRC
    /// fails (dump1090's `--fix` behaviour). 0 disables repair; values
    /// above 2 are clamped — beyond that the false-decode risk outweighs
    /// the gain, as dump1090's authors found.
    pub max_repaired_bits: u8,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            preamble_threshold: 0.60,
            min_reported_confidence: 0.0,
            max_repaired_bits: 1,
        }
    }
}

/// One successfully decoded message with its PHY metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedMessage {
    /// The parsed frame (short DF11 or extended DF17).
    pub frame: ModeSFrame,
    /// Sample index of the preamble start within the scanned capture.
    pub sample_index: usize,
    /// Receive time in seconds (capture start time + sample offset).
    pub time_s: f64,
    /// RSSI in dBFS (mean pulse power relative to full scale).
    pub rssi_dbfs: f64,
    /// Weakest bit decision's confidence, [0, 1].
    pub min_confidence: f64,
    /// How many bits the CRC-guided repair flipped (0 = clean decode).
    pub repaired_bits: u8,
}

/// Reusable working memory for [`Decoder::scan_with`]. One instance per
/// worker thread; every buffer is cleared and refilled on use, so a warm
/// scratch makes repeated scans allocation-free.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Per-sample magnitudes for the gated correlation.
    mags: Vec<f64>,
    /// Gated preamble correlation at each lag.
    corr: Vec<f64>,
    /// Candidate preamble peak indices.
    peaks: Vec<usize>,
    /// Demodulated bits/confidences for the frame under test.
    demod: ppm::Demodulated,
    /// Bit positions ranked by decision confidence (repair ordering).
    order: Vec<usize>,
    /// Candidate byte string the CRC-guided repair mutates.
    bytes: Vec<u8>,
}

/// The scanning decoder. Stateless between captures; cheap to construct.
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    config: DecoderConfig,
}

impl Decoder {
    /// Create a decoder with the given configuration.
    pub fn new(config: DecoderConfig) -> Self {
        Self { config }
    }

    /// Scan a capture (complex baseband at 2 Msps) starting at absolute
    /// time `capture_start_s`, returning every frame that passes parity.
    /// Thin allocating wrapper over [`Decoder::scan_with`].
    pub fn scan(&self, iq: &[Cplx], capture_start_s: f64) -> Vec<DecodedMessage> {
        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        self.scan_with(iq, capture_start_s, &mut scratch, &mut out);
        out
    }

    /// [`Decoder::scan`] with caller-owned working memory: intermediate
    /// buffers live in `scratch` and decoded messages land in `out`
    /// (cleared first). Reusing both across captures keeps the steady-state
    /// scan loop allocation-free. Output is identical to [`Decoder::scan`].
    pub fn scan_with(
        &self,
        iq: &[Cplx],
        capture_start_s: f64,
        scratch: &mut DecodeScratch,
        out: &mut Vec<DecodedMessage>,
    ) {
        let _span = aircal_obs::span!("preamble_scan");
        out.clear();
        if iq.len() < SHORT_FRAME_SAMPLES {
            return;
        }
        gated_preamble_correlation_into(
            iq,
            self.config.preamble_threshold,
            &mut scratch.mags,
            &mut scratch.corr,
        );
        // Candidate preambles: peaks far enough apart that two hits can't
        // be the same burst (half a short frame).
        find_peaks_into(
            &scratch.corr,
            self.config.preamble_threshold,
            SHORT_FRAME_SAMPLES / 2,
            &mut scratch.peaks,
        );
        let peaks = std::mem::take(&mut scratch.peaks);
        for &idx in &peaks {
            if idx + SHORT_FRAME_SAMPLES > iq.len() {
                continue;
            }
            if let Ok(msg) = self.try_decode_at_with(iq, idx, capture_start_s, scratch) {
                out.push(msg);
            }
        }
        scratch.peaks = peaks;
    }

    /// Attempt to decode a frame whose preamble starts at `idx`: slice the
    /// first 5 bits to learn the downlink format (as dump1090 does), pick
    /// the 56- or 112-bit length accordingly, then parity-check with
    /// CRC-guided repair of up to `max_repaired_bits` low-confidence bits.
    pub fn try_decode_at(
        &self,
        iq: &[Cplx],
        idx: usize,
        capture_start_s: f64,
    ) -> Result<DecodedMessage, AdsbError> {
        let mut scratch = DecodeScratch::default();
        self.try_decode_at_with(iq, idx, capture_start_s, &mut scratch)
    }

    /// [`Decoder::try_decode_at`] using caller-owned working memory; the
    /// allocation-free core the scan loop runs on.
    pub fn try_decode_at_with(
        &self,
        iq: &[Cplx],
        idx: usize,
        capture_start_s: f64,
        scratch: &mut DecodeScratch,
    ) -> Result<DecodedMessage, AdsbError> {
        let head = iq
            .get(idx..)
            .filter(|s| s.len() >= SHORT_FRAME_SAMPLES)
            .ok_or(AdsbError::InvalidField("capture too short for frame"))?;
        if !ppm::demodulate_bits_into(head, 5, &mut scratch.demod) {
            return Err(AdsbError::InvalidField("demod failed"));
        }
        let df = scratch.demod.bytes[0] >> 3;

        let (n_bits, want) = match df {
            DF_ALL_CALL => (56usize, SHORT_FRAME_SAMPLES),
            DF_EXTENDED_SQUITTER => (112usize, FRAME_SAMPLES),
            other => return Err(AdsbError::UnsupportedFormat(other)),
        };
        let slice = iq
            .get(idx..idx + want)
            .ok_or(AdsbError::InvalidField("capture too short for frame"))?;
        if !ppm::demodulate_bits_into(slice, n_bits, &mut scratch.demod) {
            return Err(AdsbError::InvalidField("demod failed"));
        }
        let repaired_bits =
            self.repair_into(&scratch.demod, &mut scratch.order, &mut scratch.bytes)?;
        let frame = match df {
            DF_ALL_CALL => {
                let mut b = [0u8; 7];
                b.copy_from_slice(&scratch.bytes);
                ModeSFrame::Short(ShortSquitter::decode(&b)?)
            }
            _ => {
                let mut b = [0u8; 14];
                b.copy_from_slice(&scratch.bytes);
                ModeSFrame::Extended(AdsbFrame::decode(&b)?)
            }
        };
        Ok(DecodedMessage {
            frame,
            sample_index: idx,
            time_s: capture_start_s + idx as f64 / SAMPLE_RATE_HZ,
            rssi_dbfs: scratch.demod.rssi_dbfs(),
            min_confidence: scratch.demod.min_confidence(),
            repaired_bits,
        })
    }

    /// dump1090-style bit repair: if parity fails, flip the one (or pair
    /// of) lowest-confidence bit decisions and re-check. Only the weakest
    /// few candidates are tried, keeping the extra false-accept
    /// probability negligible against CRC-24.
    fn repair_into(
        &self,
        demod: &ppm::Demodulated,
        order: &mut Vec<usize>,
        bytes: &mut Vec<u8>,
    ) -> Result<u8, AdsbError> {
        let verify = |bytes: &[u8]| -> bool {
            match bytes.len() {
                7 => {
                    let mut b = [0u8; 7];
                    b.copy_from_slice(bytes);
                    crate::crc::verify_short_frame(&b)
                }
                14 => {
                    let mut b = [0u8; 14];
                    b.copy_from_slice(bytes);
                    crate::crc::verify_frame(&b)
                }
                _ => false,
            }
        };
        let reset = |bytes: &mut Vec<u8>| {
            bytes.clear();
            bytes.extend_from_slice(&demod.bytes);
        };
        reset(bytes);
        if verify(bytes) {
            return Ok(0);
        }
        let budget = self.config.max_repaired_bits.min(2);
        if budget == 0 {
            return Err(AdsbError::BadParity);
        }
        // Rank bit positions by ascending decision confidence.
        order.clear();
        order.extend(0..demod.confidences.len());
        order.sort_by(|&a, &b| {
            demod.confidences[a]
                .partial_cmp(&demod.confidences[b])
                .unwrap()
        });
        let flip = |bytes: &mut [u8], bit: usize| bytes[bit / 8] ^= 1 << (7 - bit % 8);

        // Single-bit repair over the 8 weakest decisions.
        for &b in order.iter().take(8) {
            reset(bytes);
            flip(bytes, b);
            if verify(bytes) {
                return Ok(1);
            }
        }
        if budget >= 2 {
            // Two-bit repair over the 6 weakest decisions (15 pairs).
            let pl = order.len().min(6);
            for i in 0..pl {
                for j in i + 1..pl {
                    let (b1, b2) = (order[i], order[j]);
                    reset(bytes);
                    flip(bytes, b1);
                    flip(bytes, b2);
                    if verify(bytes) {
                        return Ok(2);
                    }
                }
            }
        }
        Err(AdsbError::BadParity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpr::{self, CprFormat};
    use crate::icao::IcaoAddress;
    use crate::me::MePayload;
    use aircal_dsp::corr::find_peaks;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn test_frame(icao: u32) -> AdsbFrame {
        AdsbFrame::new(
            IcaoAddress::new(icao),
            MePayload::AirbornePosition {
                altitude_ft: 30_000.0,
                cpr: cpr::encode(37.9, -122.2, CprFormat::Even),
            },
        )
    }

    fn add_noise(iq: &mut [Cplx], sigma: f64, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for s in iq.iter_mut() {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = sigma * (-2.0 * u1.ln()).sqrt();
            *s += Cplx::from_polar(r, core::f64::consts::TAU * u2);
        }
    }

    #[test]
    fn finds_single_burst_in_capture() {
        let frame = test_frame(0xABC123);
        let burst = ppm::modulate(&frame.encode(), 0.5, 1.0);
        let mut capture = vec![Cplx::ZERO; 2_000];
        capture[700..700 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.02, 1);

        let msgs = Decoder::default().scan(&capture, 10.0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].frame, ModeSFrame::Extended(frame));
        assert_eq!(msgs[0].sample_index, 700);
        assert!((msgs[0].time_s - (10.0 + 700.0 / 2e6)).abs() < 1e-9);
        assert!((msgs[0].rssi_dbfs - (-6.02)).abs() < 1.0, "rssi {}", msgs[0].rssi_dbfs);
    }

    #[test]
    fn finds_multiple_bursts_from_different_aircraft() {
        let f1 = test_frame(0x111111);
        let f2 = test_frame(0x222222);
        let mut capture = vec![Cplx::ZERO; 4_000];
        capture[500..500 + FRAME_SAMPLES]
            .copy_from_slice(&ppm::modulate(&f1.encode(), 0.4, 0.0));
        capture[2_500..2_500 + FRAME_SAMPLES]
            .copy_from_slice(&ppm::modulate(&f2.encode(), 0.6, 2.0));
        add_noise(&mut capture, 0.02, 2);

        let msgs = Decoder::default().scan(&capture, 0.0);
        assert_eq!(msgs.len(), 2);
        let icaos: Vec<u32> = msgs.iter().map(|m| m.frame.icao().value()).collect();
        assert!(icaos.contains(&0x111111) && icaos.contains(&0x222222));
    }

    /// The power gate is an upper bound, never an approximation: every lag
    /// whose true correlation reaches the threshold must carry the exact
    /// ungated value, and the resulting peak set must be identical.
    #[test]
    fn gated_scan_matches_ungated_correlation() {
        use aircal_dsp::corr::normalized_correlation;
        let thr = DecoderConfig::default().preamble_threshold;
        for seed in 0..4u64 {
            let mut capture = vec![Cplx::ZERO; 6_000];
            let frame = test_frame(0x0F00 + seed as u32);
            let burst = ppm::modulate(&frame.encode(), 0.5, 0.7);
            capture[1_000..1_000 + FRAME_SAMPLES].copy_from_slice(&burst);
            capture[4_000..4_000 + FRAME_SAMPLES].copy_from_slice(&burst);
            add_noise(&mut capture, 0.05, seed);

            let gated = gated_preamble_correlation(&capture, thr);
            let exact = normalized_correlation(&capture, &ppm::preamble_template());
            assert_eq!(gated.len(), exact.len());
            let mut skipped = 0usize;
            for (i, (&g, &e)) in gated.iter().zip(&exact).enumerate() {
                if g == 0.0 && e != 0.0 {
                    // Gated lag: the true value must indeed be sub-threshold.
                    assert!(e < thr, "lag {i} gated but true corr {e} >= {thr}");
                    skipped += 1;
                } else {
                    assert_eq!(g, e, "lag {i}: gated {g} != exact {e}");
                }
            }
            assert!(skipped > gated.len() / 2, "gate skipped only {skipped} lags");
            let peaks_gated = find_peaks(&gated, thr, SHORT_FRAME_SAMPLES / 2);
            let peaks_exact = find_peaks(&exact, thr, SHORT_FRAME_SAMPLES / 2);
            assert_eq!(peaks_gated, peaks_exact, "seed {seed}");
        }
    }

    #[test]
    fn pure_noise_yields_nothing() {
        let mut capture = vec![Cplx::ZERO; 10_000];
        add_noise(&mut capture, 0.1, 3);
        let msgs = Decoder::default().scan(&capture, 0.0);
        assert!(msgs.is_empty(), "got {} phantom messages", msgs.len());
    }

    #[test]
    fn weak_burst_below_noise_not_decoded() {
        let frame = test_frame(0xDEAD01);
        let burst = ppm::modulate(&frame.encode(), 0.01, 0.0); // −40 dBFS
        let mut capture = vec![Cplx::ZERO; 2_000];
        capture[600..600 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.1, 4); // noise 20 dB above the signal
        let msgs = Decoder::default().scan(&capture, 0.0);
        assert!(msgs.is_empty());
    }

    #[test]
    fn decode_survives_moderate_noise() {
        // SNR ≈ 14 dB: pulse amplitude 0.5, noise σ 0.1.
        let frame = test_frame(0xBEEF42);
        let burst = ppm::modulate(&frame.encode(), 0.5, 0.7);
        let mut capture = vec![Cplx::ZERO; 1_000];
        capture[300..300 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.1, 5);
        let msgs = Decoder::default().scan(&capture, 0.0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].frame, ModeSFrame::Extended(frame));
        assert!(msgs[0].min_confidence < 1.0);
    }

    #[test]
    fn short_capture_is_fine() {
        assert!(Decoder::default().scan(&[Cplx::ZERO; 10], 0.0).is_empty());
    }

    /// Corrupt one data bit so its decision flips with near-zero
    /// confidence: the CRC-guided repair must recover the frame and report
    /// one repaired bit.
    fn corrupt_bit(burst: &mut [Cplx], bit: usize) {
        let base = crate::ppm::PREAMBLE_CHIPS + 2 * bit;
        // Make the wrong chip marginally stronger than the right one.
        let (a, b) = (burst[base], burst[base + 1]);
        if a.norm_sq() > b.norm_sq() {
            burst[base] = a.scale(0.50);
            burst[base + 1] = a.scale(0.51);
        } else {
            burst[base] = b.scale(0.51);
            burst[base + 1] = b.scale(0.50);
        }
    }

    #[test]
    fn single_bit_repair_recovers_frame() {
        let frame = test_frame(0xF1D0A1);
        let mut burst = ppm::modulate(&frame.encode(), 0.5, 0.3);
        corrupt_bit(&mut burst, 37);
        let mut capture = vec![Cplx::ZERO; 1_000];
        capture[400..400 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.01, 2);

        let msgs = Decoder::default().scan(&capture, 0.0);
        assert_eq!(msgs.len(), 1, "repair failed");
        assert_eq!(msgs[0].frame, ModeSFrame::Extended(frame));
        assert_eq!(msgs[0].repaired_bits, 1);
    }

    #[test]
    fn two_bit_repair_requires_budget() {
        let frame = test_frame(0x2B17F1);
        let mut burst = ppm::modulate(&frame.encode(), 0.5, 0.0);
        corrupt_bit(&mut burst, 20);
        corrupt_bit(&mut burst, 75);
        let mut capture = vec![Cplx::ZERO; 1_000];
        capture[300..300 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.005, 7);

        let one_bit = Decoder::new(DecoderConfig {
            max_repaired_bits: 1,
            ..Default::default()
        });
        assert!(one_bit.scan(&capture, 0.0).is_empty(), "1-bit budget must fail");

        let two_bit = Decoder::new(DecoderConfig {
            max_repaired_bits: 2,
            ..Default::default()
        });
        let msgs = two_bit.scan(&capture, 0.0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].frame, ModeSFrame::Extended(frame));
        assert_eq!(msgs[0].repaired_bits, 2);
    }

    #[test]
    fn repair_disabled_rejects_corruption() {
        let frame = test_frame(0x3C4D5E);
        let mut burst = ppm::modulate(&frame.encode(), 0.5, 0.0);
        corrupt_bit(&mut burst, 50);
        let mut capture = vec![Cplx::ZERO; 800];
        capture[200..200 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.005, 8);
        let strict = Decoder::new(DecoderConfig {
            max_repaired_bits: 0,
            ..Default::default()
        });
        assert!(strict.scan(&capture, 0.0).is_empty());
    }

    #[test]
    fn clean_decodes_report_zero_repairs() {
        let frame = test_frame(0x456789);
        let burst = ppm::modulate(&frame.encode(), 0.5, 0.0);
        let mut capture = vec![Cplx::ZERO; 800];
        capture[100..100 + FRAME_SAMPLES].copy_from_slice(&burst);
        add_noise(&mut capture, 0.01, 2);
        let msgs = Decoder::default().scan(&capture, 0.0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].repaired_bits, 0);
    }

    /// Repair must improve decode probability at marginal SNR without
    /// manufacturing frames from pure noise.
    #[test]
    fn repair_helps_at_marginal_snr_without_false_positives() {
        let frame = test_frame(0x7E57AB);
        let burst = ppm::modulate(&frame.encode(), 0.55, 0.0); // ~11.8 dB SNR vs σ=0.1
        let strict = Decoder::new(DecoderConfig {
            max_repaired_bits: 0,
            ..Default::default()
        });
        let fixer = Decoder::new(DecoderConfig {
            max_repaired_bits: 2,
            ..Default::default()
        });
        let (mut ok_strict, mut ok_fix) = (0, 0);
        for trial in 0..60u64 {
            let mut capture = vec![Cplx::ZERO; 600];
            capture[150..150 + FRAME_SAMPLES].copy_from_slice(&burst);
            add_noise(&mut capture, 0.1, 1_000 + trial);
            ok_strict += usize::from(!strict.scan(&capture, 0.0).is_empty());
            let fixed = fixer.scan(&capture, 0.0);
            if let Some(m) = fixed.first() {
                assert_eq!(m.frame.icao().value(), 0x7E57AB, "false decode");
                ok_fix += 1;
            }
        }
        assert!(
            ok_fix > ok_strict,
            "repair should help: strict {ok_strict}, fix {ok_fix}"
        );

        // Pure noise must stay silent even with repair enabled.
        for trial in 0..20u64 {
            let mut noise = vec![Cplx::ZERO; 2_000];
            add_noise(&mut noise, 0.1, 5_000 + trial);
            assert!(fixer.scan(&noise, 0.0).is_empty(), "phantom decode from noise");
        }
    }

    #[test]
    fn burst_at_capture_edge_is_skipped_not_panicking() {
        let frame = test_frame(0xC0FFEE);
        let burst = ppm::modulate(&frame.encode(), 0.5, 0.0);
        let mut capture = vec![Cplx::ZERO; FRAME_SAMPLES + 100];
        // Burst starts 50 samples before the end-minus-frame boundary: fits.
        capture[100..100 + FRAME_SAMPLES].copy_from_slice(&burst);
        let msgs = Decoder::default().scan(&capture, 0.0);
        assert_eq!(msgs.len(), 1);
    }
}
