//! Virtual time, typed campaign events, and the deterministic queue.
//!
//! Events are ordered by `(virtual_time, tie_break, id)`. The tie-break
//! is a per-event value from [`derive_stream_seed`] over the event id,
//! so events scheduled for the same tick interleave pseudo-randomly —
//! but identically for identical campaign seeds — rather than in
//! insertion order. That makes same-tick ordering a property of the
//! *seed*, not of incidental push order, and the unique id breaks the
//! (astronomically unlikely) tie-break collision so total order is
//! always strict.

use aircal_dsp::derive_stream_seed;
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Salt folded into the campaign seed for the tie-break stream, keeping
/// it decorrelated from the measurement and fault streams.
const TIE_BREAK_SALT: u64 = 0x5449_4542_5245_414B; // "TIEBREAK"

/// The measurement task kinds a campaign schedules, one per signal of
/// opportunity the calibration pipeline consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Capture a 1090 MHz window and decode ADS-B beacons.
    AdsbWindow,
    /// Sweep the broadcast TV band and probe pilot power.
    TvSweep,
    /// Scan cellular downlink channels.
    CellScan,
}

impl TaskKind {
    /// Every task kind, in scheduling-lattice order.
    pub const ALL: [TaskKind; 3] = [TaskKind::AdsbWindow, TaskKind::TvSweep, TaskKind::CellScan];

    /// Bands per measurement payload (frequency-profile resolution).
    pub const BANDS: usize = 8;

    /// Stable index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            TaskKind::AdsbWindow => 0,
            TaskKind::TvSweep => 1,
            TaskKind::CellScan => 2,
        }
    }

    /// Virtual ticks the node spends capturing before the report can
    /// leave the antenna: an ADS-B window dwells longest, a cell scan
    /// is a quick retune.
    pub fn duration_ticks(self) -> u64 {
        match self {
            TaskKind::AdsbWindow => 3,
            TaskKind::TvSweep => 2,
            TaskKind::CellScan => 1,
        }
    }

    /// Short label used in event-log lines and metric names.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::AdsbWindow => "adsb",
            TaskKind::TvSweep => "tv",
            TaskKind::CellScan => "cells",
        }
    }
}

/// What an event does when it fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The cloud scheduler wakes and assigns up to a round's capacity of
    /// measurement tasks across the fleet.
    ScheduleRound,
    /// A measurement finished on a node and its report reached the
    /// cloud intact. `seq` is the cloud-assigned per-node dispatch
    /// sequence number; `replay` marks an at-least-once re-delivery (a
    /// duplicated frame or a stale retransmission) that the cloud's
    /// dedup guard must drop.
    TaskComplete {
        node: u32,
        kind: TaskKind,
        seq: u64,
        replay: bool,
    },
    /// A reply reached the cloud but arrived garbled; the cloud discards
    /// it (and knows the attempt is dead, unlike a silent drop).
    DeliveryCorrupt { node: u32, kind: TaskKind, seq: u64 },
    /// The cloud audits everything received since the last round and
    /// walks each node's health ladder.
    AuditRound,
    /// A network partition severs the node subset named by
    /// `CampaignConfig::recovery.partitions[spec]` from the cloud.
    PartitionStart { spec: u32 },
    /// The partition heals; backlogged reports drain from this tick.
    PartitionHeal { spec: u32 },
    /// The cloud process dies, losing all in-memory registry state; it
    /// recovers from the latest snapshot plus the write-ahead journal.
    CloudCrash,
    /// A delayed restart completes: scheduling and audits resume.
    CloudRestart,
    /// Campaign horizon reached: stop processing.
    CampaignEnd,
}

/// One scheduled event. Totally ordered by `(time, tie_break, id)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Virtual tick this event fires at.
    pub time: u64,
    /// Seed-derived same-tick ordering value.
    pub tie_break: u64,
    /// Creation-order id, unique per campaign; final ordering tier.
    pub id: u64,
    pub kind: EventKind,
}

impl SimEvent {
    fn key(&self) -> (u64, u64, u64) {
        (self.time, self.tie_break, self.id)
    }
}

/// Heap entry ordered purely by the event key. Keys are unique (the id
/// tier is), so the `Eq`/`Ord` pair is consistent even though payloads
/// are ignored.
#[derive(Debug, Clone)]
struct QueueEntry(SimEvent);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// The campaign's event queue: a binary min-heap over
/// `(virtual_time, tie_break, id)` with seed-derived tie-breaks.
#[derive(Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
    next_id: u64,
    tie_seed: u64,
}

impl EventQueue {
    pub fn new(campaign_seed: u64) -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_id: 0,
            tie_seed: campaign_seed ^ TIE_BREAK_SALT,
        }
    }

    /// Schedule `kind` at virtual tick `time`; returns the event id.
    /// The tie-break derives from the creation-order id, so same-tick
    /// ordering depends on push order. Use [`EventQueue::push_keyed`]
    /// when ordering must survive extra events being injected.
    pub fn push(&mut self, time: u64, kind: EventKind) -> u64 {
        let key = self.next_id;
        self.push_keyed(time, key, kind)
    }

    /// Schedule `kind` at `time` with a caller-chosen stable key for the
    /// tie-break stream. Two campaigns that schedule the same logical
    /// event under the same key order it identically at its tick even
    /// when one campaign carries extra injected events (duplicates,
    /// replays, backlog re-pushes) — creation-order ids diverge between
    /// such runs, stable keys do not. The unique id still breaks exact
    /// key collisions, so total order stays strict.
    pub fn push_keyed(&mut self, time: u64, key: u64, kind: EventKind) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let tie_break = derive_stream_seed(self.tie_seed, key);
        self.heap.push(Reverse(QueueEntry(SimEvent {
            time,
            tie_break,
            id,
            kind,
        })));
        id
    }

    /// Virtual tick of the next event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.0.time)
    }

    /// Pop every event sharing the earliest virtual tick into `batch`
    /// (cleared first), in heap order. Returns that tick, or `None` if
    /// the queue is empty. Batching at time boundaries is what lets the
    /// engine parallelize payload computation without reordering risk:
    /// the batch's order is fixed before any worker runs.
    pub fn pop_batch(&mut self, batch: &mut Vec<SimEvent>) -> Option<u64> {
        batch.clear();
        let t = self.peek_time()?;
        while self.peek_time() == Some(t) {
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            batch.push(entry.0);
        }
        Some(t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events ever scheduled on this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_tiebreak_then_id_order() {
        let mut q = EventQueue::new(42);
        // Push out of time order, with several sharing tick 5.
        q.push(9, EventKind::AuditRound);
        for _ in 0..6 {
            q.push(5, EventKind::ScheduleRound);
        }
        q.push(1, EventKind::ScheduleRound);

        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(1));
        assert_eq!(batch.len(), 1);

        assert_eq!(q.pop_batch(&mut batch), Some(5));
        assert_eq!(batch.len(), 6, "a batch is every event at that tick");
        let keys: Vec<_> = batch.iter().map(|e| (e.tie_break, e.id)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "same-tick order follows (tie_break, id)");
        // The tie-break stream actually reorders same-tick events away
        // from insertion order (ids 1..=6 here).
        let ids: Vec<u64> = batch.iter().map(|e| e.id).collect();
        assert_ne!(ids, vec![1, 2, 3, 4, 5, 6], "tie-breaks shuffle insertion order");

        assert_eq!(q.pop_batch(&mut batch), Some(9));
        assert_eq!(q.pop_batch(&mut batch), None);
    }

    #[test]
    fn same_seed_queues_replay_identically_and_seeds_differ() {
        let drain = |seed: u64| {
            let mut q = EventQueue::new(seed);
            for i in 0..32u64 {
                q.push(i % 4, EventKind::ScheduleRound);
            }
            let mut out = Vec::new();
            let mut batch = Vec::new();
            while q.pop_batch(&mut batch).is_some() {
                out.extend(batch.iter().map(|e| (e.time, e.tie_break, e.id)));
            }
            out
        };
        assert_eq!(drain(7), drain(7), "identical seeds replay bit-identically");
        assert_ne!(drain(7), drain(8), "the tie-break stream is seed-dependent");
    }
}
