//! The campaign engine: fleet state, event application, and the
//! batch-parallel main loop.
//!
//! # How a campaign runs
//!
//! A campaign is seeded with a fleet of synthetic sensor nodes. Each
//! node has a true frequency profile (a fleet-wide base per task kind,
//! plus a small per-node calibration offset; a seeded fraction of nodes
//! are grossly miscalibrated — the paper's careless volunteers), a
//! [`LinkFaults`] chaos plan derived from the campaign seed, and the
//! real `aircal-net` health ladder. Schedule rounds ask the configured
//! [`Scheduler`] for assignments; every dispatch is judged by
//! [`LinkFaults::attempt_verdict`] (wire) and
//! [`LinkFaults::node_verdict`] (daemon crash/hang) — the *same* fault
//! semantics the threaded transport enforces. Delivered measurements
//! become [`EventKind::TaskComplete`] events after the task's dwell
//! time plus link latency; audit rounds compare fresh profiles against
//! the fleet median, walk each node's [`HealthLadder`], and update a
//! trust score.
//!
//! # Determinism
//!
//! The main loop pops every event at the earliest virtual tick as one
//! batch (heap order — a pure function of queue contents), computes
//! measurement payloads for the batch's completions in parallel with
//! [`par_map`] (each payload a pure function of `(campaign seed, event
//! id, node truth)`), then applies events sequentially in batch order.
//! All stateful RNG draws happen in the apply phase. Worker count can
//! therefore never reorder anything: `workers = 1` and `workers = 8`
//! produce bit-identical event logs, digests, and trust tables.

use crate::event::{EventKind, EventQueue, SimEvent, TaskKind};
use crate::scheduler::{FleetView, NodeView, Scheduler, SchedulerKind};
use aircal_dsp::{derive_stream_seed, par_map};
use aircal_net::{AttemptVerdict, HealthLadder, HealthPolicy, LinkFaults, NodeHealth, NodeVerdict};
use aircal_obs::Obs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stream salts: every independent randomness consumer XORs its own
/// salt into the campaign seed before deriving per-item streams, so no
/// two consumers can ever collide on a stream (see the collision-census
/// regression test over `derive_stream_seed`).
const TRUTH_SALT: u64 = 0x5452_5554_4800_0001; // "TRUTH"
const FAULT_SALT: u64 = 0xFA17_C0DE_0000_0001;
const LINK_SALT: u64 = 0x4C49_4E4B_0000_0001; // "LINK"
const MEAS_SALT: u64 = 0x4D45_4153_5552_4531; // "MEASURE1"

/// FNV-1a offset basis / prime, for the event-log digest chain.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A measurement payload: pure function of `(campaign seed, event id,
/// node truth)`. Safe to compute on any worker thread — it derives its
/// own RNG stream from the event id.
fn measure_payload(meas_seed: u64, event_id: u64, base: &[f64], offset_db: f64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(meas_seed, event_id));
    base.iter()
        .map(|b| {
            // Sum of two uniforms: triangular, sigma ~ 0.4 dB.
            let noise = rng.gen_range(-0.5..0.5) + rng.gen_range(-0.5..0.5);
            b + offset_db + noise
        })
        .collect()
}

/// Seed-derived chaos shaping for the whole fleet. Which nodes are
/// lossy, crashy, corrupting, or miscalibrated is drawn per node from
/// the campaign seed, so two runs of the same config face the same
/// fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultsConfig {
    /// Fraction of nodes with a lossy link.
    pub lossy_fraction: f64,
    /// Total drop probability for lossy nodes (split 70/30 between
    /// request and response drops, mirroring where real losses bite).
    pub drop_probability: f64,
    /// Fraction of nodes whose host daemon crashes after a seeded
    /// number of served requests.
    pub crash_fraction: f64,
    /// Fraction of nodes that garble one seeded wire attempt.
    pub corrupt_fraction: f64,
    /// Fraction of nodes with a gross (+8 dB) calibration error — the
    /// installations the audit rounds exist to catch.
    pub miscalibrated_fraction: f64,
    /// One-way delivery latency, in virtual ticks.
    pub latency_ticks: u64,
}

impl Default for FleetFaultsConfig {
    fn default() -> Self {
        Self {
            lossy_fraction: 0.15,
            drop_probability: 0.35,
            crash_fraction: 0.02,
            corrupt_fraction: 0.02,
            miscalibrated_fraction: 0.05,
            latency_ticks: 1,
        }
    }
}

/// Everything that defines a campaign. Two equal configs replay
/// bit-identically; `workers` is explicitly *not* part of the outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    pub nodes: usize,
    pub seed: u64,
    /// Worker threads for the payload compute phase. Never affects
    /// results — only wall-clock.
    pub workers: usize,
    pub scheduler: SchedulerKind,
    /// Dispatches per schedule round.
    pub capacity_per_round: usize,
    /// Ticks between schedule rounds.
    pub schedule_period: u64,
    /// Ticks between audit rounds.
    pub audit_period: u64,
    /// Ticks before an outstanding dispatch is presumed lost.
    pub timeout_ticks: u64,
    /// Campaign horizon.
    pub max_ticks: u64,
    /// Keep the full event log in the result (tests); the digest is
    /// always computed either way.
    pub record_log: bool,
    pub faults: FleetFaultsConfig,
}

impl CampaignConfig {
    /// Defaults shaped like the paper's deployment sketch: utility
    /// scheduling, an eighth of the fleet dispatched per round, audits
    /// every 50 ticks.
    pub fn paper_default(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            seed,
            workers: 1,
            scheduler: SchedulerKind::UtilityDriven,
            capacity_per_round: (nodes / 8).max(1),
            schedule_period: 5,
            audit_period: 50,
            timeout_ticks: 12,
            max_ticks: 1200,
            record_log: false,
            faults: FleetFaultsConfig::default(),
        }
    }
}

/// Final state of one campaign. `PartialEq` compares *everything*
/// (trust bits, digest, log) — the determinism property tests lean on
/// that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    pub nodes: usize,
    pub scheduler: String,
    /// Events applied (== events scheduled; the queue always drains).
    pub events: u64,
    /// Virtual tick of the last applied batch.
    pub final_tick: u64,
    /// FNV-1a chain over every event-log line, then the final trust
    /// table and health states. The campaign's identity.
    pub digest: String,
    /// First tick at which ≥ 90 % of the fleet had every profile kind
    /// measured at least once; `None` if never reached.
    pub coverage90_tick: Option<u64>,
    /// Nodes with all three profile kinds covered at the end.
    pub covered_nodes: usize,
    pub completed_tasks: u64,
    pub dropped_requests: u64,
    pub dropped_responses: u64,
    pub corrupt_deliveries: u64,
    pub crashed_nodes: usize,
    /// Audit rounds that flagged at least one anomalous profile.
    pub anomaly_flags: u64,
    /// Final health state census, keyed by state name.
    pub health_counts: BTreeMap<String, usize>,
    /// Final per-node trust scores as IEEE-754 bit patterns, indexed by
    /// node id — bit-exact across worker counts by construction.
    pub trust_table: Vec<u64>,
    /// Full event log; empty unless [`CampaignConfig::record_log`].
    pub log: Vec<String>,
}

impl CampaignResult {
    /// Compact, fixture-friendly summary (excludes the trust table body
    /// and log; the digest already covers both).
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        s.push_str(&format!("  \"events\": {},\n", self.events));
        s.push_str(&format!("  \"final_tick\": {},\n", self.final_tick));
        s.push_str(&format!("  \"digest\": \"{}\",\n", self.digest));
        s.push_str(&format!(
            "  \"coverage90_tick\": {},\n",
            match self.coverage90_tick {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            }
        ));
        s.push_str(&format!("  \"covered_nodes\": {},\n", self.covered_nodes));
        s.push_str(&format!("  \"completed_tasks\": {},\n", self.completed_tasks));
        s.push_str(&format!("  \"dropped_requests\": {},\n", self.dropped_requests));
        s.push_str(&format!("  \"dropped_responses\": {},\n", self.dropped_responses));
        s.push_str(&format!("  \"corrupt_deliveries\": {},\n", self.corrupt_deliveries));
        s.push_str(&format!("  \"crashed_nodes\": {},\n", self.crashed_nodes));
        s.push_str(&format!("  \"anomaly_flags\": {},\n", self.anomaly_flags));
        let health: Vec<String> = self
            .health_counts
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v}"))
            .collect();
        s.push_str(&format!("  \"health_counts\": {{\n{}\n  }}\n", health.join(",\n")));
        s.push('}');
        s
    }
}

/// One synthetic sensor node, engine-side.
struct SimNode {
    faults: LinkFaults,
    /// Draws the wire-fault verdicts; stepped only in the sequential
    /// apply phase.
    link_rng: ChaCha8Rng,
    /// Wire attempts made toward this node (indexes burst/corrupt
    /// schedules).
    attempts: u64,
    /// Requests that reached the node's daemon (indexes hang/crash
    /// schedules) — the served counter the threaded service loop keeps.
    served: u64,
    daemon_alive: bool,
    /// True calibration offset, dB (includes the +8 dB miscalibration
    /// for seeded cheaters).
    offset_db: f64,
    ladder: HealthLadder,
    trust: f64,
    /// Cloud-side latest profile mean per kind.
    profile_mean: [Option<f64>; 3],
    /// Kinds refreshed since the last audit round.
    fresh: [bool; 3],
    dispatched_since_audit: u32,
    completed_since_audit: u32,
    /// Kinds ever completed (coverage accounting).
    covered: [bool; 3],
}

struct Campaign<'a> {
    cfg: &'a CampaignConfig,
    obs: &'a Obs,
    queue: EventQueue,
    scheduler: Box<dyn Scheduler>,
    policy: HealthPolicy,
    base: [[f64; TaskKind::BANDS]; 3],
    nodes: Vec<SimNode>,
    views: Vec<NodeView>,
    digest: u64,
    log: Vec<String>,
    events_applied: u64,
    final_tick: u64,
    ended: bool,
    covered_count: usize,
    coverage90_tick: Option<u64>,
    completed_tasks: u64,
    dropped_requests: u64,
    dropped_responses: u64,
    corrupt_deliveries: u64,
    crashed_nodes: usize,
    anomaly_flags: u64,
}

impl<'a> Campaign<'a> {
    fn new(cfg: &'a CampaignConfig, obs: &'a Obs) -> Self {
        let seed = cfg.seed;
        let mut truth_rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ TRUTH_SALT, 0));
        let mut base = [[0.0f64; TaskKind::BANDS]; 3];
        for kind in &mut base {
            for band in kind.iter_mut() {
                *band = -85.0 + 45.0 * truth_rng.gen_range(0.0..1.0);
            }
        }

        let f = &cfg.faults;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes as u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ FAULT_SALT, i));
            // Fixed draw order keeps each node's fate a function of its
            // stream alone.
            let offset = rng.gen_range(-1.0..1.0);
            let lossy = rng.gen_range(0.0..1.0) < f.lossy_fraction;
            let crashy = rng.gen_range(0.0..1.0) < f.crash_fraction;
            let corrupting = rng.gen_range(0.0..1.0) < f.corrupt_fraction;
            let miscal = rng.gen_range(0.0..1.0) < f.miscalibrated_fraction;
            let crash_after = 2 + (rng.gen_range(0.0..1.0) * 30.0) as u64;
            let corrupt_idx = (rng.gen_range(0.0..1.0) * 8.0) as u64;
            let faults = LinkFaults {
                request_drop: if lossy { f.drop_probability * 0.7 } else { 0.0 },
                response_drop: if lossy { f.drop_probability * 0.3 } else { 0.0 },
                latency_ms: f.latency_ticks,
                burst_outages: Vec::new(),
                crash_after: if crashy { Some(crash_after) } else { None },
                hang_on: Vec::new(),
                corrupt_on: if corrupting { vec![corrupt_idx] } else { Vec::new() },
            };
            nodes.push(SimNode {
                faults,
                link_rng: ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ LINK_SALT, i)),
                attempts: 0,
                served: 0,
                daemon_alive: true,
                offset_db: offset + if miscal { 8.0 } else { 0.0 },
                ladder: HealthLadder::default(),
                trust: 0.5,
                profile_mean: [None; 3],
                fresh: [false; 3],
                dispatched_since_audit: 0,
                completed_since_audit: 0,
                covered: [false; 3],
            });
        }
        let views = vec![NodeView::fresh(); cfg.nodes];

        Self {
            cfg,
            obs,
            queue: EventQueue::new(seed),
            scheduler: cfg.scheduler.build(),
            policy: HealthPolicy::default(),
            base,
            nodes,
            views,
            digest: FNV_OFFSET,
            log: Vec::new(),
            events_applied: 0,
            final_tick: 0,
            ended: false,
            covered_count: 0,
            coverage90_tick: None,
            completed_tasks: 0,
            dropped_requests: 0,
            dropped_responses: 0,
            corrupt_deliveries: 0,
            crashed_nodes: 0,
            anomaly_flags: 0,
        }
    }

    fn log_line(&mut self, line: String) {
        self.digest = fnv1a(self.digest, line.as_bytes());
        self.digest = fnv1a(self.digest, b"\n");
        if self.cfg.record_log {
            self.log.push(line);
        }
    }

    /// Compute payloads for every `TaskComplete` in the batch, possibly
    /// in parallel. Results are aligned to batch positions; ordering is
    /// fixed by the batch itself, so worker count is invisible. The
    /// closure captures only immutable fleet truth — never the
    /// scheduler or any RNG state.
    fn compute_payloads(&self, batch: &[SimEvent]) -> Vec<Option<Vec<f64>>> {
        let completes: Vec<(usize, u32, TaskKind, u64)> = batch
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| match ev.kind {
                EventKind::TaskComplete { node, kind } => Some((i, node, kind, ev.id)),
                _ => None,
            })
            .collect();
        let workers = self.cfg.workers.max(1);
        let meas_seed = self.cfg.seed ^ MEAS_SALT;
        let base = &self.base;
        let nodes = &self.nodes;
        let compute = move |&(bi, node, kind, id): &(usize, u32, TaskKind, u64)| {
            let payload = measure_payload(
                meas_seed,
                id,
                &base[kind.index()],
                nodes[node as usize].offset_db,
            );
            (bi, payload)
        };
        let computed: Vec<(usize, Vec<f64>)> = if workers >= 2 && completes.len() >= 2 {
            par_map(&completes, workers, |_, item| compute(item))
        } else {
            completes.iter().map(compute).collect()
        };
        let mut out: Vec<Option<Vec<f64>>> = vec![None; batch.len()];
        for (bi, payload) in computed {
            out[bi] = Some(payload);
        }
        out
    }

    fn schedulable(&self, node: usize) -> bool {
        self.nodes[node].daemon_alive
            && self.nodes[node].ladder.health().severity() < NodeHealth::Quarantined.severity()
    }

    fn apply_schedule_round(&mut self, ev: &SimEvent) {
        let now = ev.time;
        let assignments = {
            let view = FleetView {
                nodes: &self.views,
                now,
                timeout_ticks: self.cfg.timeout_ticks,
            };
            self.scheduler.assign(&view, self.cfg.capacity_per_round)
        };
        let assigned = assignments.len();
        for (node, kind) in assignments {
            let ni = node as usize;
            self.views[ni].in_flight[kind.index()] = Some(now);
            let (verdict, daemon_alive) = {
                let n = &mut self.nodes[ni];
                n.dispatched_since_audit += 1;
                let idx = n.attempts;
                n.attempts += 1;
                (n.faults.attempt_verdict(idx, &mut n.link_rng), n.daemon_alive)
            };
            let outcome: &str;
            match verdict {
                AttemptVerdict::DroppedRequest => {
                    self.dropped_requests += 1;
                    self.obs.incr("sim.dispatch.dropped_request", 1);
                    outcome = "drop_req";
                }
                _ if !daemon_alive => {
                    // Request reached a dead daemon: silence, timeout.
                    self.obs.incr("sim.dispatch.dead_node", 1);
                    outcome = "dead";
                }
                _ => {
                    let (node_verdict, latency) = {
                        let n = &mut self.nodes[ni];
                        let nv = n.faults.node_verdict(n.served);
                        if !matches!(nv, NodeVerdict::Crashed) {
                            // The daemon received the request: its served
                            // counter advances exactly as the threaded
                            // service loop's would.
                            n.served += 1;
                        }
                        (nv, n.faults.latency_ms)
                    };
                    match node_verdict {
                        NodeVerdict::Crashed => {
                            self.nodes[ni].daemon_alive = false;
                            self.views[ni].alive = false;
                            self.crashed_nodes += 1;
                            self.obs.incr("sim.node.crashed", 1);
                            outcome = "crash";
                        }
                        NodeVerdict::Hang => {
                            self.obs.incr("sim.node.hung", 1);
                            outcome = "hang";
                        }
                        NodeVerdict::Service => {
                            let arrival = now + kind.duration_ticks() + latency;
                            match verdict {
                                AttemptVerdict::Deliver { .. } => {
                                    self.obs.incr("sim.dispatch.delivered", 1);
                                    self.queue
                                        .push(arrival, EventKind::TaskComplete { node, kind });
                                    outcome = "deliver";
                                }
                                AttemptVerdict::Corrupted => {
                                    self.queue
                                        .push(arrival, EventKind::DeliveryCorrupt { node, kind });
                                    outcome = "corrupt";
                                }
                                AttemptVerdict::DroppedResponse => {
                                    // The node did the work; the reply
                                    // vanished on the wire.
                                    self.dropped_responses += 1;
                                    self.obs.incr("sim.dispatch.dropped_response", 1);
                                    outcome = "drop_resp";
                                }
                                AttemptVerdict::DroppedRequest => unreachable!("handled above"),
                            }
                        }
                    }
                }
            }
            self.log_line(format!(
                "t={} id={} ev=dispatch node={} kind={} out={}",
                now,
                ev.id,
                node,
                kind.label(),
                outcome
            ));
        }
        self.obs.incr("sim.dispatches", assigned as u64);
        self.log_line(format!("t={} id={} ev=sched assigned={}", now, ev.id, assigned));
        let next = now + self.cfg.schedule_period;
        if next < self.cfg.max_ticks {
            self.queue.push(next, EventKind::ScheduleRound);
        }
    }

    fn apply_task_complete(&mut self, ev: &SimEvent, node: u32, kind: TaskKind, payload: Vec<f64>) {
        let ni = node as usize;
        let ki = kind.index();
        self.views[ni].in_flight[ki] = None;
        self.views[ni].last_update[ki] = Some(ev.time);
        let mean = payload.iter().sum::<f64>() / payload.len() as f64;
        // Fold the payload bits into the digest so the digest witnesses
        // measurement *values*, not just event order.
        let mut fp = FNV_OFFSET;
        for v in &payload {
            fp = fnv1a(fp, &v.to_bits().to_le_bytes());
        }
        let n = &mut self.nodes[ni];
        n.profile_mean[ki] = Some(mean);
        n.fresh[ki] = true;
        n.completed_since_audit += 1;
        if !n.covered[ki] {
            n.covered[ki] = true;
            if n.covered.iter().all(|&c| c) {
                self.covered_count += 1;
                if self.coverage90_tick.is_none()
                    && self.covered_count * 10 >= self.cfg.nodes * 9
                {
                    self.coverage90_tick = Some(ev.time);
                    self.log_line(format!("t={} id={} ev=coverage90", ev.time, ev.id));
                }
            }
        }
        self.completed_tasks += 1;
        self.obs.incr("sim.task.completed", 1);
        self.log_line(format!(
            "t={} id={} ev=complete node={} kind={} fp={:016x}",
            ev.time,
            ev.id,
            node,
            kind.label(),
            fp
        ));
    }

    fn apply_delivery_corrupt(&mut self, ev: &SimEvent, node: u32, kind: TaskKind) {
        // A garbled reply still tells the cloud the attempt is dead, so
        // the pair is immediately reschedulable — unlike a silent drop,
        // which has to age out through the timeout.
        self.views[node as usize].in_flight[kind.index()] = None;
        self.corrupt_deliveries += 1;
        self.obs.incr("sim.delivery.corrupt", 1);
        self.log_line(format!(
            "t={} id={} ev=corrupt node={} kind={}",
            ev.time,
            ev.id,
            node,
            kind.label()
        ));
    }

    fn apply_audit_round(&mut self, ev: &SimEvent) {
        let now = ev.time;
        // Fused fleet profile per kind: median of the latest means. The
        // cloud has no ground truth; the crowd is its reference, exactly
        // as in the paper's fusion story.
        let mut medians = [f64::NAN; 3];
        for (ki, median) in medians.iter_mut().enumerate() {
            let mut means: Vec<f64> = self
                .nodes
                .iter()
                .filter_map(|n| n.profile_mean[ki])
                .collect();
            if !means.is_empty() {
                means.sort_unstable_by(|a, b| a.total_cmp(b));
                *median = means[means.len() / 2];
            }
        }
        let mut audited = 0u32;
        let mut anomalies = 0u32;
        let mut quarantined_or_worse = 0u32;
        for ni in 0..self.nodes.len() {
            let n = &mut self.nodes[ni];
            if n.dispatched_since_audit == 0 && n.completed_since_audit == 0 {
                continue;
            }
            audited += 1;
            let link_ok = n.completed_since_audit > 0;
            let anomalous = link_ok
                && (0..3).any(|ki| {
                    n.fresh[ki]
                        && !medians[ki].is_nan()
                        && (n.profile_mean[ki].expect("fresh implies mean") - medians[ki]).abs()
                            > 3.0
                });
            let health = n.ladder.record(&self.policy, link_ok, anomalous);
            if anomalous {
                anomalies += 1;
                n.trust = (n.trust - 0.15).max(0.0);
            } else if link_ok {
                n.trust = (n.trust + 0.03).min(1.0);
            } else {
                n.trust = (n.trust - 0.05).max(0.0);
            }
            if health.severity() >= NodeHealth::Quarantined.severity() {
                quarantined_or_worse += 1;
            }
            n.dispatched_since_audit = 0;
            n.completed_since_audit = 0;
            n.fresh = [false; 3];
            let alive = self.schedulable(ni);
            self.views[ni].alive = alive;
        }
        if anomalies > 0 {
            self.anomaly_flags += 1;
        }
        self.obs.incr("sim.audit.rounds", 1);
        self.obs.incr("sim.audit.anomalies", anomalies as u64);
        self.obs
            .set_gauge("sim.coverage", self.covered_count as f64 / self.cfg.nodes.max(1) as f64);
        self.log_line(format!(
            "t={} id={} ev=audit audited={} anomalies={} quarantined={}",
            now, ev.id, audited, anomalies, quarantined_or_worse
        ));
        let next = now + self.cfg.audit_period;
        if next < self.cfg.max_ticks {
            self.queue.push(next, EventKind::AuditRound);
        }
    }

    fn apply(&mut self, ev: &SimEvent, payload: Option<Vec<f64>>) {
        self.events_applied += 1;
        self.final_tick = ev.time;
        self.obs.incr("sim.events", 1);
        match ev.kind {
            EventKind::ScheduleRound => self.apply_schedule_round(ev),
            EventKind::TaskComplete { node, kind } => {
                let payload = payload.expect("payload computed for every completion");
                self.apply_task_complete(ev, node, kind, payload);
            }
            EventKind::DeliveryCorrupt { node, kind } => {
                self.apply_delivery_corrupt(ev, node, kind)
            }
            EventKind::AuditRound => self.apply_audit_round(ev),
            EventKind::CampaignEnd => {
                self.ended = true;
                self.log_line(format!("t={} id={} ev=end", ev.time, ev.id));
            }
        }
    }

    fn finish(mut self) -> CampaignResult {
        // Fold the final trust table and health states into the digest:
        // the digest is the campaign, not just its event order.
        let mut digest = self.digest;
        for n in &self.nodes {
            digest = fnv1a(digest, &n.trust.to_bits().to_le_bytes());
            digest = fnv1a(digest, &[n.ladder.health().severity()]);
            digest = fnv1a(digest, &n.served.to_le_bytes());
        }
        let mut health_counts: BTreeMap<String, usize> = BTreeMap::new();
        for n in &self.nodes {
            *health_counts
                .entry(format!("{:?}", n.ladder.health()))
                .or_insert(0) += 1;
        }
        CampaignResult {
            nodes: self.cfg.nodes,
            scheduler: self.cfg.scheduler.label().to_string(),
            events: self.events_applied,
            final_tick: self.final_tick,
            digest: format!("{digest:016x}"),
            coverage90_tick: self.coverage90_tick,
            covered_nodes: self.covered_count,
            completed_tasks: self.completed_tasks,
            dropped_requests: self.dropped_requests,
            dropped_responses: self.dropped_responses,
            corrupt_deliveries: self.corrupt_deliveries,
            crashed_nodes: self.crashed_nodes,
            anomaly_flags: self.anomaly_flags,
            health_counts,
            trust_table: self.nodes.iter().map(|n| n.trust.to_bits()).collect(),
            log: std::mem::take(&mut self.log),
        }
    }
}

/// Run a campaign with metrics disabled.
pub fn run(config: &CampaignConfig) -> CampaignResult {
    run_with_obs(config, &Obs::disabled())
}

/// Run a campaign, publishing `sim.*` metrics to `obs` and advancing
/// the `aircal-obs` virtual clock to each batch's tick.
pub fn run_with_obs(config: &CampaignConfig, obs: &Obs) -> CampaignResult {
    let mut campaign = Campaign::new(config, obs);
    campaign.queue.push(0, EventKind::ScheduleRound);
    if config.audit_period < config.max_ticks {
        campaign.queue.push(config.audit_period, EventKind::AuditRound);
    }
    campaign.queue.push(config.max_ticks, EventKind::CampaignEnd);

    let mut batch: Vec<SimEvent> = Vec::new();
    while let Some(tick) = campaign.queue.pop_batch(&mut batch) {
        aircal_obs::trace::advance_clock_to(tick);
        let payloads = campaign.compute_payloads(&batch);
        for (ev, payload) in batch.iter().zip(payloads) {
            campaign.apply(ev, payload);
        }
        if campaign.ended {
            break;
        }
    }
    campaign.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> CampaignConfig {
        let mut cfg = CampaignConfig::paper_default(24, seed);
        cfg.max_ticks = 300;
        cfg.record_log = true;
        cfg
    }

    #[test]
    fn same_seed_same_workers_or_not_is_bit_identical() {
        let mut a_cfg = small_config(11);
        let mut b_cfg = small_config(11);
        a_cfg.workers = 1;
        b_cfg.workers = 8;
        let a = run(&a_cfg);
        let b = run(&b_cfg);
        assert_eq!(a, b, "worker count must be invisible to the outcome");
        assert!(!a.log.is_empty());
        assert!(a.completed_tasks > 0, "campaign made progress");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small_config(11));
        let b = run(&small_config(12));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn chaos_paths_fire_at_fleet_scale() {
        let mut cfg = CampaignConfig::paper_default(200, 5);
        cfg.max_ticks = 600;
        let r = run(&cfg);
        assert!(r.dropped_requests > 0, "lossy links drop requests");
        assert!(r.dropped_responses > 0, "lossy links drop responses");
        assert!(r.crashed_nodes > 0, "some daemons crash");
        assert!(r.covered_nodes > 150, "most of the fleet still converges");
        assert!(
            r.anomaly_flags > 0,
            "miscalibrated nodes get flagged by audits"
        );
        let evicted_or_quarantined: usize = r
            .health_counts
            .iter()
            .filter(|(k, _)| k.as_str() == "Quarantined" || k.as_str() == "Evicted")
            .map(|(_, v)| *v)
            .sum();
        assert!(
            evicted_or_quarantined > 0,
            "the health ladder bites: {:?}",
            r.health_counts
        );
    }

    #[test]
    fn trust_separates_honest_from_miscalibrated() {
        let mut cfg = CampaignConfig::paper_default(120, 9);
        cfg.max_ticks = 900;
        let r = run(&cfg);
        // Recover which nodes were seeded miscalibrated by re-deriving
        // the fleet, then check the trust table split.
        let f = &cfg.faults;
        let mut cheat_trust: Vec<f64> = Vec::new();
        let mut honest_trust: Vec<f64> = Vec::new();
        for i in 0..cfg.nodes as u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(
                cfg.seed ^ FAULT_SALT,
                i,
            ));
            let _offset: f64 = rng.gen_range(-1.0..1.0);
            let lossy = rng.gen_range(0.0..1.0) < f.lossy_fraction;
            let crashy = rng.gen_range(0.0..1.0) < f.crash_fraction;
            let _corrupting = rng.gen_range(0.0..1.0) < f.corrupt_fraction;
            let miscal = rng.gen_range(0.0..1.0) < f.miscalibrated_fraction;
            let trust = f64::from_bits(r.trust_table[i as usize]);
            if miscal {
                cheat_trust.push(trust);
            } else if !lossy && !crashy {
                honest_trust.push(trust);
            }
        }
        assert!(!cheat_trust.is_empty(), "seed 9 produces miscalibrated nodes");
        let cheat_max = cheat_trust.iter().cloned().fold(f64::MIN, f64::max);
        let honest_mean = honest_trust.iter().sum::<f64>() / honest_trust.len() as f64;
        assert!(
            cheat_max < honest_mean,
            "every miscalibrated node ({cheat_max}) below honest mean ({honest_mean})"
        );
    }
}
