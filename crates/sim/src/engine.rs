//! The campaign engine: fleet state, event application, and the
//! batch-parallel main loop.
//!
//! # How a campaign runs
//!
//! A campaign is seeded with a fleet of synthetic sensor nodes. Each
//! node has a true frequency profile (a fleet-wide base per task kind,
//! plus a small per-node calibration offset; a seeded fraction of nodes
//! are grossly miscalibrated — the paper's careless volunteers), a
//! [`LinkFaults`] chaos plan derived from the campaign seed, and the
//! real `aircal-net` health ladder. Schedule rounds ask the configured
//! [`Scheduler`] for assignments; every dispatch is judged by
//! [`LinkFaults::attempt_verdict`] (wire) and
//! [`LinkFaults::node_verdict`] (daemon crash/hang) — the *same* fault
//! semantics the threaded transport enforces. Delivered measurements
//! become [`EventKind::TaskComplete`] events after the task's dwell
//! time plus link latency; audit rounds compare fresh profiles against
//! the fleet median, walk each node's [`HealthLadder`], and update a
//! trust score.
//!
//! # Determinism
//!
//! The main loop pops every event at the earliest virtual tick as one
//! batch (heap order — a pure function of queue contents), computes
//! measurement payloads for the batch's completions in parallel with
//! [`par_map`] (each payload a pure function of `(campaign seed, event
//! id, node truth)`), then applies events sequentially in batch order.
//! All stateful RNG draws happen in the apply phase. Worker count can
//! therefore never reorder anything: `workers = 1` and `workers = 8`
//! produce bit-identical event logs, digests, and trust tables.

use crate::event::{EventKind, EventQueue, SimEvent, TaskKind};
use crate::scheduler::{FleetView, NodeView, Scheduler, SchedulerKind};
use aircal_core::wal::{Journal, WalRecord};
use aircal_dsp::{derive_stream_seed, par_map};
use aircal_net::{AttemptVerdict, HealthLadder, HealthPolicy, LinkFaults, NodeHealth, NodeVerdict};
use aircal_obs::Obs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stream salts: every independent randomness consumer XORs its own
/// salt into the campaign seed before deriving per-item streams, so no
/// two consumers can ever collide on a stream (see the collision-census
/// regression test over `derive_stream_seed`).
const TRUTH_SALT: u64 = 0x5452_5554_4800_0001; // "TRUTH"
const FAULT_SALT: u64 = 0xFA17_C0DE_0000_0001;
const LINK_SALT: u64 = 0x4C49_4E4B_0000_0001; // "LINK"
const MEAS_SALT: u64 = 0x4D45_4153_5552_4531; // "MEASURE1"

/// Stable tie-break key salts (see [`EventQueue::push_keyed`]): every
/// event is keyed by *what it is*, never by creation order, so a run
/// with injected duplicates/replays/backlog re-pushes orders its shared
/// events identically to a fault-free run — the foundation of the
/// exactly-once bit-identity property.
const KEY_SCHED: u64 = 0x5343_4845_4400_0001; // "SCHED"
const KEY_AUDIT: u64 = 0x4155_4449_5400_0001; // "AUDIT"
const KEY_TASK: u64 = 0x5441_534B_0000_0001; // "TASK"
const KEY_REPLAY: u64 = 0x5245_504C_4159_0001; // "REPLAY"
const KEY_BACKLOG: u64 = 0x4241_434B_4C4F_4701; // "BACKLOG"
const KEY_PART: u64 = 0x5041_5254_0000_0001; // "PART"
const KEY_CRASH: u64 = 0x4352_4153_4800_0001; // "CRASH"
const KEY_END: u64 = 0x454E_4400_0000_0001; // "END"

/// FNV-1a offset basis / prime, for the event-log digest chain.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable identity of one delivered report: a pure hash of `(node,
/// kind, seq)`. Used both as the event's tie-break key and (with
/// [`KEY_REPLAY`]/[`KEY_BACKLOG`] folded in) for its injected copies.
fn task_key(node: u32, kind: TaskKind, seq: u64) -> u64 {
    let mut h = fnv1a(KEY_TASK, &node.to_le_bytes());
    h = fnv1a(h, &[kind.index() as u8]);
    fnv1a(h, &seq.to_le_bytes())
}

/// A measurement payload: pure function of `(campaign seed, node,
/// dispatch seq, node truth)`. Safe to compute on any worker thread —
/// it derives its own RNG stream from the dispatch identity, so a
/// duplicated or retransmitted delivery of the same `(node, seq)`
/// carries bit-identical data (as a retransmission of one capture
/// does), and injecting extra events never shifts any other payload.
fn measure_payload(meas_seed: u64, node: u32, seq: u64, base: &[f64], offset_db: f64) -> Vec<f64> {
    let node_stream = derive_stream_seed(meas_seed, node as u64);
    let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(node_stream, seq));
    base.iter()
        .map(|b| {
            // Sum of two uniforms: triangular, sigma ~ 0.4 dB.
            let noise = rng.gen_range(-0.5..0.5) + rng.gen_range(-0.5..0.5);
            b + offset_db + noise
        })
        .collect()
}

/// Seed-derived chaos shaping for the whole fleet. Which nodes are
/// lossy, crashy, corrupting, or miscalibrated is drawn per node from
/// the campaign seed, so two runs of the same config face the same
/// fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultsConfig {
    /// Fraction of nodes with a lossy link.
    pub lossy_fraction: f64,
    /// Total drop probability for lossy nodes (split 70/30 between
    /// request and response drops, mirroring where real losses bite).
    pub drop_probability: f64,
    /// Fraction of nodes whose host daemon crashes after a seeded
    /// number of served requests.
    pub crash_fraction: f64,
    /// Fraction of nodes that garble one seeded wire attempt.
    pub corrupt_fraction: f64,
    /// Fraction of nodes with a gross (+8 dB) calibration error — the
    /// installations the audit rounds exist to catch.
    pub miscalibrated_fraction: f64,
    /// One-way delivery latency, in virtual ticks.
    pub latency_ticks: u64,
}

impl Default for FleetFaultsConfig {
    fn default() -> Self {
        Self {
            lossy_fraction: 0.15,
            drop_probability: 0.35,
            crash_fraction: 0.02,
            corrupt_fraction: 0.02,
            miscalibrated_fraction: 0.05,
            latency_ticks: 1,
        }
    }
}

/// One scheduled network partition: the node subset `id % modulus ==
/// remainder` is severed from the cloud between `start_tick` and
/// `heal_tick`. Partitioned nodes are skipped by the scheduler; reports
/// already in flight toward the cloud are backlogged and drain at the
/// heal tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    pub start_tick: u64,
    pub heal_tick: u64,
    /// Subset selector modulus (0 is treated as "no nodes").
    pub modulus: u32,
    /// Subset selector remainder.
    pub remainder: u32,
}

/// Cloud-side failure schedule: process crashes, restart delay, and
/// network partitions, plus per-node at-least-once delivery chaos
/// (duplicated frames and stale retransmissions). All empty by default
/// — a config with `RecoveryFaultsConfig::default()` runs exactly the
/// fault profile earlier revisions ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryFaultsConfig {
    /// Virtual ticks at which the cloud process dies and recovers from
    /// snapshot + journal.
    pub crash_ticks: Vec<u64>,
    /// Ticks of downtime before a crashed cloud resumes scheduling and
    /// audits. With 0 the recovery is transparent to the virtual
    /// schedule (state is still torn down and rebuilt from the journal,
    /// and the safety invariant still checks recovered ≡ live).
    pub restart_delay_ticks: u64,
    /// Scheduled network partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Fraction of nodes whose link duplicates one seeded delivery
    /// (the report arrives twice; the dedup guard must drop the copy).
    pub duplicate_fraction: f64,
    /// Fraction of nodes whose link retransmits one stale,
    /// already-applied report out of order.
    pub reorder_fraction: f64,
}

impl Default for RecoveryFaultsConfig {
    fn default() -> Self {
        Self {
            crash_ticks: Vec::new(),
            restart_delay_ticks: 0,
            partitions: Vec::new(),
            duplicate_fraction: 0.0,
            reorder_fraction: 0.0,
        }
    }
}

/// Everything that defines a campaign. Two equal configs replay
/// bit-identically; `workers` is explicitly *not* part of the outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    pub nodes: usize,
    pub seed: u64,
    /// Worker threads for the payload compute phase. Never affects
    /// results — only wall-clock.
    pub workers: usize,
    pub scheduler: SchedulerKind,
    /// Dispatches per schedule round.
    pub capacity_per_round: usize,
    /// Ticks between schedule rounds.
    pub schedule_period: u64,
    /// Ticks between audit rounds.
    pub audit_period: u64,
    /// Ticks before an outstanding dispatch is presumed lost.
    pub timeout_ticks: u64,
    /// Campaign horizon.
    pub max_ticks: u64,
    /// Keep the full event log in the result (tests); the digest is
    /// always computed either way.
    pub record_log: bool,
    pub faults: FleetFaultsConfig,
    /// Cloud crash/partition/at-least-once delivery schedule.
    pub recovery: RecoveryFaultsConfig,
    /// Check safety invariants (exactly-once accounting, journal chain
    /// continuity, recovered ≡ live state) during the run; violations
    /// land in [`CampaignResult::invariant_violations`].
    pub monitor_invariants: bool,
}

impl CampaignConfig {
    /// Defaults shaped like the paper's deployment sketch: utility
    /// scheduling, an eighth of the fleet dispatched per round, audits
    /// every 50 ticks.
    pub fn paper_default(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            seed,
            workers: 1,
            scheduler: SchedulerKind::UtilityDriven,
            capacity_per_round: (nodes / 8).max(1),
            schedule_period: 5,
            audit_period: 50,
            timeout_ticks: 12,
            max_ticks: 1200,
            record_log: false,
            faults: FleetFaultsConfig::default(),
            recovery: RecoveryFaultsConfig::default(),
            monitor_invariants: true,
        }
    }
}

/// Final state of one campaign. `PartialEq` compares *everything*
/// (trust bits, digest, log) — the determinism property tests lean on
/// that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    pub nodes: usize,
    pub scheduler: String,
    /// Events applied (== events scheduled; the queue always drains).
    pub events: u64,
    /// Virtual tick of the last applied batch.
    pub final_tick: u64,
    /// FNV-1a chain over every event-log line, then the final trust
    /// table and health states. The campaign's identity.
    pub digest: String,
    /// First tick at which ≥ 90 % of the fleet had every profile kind
    /// measured at least once; `None` if never reached.
    pub coverage90_tick: Option<u64>,
    /// Nodes with all three profile kinds covered at the end.
    pub covered_nodes: usize,
    pub completed_tasks: u64,
    pub dropped_requests: u64,
    pub dropped_responses: u64,
    pub corrupt_deliveries: u64,
    pub crashed_nodes: usize,
    /// Audit rounds that flagged at least one anomalous profile.
    pub anomaly_flags: u64,
    /// FNV-1a digest over the final *cloud-side* state only (trust,
    /// ladders, profiles, dedup high-water marks, scheduler views).
    /// Unlike `digest` it ignores the event log, so a run with injected
    /// duplicates/replays/crashes must match its fault-free twin here
    /// bit-for-bit — the exactly-once acceptance property.
    pub state_digest: String,
    /// Cloud crash/recovery cycles completed.
    pub recoveries: u64,
    /// Journal records replayed across all recoveries.
    pub replayed_records: u64,
    /// Virtual ticks of cloud downtime across all crashes.
    pub recovery_ticks: u64,
    /// Journal appends / sync barriers over the whole campaign.
    pub wal_appends: u64,
    pub wal_syncs: u64,
    /// Reports deferred by a partition or cloud downtime, drained later.
    pub backlogged_reports: u64,
    /// At-least-once re-deliveries dropped by the dedup guard.
    pub deduped_reports: u64,
    /// Deliveries the link layer duplicated / retransmitted stale.
    pub duplicated_deliveries: u64,
    pub reordered_deliveries: u64,
    /// Safety-invariant violations (empty on a correct engine).
    pub invariant_violations: Vec<String>,
    /// Final health state census, keyed by state name.
    pub health_counts: BTreeMap<String, usize>,
    /// Final per-node trust scores as IEEE-754 bit patterns, indexed by
    /// node id — bit-exact across worker counts by construction.
    pub trust_table: Vec<u64>,
    /// Full event log; empty unless [`CampaignConfig::record_log`].
    pub log: Vec<String>,
}

impl CampaignResult {
    /// Compact, fixture-friendly summary (excludes the trust table body
    /// and log; the digest already covers both).
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        s.push_str(&format!("  \"events\": {},\n", self.events));
        s.push_str(&format!("  \"final_tick\": {},\n", self.final_tick));
        s.push_str(&format!("  \"digest\": \"{}\",\n", self.digest));
        s.push_str(&format!(
            "  \"coverage90_tick\": {},\n",
            match self.coverage90_tick {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            }
        ));
        s.push_str(&format!("  \"covered_nodes\": {},\n", self.covered_nodes));
        s.push_str(&format!("  \"completed_tasks\": {},\n", self.completed_tasks));
        s.push_str(&format!("  \"dropped_requests\": {},\n", self.dropped_requests));
        s.push_str(&format!("  \"dropped_responses\": {},\n", self.dropped_responses));
        s.push_str(&format!("  \"corrupt_deliveries\": {},\n", self.corrupt_deliveries));
        s.push_str(&format!("  \"crashed_nodes\": {},\n", self.crashed_nodes));
        s.push_str(&format!("  \"anomaly_flags\": {},\n", self.anomaly_flags));
        s.push_str(&format!("  \"state_digest\": \"{}\",\n", self.state_digest));
        s.push_str(&format!("  \"recoveries\": {},\n", self.recoveries));
        s.push_str(&format!("  \"deduped_reports\": {},\n", self.deduped_reports));
        let health: Vec<String> = self
            .health_counts
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v}"))
            .collect();
        s.push_str(&format!("  \"health_counts\": {{\n{}\n  }}\n", health.join(",\n")));
        s.push('}');
        s
    }
}

/// One synthetic sensor node, engine-side.
struct SimNode {
    faults: LinkFaults,
    /// Draws the wire-fault verdicts; stepped only in the sequential
    /// apply phase.
    link_rng: ChaCha8Rng,
    /// Wire attempts made toward this node (indexes burst/corrupt
    /// schedules).
    attempts: u64,
    /// Requests that reached the node's daemon (indexes hang/crash
    /// schedules) — the served counter the threaded service loop keeps.
    served: u64,
    daemon_alive: bool,
    /// True calibration offset, dB (includes the +8 dB miscalibration
    /// for seeded cheaters).
    offset_db: f64,
    ladder: HealthLadder,
    trust: f64,
    /// Cloud-side latest profile mean per kind.
    profile_mean: [Option<f64>; 3],
    /// Kinds refreshed since the last audit round.
    fresh: [bool; 3],
    dispatched_since_audit: u32,
    completed_since_audit: u32,
    /// Kinds ever completed (coverage accounting).
    covered: [bool; 3],
    /// Cloud-assigned per-node dispatch sequence counter.
    next_seq: u64,
    /// Highest applied sequence number per kind — the dedup high-water
    /// mark that turns at-least-once delivery into exactly-once effects.
    last_applied_seq: [Option<u64>; 3],
    /// Last applied report `(kind, seq)`, the thing a reordering link
    /// retransmits stale.
    last_report: Option<(TaskKind, u64)>,
    /// Severed from the cloud until this tick, if partitioned
    /// (network-side truth; survives cloud crashes).
    partitioned_until: Option<u64>,
}

/// Cloud-side slice of one node's state, as captured by a checkpoint
/// snapshot. Everything here is lost when the cloud process crashes and
/// must be rebuilt from snapshot + journal; everything *not* here
/// (link fault schedules, RNG streams, daemon liveness, the true
/// calibration offset) lives on the node/network side and survives.
#[derive(Clone)]
struct CloudNodeState {
    ladder: HealthLadder,
    trust: f64,
    profile_mean: [Option<f64>; 3],
    fresh: [bool; 3],
    dispatched_since_audit: u32,
    completed_since_audit: u32,
    covered: [bool; 3],
    next_seq: u64,
    last_applied_seq: [Option<u64>; 3],
    last_report: Option<(TaskKind, u64)>,
}

/// A checkpoint of the whole cloud process, taken after every audit
/// round (and once at campaign start). [`Campaign::recover_cloud`]
/// restores the latest snapshot and replays the journal's records onto
/// it.
#[derive(Clone)]
struct CloudSnapshot {
    nodes: Vec<CloudNodeState>,
    views: Vec<NodeView>,
    scheduler_cursor: u64,
    covered_count: usize,
    coverage90_tick: Option<u64>,
    /// Running FNV chain over every journal record ever appended, at
    /// snapshot time. Replay must extend this to the live chain value —
    /// the "ledger hash-chain unbroken across restarts" invariant.
    journal_chain: u64,
}

/// Safety monitor: collects invariant violations instead of panicking,
/// so a campaign result can report them and tests/gates can assert the
/// list is empty.
#[derive(Debug, Default)]
struct InvariantMonitor {
    violations: Vec<String>,
}

impl InvariantMonitor {
    fn violation(&mut self, msg: String) {
        if self.violations.len() < 64 {
            self.violations.push(msg);
        }
    }
}

struct Campaign<'a> {
    cfg: &'a CampaignConfig,
    obs: &'a Obs,
    queue: EventQueue,
    scheduler: Box<dyn Scheduler>,
    policy: HealthPolicy,
    base: [[f64; TaskKind::BANDS]; 3],
    nodes: Vec<SimNode>,
    views: Vec<NodeView>,
    digest: u64,
    log: Vec<String>,
    events_applied: u64,
    final_tick: u64,
    ended: bool,
    covered_count: usize,
    coverage90_tick: Option<u64>,
    completed_tasks: u64,
    dropped_requests: u64,
    dropped_responses: u64,
    corrupt_deliveries: u64,
    crashed_nodes: usize,
    anomaly_flags: u64,
    /// Write-ahead journal of cloud-side effects since the last
    /// checkpoint (reset at every snapshot, like a real WAL after a
    /// checkpoint fsync).
    journal: Journal,
    /// Running FNV chain over every record ever appended to the journal.
    journal_chain: u64,
    last_snapshot: Option<CloudSnapshot>,
    /// While `Some(t)`, the cloud is down until tick `t`: scheduling
    /// and audits are skipped and arriving reports are backlogged.
    cloud_down_until: Option<u64>,
    monitor: InvariantMonitor,
    recoveries: u64,
    replayed_records: u64,
    recovery_ticks: u64,
    backlogged_reports: u64,
    deduped_reports: u64,
    duplicated_deliveries: u64,
    reordered_deliveries: u64,
    /// Replay deliveries injected (duplicate copies + stale
    /// retransmissions); every one must be deduped, none applied.
    injected_replays: u64,
}

impl<'a> Campaign<'a> {
    fn new(cfg: &'a CampaignConfig, obs: &'a Obs) -> Self {
        let seed = cfg.seed;
        let mut truth_rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ TRUTH_SALT, 0));
        let mut base = [[0.0f64; TaskKind::BANDS]; 3];
        for kind in &mut base {
            for band in kind.iter_mut() {
                *band = -85.0 + 45.0 * truth_rng.gen_range(0.0..1.0);
            }
        }

        let f = &cfg.faults;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes as u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ FAULT_SALT, i));
            // Fixed draw order keeps each node's fate a function of its
            // stream alone.
            let offset = rng.gen_range(-1.0..1.0);
            let lossy = rng.gen_range(0.0..1.0) < f.lossy_fraction;
            let crashy = rng.gen_range(0.0..1.0) < f.crash_fraction;
            let corrupting = rng.gen_range(0.0..1.0) < f.corrupt_fraction;
            let miscal = rng.gen_range(0.0..1.0) < f.miscalibrated_fraction;
            let crash_after = 2 + (rng.gen_range(0.0..1.0) * 30.0) as u64;
            let corrupt_idx = (rng.gen_range(0.0..1.0) * 8.0) as u64;
            // At-least-once delivery chaos (drawn after the legacy
            // faults so their streams are untouched): which nodes get a
            // duplicated or stale-retransmitted delivery, and at which
            // wire attempt. Membership checks draw no RNG, so enabling
            // these never shifts any other node's fault verdicts.
            let r = &cfg.recovery;
            let duplicating = rng.gen_range(0.0..1.0) < r.duplicate_fraction;
            let duplicate_idx = (rng.gen_range(0.0..1.0) * 12.0) as u64;
            let reordering = rng.gen_range(0.0..1.0) < r.reorder_fraction;
            let reorder_idx = 1 + (rng.gen_range(0.0..1.0) * 12.0) as u64;
            let faults = LinkFaults {
                request_drop: if lossy { f.drop_probability * 0.7 } else { 0.0 },
                response_drop: if lossy { f.drop_probability * 0.3 } else { 0.0 },
                latency_ms: f.latency_ticks,
                burst_outages: Vec::new(),
                crash_after: if crashy { Some(crash_after) } else { None },
                hang_on: Vec::new(),
                corrupt_on: if corrupting { vec![corrupt_idx] } else { Vec::new() },
                duplicate_on: if duplicating { vec![duplicate_idx] } else { Vec::new() },
                reorder_on: if reordering { vec![reorder_idx] } else { Vec::new() },
            };
            nodes.push(SimNode {
                faults,
                link_rng: ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ LINK_SALT, i)),
                attempts: 0,
                served: 0,
                daemon_alive: true,
                offset_db: offset + if miscal { 8.0 } else { 0.0 },
                ladder: HealthLadder::default(),
                trust: 0.5,
                profile_mean: [None; 3],
                fresh: [false; 3],
                dispatched_since_audit: 0,
                completed_since_audit: 0,
                covered: [false; 3],
                next_seq: 0,
                last_applied_seq: [None; 3],
                last_report: None,
                partitioned_until: None,
            });
        }
        let views = vec![NodeView::fresh(); cfg.nodes];

        Self {
            cfg,
            obs,
            queue: EventQueue::new(seed),
            scheduler: cfg.scheduler.build(),
            policy: HealthPolicy::default(),
            base,
            nodes,
            views,
            digest: FNV_OFFSET,
            log: Vec::new(),
            events_applied: 0,
            final_tick: 0,
            ended: false,
            covered_count: 0,
            coverage90_tick: None,
            completed_tasks: 0,
            dropped_requests: 0,
            dropped_responses: 0,
            corrupt_deliveries: 0,
            crashed_nodes: 0,
            anomaly_flags: 0,
            journal: Journal::default(),
            journal_chain: FNV_OFFSET,
            last_snapshot: None,
            cloud_down_until: None,
            monitor: InvariantMonitor::default(),
            recoveries: 0,
            replayed_records: 0,
            recovery_ticks: 0,
            backlogged_reports: 0,
            deduped_reports: 0,
            duplicated_deliveries: 0,
            reordered_deliveries: 0,
            injected_replays: 0,
        }
    }

    fn log_line(&mut self, line: String) {
        self.digest = fnv1a(self.digest, line.as_bytes());
        self.digest = fnv1a(self.digest, b"\n");
        if self.cfg.record_log {
            self.log.push(line);
        }
    }

    /// Append one effect record to the write-ahead journal, extending
    /// the hash chain. Called *before* the effect is applied.
    fn journal_append(&mut self, record: WalRecord) {
        self.journal_chain = fnv1a(self.journal_chain, &record.encode());
        self.journal.append(&record);
    }

    /// Is the cloud process down (crashed, restart pending) at `now`?
    fn cloud_down(&self, now: u64) -> bool {
        self.cloud_down_until.is_some_and(|t| now < t)
    }

    /// If deliveries from `node` cannot reach a live cloud at `now`,
    /// the tick they should be deferred to.
    fn deferred_until(&self, node: u32, now: u64) -> Option<u64> {
        let partition = self.nodes[node as usize]
            .partitioned_until
            .filter(|&t| now < t);
        let down = self.cloud_down_until.filter(|&t| now < t);
        partition.max(down)
    }

    fn cloud_node_state_of(n: &SimNode) -> CloudNodeState {
        CloudNodeState {
            ladder: n.ladder,
            trust: n.trust,
            profile_mean: n.profile_mean,
            fresh: n.fresh,
            dispatched_since_audit: n.dispatched_since_audit,
            completed_since_audit: n.completed_since_audit,
            covered: n.covered,
            next_seq: n.next_seq,
            last_applied_seq: n.last_applied_seq,
            last_report: n.last_report,
        }
    }

    /// FNV digest over every cloud-side structure — the witness for
    /// both the recovery safety check (recovered ≡ live) and the
    /// cross-run exactly-once property (faulty ≡ fault-free).
    fn cloud_state_digest(&self) -> u64 {
        fn fold_opt_u64(h: u64, v: Option<u64>) -> u64 {
            match v {
                Some(x) => fnv1a(fnv1a(h, &[1]), &x.to_le_bytes()),
                None => fnv1a(h, &[0]),
            }
        }
        let mut h = FNV_OFFSET;
        for (n, v) in self.nodes.iter().zip(&self.views) {
            h = fnv1a(h, &n.trust.to_bits().to_le_bytes());
            h = fnv1a(h, &n.ladder.consecutive_failures.to_le_bytes());
            h = fnv1a(h, &n.ladder.consecutive_anomalies.to_le_bytes());
            h = fnv1a(h, &[n.ladder.health().severity()]);
            for ki in 0..3 {
                h = fold_opt_u64(h, n.profile_mean[ki].map(f64::to_bits));
                h = fold_opt_u64(h, n.last_applied_seq[ki]);
                h = fnv1a(h, &[n.fresh[ki] as u8, n.covered[ki] as u8]);
                h = fold_opt_u64(h, v.last_update[ki]);
                h = fold_opt_u64(h, v.in_flight[ki]);
            }
            h = fnv1a(h, &n.dispatched_since_audit.to_le_bytes());
            h = fnv1a(h, &n.completed_since_audit.to_le_bytes());
            h = fnv1a(h, &n.next_seq.to_le_bytes());
            h = match n.last_report {
                Some((k, s)) => fnv1a(fnv1a(h, &[1, k.index() as u8]), &s.to_le_bytes()),
                None => fnv1a(h, &[0]),
            };
            h = fnv1a(h, &[v.alive as u8]);
        }
        h = fnv1a(h, &self.scheduler.cursor_state().to_le_bytes());
        h = fnv1a(h, &(self.covered_count as u64).to_le_bytes());
        fold_opt_u64(h, self.coverage90_tick)
    }

    /// Checkpoint: commit the journal, snapshot every cloud-side
    /// structure, and reset the journal (the snapshot now covers all of
    /// it) — opening the fresh journal with a `SnapshotTaken` marker.
    fn checkpoint(&mut self, now: u64) {
        self.journal.sync();
        let snap = CloudSnapshot {
            nodes: self.nodes.iter().map(Self::cloud_node_state_of).collect(),
            views: self.views.clone(),
            scheduler_cursor: self.scheduler.cursor_state(),
            covered_count: self.covered_count,
            coverage90_tick: self.coverage90_tick,
            journal_chain: self.journal_chain,
        };
        let state_crc = self.cloud_state_digest() as u32;
        self.last_snapshot = Some(snap);
        self.journal.reset();
        self.journal_append(WalRecord::SnapshotTaken { tick: now, state_crc });
        self.journal.sync();
    }

    /// Replay one journal record onto the restored snapshot. Only the
    /// between-checkpoint effect records (dispatches and applied
    /// reports) ever need replaying: audit effects are always followed
    /// by a checkpoint in the same event, so they never sit in the
    /// journal's live tail.
    fn replay_record(&mut self, record: &WalRecord) {
        match *record {
            WalRecord::Dispatch { node, kind, seq, tick } => {
                let ni = node as usize;
                let ki = kind as usize;
                self.views[ni].in_flight[ki] = Some(tick);
                let n = &mut self.nodes[ni];
                n.dispatched_since_audit += 1;
                n.next_seq = n.next_seq.max(seq + 1);
            }
            WalRecord::ReportApplied { node, kind, seq, value_bits, tick } => {
                let ni = node as usize;
                let ki = kind as usize;
                self.views[ni].in_flight[ki] = None;
                self.views[ni].last_update[ki] = Some(tick);
                let n = &mut self.nodes[ni];
                n.profile_mean[ki] = Some(f64::from_bits(value_bits));
                n.fresh[ki] = true;
                n.completed_since_audit += 1;
                n.last_applied_seq[ki] = Some(n.last_applied_seq[ki].map_or(seq, |h| h.max(seq)));
                n.last_report = Some((TaskKind::ALL[ki], seq));
                if !n.covered[ki] {
                    n.covered[ki] = true;
                    if n.covered.iter().all(|&c| c) {
                        self.covered_count += 1;
                        if self.coverage90_tick.is_none()
                            && self.covered_count * 10 >= self.cfg.nodes * 9
                        {
                            self.coverage90_tick = Some(tick);
                        }
                    }
                }
            }
            WalRecord::DeliveryFailed { node, kind, .. } => {
                self.views[node as usize].in_flight[kind as usize] = None;
            }
            // Checkpoint markers and audit records need no replay (see
            // above); they still extend the hash chain.
            _ => {}
        }
    }

    /// Rebuild the cloud from the latest snapshot plus the journal —
    /// the recovery path a real crashed aggregator would take. Returns
    /// the number of records replayed.
    fn recover_cloud(&mut self, now: u64) -> u64 {
        let snap = self
            .last_snapshot
            .clone()
            .expect("a checkpoint is taken at campaign start");
        for (n, st) in self.nodes.iter_mut().zip(&snap.nodes) {
            n.ladder = st.ladder;
            n.trust = st.trust;
            n.profile_mean = st.profile_mean;
            n.fresh = st.fresh;
            n.dispatched_since_audit = st.dispatched_since_audit;
            n.completed_since_audit = st.completed_since_audit;
            n.covered = st.covered;
            n.next_seq = st.next_seq;
            n.last_applied_seq = st.last_applied_seq;
            n.last_report = st.last_report;
        }
        self.views = snap.views;
        self.scheduler = self.cfg.scheduler.build();
        self.scheduler.restore_cursor(snap.scheduler_cursor);
        self.covered_count = snap.covered_count;
        self.coverage90_tick = snap.coverage90_tick;
        self.journal_chain = snap.journal_chain;
        let records = self.journal.records();
        let replayed = records.len() as u64;
        for record in &records {
            self.journal_chain = fnv1a(self.journal_chain, &record.encode());
            self.replay_record(record);
        }
        // Liveness knowledge the cloud re-derives on contact rather
        // than from the journal: daemon deaths and active partitions.
        for ni in 0..self.nodes.len() {
            self.views[ni].alive = self.schedulable(ni);
            self.views[ni].partitioned =
                self.nodes[ni].partitioned_until.is_some_and(|t| now < t);
        }
        self.obs.incr("wal.replay", replayed);
        replayed
    }

    /// Compute payloads for every `TaskComplete` in the batch, possibly
    /// in parallel. Results are aligned to batch positions; ordering is
    /// fixed by the batch itself, so worker count is invisible. The
    /// closure captures only immutable fleet truth — never the
    /// scheduler or any RNG state.
    fn compute_payloads(&self, batch: &[SimEvent]) -> Vec<Option<Vec<f64>>> {
        let completes: Vec<(usize, u32, TaskKind, u64)> = batch
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| match ev.kind {
                // Replay deliveries never need a payload: the dedup
                // guard drops them before the data is looked at.
                EventKind::TaskComplete {
                    node,
                    kind,
                    seq,
                    replay: false,
                } => Some((i, node, kind, seq)),
                _ => None,
            })
            .collect();
        let workers = self.cfg.workers.max(1);
        let meas_seed = self.cfg.seed ^ MEAS_SALT;
        let base = &self.base;
        let nodes = &self.nodes;
        let compute = move |&(bi, node, kind, seq): &(usize, u32, TaskKind, u64)| {
            let payload = measure_payload(
                meas_seed,
                node,
                seq,
                &base[kind.index()],
                nodes[node as usize].offset_db,
            );
            (bi, payload)
        };
        let computed: Vec<(usize, Vec<f64>)> = if workers >= 2 && completes.len() >= 2 {
            par_map(&completes, workers, |_, item| compute(item))
        } else {
            completes.iter().map(compute).collect()
        };
        let mut out: Vec<Option<Vec<f64>>> = vec![None; batch.len()];
        for (bi, payload) in computed {
            out[bi] = Some(payload);
        }
        out
    }

    fn schedulable(&self, node: usize) -> bool {
        self.nodes[node].daemon_alive
            && self.nodes[node].ladder.health().severity() < NodeHealth::Quarantined.severity()
    }

    fn apply_schedule_round(&mut self, ev: &SimEvent) {
        let now = ev.time;
        let assignments = {
            let view = FleetView {
                nodes: &self.views,
                now,
                timeout_ticks: self.cfg.timeout_ticks,
            };
            self.scheduler.assign(&view, self.cfg.capacity_per_round)
        };
        let assigned = assignments.len();
        for (node, kind) in assignments {
            let ni = node as usize;
            self.views[ni].in_flight[kind.index()] = Some(now);
            let (verdict, daemon_alive, seq) = {
                let n = &mut self.nodes[ni];
                n.dispatched_since_audit += 1;
                let seq = n.next_seq;
                n.next_seq += 1;
                let idx = n.attempts;
                n.attempts += 1;
                (
                    n.faults.attempt_verdict(idx, &mut n.link_rng),
                    n.daemon_alive,
                    seq,
                )
            };
            // Write-ahead: the dispatch is journaled before any of its
            // effects exist, so a crash mid-round replays it exactly.
            self.journal_append(WalRecord::Dispatch {
                node: node as u64,
                kind: kind.index() as u8,
                seq,
                tick: now,
            });
            let outcome: &str;
            match verdict {
                AttemptVerdict::DroppedRequest => {
                    self.dropped_requests += 1;
                    self.obs.incr("sim.dispatch.dropped_request", 1);
                    outcome = "drop_req";
                }
                _ if !daemon_alive => {
                    // Request reached a dead daemon: silence, timeout.
                    self.obs.incr("sim.dispatch.dead_node", 1);
                    outcome = "dead";
                }
                _ => {
                    let (node_verdict, latency) = {
                        let n = &mut self.nodes[ni];
                        let nv = n.faults.node_verdict(n.served);
                        if !matches!(nv, NodeVerdict::Crashed) {
                            // The daemon received the request: its served
                            // counter advances exactly as the threaded
                            // service loop's would.
                            n.served += 1;
                        }
                        (nv, n.faults.latency_ms)
                    };
                    match node_verdict {
                        NodeVerdict::Crashed => {
                            self.nodes[ni].daemon_alive = false;
                            self.views[ni].alive = false;
                            self.crashed_nodes += 1;
                            self.obs.incr("sim.node.crashed", 1);
                            outcome = "crash";
                        }
                        NodeVerdict::Hang => {
                            self.obs.incr("sim.node.hung", 1);
                            outcome = "hang";
                        }
                        NodeVerdict::Service => {
                            let arrival = now + kind.duration_ticks() + latency;
                            let key = task_key(node, kind, seq);
                            match verdict {
                                AttemptVerdict::Deliver { .. } => {
                                    self.obs.incr("sim.dispatch.delivered", 1);
                                    self.queue.push_keyed(
                                        arrival,
                                        key,
                                        EventKind::TaskComplete {
                                            node,
                                            kind,
                                            seq,
                                            replay: false,
                                        },
                                    );
                                    outcome = "deliver";
                                }
                                AttemptVerdict::Duplicated { .. } => {
                                    // The report arrives intact — twice.
                                    // The copy lands a tick later and
                                    // must die at the dedup guard.
                                    self.obs.incr("sim.dispatch.duplicated", 1);
                                    self.duplicated_deliveries += 1;
                                    self.injected_replays += 1;
                                    self.queue.push_keyed(
                                        arrival,
                                        key,
                                        EventKind::TaskComplete {
                                            node,
                                            kind,
                                            seq,
                                            replay: false,
                                        },
                                    );
                                    self.queue.push_keyed(
                                        arrival + 1,
                                        key ^ KEY_REPLAY,
                                        EventKind::TaskComplete {
                                            node,
                                            kind,
                                            seq,
                                            replay: true,
                                        },
                                    );
                                    outcome = "duplicate";
                                }
                                AttemptVerdict::Reordered { .. } => {
                                    // The fresh report arrives normally,
                                    // but the link also retransmits the
                                    // node's previous (already-applied)
                                    // report out of order behind it.
                                    self.obs.incr("sim.dispatch.reordered", 1);
                                    self.reordered_deliveries += 1;
                                    self.queue.push_keyed(
                                        arrival,
                                        key,
                                        EventKind::TaskComplete {
                                            node,
                                            kind,
                                            seq,
                                            replay: false,
                                        },
                                    );
                                    if let Some((lk, lseq)) = self.nodes[ni].last_report {
                                        self.injected_replays += 1;
                                        self.queue.push_keyed(
                                            arrival + 1,
                                            task_key(node, lk, lseq) ^ KEY_REPLAY,
                                            EventKind::TaskComplete {
                                                node,
                                                kind: lk,
                                                seq: lseq,
                                                replay: true,
                                            },
                                        );
                                    }
                                    outcome = "reorder";
                                }
                                AttemptVerdict::Corrupted => {
                                    self.queue.push_keyed(
                                        arrival,
                                        key,
                                        EventKind::DeliveryCorrupt { node, kind, seq },
                                    );
                                    outcome = "corrupt";
                                }
                                AttemptVerdict::DroppedResponse => {
                                    // The node did the work; the reply
                                    // vanished on the wire.
                                    self.dropped_responses += 1;
                                    self.obs.incr("sim.dispatch.dropped_response", 1);
                                    outcome = "drop_resp";
                                }
                                AttemptVerdict::DroppedRequest => unreachable!("handled above"),
                            }
                        }
                    }
                }
            }
            self.log_line(format!(
                "t={} id={} ev=dispatch node={} kind={} out={}",
                now,
                ev.id,
                node,
                kind.label(),
                outcome
            ));
        }
        self.obs.incr("sim.dispatches", assigned as u64);
        self.log_line(format!("t={} id={} ev=sched assigned={}", now, ev.id, assigned));
        let next = now + self.cfg.schedule_period;
        if next < self.cfg.max_ticks {
            self.queue
                .push_keyed(next, KEY_SCHED ^ next, EventKind::ScheduleRound);
        }
    }

    fn apply_task_complete(
        &mut self,
        ev: &SimEvent,
        node: u32,
        kind: TaskKind,
        seq: u64,
        replay: bool,
        payload: Option<Vec<f64>>,
    ) {
        let ni = node as usize;
        let ki = kind.index();
        // Dedup guard: the per-(node, kind) high-water mark turns
        // at-least-once delivery into exactly-once effects. The guard
        // judges purely by sequence number — the `replay` flag is only
        // ground truth for the safety monitor, never an input to the
        // decision.
        let stale = self.nodes[ni].last_applied_seq[ki].is_some_and(|high| seq <= high);
        if stale || replay {
            if replay && !stale {
                // An injected re-delivery slipped past the sequence
                // accounting: the guard would have double-applied it.
                self.monitor.violation(format!(
                    "dedup miss: replay node={} kind={} seq={} not below high-water",
                    node,
                    kind.label(),
                    seq
                ));
            }
            self.deduped_reports += 1;
            self.obs.incr("sim.dedup.dropped", 1);
            self.log_line(format!(
                "t={} id={} ev=dedup node={} kind={} seq={}",
                ev.time,
                ev.id,
                node,
                kind.label(),
                seq
            ));
            return;
        }
        let payload = payload.expect("payload computed for every first delivery");
        self.views[ni].in_flight[ki] = None;
        self.views[ni].last_update[ki] = Some(ev.time);
        let mean = payload.iter().sum::<f64>() / payload.len() as f64;
        // Write-ahead: journal the effect before applying it.
        self.journal_append(WalRecord::ReportApplied {
            node: node as u64,
            kind: ki as u8,
            seq,
            value_bits: mean.to_bits(),
            tick: ev.time,
        });
        // Fold the payload bits into the digest so the digest witnesses
        // measurement *values*, not just event order.
        let mut fp = FNV_OFFSET;
        for v in &payload {
            fp = fnv1a(fp, &v.to_bits().to_le_bytes());
        }
        let n = &mut self.nodes[ni];
        n.profile_mean[ki] = Some(mean);
        n.fresh[ki] = true;
        n.completed_since_audit += 1;
        n.last_applied_seq[ki] = Some(seq);
        n.last_report = Some((kind, seq));
        if !n.covered[ki] {
            n.covered[ki] = true;
            if n.covered.iter().all(|&c| c) {
                self.covered_count += 1;
                if self.coverage90_tick.is_none()
                    && self.covered_count * 10 >= self.cfg.nodes * 9
                {
                    self.coverage90_tick = Some(ev.time);
                    self.log_line(format!("t={} id={} ev=coverage90", ev.time, ev.id));
                }
            }
        }
        self.completed_tasks += 1;
        self.obs.incr("sim.task.completed", 1);
        self.log_line(format!(
            "t={} id={} ev=complete node={} kind={} fp={:016x}",
            ev.time,
            ev.id,
            node,
            kind.label(),
            fp
        ));
    }

    fn apply_delivery_corrupt(&mut self, ev: &SimEvent, node: u32, kind: TaskKind, seq: u64) {
        // A garbled reply still tells the cloud the attempt is dead, so
        // the pair is immediately reschedulable — unlike a silent drop,
        // which has to age out through the timeout. Known-dead is cloud
        // state: journal it, or a crash right after would resurrect the
        // dispatch from its `Dispatch` record.
        self.journal_append(WalRecord::DeliveryFailed {
            node: node as u64,
            kind: kind.index() as u8,
            seq,
            tick: ev.time,
        });
        self.views[node as usize].in_flight[kind.index()] = None;
        self.corrupt_deliveries += 1;
        self.obs.incr("sim.delivery.corrupt", 1);
        self.log_line(format!(
            "t={} id={} ev=corrupt node={} kind={}",
            ev.time,
            ev.id,
            node,
            kind.label()
        ));
    }

    fn apply_partition_start(&mut self, ev: &SimEvent, spec: u32) {
        let p = self.cfg.recovery.partitions[spec as usize];
        let mut severed = 0u32;
        for ni in 0..self.nodes.len() {
            if p.modulus != 0 && (ni as u32) % p.modulus == p.remainder {
                self.nodes[ni].partitioned_until = Some(p.heal_tick);
                self.views[ni].partitioned = true;
                severed += 1;
            }
        }
        self.obs.incr("sim.partition.started", 1);
        self.log_line(format!(
            "t={} id={} ev=partition spec={} severed={} heal={}",
            ev.time, ev.id, spec, severed, p.heal_tick
        ));
    }

    fn apply_partition_heal(&mut self, ev: &SimEvent, spec: u32) {
        let p = self.cfg.recovery.partitions[spec as usize];
        let mut healed = 0u32;
        for ni in 0..self.nodes.len() {
            if p.modulus != 0 && (ni as u32) % p.modulus == p.remainder {
                self.nodes[ni].partitioned_until = None;
                self.views[ni].partitioned = false;
                healed += 1;
            }
        }
        self.obs.incr("sim.partition.healed", 1);
        self.log_line(format!(
            "t={} id={} ev=heal spec={} healed={}",
            ev.time, ev.id, spec, healed
        ));
    }

    /// The cloud process dies. Every cloud-side structure is torn down
    /// and rebuilt from the latest checkpoint snapshot plus the journal;
    /// the safety monitor then asserts the recovered state and hash
    /// chain are bit-identical to what the live process held at the
    /// instant of the crash.
    fn apply_cloud_crash(&mut self, ev: &SimEvent) {
        let now = ev.time;
        let live_digest = self.cloud_state_digest();
        let live_chain = self.journal_chain;
        // Tear down: wipe the cloud-side fields so recovery provably
        // starts from nothing but snapshot + journal.
        for n in &mut self.nodes {
            n.ladder = HealthLadder::default();
            n.trust = 0.0;
            n.profile_mean = [None; 3];
            n.fresh = [false; 3];
            n.dispatched_since_audit = 0;
            n.completed_since_audit = 0;
            n.covered = [false; 3];
            n.next_seq = 0;
            n.last_applied_seq = [None; 3];
            n.last_report = None;
        }
        self.views = vec![NodeView::fresh(); self.cfg.nodes];
        self.covered_count = 0;
        self.coverage90_tick = None;
        let replayed = self.recover_cloud(now);
        self.replayed_records += replayed;
        self.recoveries += 1;
        self.obs.incr("sim.recoveries", 1);
        if self.cfg.monitor_invariants {
            let recovered = self.cloud_state_digest();
            if recovered != live_digest {
                self.monitor.violation(format!(
                    "recovery divergence at t={now}: recovered {recovered:016x} != live {live_digest:016x}"
                ));
            }
            if self.journal_chain != live_chain {
                self.monitor.violation(format!(
                    "journal hash chain broken at t={now}: {:016x} != {live_chain:016x}",
                    self.journal_chain
                ));
            }
        }
        let delay = self.cfg.recovery.restart_delay_ticks;
        if delay > 0 {
            let restart = now + delay;
            self.cloud_down_until = Some(restart);
            self.recovery_ticks += delay;
            if restart < self.cfg.max_ticks {
                self.queue
                    .push_keyed(restart, KEY_CRASH ^ restart, EventKind::CloudRestart);
            }
        }
        self.log_line(format!(
            "t={} id={} ev=cloud_crash replayed={} down_ticks={}",
            now, ev.id, replayed, delay
        ));
    }

    fn apply_cloud_restart(&mut self, ev: &SimEvent) {
        self.cloud_down_until = None;
        self.obs.incr("sim.cloud.restarts", 1);
        self.log_line(format!("t={} id={} ev=cloud_restart", ev.time, ev.id));
    }

    fn apply_audit_round(&mut self, ev: &SimEvent) {
        let now = ev.time;
        // Fused fleet profile per kind: median of the latest means. The
        // cloud has no ground truth; the crowd is its reference, exactly
        // as in the paper's fusion story.
        let mut medians = [f64::NAN; 3];
        for (ki, median) in medians.iter_mut().enumerate() {
            let mut means: Vec<f64> = self
                .nodes
                .iter()
                .filter_map(|n| n.profile_mean[ki])
                .collect();
            if !means.is_empty() {
                means.sort_unstable_by(|a, b| a.total_cmp(b));
                *median = means[means.len() / 2];
            }
        }
        self.journal_append(WalRecord::RoundStarted {
            seed: self.cfg.seed,
            tick: now,
        });
        let mut audited = 0u32;
        let mut anomalies = 0u32;
        let mut quarantined_or_worse = 0u32;
        for ni in 0..self.nodes.len() {
            let n = &mut self.nodes[ni];
            if n.dispatched_since_audit == 0 && n.completed_since_audit == 0 {
                continue;
            }
            // A partitioned node is unreachable through no fault of its
            // own: the cloud severed it (or knows it is severed), so its
            // ladder and trust are left untouched until it heals.
            if n.partitioned_until.is_some_and(|t| now < t) {
                continue;
            }
            audited += 1;
            let link_ok = n.completed_since_audit > 0;
            let anomalous = link_ok
                && (0..3).any(|ki| {
                    n.fresh[ki]
                        && !medians[ki].is_nan()
                        && (n.profile_mean[ki].expect("fresh implies mean") - medians[ki]).abs()
                            > 3.0
                });
            let health = n.ladder.record(&self.policy, link_ok, anomalous);
            if anomalous {
                anomalies += 1;
                n.trust = (n.trust - 0.15).max(0.0);
            } else if link_ok {
                n.trust = (n.trust + 0.03).min(1.0);
            } else {
                n.trust = (n.trust - 0.05).max(0.0);
            }
            if health.severity() >= NodeHealth::Quarantined.severity() {
                quarantined_or_worse += 1;
            }
            n.dispatched_since_audit = 0;
            n.completed_since_audit = 0;
            n.fresh = [false; 3];
            let (trust_bits, severity) = {
                let n = &self.nodes[ni];
                (n.trust.to_bits(), n.ladder.health().severity())
            };
            self.journal_append(WalRecord::AuditApplied {
                node: ni as u64,
                trust_bits,
                health: severity,
            });
            let alive = self.schedulable(ni);
            self.views[ni].alive = alive;
        }
        if anomalies > 0 {
            self.anomaly_flags += 1;
        }
        self.journal_append(WalRecord::RoundCompleted {
            seed: self.cfg.seed,
            effects: audited,
        });
        // Audit effects never outlive the round un-checkpointed: the
        // snapshot right here is why recovery only ever replays
        // dispatch/report records.
        self.checkpoint(now);
        if self.cfg.monitor_invariants {
            self.check_invariants(now);
        }
        self.obs.incr("sim.audit.rounds", 1);
        self.obs.incr("sim.audit.anomalies", anomalies as u64);
        self.obs
            .set_gauge("sim.coverage", self.covered_count as f64 / self.cfg.nodes.max(1) as f64);
        self.log_line(format!(
            "t={} id={} ev=audit audited={} anomalies={} quarantined={}",
            now, ev.id, audited, anomalies, quarantined_or_worse
        ));
        let next = now + self.cfg.audit_period;
        if next < self.cfg.max_ticks {
            self.queue
                .push_keyed(next, KEY_AUDIT ^ next, EventKind::AuditRound);
        }
    }

    /// Per-audit-round safety sweep. Violations accumulate in the
    /// monitor and surface in [`CampaignResult::invariant_violations`].
    fn check_invariants(&mut self, now: u64) {
        for (ni, n) in self.nodes.iter().enumerate() {
            if !(0.0..=1.0).contains(&n.trust) {
                self.monitor
                    .violation(format!("t={now}: node {ni} trust {} out of [0,1]", n.trust));
            }
            for ki in 0..3 {
                if let Some(high) = n.last_applied_seq[ki] {
                    if high >= n.next_seq {
                        self.monitor.violation(format!(
                            "t={now}: node {ni} kind {ki} applied seq {high} >= next_seq {}",
                            n.next_seq
                        ));
                    }
                }
            }
        }
    }

    /// Defer a delivery that cannot reach a live cloud to `until`
    /// (+1 for replays, preserving original-before-copy order through
    /// the backlog so the dedup high-water mark sees them in sequence).
    fn backlog(&mut self, ev: &SimEvent, node: u32, kind: TaskKind, seq: u64, replay: bool, until: u64) {
        self.backlogged_reports += 1;
        self.obs.incr("sim.partition.backlogged", 1);
        let key = task_key(node, kind, seq)
            ^ KEY_BACKLOG
            ^ if replay { KEY_REPLAY } else { 0 };
        let target = until + replay as u64;
        self.queue.push_keyed(
            target,
            key,
            EventKind::TaskComplete {
                node,
                kind,
                seq,
                replay,
            },
        );
        self.log_line(format!(
            "t={} id={} ev=backlog node={} kind={} seq={} until={}",
            ev.time,
            ev.id,
            node,
            kind.label(),
            seq,
            target
        ));
    }

    fn apply(&mut self, ev: &SimEvent, payload: Option<Vec<f64>>) {
        self.events_applied += 1;
        self.final_tick = ev.time;
        self.obs.incr("sim.events", 1);
        match ev.kind {
            EventKind::ScheduleRound => {
                if self.cloud_down(ev.time) {
                    // The dead cloud schedules nothing; the round
                    // re-arms so cadence resumes after restart.
                    self.obs.incr("sim.sched.skipped", 1);
                    let next = ev.time + self.cfg.schedule_period;
                    if next < self.cfg.max_ticks {
                        self.queue
                            .push_keyed(next, KEY_SCHED ^ next, EventKind::ScheduleRound);
                    }
                } else {
                    self.apply_schedule_round(ev);
                }
            }
            EventKind::TaskComplete {
                node,
                kind,
                seq,
                replay,
            } => {
                if let Some(until) = self.deferred_until(node, ev.time) {
                    self.backlog(ev, node, kind, seq, replay, until);
                } else {
                    self.apply_task_complete(ev, node, kind, seq, replay, payload);
                }
            }
            EventKind::DeliveryCorrupt { node, kind, seq } => {
                if let Some(until) = self.deferred_until(node, ev.time) {
                    self.backlogged_reports += 1;
                    self.obs.incr("sim.partition.backlogged", 1);
                    self.queue.push_keyed(
                        until,
                        task_key(node, kind, seq) ^ KEY_BACKLOG,
                        EventKind::DeliveryCorrupt { node, kind, seq },
                    );
                } else {
                    self.apply_delivery_corrupt(ev, node, kind, seq);
                }
            }
            EventKind::AuditRound => {
                if self.cloud_down(ev.time) {
                    self.obs.incr("sim.audit.skipped", 1);
                    let next = ev.time + self.cfg.audit_period;
                    if next < self.cfg.max_ticks {
                        self.queue
                            .push_keyed(next, KEY_AUDIT ^ next, EventKind::AuditRound);
                    }
                } else {
                    self.apply_audit_round(ev);
                }
            }
            EventKind::PartitionStart { spec } => self.apply_partition_start(ev, spec),
            EventKind::PartitionHeal { spec } => self.apply_partition_heal(ev, spec),
            EventKind::CloudCrash => self.apply_cloud_crash(ev),
            EventKind::CloudRestart => self.apply_cloud_restart(ev),
            EventKind::CampaignEnd => {
                self.ended = true;
                self.log_line(format!("t={} id={} ev=end", ev.time, ev.id));
            }
        }
    }

    fn finish(mut self) -> CampaignResult {
        // Fold the final trust table and health states into the digest:
        // the digest is the campaign, not just its event order.
        let mut digest = self.digest;
        for n in &self.nodes {
            digest = fnv1a(digest, &n.trust.to_bits().to_le_bytes());
            digest = fnv1a(digest, &[n.ladder.health().severity()]);
            digest = fnv1a(digest, &n.served.to_le_bytes());
        }
        let state_digest = self.cloud_state_digest();
        let mut health_counts: BTreeMap<String, usize> = BTreeMap::new();
        for n in &self.nodes {
            *health_counts
                .entry(format!("{:?}", n.ladder.health()))
                .or_insert(0) += 1;
        }
        self.obs.set_gauge("wal.appends", self.journal.appends() as f64);
        self.obs.set_gauge("wal.syncs", self.journal.syncs() as f64);
        self.obs
            .set_gauge("recovery_ticks", self.recovery_ticks as f64);
        CampaignResult {
            nodes: self.cfg.nodes,
            scheduler: self.cfg.scheduler.label().to_string(),
            events: self.events_applied,
            final_tick: self.final_tick,
            digest: format!("{digest:016x}"),
            coverage90_tick: self.coverage90_tick,
            covered_nodes: self.covered_count,
            completed_tasks: self.completed_tasks,
            dropped_requests: self.dropped_requests,
            dropped_responses: self.dropped_responses,
            corrupt_deliveries: self.corrupt_deliveries,
            crashed_nodes: self.crashed_nodes,
            anomaly_flags: self.anomaly_flags,
            state_digest: format!("{state_digest:016x}"),
            recoveries: self.recoveries,
            replayed_records: self.replayed_records,
            recovery_ticks: self.recovery_ticks,
            wal_appends: self.journal.appends(),
            wal_syncs: self.journal.syncs(),
            backlogged_reports: self.backlogged_reports,
            deduped_reports: self.deduped_reports,
            duplicated_deliveries: self.duplicated_deliveries,
            reordered_deliveries: self.reordered_deliveries,
            invariant_violations: std::mem::take(&mut self.monitor.violations),
            health_counts,
            trust_table: self.nodes.iter().map(|n| n.trust.to_bits()).collect(),
            log: std::mem::take(&mut self.log),
        }
    }
}

/// Run a campaign with metrics disabled.
pub fn run(config: &CampaignConfig) -> CampaignResult {
    run_with_obs(config, &Obs::disabled())
}

/// Run a campaign, publishing `sim.*` metrics to `obs` and advancing
/// the `aircal-obs` virtual clock to each batch's tick.
pub fn run_with_obs(config: &CampaignConfig, obs: &Obs) -> CampaignResult {
    let mut campaign = Campaign::new(config, obs);
    // Checkpoint the pristine cloud before any event fires, so even a
    // crash before the first audit has a snapshot to recover onto.
    campaign.checkpoint(0);
    campaign
        .queue
        .push_keyed(0, KEY_SCHED, EventKind::ScheduleRound);
    if config.audit_period < config.max_ticks {
        campaign.queue.push_keyed(
            config.audit_period,
            KEY_AUDIT ^ config.audit_period,
            EventKind::AuditRound,
        );
    }
    for (si, p) in config.recovery.partitions.iter().enumerate() {
        if p.start_tick < config.max_ticks && p.heal_tick > p.start_tick {
            campaign.queue.push_keyed(
                p.start_tick,
                KEY_PART ^ (si as u64),
                EventKind::PartitionStart { spec: si as u32 },
            );
            campaign.queue.push_keyed(
                p.heal_tick.min(config.max_ticks),
                KEY_PART ^ (si as u64) ^ 0x8000_0000_0000_0000,
                EventKind::PartitionHeal { spec: si as u32 },
            );
        }
    }
    for &t in &config.recovery.crash_ticks {
        if t < config.max_ticks {
            campaign
                .queue
                .push_keyed(t, KEY_CRASH ^ t, EventKind::CloudCrash);
        }
    }
    campaign
        .queue
        .push_keyed(config.max_ticks, KEY_END, EventKind::CampaignEnd);

    let mut batch: Vec<SimEvent> = Vec::new();
    while let Some(tick) = campaign.queue.pop_batch(&mut batch) {
        aircal_obs::trace::advance_clock_to(tick);
        let payloads = campaign.compute_payloads(&batch);
        for (ev, payload) in batch.iter().zip(payloads) {
            campaign.apply(ev, payload);
        }
        if campaign.ended {
            break;
        }
    }
    campaign.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> CampaignConfig {
        let mut cfg = CampaignConfig::paper_default(24, seed);
        cfg.max_ticks = 300;
        cfg.record_log = true;
        cfg
    }

    #[test]
    fn same_seed_same_workers_or_not_is_bit_identical() {
        let mut a_cfg = small_config(11);
        let mut b_cfg = small_config(11);
        a_cfg.workers = 1;
        b_cfg.workers = 8;
        let a = run(&a_cfg);
        let b = run(&b_cfg);
        assert_eq!(a, b, "worker count must be invisible to the outcome");
        assert!(!a.log.is_empty());
        assert!(a.completed_tasks > 0, "campaign made progress");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small_config(11));
        let b = run(&small_config(12));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn chaos_paths_fire_at_fleet_scale() {
        let mut cfg = CampaignConfig::paper_default(200, 5);
        cfg.max_ticks = 600;
        let r = run(&cfg);
        assert!(r.dropped_requests > 0, "lossy links drop requests");
        assert!(r.dropped_responses > 0, "lossy links drop responses");
        assert!(r.crashed_nodes > 0, "some daemons crash");
        assert!(r.covered_nodes > 150, "most of the fleet still converges");
        assert!(
            r.anomaly_flags > 0,
            "miscalibrated nodes get flagged by audits"
        );
        let evicted_or_quarantined: usize = r
            .health_counts
            .iter()
            .filter(|(k, _)| k.as_str() == "Quarantined" || k.as_str() == "Evicted")
            .map(|(_, v)| *v)
            .sum();
        assert!(
            evicted_or_quarantined > 0,
            "the health ladder bites: {:?}",
            r.health_counts
        );
    }

    #[test]
    fn duplicates_and_reorders_leave_state_bit_identical() {
        // The exactly-once property: injected at-least-once delivery
        // (duplicated frames, stale retransmissions) must not move one
        // bit of cloud state relative to the fault-free twin.
        let mut clean = CampaignConfig::paper_default(64, 0xD0D0);
        clean.max_ticks = 400;
        let mut chaotic = clean.clone();
        chaotic.recovery.duplicate_fraction = 0.5;
        chaotic.recovery.reorder_fraction = 0.5;
        let a = run(&clean);
        let b = run(&chaotic);
        assert!(b.duplicated_deliveries > 0, "duplicates were injected");
        assert!(b.reordered_deliveries > 0, "reorders were injected");
        assert!(b.deduped_reports > 0, "the dedup guard fired");
        assert_eq!(a.deduped_reports, 0, "fault-free run never dedups");
        assert_eq!(a.state_digest, b.state_digest, "exactly-once effects");
        assert_eq!(a.trust_table, b.trust_table);
        assert!(b.invariant_violations.is_empty(), "{:?}", b.invariant_violations);
    }

    #[test]
    fn cloud_crashes_recover_bit_identically() {
        let mut clean = CampaignConfig::paper_default(64, 0xC4A5);
        clean.max_ticks = 400;
        let mut crashy = clean.clone();
        crashy.recovery.crash_ticks = vec![77, 233];
        let a = run(&clean);
        let b = run(&crashy);
        assert_eq!(b.recoveries, 2);
        assert!(b.replayed_records > 0, "mid-round crashes replay the journal");
        assert!(b.invariant_violations.is_empty(), "{:?}", b.invariant_violations);
        assert_eq!(
            a.state_digest, b.state_digest,
            "instant recovery is transparent: snapshot + journal rebuild the exact state"
        );
        assert_eq!(a.trust_table, b.trust_table);
    }

    #[test]
    fn partition_skips_scheduling_and_drains_backlog_after_heal() {
        let mut cfg = CampaignConfig::paper_default(64, 0xBEEF);
        cfg.max_ticks = 600;
        cfg.recovery.partitions = vec![PartitionSpec {
            start_tick: 100,
            heal_tick: 220,
            modulus: 4,
            remainder: 1,
        }];
        let r = run(&cfg);
        assert!(r.invariant_violations.is_empty(), "{:?}", r.invariant_violations);
        // Liveness: the campaign still converges to full-fleet coverage
        // despite a quarter of the fleet being severed for 120 ticks.
        assert!(
            r.covered_nodes > 55,
            "coverage survives the partition: {}",
            r.covered_nodes
        );
        assert!(
            r.coverage90_tick.is_some(),
            "90% coverage reached within the horizon"
        );
    }

    #[test]
    fn delayed_restart_defers_scheduling_and_still_recovers() {
        let mut cfg = CampaignConfig::paper_default(48, 0x0FF);
        cfg.max_ticks = 500;
        cfg.recovery.crash_ticks = vec![151];
        cfg.recovery.restart_delay_ticks = 40;
        let r = run(&cfg);
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.recovery_ticks, 40);
        assert!(r.invariant_violations.is_empty(), "{:?}", r.invariant_violations);
        assert!(
            r.coverage90_tick.is_some(),
            "liveness: coverage still reached despite 40 ticks of downtime"
        );
        // Same seed, same downtime → bit-identical replay of the whole
        // crash-and-recover campaign.
        let again = run(&cfg);
        assert_eq!(r, again);
    }

    #[test]
    fn combined_faults_hold_every_invariant_at_scale() {
        let mut cfg = CampaignConfig::paper_default(200, 0xFEED);
        cfg.max_ticks = 800;
        cfg.recovery.crash_ticks = vec![123, 457];
        cfg.recovery.partitions = vec![PartitionSpec {
            start_tick: 200,
            heal_tick: 320,
            modulus: 5,
            remainder: 2,
        }];
        cfg.recovery.duplicate_fraction = 0.3;
        cfg.recovery.reorder_fraction = 0.3;
        let r = run(&cfg);
        assert!(r.invariant_violations.is_empty(), "{:?}", r.invariant_violations);
        assert!(r.deduped_reports > 0);
        assert_eq!(r.recoveries, 2);
        assert!(r.covered_nodes > 150, "fleet converges: {}", r.covered_nodes);
        // Worker count stays invisible under every fault class at once.
        let mut wide = cfg.clone();
        wide.workers = 8;
        assert_eq!(run(&wide), r);
    }

    #[test]
    fn trust_separates_honest_from_miscalibrated() {
        let mut cfg = CampaignConfig::paper_default(120, 9);
        cfg.max_ticks = 900;
        let r = run(&cfg);
        // Recover which nodes were seeded miscalibrated by re-deriving
        // the fleet, then check the trust table split.
        let f = &cfg.faults;
        let mut cheat_trust: Vec<f64> = Vec::new();
        let mut honest_trust: Vec<f64> = Vec::new();
        for i in 0..cfg.nodes as u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(
                cfg.seed ^ FAULT_SALT,
                i,
            ));
            let _offset: f64 = rng.gen_range(-1.0..1.0);
            let lossy = rng.gen_range(0.0..1.0) < f.lossy_fraction;
            let crashy = rng.gen_range(0.0..1.0) < f.crash_fraction;
            let _corrupting = rng.gen_range(0.0..1.0) < f.corrupt_fraction;
            let miscal = rng.gen_range(0.0..1.0) < f.miscalibrated_fraction;
            let trust = f64::from_bits(r.trust_table[i as usize]);
            if miscal {
                cheat_trust.push(trust);
            } else if !lossy && !crashy {
                honest_trust.push(trust);
            }
        }
        assert!(!cheat_trust.is_empty(), "seed 9 produces miscalibrated nodes");
        let cheat_max = cheat_trust.iter().cloned().fold(f64::MIN, f64::max);
        let honest_mean = honest_trust.iter().sum::<f64>() / honest_trust.len() as f64;
        assert!(
            cheat_max < honest_mean,
            "every miscalibrated node ({cheat_max}) below honest mean ({honest_mean})"
        );
    }
}
