//! Measurement scheduling policies.
//!
//! The paper sketches measurement scheduling as future work: the cloud
//! decides *which* node measures *what* next, under a per-round budget.
//! The engine exposes that decision through the [`Scheduler`] trait and
//! ships the two policies the ISSUE calls for: a round-robin baseline
//! and a utility-driven policy that always refreshes the stalest
//! frequency profile first. Both are pure functions of the
//! [`FleetView`] they are handed (plus their own cursor state), so runs
//! replay bit-identically.

use crate::event::TaskKind;
use serde::{Deserialize, Serialize};

/// What the scheduler may know about one node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Schedulable: daemon not crashed and health above quarantine.
    pub alive: bool,
    /// Severed from the cloud by an active network partition. The
    /// scheduler skips partitioned nodes instead of burning round
    /// capacity on dispatches that cannot arrive; their backlogged
    /// reports drain once the partition heals.
    pub partitioned: bool,
    /// Virtual tick of the last completed measurement, per task kind.
    pub last_update: [Option<u64>; 3],
    /// Dispatch tick of the outstanding attempt, per task kind, if any.
    pub in_flight: [Option<u64>; 3],
}

impl NodeView {
    pub fn fresh() -> Self {
        Self {
            alive: true,
            partitioned: false,
            last_update: [None; 3],
            in_flight: [None; 3],
        }
    }
}

/// The scheduler's read-only window onto the fleet at one round.
#[derive(Debug)]
pub struct FleetView<'a> {
    pub nodes: &'a [NodeView],
    /// Current virtual tick.
    pub now: u64,
    /// Ticks after which an outstanding attempt is presumed lost and
    /// the pair becomes schedulable again.
    pub timeout_ticks: u64,
}

impl FleetView<'_> {
    /// May `(node, kind)` be dispatched this round? Dead and partitioned
    /// nodes never; in-flight pairs only once their attempt has timed
    /// out.
    pub fn eligible(&self, node: usize, kind: TaskKind) -> bool {
        let v = &self.nodes[node];
        v.alive
            && !v.partitioned
            && match v.in_flight[kind.index()] {
                None => true,
                Some(t) => self.now.saturating_sub(t) >= self.timeout_ticks,
            }
    }
}

/// A measurement-scheduling policy. `assign` picks at most `capacity`
/// distinct `(node, task)` pairs for this round; the engine dispatches
/// them in the returned order.
pub trait Scheduler {
    fn name(&self) -> &'static str;
    fn assign(&mut self, fleet: &FleetView<'_>, capacity: usize) -> Vec<(u32, TaskKind)>;

    /// Opaque cursor state for crash-recovery snapshots. Stateless
    /// policies return 0; stateful ones encode whatever they need to
    /// resume bit-identically after [`Scheduler::restore_cursor`].
    fn cursor_state(&self) -> u64 {
        0
    }

    /// Restore the cursor captured by [`Scheduler::cursor_state`].
    fn restore_cursor(&mut self, _state: u64) {}
}

/// Baseline: walk the `(node, kind)` lattice in fixed order, resuming
/// where the previous round left off. A pair whose dispatch was lost is
/// not retried until the cursor has lapped the whole fleet — that lap
/// is exactly the latency gap the utility policy closes.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn cursor_state(&self) -> u64 {
        self.cursor as u64
    }

    fn restore_cursor(&mut self, state: u64) {
        self.cursor = state as usize;
    }

    fn assign(&mut self, fleet: &FleetView<'_>, capacity: usize) -> Vec<(u32, TaskKind)> {
        let lattice = fleet.nodes.len() * TaskKind::ALL.len();
        let mut out = Vec::new();
        let mut scanned = 0usize;
        while out.len() < capacity && scanned < lattice {
            let slot = self.cursor;
            self.cursor = (self.cursor + 1) % lattice;
            scanned += 1;
            let node = slot / TaskKind::ALL.len();
            let kind = TaskKind::ALL[slot % TaskKind::ALL.len()];
            if fleet.eligible(node, kind) {
                out.push((node as u32, kind));
            }
        }
        out
    }
}

/// The paper's measurement-scheduling sketch: refresh the stalest
/// frequency profile first. Never-measured pairs are infinitely stale;
/// ties break by `(node, kind)` so the order is total and seedless.
/// Because staleness is re-scored every round, a pair whose dispatch
/// was lost jumps back to the head of the queue the moment its attempt
/// times out, instead of waiting for a round-robin lap.
#[derive(Debug, Default, Clone)]
pub struct UtilityScheduler;

impl Scheduler for UtilityScheduler {
    fn name(&self) -> &'static str {
        "utility"
    }

    fn assign(&mut self, fleet: &FleetView<'_>, capacity: usize) -> Vec<(u32, TaskKind)> {
        let mut candidates: Vec<(u64, u32, TaskKind)> = Vec::new();
        for (node, view) in fleet.nodes.iter().enumerate() {
            for kind in TaskKind::ALL {
                if !fleet.eligible(node, kind) {
                    continue;
                }
                let staleness = match view.last_update[kind.index()] {
                    None => u64::MAX,
                    Some(t) => fleet.now.saturating_sub(t),
                };
                candidates.push((staleness, node as u32, kind));
            }
        }
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        candidates
            .into_iter()
            .take(capacity)
            .map(|(_, node, kind)| (node, kind))
            .collect()
    }
}

/// Serializable policy selector, so configs (and proptest strategies)
/// can name a policy without carrying trait objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    RoundRobin,
    UtilityDriven,
}

impl SchedulerKind {
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::<RoundRobinScheduler>::default(),
            SchedulerKind::UtilityDriven => Box::<UtilityScheduler>::default(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::UtilityDriven => "utility",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<NodeView> {
        vec![NodeView::fresh(); n]
    }

    #[test]
    fn round_robin_resumes_at_cursor_and_skips_ineligible() {
        let mut nodes = fleet(3);
        nodes[1].alive = false;
        let view = FleetView {
            nodes: &nodes,
            now: 0,
            timeout_ticks: 10,
        };
        let mut rr = RoundRobinScheduler::default();
        let first = rr.assign(&view, 4);
        // Node 1's three slots are skipped: 0/adsb, 0/tv, 0/cells, 2/adsb.
        assert_eq!(
            first,
            vec![
                (0, TaskKind::AdsbWindow),
                (0, TaskKind::TvSweep),
                (0, TaskKind::CellScan),
                (2, TaskKind::AdsbWindow),
            ]
        );
        let second = rr.assign(&view, 2);
        assert_eq!(second, vec![(2, TaskKind::TvSweep), (2, TaskKind::CellScan)]);
    }

    #[test]
    fn utility_prefers_stalest_and_respects_inflight_timeout() {
        let mut nodes = fleet(3);
        // Node 0 fully fresh at t=90; node 1 never measured; node 2
        // measured long ago.
        for k in 0..3 {
            nodes[0].last_update[k] = Some(90);
            nodes[2].last_update[k] = Some(10);
        }
        // Node 1's adsb is in flight and NOT yet timed out.
        nodes[1].in_flight[0] = Some(95);
        let view = FleetView {
            nodes: &nodes,
            now: 100,
            timeout_ticks: 10,
        };
        let mut u = UtilityScheduler;
        let picks = u.assign(&view, 3);
        // Never-measured pairs of node 1 win, minus the in-flight one;
        // then node 2's ancient profiles.
        assert_eq!(
            picks,
            vec![
                (1, TaskKind::TvSweep),
                (1, TaskKind::CellScan),
                (2, TaskKind::AdsbWindow),
            ]
        );

        // Once the attempt times out the pair is schedulable again and,
        // being never-measured, preempts everything.
        nodes[1].in_flight[0] = Some(80);
        let view = FleetView {
            nodes: &nodes,
            now: 100,
            timeout_ticks: 10,
        };
        let picks = u.assign(&view, 1);
        assert_eq!(picks, vec![(1, TaskKind::AdsbWindow)]);
    }
}
