//! Deterministic discrete-event campaign engine for fleet-scale runs.
//!
//! The paper's future-work section sketches *measurement scheduling*
//! across a crowd-sourced fleet; the ROADMAP north star is a system in
//! the Electrosense regime, where campaigns span thousands of volunteer
//! nodes. The lockstep audit loop in `aircal-net` is faithful but walks
//! every node every round — this crate replaces it for large fleets with
//! a discrete-event simulation:
//!
//! * [`event`] — virtual time, typed events, and the binary-heap queue
//!   keyed by `(virtual_time, tie_break_seed, id)` that drives a run;
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait with round-robin
//!   and utility-driven (stalest-profile-first) policies, the paper's
//!   measurement-scheduling sketch made concrete;
//! * [`engine`] — the campaign engine: per-node measurement tasks
//!   (ADS-B windows, TV sweeps, cell scans), link deliveries judged by
//!   the *real* [`aircal_net::LinkFaults`] chaos plans via
//!   [`aircal_net::LinkFaults::attempt_verdict`], node-side crash/hang
//!   semantics via [`aircal_net::LinkFaults::node_verdict`], and cloud
//!   audit rounds that ride the *real*
//!   [`aircal_net::HealthLadder`]/[`aircal_net::HealthPolicy`] lifecycle.
//!
//! # Determinism contract
//!
//! Identical seeds produce bit-identical event orders, event logs,
//! campaign digests, and trust tables at **any** worker count. The
//! engine earns this the same way the DSP pipelines do:
//!
//! 1. every event batch (all events sharing the earliest virtual time)
//!    is popped in heap order, which is a pure function of the queue
//!    contents;
//! 2. the only parallel phase computes measurement payloads, and each
//!    payload is a pure function of `(campaign seed, event id, node
//!    truth)` via [`aircal_dsp::derive_stream_seed`] — results come back
//!    in batch order from [`aircal_dsp::par_map`];
//! 3. every stateful RNG draw (link verdicts) happens in the sequential
//!    apply phase, in batch order.
//!
//! The engine also advances the `aircal-obs` virtual-tick clock
//! ([`aircal_obs::trace::advance_clock_to`]) to each batch's time, so
//! spans and `sim.*` metrics recorded during a run share the campaign's
//! clock.

pub mod engine;
pub mod event;
pub mod scheduler;

pub use engine::{
    run, run_with_obs, CampaignConfig, CampaignResult, FleetFaultsConfig, PartitionSpec,
    RecoveryFaultsConfig,
};
pub use event::{EventKind, EventQueue, SimEvent, TaskKind};
pub use scheduler::{
    FleetView, NodeView, RoundRobinScheduler, Scheduler, SchedulerKind, UtilityScheduler,
};
