//! SDR front-end simulation: the bridge from "received power in dBm" to
//! "IQ samples in full-scale units".
//!
//! The paper's sensor is a BladeRF xA9 at fixed gain. What matters for the
//! calibration pipeline is the front end's *transfer behaviour*:
//!
//! * a full-scale reference (which input power hits 0 dBFS at the
//!   configured gain) — this defines the dBFS axis of Figure 4;
//! * the noise floor (kTB + noise figure over the capture bandwidth) —
//!   this decides which ADS-B bursts decode and which cellular cells sync;
//! * impairments (CFO, DC offset, IQ imbalance, quantization) — small but
//!   present, and useful for robustness testing;
//! * faults ([`faults`]) — the mis-installations the paper wants to catch
//!   automatically: lossy cables, band-limited (deaf) antennas, dead
//!   front ends.
//!
//! IQ is synthesized **per burst** ([`Frontend::render_burst`]): the
//! simulation never materializes 30 s × 2 Msps of mostly-noise samples,
//! only the windows around transmissions plus the noise statistics.

pub mod capture;
pub mod faults;
pub mod frontend;

pub use capture::{BurstPlan, CaptureRenderer, RenderedWindow};
pub use faults::FrontendFault;
pub use frontend::{Frontend, FrontendConfig};
