//! Burst-mode capture rendering.
//!
//! A 30 s ADS-B survey at 2 Msps is 60 M samples, almost all of them pure
//! noise. The renderer instead groups scheduled bursts into *clusters* of
//! overlapping transmissions and synthesizes one IQ window per cluster
//! (guard noise + superimposed bursts + guard noise). Overlapping bursts
//! from different aircraft end up garbling each other exactly as on the
//! real channel; disjoint bursts never cost more than their own window.

use crate::frontend::Frontend;
use aircal_dsp::{derive_stream_seed, par_map_with, Cplx, DspScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A burst scheduled for rendering.
#[derive(Debug, Clone)]
pub struct BurstPlan {
    /// On-air start time, seconds.
    pub start_s: f64,
    /// Unit-amplitude baseband waveform.
    pub waveform: Vec<Cplx>,
    /// Power at the antenna port, dBm.
    pub rx_power_dbm: f64,
    /// Carrier phase at the first sample, radians.
    pub phase0: f64,
}

/// One rendered capture window.
#[derive(Debug, Clone)]
pub struct RenderedWindow {
    /// Absolute time of the first sample, seconds.
    pub start_s: f64,
    /// The IQ samples.
    pub samples: Vec<Cplx>,
}

impl RenderedWindow {
    /// Return this window's sample buffer to a scratch pool so the next
    /// render reuses it — the step that closes the zero-allocation loop
    /// (render → decode → recycle) in steady state.
    pub fn recycle(self, scratch: &mut DspScratch) {
        scratch.put_cplx(self.samples);
    }
}

/// Renders burst plans into capture windows through a [`Frontend`].
#[derive(Debug, Clone)]
pub struct CaptureRenderer {
    /// The front end everything is rendered through.
    pub frontend: Frontend,
    /// Noise guard before/after each cluster, samples.
    pub guard_samples: usize,
}

impl CaptureRenderer {
    /// Create a renderer with a default half-frame guard.
    pub fn new(frontend: Frontend) -> Self {
        Self {
            frontend,
            guard_samples: 128,
        }
    }

    /// Group plan indices into clusters of overlapping (guard-merged)
    /// bursts, each cluster sorted by start time and the cluster list
    /// itself in time order. Pure scheduling — no rendering, no RNG.
    pub fn cluster_plans(&self, plans: &[BurstPlan]) -> Vec<Vec<usize>> {
        if plans.is_empty() {
            return Vec::new();
        }
        let fs = self.frontend.config.sample_rate_hz;
        let guard_s = self.guard_samples as f64 / fs;
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by(|&a, &b| plans[a].start_s.partial_cmp(&plans[b].start_s).unwrap());

        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut cluster: Vec<usize> = Vec::new();
        let mut cluster_end = f64::NEG_INFINITY;
        for idx in order {
            let p = &plans[idx];
            let p_end = p.start_s + p.waveform.len() as f64 / fs + guard_s;
            if cluster.is_empty() || p.start_s <= cluster_end + guard_s {
                cluster.push(idx);
                cluster_end = cluster_end.max(p_end);
            } else {
                clusters.push(std::mem::take(&mut cluster));
                cluster.push(idx);
                cluster_end = p_end;
            }
        }
        if !cluster.is_empty() {
            clusters.push(cluster);
        }
        clusters
    }

    /// Render one cluster (indices into `plans`) into its window, using
    /// `rng` for the front end's noise. Working buffers come from
    /// `scratch`; the window's sample buffer is taken from the pool too,
    /// so recycling decoded windows ([`RenderedWindow::recycle`]) makes
    /// the steady-state render loop allocation-free.
    pub fn render_cluster_with(
        &self,
        plans: &[BurstPlan],
        cluster: &[usize],
        rng: &mut ChaCha8Rng,
        scratch: &mut DspScratch,
    ) -> RenderedWindow {
        let fs = self.frontend.config.sample_rate_hz;
        let start_s = plans[cluster[0]].start_s - self.guard_samples as f64 / fs;
        let end_s = cluster
            .iter()
            .map(|&i| plans[i].start_s + plans[i].waveform.len() as f64 / fs)
            .fold(f64::NEG_INFINITY, f64::max)
            + self.guard_samples as f64 / fs;
        let len = ((end_s - start_s) * fs).ceil() as usize;
        let mut buf = scratch.take_cplx(len);
        let mut sig = scratch.take_cplx(0);
        for &i in cluster {
            let p = &plans[i];
            let offset = ((p.start_s - start_s) * fs).round() as usize;
            self.frontend
                .scale_and_impair_into(&p.waveform, p.rx_power_dbm, p.phase0, offset, &mut sig);
            for (k, s) in sig.iter().enumerate() {
                if offset + k < buf.len() {
                    buf[offset + k] += *s;
                }
            }
        }
        scratch.put_cplx(sig);
        self.frontend.finalize(&mut buf, rng);
        RenderedWindow {
            start_s,
            samples: buf,
        }
    }

    /// Render one cluster with throwaway scratch (allocating wrapper over
    /// [`CaptureRenderer::render_cluster_with`]).
    fn render_cluster(
        &self,
        plans: &[BurstPlan],
        cluster: &[usize],
        rng: &mut ChaCha8Rng,
    ) -> RenderedWindow {
        let mut scratch = DspScratch::new();
        self.render_cluster_with(plans, cluster, rng, &mut scratch)
    }

    /// Render all plans into windows. Plans need not be sorted. Returns
    /// windows sorted by start time, one per cluster of overlapping bursts.
    ///
    /// One shared noise RNG runs through the clusters in time order, so
    /// this path is inherently serial; prefer [`Self::render_seeded`] for
    /// the thread-scalable, per-cluster-seeded variant.
    pub fn render(&self, plans: &[BurstPlan], rng: &mut ChaCha8Rng) -> Vec<RenderedWindow> {
        self.cluster_plans(plans)
            .iter()
            .map(|cluster| self.render_cluster(plans, cluster, rng))
            .collect()
    }

    /// Render all plans into windows with **per-cluster** noise streams
    /// derived from `(noise_seed, cluster index)`, fanned out over up to
    /// `threads` worker threads.
    ///
    /// Because each cluster's noise depends only on its index — not on
    /// how many threads ran or which rendered it first — the output is
    /// bit-identical for every `threads` value, including 1.
    pub fn render_seeded(
        &self,
        plans: &[BurstPlan],
        noise_seed: u64,
        threads: usize,
    ) -> Vec<RenderedWindow> {
        let mut scratches: Vec<DspScratch> =
            (0..threads.max(1)).map(|_| DspScratch::new()).collect();
        let (mut slots, mut out) = (Vec::new(), Vec::new());
        self.render_seeded_with(plans, noise_seed, threads, &mut scratches, &mut slots, &mut out);
        out
    }

    /// [`CaptureRenderer::render_seeded`] with caller-owned per-worker
    /// scratch pools and result buffers (see
    /// [`aircal_dsp::par_map_with`] for the `scratches`/`slots`/`out`
    /// contract). Reusing them across surveys keeps the render fan-out
    /// allocation-free per burst in steady state; output is bit-identical
    /// to [`CaptureRenderer::render_seeded`] at any thread count.
    pub fn render_seeded_with(
        &self,
        plans: &[BurstPlan],
        noise_seed: u64,
        threads: usize,
        scratches: &mut [DspScratch],
        slots: &mut Vec<Option<RenderedWindow>>,
        out: &mut Vec<RenderedWindow>,
    ) {
        let _span = aircal_obs::span!("render_windows");
        let clusters = self.cluster_plans(plans);
        par_map_with(&clusters, threads, scratches, slots, out, |ci, cluster, scratch| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(noise_seed, ci as u64));
            self.render_cluster_with(plans, cluster, &mut rng, scratch)
        })
    }

    /// Total samples the rendered windows would occupy (cost estimator for
    /// tests and benches).
    pub fn rendered_sample_count(&self, plans: &[BurstPlan]) -> usize {
        // Upper bound: each plan alone with guards (clustering only shrinks it).
        plans
            .iter()
            .map(|p| p.waveform.len() + 2 * self.guard_samples)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{capture_rng, FrontendConfig};

    fn renderer() -> CaptureRenderer {
        CaptureRenderer::new(Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6)))
    }

    fn plan(start_s: f64, len: usize, dbm: f64) -> BurstPlan {
        BurstPlan {
            start_s,
            waveform: vec![Cplx::ONE; len],
            rx_power_dbm: dbm,
            phase0: 0.0,
        }
    }

    #[test]
    fn empty_plans_empty_windows() {
        let mut rng = capture_rng(1);
        assert!(renderer().render(&[], &mut rng).is_empty());
    }

    #[test]
    fn disjoint_bursts_get_separate_windows() {
        let r = renderer();
        let mut rng = capture_rng(2);
        let windows = r.render(&[plan(0.0, 240, -70.0), plan(1.0, 240, -70.0)], &mut rng);
        assert_eq!(windows.len(), 2);
        assert!(windows[0].start_s < windows[1].start_s);
        // Each window: guard + burst + guard.
        assert_eq!(windows[0].samples.len(), 240 + 2 * r.guard_samples);
    }

    #[test]
    fn overlapping_bursts_share_a_window() {
        let r = renderer();
        let mut rng = capture_rng(3);
        // Second burst starts 50 samples (25 µs) into the first.
        let windows = r.render(
            &[plan(0.0, 240, -70.0), plan(25e-6, 240, -70.0)],
            &mut rng,
        );
        assert_eq!(windows.len(), 1);
        let expected_len = 50 + 240 + 2 * r.guard_samples;
        assert_eq!(windows[0].samples.len(), expected_len);
    }

    #[test]
    fn superposition_adds_power() {
        use aircal_dsp::cplx::mean_power;
        let r = renderer();
        let mut rng1 = capture_rng(4);
        let mut rng2 = capture_rng(4);
        let single = r.render(&[plan(0.0, 2_000, -60.0)], &mut rng1);
        let double = r.render(
            &[plan(0.0, 2_000, -60.0), plan(0.0, 2_000, -60.0)],
            &mut rng2,
        );
        let g = r.guard_samples;
        let p1 = mean_power(&single[0].samples[g..g + 2_000]);
        let p2 = mean_power(&double[0].samples[g..g + 2_000]);
        // Two coherent equal bursts (same phase): 4× the power (+6 dB).
        assert!((p2 / p1 - 4.0).abs() < 0.3, "ratio {}", p2 / p1);
    }

    #[test]
    fn unsorted_plans_sorted_windows() {
        let r = renderer();
        let mut rng = capture_rng(5);
        let windows = r.render(
            &[plan(2.0, 100, -70.0), plan(0.5, 100, -70.0), plan(1.2, 100, -70.0)],
            &mut rng,
        );
        assert_eq!(windows.len(), 3);
        for w in windows.windows(2) {
            assert!(w[0].start_s < w[1].start_s);
        }
    }

    #[test]
    fn window_timing_accounts_for_guard() {
        let r = renderer();
        let mut rng = capture_rng(6);
        let windows = r.render(&[plan(1.0, 240, -70.0)], &mut rng);
        let guard_s = r.guard_samples as f64 / 2e6;
        assert!((windows[0].start_s - (1.0 - guard_s)).abs() < 1e-9);
    }

    /// `render_seeded` must give bit-identical windows for any thread
    /// count — the property the parallel survey pipeline stands on.
    #[test]
    fn render_seeded_is_thread_count_invariant() {
        let r = renderer();
        let plans: Vec<BurstPlan> = (0..40)
            .map(|i| plan(i as f64 * 0.01 * if i % 3 == 0 { 1.0 } else { 1.00002 }, 240, -75.0))
            .collect();
        let serial = r.render_seeded(&plans, 99, 1);
        for threads in [2, 4, 8] {
            let parallel = r.render_seeded(&plans, 99, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.start_s, b.start_s);
                assert_eq!(a.samples, b.samples);
            }
        }
    }

    /// Seeded rendering produces the same cluster geometry as the
    /// shared-RNG path (same windows, same lengths, same start times).
    #[test]
    fn render_seeded_matches_render_geometry() {
        let r = renderer();
        let plans = [plan(0.0, 240, -70.0), plan(25e-6, 240, -70.0), plan(1.0, 100, -72.0)];
        let mut rng = capture_rng(7);
        let shared = r.render(&plans, &mut rng);
        let seeded = r.render_seeded(&plans, 7, 4);
        assert_eq!(shared.len(), seeded.len());
        for (a, b) in shared.iter().zip(&seeded) {
            assert_eq!(a.start_s, b.start_s);
            assert_eq!(a.samples.len(), b.samples.len());
        }
    }

    #[test]
    fn burst_mode_is_vastly_cheaper_than_streaming() {
        // 30 s × 60 aircraft × ~5 msgs/s ≈ 9000 bursts × 496 samples ≈ 4.5 M
        // samples vs 60 M for a continuous stream.
        let r = renderer();
        let plans: Vec<BurstPlan> = (0..9_000).map(|i| plan(i as f64 * 3.3e-3, 240, -70.0)).collect();
        assert!(r.rendered_sample_count(&plans) < 10_000_000);
    }
}
