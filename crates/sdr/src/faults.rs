//! Front-end faults: the installation problems the paper's calibration is
//! designed to detect without a site visit.
//!
//! "There are numerous problems that affect the quality of data such as the
//! efficiency of the antenna and the sensitivity of the SDR in the desired
//! spectrum bands, potential obstruction of the antenna …, and installation
//! issues such as damaged antenna cables."

use serde::{Deserialize, Serialize};

/// A hardware/installation fault applied at the antenna port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrontendFault {
    /// Healthy front end.
    None,
    /// Flat extra loss at all frequencies — a pinched/damaged coax run or a
    /// corroded connector.
    CableLoss {
        /// Extra loss, dB.
        db: f64,
    },
    /// The antenna/front end is deaf within a band — e.g. an antenna whose
    /// usable range ends below the band of interest (the paper's "can a
    /// node truly receive the entire claimed range" question).
    DeafBand {
        /// Lower edge, Hz.
        lo_hz: f64,
        /// Upper edge, Hz.
        hi_hz: f64,
        /// Loss inside the band, dB.
        loss_db: f64,
    },
    /// Rolls off above a cutoff — a narrowband antenna sold as wideband.
    DeafAbove {
        /// Cutoff frequency, Hz.
        cutoff_hz: f64,
        /// Loss beyond the cutoff, dB.
        loss_db: f64,
    },
    /// Completely dead (disconnected antenna): nothing but noise.
    Dead,
    /// Miscalibrated gain stage reporting *stronger* signals than reality —
    /// the adversarial inverse of [`FrontendFault::CableLoss`]: an operator
    /// inflating band power to make a poor installation look rentable.
    /// Negative loss is deliberately allowed here (and only here).
    GainError {
        /// Gain error, dB; positive values *add* signal.
        db: f64,
    },
}

impl FrontendFault {
    /// Extra loss in dB this fault imposes at a carrier frequency.
    pub fn loss_db(&self, freq_hz: f64) -> f64 {
        match *self {
            FrontendFault::None => 0.0,
            FrontendFault::CableLoss { db } => db.max(0.0),
            FrontendFault::DeafBand {
                lo_hz,
                hi_hz,
                loss_db,
            } => {
                if freq_hz >= lo_hz && freq_hz <= hi_hz {
                    loss_db.max(0.0)
                } else {
                    0.0
                }
            }
            FrontendFault::DeafAbove { cutoff_hz, loss_db } => {
                if freq_hz > cutoff_hz {
                    loss_db.max(0.0)
                } else {
                    0.0
                }
            }
            FrontendFault::Dead => 200.0,
            // Positive gain error = negative loss (signal inflation).
            FrontendFault::GainError { db } => {
                if db.is_finite() {
                    -db
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_is_lossless() {
        assert_eq!(FrontendFault::None.loss_db(1e9), 0.0);
    }

    #[test]
    fn cable_loss_flat_across_bands() {
        let f = FrontendFault::CableLoss { db: 8.0 };
        assert_eq!(f.loss_db(100e6), 8.0);
        assert_eq!(f.loss_db(6e9), 8.0);
    }

    #[test]
    fn deaf_band_selective() {
        let f = FrontendFault::DeafBand {
            lo_hz: 2.0e9,
            hi_hz: 3.0e9,
            loss_db: 40.0,
        };
        assert_eq!(f.loss_db(1.09e9), 0.0);
        assert_eq!(f.loss_db(2.5e9), 40.0);
        assert_eq!(f.loss_db(3.5e9), 0.0);
    }

    #[test]
    fn deaf_above_cutoff() {
        // The paper's motivating example: claims 100 MHz–6 GHz, actually
        // deaf above 2.7 GHz (the whip's real spec).
        let f = FrontendFault::DeafAbove {
            cutoff_hz: 2.7e9,
            loss_db: 30.0,
        };
        assert_eq!(f.loss_db(2.66e9), 0.0);
        assert_eq!(f.loss_db(3.5e9), 30.0);
    }

    #[test]
    fn dead_kills_everything() {
        assert!(FrontendFault::Dead.loss_db(1e9) >= 100.0);
    }

    #[test]
    fn negative_loss_clamped() {
        let f = FrontendFault::CableLoss { db: -3.0 };
        assert_eq!(f.loss_db(1e9), 0.0);
    }

    #[test]
    fn gain_error_inflates_signal() {
        let f = FrontendFault::GainError { db: 18.0 };
        assert_eq!(f.loss_db(600e6), -18.0);
        assert_eq!(f.loss_db(2e9), -18.0);
        // Non-finite gain errors are inert, not poisonous.
        assert_eq!(FrontendFault::GainError { db: f64::NAN }.loss_db(1e9), 0.0);
    }
}
