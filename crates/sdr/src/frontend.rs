//! The front-end model: power ↔ full-scale conversion, noise, impairments.

use crate::faults::FrontendFault;
use aircal_dsp::Cplx;
use aircal_rfprop::noise::noise_floor_dbm;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Static configuration of a simulated SDR front end at a fixed gain.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Tuned center frequency, Hz.
    pub center_freq_hz: f64,
    /// Complex sample rate, Hz (also the modeled noise bandwidth).
    pub sample_rate_hz: f64,
    /// Antenna-port power (dBm) of a CW tone that reaches exactly 0 dBFS
    /// at the configured gain. Fixes the dBFS axis.
    pub full_scale_dbm: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// ADC resolution in bits (BladeRF xA9: 12).
    pub adc_bits: u32,
    /// Residual carrier frequency offset after tuning, Hz.
    pub cfo_hz: f64,
    /// DC offset added to every sample (full-scale units).
    pub dc_offset: f64,
    /// IQ gain imbalance, dB (Q relative to I).
    pub iq_imbalance_db: f64,
    /// Installed fault, if any.
    pub fault: FrontendFault,
}

impl FrontendConfig {
    /// A BladeRF xA9 profile at a fixed gain suitable for the given band —
    /// matching the paper's hardware ("BladeRF xA9 … fixed gain to prevent
    /// measurement differences from automatic gain control").
    pub fn bladerf_xa9(center_freq_hz: f64, sample_rate_hz: f64) -> Self {
        Self {
            center_freq_hz,
            sample_rate_hz,
            full_scale_dbm: -30.0,
            noise_figure_db: 7.0,
            adc_bits: 12,
            cfo_hz: 0.0,
            dc_offset: 0.0,
            iq_imbalance_db: 0.0,
            fault: FrontendFault::None,
        }
    }

    /// Same profile with mild, realistic impairments enabled.
    pub fn bladerf_xa9_impaired(center_freq_hz: f64, sample_rate_hz: f64) -> Self {
        Self {
            cfo_hz: center_freq_hz * 0.5e-6, // 0.5 ppm residual
            dc_offset: 1e-3,
            iq_imbalance_db: 0.2,
            ..Self::bladerf_xa9(center_freq_hz, sample_rate_hz)
        }
    }
}

/// A running front end: converts antenna-port powers into IQ.
#[derive(Debug, Clone)]
pub struct Frontend {
    /// The static configuration.
    pub config: FrontendConfig,
}

impl Frontend {
    /// Create a front end.
    pub fn new(config: FrontendConfig) -> Self {
        Self { config }
    }

    /// Effective received power after the front-end fault, dBm.
    pub fn effective_power_dbm(&self, rx_power_dbm: f64) -> f64 {
        rx_power_dbm - self.config.fault.loss_db(self.config.center_freq_hz)
    }

    /// Full-scale-relative *voltage* amplitude for an antenna-port power in
    /// dBm (after fault loss).
    pub fn amplitude_fs(&self, rx_power_dbm: f64) -> f64 {
        10f64.powf((self.effective_power_dbm(rx_power_dbm) - self.config.full_scale_dbm) / 20.0)
    }

    /// Noise floor power at the antenna port over the capture bandwidth, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        noise_floor_dbm(self.config.sample_rate_hz, self.config.noise_figure_db)
    }

    /// Per-component (I or Q) noise standard deviation in full-scale units.
    pub fn noise_sigma_fs(&self) -> f64 {
        let noise_power_fs =
            10f64.powf((self.noise_floor_dbm() - self.config.full_scale_dbm) / 10.0);
        (noise_power_fs / 2.0).sqrt()
    }

    /// Signal-to-noise ratio a burst at `rx_power_dbm` sees, dB.
    pub fn snr_db(&self, rx_power_dbm: f64) -> f64 {
        self.effective_power_dbm(rx_power_dbm) - self.noise_floor_dbm()
    }

    /// Scale a unit-amplitude waveform arriving at `rx_power_dbm` into
    /// full-scale units and apply the deterministic impairments (carrier
    /// phase, CFO ramp, IQ imbalance). No noise, no quantization — used to
    /// superimpose multiple bursts into one window before finalizing.
    /// `sample_offset` positions the CFO phase ramp within the capture.
    pub fn scale_and_impair(
        &self,
        waveform: &[Cplx],
        rx_power_dbm: f64,
        phase0: f64,
        sample_offset: usize,
    ) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(waveform.len());
        self.scale_and_impair_into(waveform, rx_power_dbm, phase0, sample_offset, &mut out);
        out
    }

    /// [`Frontend::scale_and_impair`] into a caller-owned buffer (cleared
    /// first); reusing `out` keeps the per-burst render loop allocation-free.
    pub fn scale_and_impair_into(
        &self,
        waveform: &[Cplx],
        rx_power_dbm: f64,
        phase0: f64,
        sample_offset: usize,
        out: &mut Vec<Cplx>,
    ) {
        let amp = self.amplitude_fs(rx_power_dbm);
        let dphi = core::f64::consts::TAU * self.config.cfo_hz / self.config.sample_rate_hz;
        let q_gain = 10f64.powf(self.config.iq_imbalance_db / 20.0);
        let rot0 = Cplx::phasor(phase0);
        out.clear();
        out.extend(waveform.iter().enumerate().map(|(n, &s)| {
            let rotated = s * rot0 * Cplx::phasor(dphi * (sample_offset + n) as f64);
            let mut x = rotated.scale(amp);
            x.im *= q_gain;
            x
        }));
    }

    /// Add thermal noise + DC offset to a signal buffer and quantize it to
    /// the ADC grid, in place — the last stage of every capture.
    pub fn finalize(&self, buffer: &mut [Cplx], rng: &mut ChaCha8Rng) {
        let sigma = self.noise_sigma_fs();
        for x in buffer.iter_mut() {
            x.re += self.config.dc_offset;
            *x += gaussian_iq(rng, sigma);
            *x = self.quantize(*x);
        }
    }

    /// Render a unit-amplitude waveform arriving at `rx_power_dbm` into IQ:
    /// scale to full-scale units, apply CFO/DC/IQ-imbalance, add thermal
    /// noise, and quantize to the ADC grid. `phase0` is the carrier phase
    /// at the first sample.
    pub fn render_burst(
        &self,
        waveform: &[Cplx],
        rx_power_dbm: f64,
        phase0: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Cplx> {
        let mut buf = self.scale_and_impair(waveform, rx_power_dbm, phase0, 0);
        self.finalize(&mut buf, rng);
        buf
    }

    /// Render `len` samples of pure front-end noise (plus DC offset).
    pub fn render_noise(&self, len: usize, rng: &mut ChaCha8Rng) -> Vec<Cplx> {
        let mut buf = vec![Cplx::ZERO; len];
        self.finalize(&mut buf, rng);
        buf
    }

    /// Quantize to the ADC grid and clip at ±1 full scale.
    fn quantize(&self, x: Cplx) -> Cplx {
        let levels = (1u64 << self.config.adc_bits) as f64 / 2.0;
        let q = |v: f64| (v.clamp(-1.0, 1.0) * levels).round() / levels;
        Cplx::new(q(x.re), q(x.im))
    }
}

/// One complex Gaussian noise sample with per-component σ.
fn gaussian_iq(rng: &mut ChaCha8Rng, sigma: f64) -> Cplx {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = sigma * (-2.0 * u1.ln()).sqrt();
    let (s, c) = (core::f64::consts::TAU * u2).sin_cos();
    Cplx::new(r * c, r * s)
}

/// Deterministic RNG helper for capture rendering.
pub fn capture_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_dsp::cplx::mean_power;

    fn fe() -> Frontend {
        Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6))
    }

    #[test]
    fn full_scale_reference_power() {
        let f = fe();
        assert!((f.amplitude_fs(-30.0) - 1.0).abs() < 1e-12);
        assert!((f.amplitude_fs(-50.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn noise_floor_matches_first_principles() {
        let f = fe();
        // 2 MHz, NF 7: ≈ −104 dBm.
        assert!((f.noise_floor_dbm() - (-104.0)).abs() < 0.5);
        // −74 dBFS noise → sigma ≈ sqrt(10^-7.4 / 2).
        let expect = (10f64.powf(-7.4) / 2.0).sqrt();
        assert!((f.noise_sigma_fs() - expect).abs() < expect * 0.05);
    }

    #[test]
    fn rendered_noise_has_expected_power() {
        let f = fe();
        let mut rng = capture_rng(1);
        let n = f.render_noise(50_000, &mut rng);
        let measured = mean_power(&n);
        let expected = 10f64.powf((f.noise_floor_dbm() - f.config.full_scale_dbm) / 10.0);
        assert!(
            (measured / expected - 1.0).abs() < 0.1,
            "measured {measured:e} vs expected {expected:e}"
        );
    }

    #[test]
    fn rendered_burst_preserves_snr() {
        let f = fe();
        let mut rng = capture_rng(2);
        let tone: Vec<Cplx> = vec![Cplx::ONE; 20_000];
        let rx_dbm = -80.0; // SNR ≈ 24 dB
        let burst = f.render_burst(&tone, rx_dbm, 0.3, &mut rng);
        let p = mean_power(&burst);
        let expect = 10f64.powf((rx_dbm - f.config.full_scale_dbm) / 10.0);
        // Within 1 dB (noise adds a little).
        assert!(
            (10.0 * (p / expect).log10()).abs() < 1.0,
            "power off by {} dB",
            10.0 * (p / expect).log10()
        );
    }

    #[test]
    fn fault_reduces_effective_power() {
        let mut cfg = FrontendConfig::bladerf_xa9(1.09e9, 2e6);
        cfg.fault = FrontendFault::CableLoss { db: 10.0 };
        let f = Frontend::new(cfg);
        assert_eq!(f.effective_power_dbm(-70.0), -80.0);
        assert!((f.snr_db(-70.0) - fe().snr_db(-80.0)).abs() < 1e-9);
    }

    #[test]
    fn quantization_grid() {
        let f = fe();
        let mut rng = capture_rng(3);
        let burst = f.render_burst(&[Cplx::new(0.123456789, -0.987654321)], -31.0, 0.0, &mut rng);
        let levels = 2048.0;
        for s in burst {
            assert!((s.re * levels - (s.re * levels).round()).abs() < 1e-9);
            assert!((s.im * levels - (s.im * levels).round()).abs() < 1e-9);
            assert!(s.re.abs() <= 1.0 && s.im.abs() <= 1.0);
        }
    }

    #[test]
    fn clipping_at_full_scale() {
        let f = fe();
        let mut rng = capture_rng(4);
        // +20 dB above full scale must clip, not explode.
        let burst = f.render_burst(&[Cplx::ONE; 100], -10.0, 0.0, &mut rng);
        assert!(burst.iter().all(|s| s.re.abs() <= 1.0 && s.im.abs() <= 1.0));
    }

    #[test]
    fn cfo_rotates_phase_across_burst() {
        let mut cfg = FrontendConfig::bladerf_xa9(1.09e9, 2e6);
        cfg.cfo_hz = 10_000.0;
        cfg.noise_figure_db = 0.0; // keep it clean for the phase check
        let f = Frontend::new(cfg);
        let mut rng = capture_rng(5);
        let burst = f.render_burst(&[Cplx::ONE; 50], -40.0, 0.0, &mut rng);
        let dphi = (burst[11] * burst[10].conj()).arg();
        let expect = core::f64::consts::TAU * 10_000.0 / 2e6;
        assert!((dphi - expect).abs() < 0.05, "dphi {dphi} vs {expect}");
    }

    #[test]
    fn deterministic_given_seed() {
        let f = fe();
        let a = f.render_burst(&[Cplx::ONE; 64], -80.0, 0.1, &mut capture_rng(9));
        let b = f.render_burst(&[Cplx::ONE; 64], -80.0, 0.1, &mut capture_rng(9));
        assert_eq!(a, b);
    }
}
