//! # aircal-obs — deterministic observability for the calibration stack
//!
//! Three coordinated facilities, all zero-dependency (std + the vendored
//! serde shims) and all designed around one invariant: **observing a run
//! never changes its results**.
//!
//! * [`trace`] — a global span facade. `let _g = span!("preamble_scan");`
//!   records a [`trace::SpanRecord`] with *monotonic virtual timestamps*
//!   (an atomic tick counter, not wall clock) plus wall nanos for humans.
//!   When tracing is disabled (the default) a span guard is a single
//!   relaxed atomic load and no allocation, so benchmarks and bit-exact
//!   pipelines are unaffected.
//! * [`metrics`] — an [`Obs`] handle holding counters, gauges and
//!   fixed-bucket histograms. A disabled handle (`Obs::default()`) is a
//!   `None` and every call on it is a no-op. Counter and gauge snapshots
//!   are `BTreeMap`s, so serialization order is deterministic.
//! * [`events`] — the structured audit log: every fleet audit emits an
//!   ordered [`events::AuditEvent`] stream (step started/outcome, fault
//!   observed, health transition, trust delta) that serializes to JSON
//!   lines and replays *why* a node was quarantined.
//!
//! Determinism contract: with a fixed seed, counters, gauges and the
//! event stream are byte-identical across runs and across `parallelism`
//! settings, because everything that feeds them is published from the
//! sequential audit/report path, never from worker threads. Histogram
//! *wall-time* sums are the one intentionally non-deterministic quantity
//! (they measure the host), and the test-suite never asserts on them.

pub mod events;
pub mod fmt;
pub mod metrics;
pub mod trace;

pub use events::{AuditEvent, AuditEventKind};
pub use metrics::{Histogram, MetricsSnapshot, Obs};
pub use trace::{SpanRecord, SpanSummary};

/// Open a trace span for the enclosing scope.
///
/// ```
/// let _g = aircal_obs::span!("preamble_scan");
/// // ... work ...
/// // span closes when `_g` drops
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::begin($name)
    };
}
