//! Shared formatting helpers so every example reports through one
//! consistent, greppable style: `section(...)` banners, `key = value`
//! lines, and simple aligned tables.

use crate::metrics::MetricsSnapshot;
use crate::trace::SpanSummary;
use std::fmt::Display;

/// Section banner: `── title ──`.
pub fn section(title: &str) -> String {
    format!("── {title} ──")
}

/// A greppable `key = value` line.
pub fn kv(key: &str, value: impl Display) -> String {
    format!("  {key:<28} = {value}")
}

/// A minimal column-aligned table: first column left-aligned, the rest
/// right-aligned, widths computed from content.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        render_line(&mut out, &self.headers, &widths);
        for row in &self.rows {
            render_line(&mut out, row, &widths);
        }
        out.pop(); // trailing newline
        out
    }
}

fn render_line(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        let cell = cells.get(i).map(String::as_str).unwrap_or("");
        if i == 0 {
            out.push_str(&format!("  {cell:<width$}"));
        } else if i + 1 == widths.len() {
            // Last column flows free so flag lists don't get padded.
            out.push_str(&format!("  {cell}"));
        } else {
            out.push_str(&format!("  {cell:>width$}"));
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Render every counter (and gauge) in a snapshot as `key = value` lines.
pub fn counter_lines(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut lines: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(k, v)| kv(k, v))
        .collect();
    lines.extend(
        snapshot
            .gauges
            .iter()
            .map(|(k, v)| kv(k, format!("{v:.2}"))),
    );
    lines
}

/// Render span summaries as an aligned table.
pub fn span_table(summaries: &[SpanSummary]) -> String {
    let mut t = Table::new(&["span", "count", "total ms", "mean µs", "max µs"]);
    for s in summaries {
        t.row(&[
            s.name.clone(),
            s.count.to_string(),
            format!("{:.2}", s.total_s * 1e3),
            format!("{:.1}", s.mean_s * 1e6),
            format!("{:.1}", s.max_s * 1e6),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["node", "trust", "flags"]);
        t.row(&["open-field", "87", "-"]);
        t.row(&["indoor-basement", "12", "low snr; few msgs"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        let col = |line: &str, word: &str| line.find(word).unwrap();
        // Right-aligned numeric column lines up on its last character.
        assert_eq!(
            col(lines[1], "87") + 2,
            col(lines[2], "12") + 2,
            "trust column aligned"
        );
        assert!(lines[2].starts_with("  indoor-basement"));
    }

    #[test]
    fn kv_lines_are_greppable() {
        assert_eq!(kv("wire.attempts", 30), format!("  {:<28} = 30", "wire.attempts"));
    }
}
