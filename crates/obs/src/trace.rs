//! Global span tracing with monotonic virtual timestamps.
//!
//! The tracer is a process-wide singleton so instrumentation points deep
//! in the DSP crates need no handle threading. It is **off by default**;
//! [`SpanGuard::begin`] then costs one relaxed atomic load and returns an
//! inert guard. When enabled, span open/close each take a tick from a
//! global atomic counter — virtual time that is monotonic and totally
//! ordered even across threads — and the closed span also records wall
//! nanoseconds for human consumption.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CLOCK: AtomicU64 = AtomicU64::new(0);
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One closed span: virtual open/close ticks plus wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub name: String,
    /// Nesting depth on the opening thread (0 = top level).
    pub depth: u32,
    /// Virtual tick taken when the span opened.
    pub start_tick: u64,
    /// Virtual tick taken when the span closed.
    pub end_tick: u64,
    /// Wall-clock duration; informational only, never asserted on.
    pub wall_nanos: u64,
}

impl SpanRecord {
    pub fn wall_secs(&self) -> f64 {
        self.wall_nanos as f64 * 1e-9
    }
}

/// RAII guard returned by [`crate::span!`]; records a [`SpanRecord`] on
/// drop when tracing is enabled, does nothing otherwise.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: String,
    depth: u32,
    start_tick: u64,
    started: Instant,
}

impl SpanGuard {
    pub fn begin(name: &str) -> Self {
        if !ENABLED.load(Ordering::Relaxed) {
            return SpanGuard(None);
        }
        let start_tick = CLOCK.fetch_add(1, Ordering::Relaxed);
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard(Some(ActiveSpan {
            name: name.to_string(),
            depth,
            start_tick,
            started: Instant::now(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.0.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end_tick = CLOCK.fetch_add(1, Ordering::Relaxed);
            lock_spans().push(SpanRecord {
                name: span.name,
                depth: span.depth,
                start_tick: span.start_tick,
                end_tick,
                wall_nanos: span.started.elapsed().as_nanos() as u64,
            });
        }
    }
}

fn lock_spans() -> std::sync::MutexGuard<'static, Vec<SpanRecord>> {
    SPANS.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Advance the global virtual clock to at least `tick` without recording
/// a span. The discrete-event campaign engine (`aircal-sim`) calls this
/// as it processes each event batch, so the engine's virtual time and the
/// tracer's tick counter are the *same* clock: spans opened while an
/// event executes carry ticks at or after the event's scheduled time.
/// Monotonic — a tick already in the past is a no-op.
pub fn advance_clock_to(tick: u64) {
    CLOCK.fetch_max(tick, Ordering::Relaxed);
}

/// The current virtual tick (next value the clock will hand out).
pub fn clock_now() -> u64 {
    CLOCK.load(Ordering::Relaxed)
}

/// Turn the tracer on. Spans opened after this call are recorded.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the tracer off. Already-open spans still record on close.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take every recorded span, leaving the buffer empty.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *lock_spans())
}

/// Aggregate of all closed spans sharing a name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
}

/// Group records by span name (sorted) and aggregate wall times.
pub fn summarize(records: &[SpanRecord]) -> Vec<SpanSummary> {
    let mut by_name: BTreeMap<&str, (u64, f64, f64)> = BTreeMap::new();
    for r in records {
        let e = by_name.entry(&r.name).or_insert((0, 0.0, 0.0));
        e.0 += 1;
        e.1 += r.wall_secs();
        e.2 = e.2.max(r.wall_secs());
    }
    by_name
        .into_iter()
        .map(|(name, (count, total_s, max_s))| SpanSummary {
            name: name.to_string(),
            count,
            total_s,
            mean_s: total_s / count as f64,
            max_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically_and_never_rewinds() {
        let before = clock_now();
        advance_clock_to(before + 100);
        assert!(clock_now() >= before + 100);
        advance_clock_to(0); // a tick in the past must be a no-op
        assert!(clock_now() >= before + 100);
    }

    // The global tracer is process-wide, so everything that toggles it
    // lives in this single test.
    #[test]
    fn spans_record_only_when_enabled_and_ticks_are_ordered() {
        {
            let _g = crate::span!("off");
        }
        assert!(drain().is_empty(), "disabled tracer must record nothing");

        enable();
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner");
        }
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _g = crate::span!(if i % 2 == 0 { "even" } else { "odd" });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();

        let spans = drain();
        assert_eq!(spans.len(), 6);
        for s in &spans {
            assert!(s.start_tick < s.end_tick, "virtual time must be monotonic");
        }
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.start_tick < inner.start_tick);
        assert!(inner.end_tick < outer.end_tick, "inner closes before outer");

        let mut ticks: Vec<u64> = spans
            .iter()
            .flat_map(|s| [s.start_tick, s.end_tick])
            .collect();
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 12, "every tick is unique across threads");

        let summary = summarize(&spans);
        let names: Vec<&str> = summary.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["even", "inner", "odd", "outer"]);
        assert_eq!(summary[0].count, 2);
    }
}
