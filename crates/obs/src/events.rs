//! The structured audit event log.
//!
//! Every fleet audit appends an ordered stream of [`AuditEvent`]s: which
//! step ran, what it cost on the wire, which faults the link absorbed,
//! how the node's health and trust moved. Serialized as JSON lines the
//! stream is a replayable record of *why* the cloud quarantined (or
//! re-admitted) a node — the per-node telemetry backbone Electrosense-
//! style deployments run on.
//!
//! Events are only ever appended from the cloud's sequential audit path,
//! so for a fixed seed the stream is byte-identical across runs and
//! across worker-pool sizes.

use serde::{Deserialize, Serialize};

/// One entry in the audit log. `seq` is a process-wide ordinal assigned
/// at append time, so the full fleet log has a total order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    pub seq: u64,
    /// Registry name of the node the event concerns.
    pub node: String,
    pub kind: AuditEventKind,
}

impl AuditEvent {
    /// One JSON line (externally-tagged kind), no trailing newline.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("audit events always serialize")
    }
}

/// What happened. Externally tagged on serialization:
/// `{"kind": {"StepFailed": {...}}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditEventKind {
    /// An audit of this node began with this commission seed.
    AuditStarted { seed: u64 },
    StepStarted {
        step: String,
    },
    StepCompleted {
        step: String,
        /// Wire attempts the step consumed, retries included.
        wire_attempts: u64,
    },
    StepFailed {
        step: String,
        error: String,
        wire_attempts: u64,
    },
    /// The link layer absorbed `count` faults of one kind during a step
    /// (it may still have completed via retries).
    FaultObserved {
        step: String,
        fault: String,
        count: u64,
    },
    /// The node's health state changed as a result of this audit round.
    HealthTransition {
        from: String,
        to: String,
        consecutive_failures: u32,
    },
    /// Final trust score for the round; `delta` is the penalty applied
    /// on top of the evidence-based score (0 for a complete audit).
    TrustDelta {
        score: f64,
        delta: f64,
        reasons: Vec<String>,
    },
    AuditCompleted {
        complete: bool,
        approved: bool,
    },
    /// Cross-sensor consistency: this node's reported profile vs the
    /// fleet's robustly fused consensus.
    ConsistencyChecked {
        /// Mean absolute deviation from the fused profile, dB.
        residual_db: f64,
        /// Bands both the node and the consensus measured.
        bands: usize,
    },
    /// A data-plane anomaly check fired, with human-readable evidence —
    /// the replayable justification for every demotion on the quarantine
    /// ladder.
    AnomalyDetected {
        /// Which check ("spot-check", "replay", "frozen", "overshoot",
        /// "drift", "history-fork").
        check: String,
        /// What the check saw.
        evidence: String,
        /// Consecutive anomalous audits including this one.
        consecutive: u32,
    },
    /// Terminal rung of the quarantine ladder: the node is permanently
    /// excluded from audits and the marketplace.
    NodeEvicted {
        /// The anomaly evidence that sealed it.
        reason: String,
        /// Consecutive anomalous audits at eviction.
        after_audits: u32,
    },
}

#[derive(Debug, Default)]
pub(crate) struct EventLog {
    next_seq: u64,
    events: Vec<AuditEvent>,
}

impl EventLog {
    pub(crate) fn emit(&mut self, node: &str, kind: AuditEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(AuditEvent {
            seq,
            node: node.to_string(),
            kind,
        });
    }

    pub(crate) fn events(&self) -> Vec<AuditEvent> {
        self.events.clone()
    }

    pub(crate) fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_stable_json_lines() {
        let mut log = EventLog::default();
        log.emit("node-a", AuditEventKind::AuditStarted { seed: 7 });
        log.emit(
            "node-a",
            AuditEventKind::StepFailed {
                step: "tv".into(),
                error: "request timed out".into(),
                wire_attempts: 3,
            },
        );
        log.emit(
            "node-a",
            AuditEventKind::HealthTransition {
                from: "healthy".into(),
                to: "degraded".into(),
                consecutive_failures: 1,
            },
        );
        let jsonl = log.jsonl();
        let lines: Vec<&str> = jsonl.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"seq":0,"node":"node-a","kind":{"AuditStarted":{"seed":7}}}"#
        );
        assert!(lines[1].contains(r#""wire_attempts":3"#));
        // Round-trips through the shim parser.
        let back: AuditEvent = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(back, log.events()[2]);
    }
}
