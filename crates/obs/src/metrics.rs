//! Counters, gauges and fixed-bucket histograms behind a cloneable
//! [`Obs`] handle.
//!
//! A default handle is *disabled*: it holds no storage and every method
//! is a branch-and-return, so instrumented code pays nothing when nobody
//! is watching. [`Obs::recording`] allocates shared storage; clones all
//! publish into it. Snapshots come back as `BTreeMap`s, so iteration and
//! serialization order are deterministic.

use crate::events::{AuditEvent, AuditEventKind, EventLog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Fixed histogram bucket upper bounds for stage latencies, in seconds.
/// Log-spaced from 1 µs to 10 s; an implicit +∞ bucket catches the rest.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
];

/// A histogram with fixed bucket boundaries (no rebinning, ever — two
/// runs of the same workload always bucket identically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds, ascending. `counts` has one extra overflow slot.
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl Histogram {
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    pub fn latency() -> Self {
        Self::with_bounds(&LATENCY_BUCKETS_S)
    }

    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency()
    }
}

/// Point-in-time copy of every metric, with deterministic ordering.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

#[derive(Default)]
struct ObsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: Mutex<EventLog>,
}

/// Cloneable observability handle. `Obs::default()` is disabled and
/// free; [`Obs::recording`] collects metrics and audit events.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Obs {
    /// A handle that records nothing; every call is a no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A handle with live storage shared by all of its clones.
    pub fn recording() -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner::default())),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `by` to a named counter.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            *lock(&inner.counters).entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Current value of a counter (0 if never incremented or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| lock(&i.counters).get(name).copied())
            .unwrap_or(0)
    }

    /// Set a gauge to an absolute value (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges).insert(name.to_string(), value);
        }
    }

    /// Record one observation into a named latency histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.histograms)
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// Run `f`, recording its wall time into the `name` histogram.
    /// When disabled this is exactly `f()`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        if self.inner.is_none() {
            return f();
        }
        let started = Instant::now();
        let out = f();
        self.observe(name, started.elapsed().as_secs_f64());
        out
    }

    /// Append an audit event (no-op when disabled).
    pub fn emit(&self, node: &str, kind: AuditEventKind) {
        if let Some(inner) = &self.inner {
            lock(&inner.events).emit(node, kind);
        }
    }

    /// All audit events so far, in emission order.
    pub fn events(&self) -> Vec<AuditEvent> {
        self.inner
            .as_ref()
            .map(|i| lock(&i.events).events())
            .unwrap_or_default()
    }

    /// The audit log as JSON lines (one event per line).
    pub fn events_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map(|i| lock(&i.events).jsonl())
            .unwrap_or_default()
    }

    /// Deterministically-ordered copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => MetricsSnapshot {
                counters: lock(&inner.counters).clone(),
                gauges: lock(&inner.gauges).clone(),
                histograms: lock(&inner.histograms).clone(),
            },
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::default();
        obs.incr("x", 3);
        obs.set_gauge("g", 1.5);
        obs.observe("h", 0.01);
        obs.emit("n", AuditEventKind::AuditStarted { seed: 1 });
        assert!(!obs.is_enabled());
        assert_eq!(obs.counter("x"), 0);
        assert_eq!(obs.snapshot(), MetricsSnapshot::default());
        assert!(obs.events().is_empty());
        assert!(obs.events_jsonl().is_empty());
    }

    #[test]
    fn clones_share_storage_and_snapshots_sort() {
        let obs = Obs::recording();
        let clone = obs.clone();
        clone.incr("zeta", 2);
        obs.incr("alpha", 1);
        obs.incr("zeta", 1);
        clone.set_gauge("trust", 87.5);
        let snap = obs.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counters["zeta"], 3);
        assert_eq!(snap.gauges["trust"], 87.5);
    }

    #[test]
    fn histogram_buckets_are_fixed_and_exhaustive() {
        let mut h = Histogram::latency();
        h.observe(5e-7); // first bucket
        h.observe(2e-3); // 3e-3 bucket
        h.observe(99.0); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts.last().copied(), Some(1));
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        assert_eq!(h.counts.len(), LATENCY_BUCKETS_S.len() + 1);
    }
}
