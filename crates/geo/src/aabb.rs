//! Axis-aligned bounding boxes for the spatial index.
//!
//! The world's spatial index bins building footprints into a uniform grid
//! by their 2-D AABBs. The only geometric predicate the index needs is
//! *conservative*: "could this segment possibly touch this box?" — false
//! negatives would silently drop obstruction losses, false positives only
//! cost a redundant exact test downstream. The slab test below is exact
//! for closed boxes, and callers pad boxes by an epsilon so floating-point
//! corner grazes can never be missed.

use crate::polygon::{Point2, Polygon2, Segment2};
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb2 {
    pub min: Point2,
    pub max: Point2,
}

impl Aabb2 {
    /// The empty box (contains nothing, unions as identity).
    pub fn empty() -> Self {
        Self {
            min: Point2::new(f64::INFINITY, f64::INFINITY),
            max: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Is this the empty box?
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Tight bounding box of a point set; empty for an empty set.
    pub fn from_points(points: &[Point2]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.min.x = b.min.x.min(p.x);
            b.min.y = b.min.y.min(p.y);
            b.max.x = b.max.x.max(p.x);
            b.max.y = b.max.y.max(p.y);
        }
        b
    }

    /// Tight bounding box of a polygon's vertex ring.
    pub fn of_polygon(poly: &Polygon2) -> Self {
        Self::from_points(poly.vertices())
    }

    /// Grow the box by `pad` on every side.
    pub fn expand(&self, pad: f64) -> Self {
        Self {
            min: Point2::new(self.min.x - pad, self.min.y - pad),
            max: Point2::new(self.max.x + pad, self.max.y + pad),
        }
    }

    /// Union with another box.
    pub fn union(&self, other: &Aabb2) -> Self {
        Self {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Width (east-west extent).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (north-south extent).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Does the closed box contain the point?
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clip the segment's parameter interval `[0, 1]` against the closed
    /// box (slab method). Returns the surviving `(t0, t1)` interval, or
    /// `None` if the segment misses the box. Degenerate (zero-length)
    /// segments reduce to a point-containment test.
    pub fn clip_segment(&self, seg: &Segment2) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        let d = Point2::new(seg.b.x - seg.a.x, seg.b.y - seg.a.y);

        for (a, d, lo, hi) in [
            (seg.a.x, d.x, self.min.x, self.max.x),
            (seg.a.y, d.y, self.min.y, self.max.y),
        ] {
            if d == 0.0 {
                // Parallel to this slab: inside it or nowhere.
                if a < lo || a > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut near, mut far) = ((lo - a) * inv, (hi - a) * inv);
                if near > far {
                    std::mem::swap(&mut near, &mut far);
                }
                t0 = t0.max(near);
                t1 = t1.min(far);
                if t0 > t1 {
                    return None;
                }
            }
        }
        Some((t0, t1))
    }

    /// Does the segment intersect the closed box?
    pub fn intersects_segment(&self, seg: &Segment2) -> bool {
        self.clip_segment(seg).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb2 {
        Aabb2 {
            min: Point2::new(0.0, 0.0),
            max: Point2::new(1.0, 1.0),
        }
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb2::empty();
        assert!(e.is_empty());
        assert!(!e.contains(&Point2::new(0.0, 0.0)));
        assert!(!e.intersects_segment(&Segment2::new(
            Point2::new(-1.0, -1.0),
            Point2::new(1.0, 1.0)
        )));
        let u = e.union(&unit());
        assert_eq!(u, unit());
    }

    #[test]
    fn from_polygon_is_tight() {
        let poly = Polygon2::rect(-3.0, 2.0, 5.0, 7.0);
        let b = Aabb2::of_polygon(&poly);
        assert_eq!(b.min, Point2::new(-3.0, 2.0));
        assert_eq!(b.max, Point2::new(5.0, 7.0));
        assert_eq!(b.width(), 8.0);
        assert_eq!(b.height(), 5.0);
    }

    #[test]
    fn segment_crossing_hits() {
        let b = unit();
        // Straight through.
        assert!(b.intersects_segment(&Segment2::new(
            Point2::new(-1.0, 0.5),
            Point2::new(2.0, 0.5)
        )));
        // Fully inside.
        assert!(b.intersects_segment(&Segment2::new(
            Point2::new(0.2, 0.2),
            Point2::new(0.8, 0.8)
        )));
        // Endpoint inside.
        assert!(b.intersects_segment(&Segment2::new(
            Point2::new(0.5, 0.5),
            Point2::new(5.0, 5.0)
        )));
        // Diagonal graze exactly through the corner.
        assert!(b.intersects_segment(&Segment2::new(
            Point2::new(-1.0, 2.0),
            Point2::new(2.0, -1.0)
        )));
    }

    #[test]
    fn segment_missing_misses() {
        let b = unit();
        assert!(!b.intersects_segment(&Segment2::new(
            Point2::new(-1.0, 2.0),
            Point2::new(2.0, 2.0)
        )));
        assert!(!b.intersects_segment(&Segment2::new(
            Point2::new(2.0, -1.0),
            Point2::new(2.0, 2.0)
        )));
        // Diagonal that passes just outside the (1, 1) corner: x + y = 2.1.
        assert!(!b.intersects_segment(&Segment2::new(
            Point2::new(-1.0, 3.1),
            Point2::new(3.1, -1.0)
        )));
    }

    #[test]
    fn degenerate_segment_is_point_test() {
        let b = unit();
        let inside = Segment2::new(Point2::new(0.5, 0.5), Point2::new(0.5, 0.5));
        let outside = Segment2::new(Point2::new(1.5, 0.5), Point2::new(1.5, 0.5));
        assert!(b.intersects_segment(&inside));
        assert!(!b.intersects_segment(&outside));
    }

    #[test]
    fn expand_pads_every_side() {
        let b = unit().expand(0.5);
        assert_eq!(b.min, Point2::new(-0.5, -0.5));
        assert_eq!(b.max, Point2::new(1.5, 1.5));
    }
}
