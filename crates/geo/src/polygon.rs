//! Planar geometry: points, segments, polygons and ray casting.
//!
//! The environment model describes buildings as 2-D footprint polygons (in a
//! sensor-local ENU frame, meters) extruded to a height. Obstruction testing
//! reduces to: does the ray from the sensor toward an emitter cross a
//! footprint edge, and if so at what distance (to compare the building
//! height against the ray's altitude at the crossing)?

use serde::{Deserialize, Serialize};

/// A point (or vector) in the local horizontal plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Construct from compass bearing (degrees from +y/north, clockwise)
    /// and range, matching the ENU convention (`x` = east, `y` = north).
    pub fn from_bearing(bearing_deg: f64, range_m: f64) -> Self {
        let r = bearing_deg.to_radians();
        Self::new(range_m * r.sin(), range_m * r.cos())
    }

    /// Compass bearing of this point as seen from the origin.
    pub fn bearing_deg(&self) -> f64 {
        crate::angle::normalize_bearing(self.x.atan2(self.y).to_degrees())
    }

    /// Distance from the origin.
    pub fn range_m(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// A directed line segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment2 {
    pub a: Point2,
    pub b: Point2,
}

impl Segment2 {
    pub const fn new(a: Point2, b: Point2) -> Self {
        Self { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Intersection of two segments, if any.
    ///
    /// Returns the parameter `t ∈ [0, 1]` along `self` and the intersection
    /// point. Collinear overlapping segments report the overlap start.
    pub fn intersect(&self, other: &Segment2) -> Option<(f64, Point2)> {
        let r = Point2::new(self.b.x - self.a.x, self.b.y - self.a.y);
        let s = Point2::new(other.b.x - other.a.x, other.b.y - other.a.y);
        let denom = cross(r, s);
        let qp = Point2::new(other.a.x - self.a.x, other.a.y - self.a.y);
        if denom.abs() < 1e-12 {
            // Parallel. Collinear overlap check.
            if cross(qp, r).abs() > 1e-9 {
                return None;
            }
            let rr = r.x * r.x + r.y * r.y;
            if rr < 1e-18 {
                return None; // degenerate self
            }
            let t0 = (qp.x * r.x + qp.y * r.y) / rr;
            let t1 = t0 + (s.x * r.x + s.y * r.y) / rr;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let t = lo.max(0.0);
            if t <= hi.min(1.0) {
                let p = Point2::new(self.a.x + t * r.x, self.a.y + t * r.y);
                return Some((t, p));
            }
            return None;
        }
        let t = cross(qp, s) / denom;
        let u = cross(qp, r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            let p = Point2::new(self.a.x + t * r.x, self.a.y + t * r.y);
            Some((t, p))
        } else {
            None
        }
    }
}

fn cross(a: Point2, b: Point2) -> f64 {
    a.x * b.y - a.y * b.x
}

/// A simple (non-self-intersecting) polygon given by its vertex ring.
///
/// The ring may be given in either winding order; it is treated as closed
/// (an implicit edge joins the last vertex back to the first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon2 {
    vertices: Vec<Point2>,
}

impl Polygon2 {
    /// Build a polygon from at least three vertices.
    ///
    /// Returns `None` for fewer than three vertices.
    pub fn new(vertices: Vec<Point2>) -> Option<Self> {
        if vertices.len() < 3 {
            return None;
        }
        Some(Self { vertices })
    }

    /// Axis-aligned rectangle helper: corners `(x0, y0)`–`(x1, y1)`.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        let (xa, xb) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (ya, yb) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        Self {
            vertices: vec![
                Point2::new(xa, ya),
                Point2::new(xb, ya),
                Point2::new(xb, yb),
                Point2::new(xa, yb),
            ],
        }
    }

    /// Vertices of the ring.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Iterator over the closed edge list.
    pub fn edges(&self) -> impl Iterator<Item = Segment2> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment2::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise rings).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += cross(p, q);
        }
        acc / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid of the polygon (area-weighted).
    pub fn centroid(&self) -> Point2 {
        let n = self.vertices.len();
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            // Degenerate: fall back to vertex mean.
            let (mut sx, mut sy) = (0.0, 0.0);
            for v in &self.vertices {
                sx += v.x;
                sy += v.y;
            }
            return Point2::new(sx / n as f64, sy / n as f64);
        }
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = cross(p, q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Is the point strictly inside the polygon? (Even-odd rule; points on
    /// the boundary may report either way and callers must not rely on it.)
    pub fn contains(&self, p: &Point2) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// All crossings of the segment `seg` with the polygon boundary, as
    /// `(t, point)` sorted by increasing `t` along the segment.
    pub fn crossings(&self, seg: &Segment2) -> Vec<(f64, Point2)> {
        let mut hits = Vec::new();
        self.crossings_into(seg, &mut hits);
        hits
    }

    /// Non-allocating form of [`crossings`](Self::crossings): clears and
    /// fills a caller-owned buffer. Bit-identical to the allocating form.
    pub fn crossings_into(&self, seg: &Segment2, hits: &mut Vec<(f64, Point2)>) {
        hits.clear();
        hits.extend(self.edges().filter_map(|e| seg.intersect(&e)));
        hits.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Deduplicate vertex hits (a crossing exactly at a shared vertex is
        // reported by both incident edges).
        hits.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
    }

    /// Total length of `seg` that lies inside the polygon. This is the
    /// through-material distance used for penetration-loss estimates.
    pub fn chord_length_inside(&self, seg: &Segment2) -> f64 {
        let crossings = self.crossings(seg);
        self.chord_length_inside_from(seg, &crossings, &mut Vec::new())
    }

    /// Non-allocating form of [`chord_length_inside`](Self::chord_length_inside)
    /// that reuses already-computed boundary `crossings` (as returned by
    /// [`crossings`](Self::crossings) for the *same* segment) and a
    /// caller-owned scratch buffer. Bit-identical to the allocating form.
    pub fn chord_length_inside_from(
        &self,
        seg: &Segment2,
        crossings: &[(f64, Point2)],
        ts: &mut Vec<f64>,
    ) -> f64 {
        ts.clear();
        ts.push(0.0);
        ts.extend(crossings.iter().map(|(t, _)| *t));
        ts.push(1.0);
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let len = seg.length();
        let mut inside_len = 0.0;
        for w in ts.windows(2) {
            let mid = (w[0] + w[1]) / 2.0;
            let p = Point2::new(
                seg.a.x + mid * (seg.b.x - seg.a.x),
                seg.a.y + mid * (seg.b.y - seg.a.y),
            );
            if self.contains(&p) {
                inside_len += (w[1] - w[0]) * len;
            }
        }
        inside_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon2 {
        Polygon2::rect(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn polygon_needs_three_vertices() {
        assert!(Polygon2::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]).is_none());
        assert!(Polygon2::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0)
        ])
        .is_some());
    }

    #[test]
    fn area_and_centroid_of_square() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_basic() {
        let sq = unit_square();
        assert!(sq.contains(&Point2::new(0.5, 0.5)));
        assert!(!sq.contains(&Point2::new(1.5, 0.5)));
        assert!(!sq.contains(&Point2::new(-0.1, 0.5)));
    }

    #[test]
    fn segment_intersection_crossing() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let s2 = Segment2::new(Point2::new(0.0, 2.0), Point2::new(2.0, 0.0));
        let (t, p) = s1.intersect(&s2).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_intersection_miss_and_parallel() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment2::new(Point2::new(0.0, 1.0), Point2::new(1.0, 1.0));
        assert!(s1.intersect(&s2).is_none());
        let s3 = Segment2::new(Point2::new(2.0, -1.0), Point2::new(2.0, 1.0));
        assert!(s1.intersect(&s3).is_none());
    }

    #[test]
    fn segment_collinear_overlap() {
        let s1 = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        let s2 = Segment2::new(Point2::new(1.0, 0.0), Point2::new(3.0, 0.0));
        let (t, p) = s1.intersect(&s2).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!((p.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ray_through_square_two_crossings() {
        let sq = unit_square();
        let ray = Segment2::new(Point2::new(-1.0, 0.5), Point2::new(2.0, 0.5));
        let hits = sq.crossings(&ray);
        assert_eq!(hits.len(), 2);
        assert!((hits[0].1.x - 0.0).abs() < 1e-9);
        assert!((hits[1].1.x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chord_length_through_square() {
        let sq = unit_square();
        let ray = Segment2::new(Point2::new(-1.0, 0.5), Point2::new(2.0, 0.5));
        assert!((sq.chord_length_inside(&ray) - 1.0).abs() < 1e-9);
        let outside = Segment2::new(Point2::new(-1.0, 5.0), Point2::new(2.0, 5.0));
        assert_eq!(sq.chord_length_inside(&outside), 0.0);
    }

    #[test]
    fn chord_length_from_inside_point() {
        // Sensor inside a building: ray starts inside.
        let sq = Polygon2::rect(-10.0, -10.0, 10.0, 10.0);
        let ray = Segment2::new(Point2::new(0.0, 0.0), Point2::new(50.0, 0.0));
        assert!((sq.chord_length_inside(&ray) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn point2_bearing_convention() {
        // +y is north (bearing 0), +x is east (bearing 90).
        assert!((Point2::new(0.0, 1.0).bearing_deg() - 0.0).abs() < 1e-9);
        assert!((Point2::new(1.0, 0.0).bearing_deg() - 90.0).abs() < 1e-9);
        assert!((Point2::new(0.0, -1.0).bearing_deg() - 180.0).abs() < 1e-9);
        assert!((Point2::new(-1.0, 0.0).bearing_deg() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn from_bearing_round_trip() {
        for brg in [0.0, 30.0, 90.0, 200.0, 355.0] {
            let p = Point2::from_bearing(brg, 100.0);
            assert!((p.bearing_deg() - brg).abs() < 1e-9, "brg {brg}");
            assert!((p.range_m() - 100.0).abs() < 1e-9);
        }
    }
}
