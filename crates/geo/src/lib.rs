//! Geodesy and planar-geometry primitives for the `aircal` workspace.
//!
//! Everything in the simulation ultimately reduces to geometry: where an
//! aircraft is relative to a sensor, which bearing a cellular tower sits at,
//! whether the straight-line path from an emitter to a receiver crosses a
//! building footprint. This crate provides those primitives:
//!
//! * [`LatLon`] — WGS-84 latitude/longitude with spherical-earth distance,
//!   bearing and destination-point math (sufficient for the ≤100 km ranges
//!   the paper works at; errors vs. full ellipsoidal geodesics are <0.5%).
//! * [`Enu`] — a local east-north-up frame anchored at a sensor site, used
//!   for metric geometry (building footprints, ray casting).
//! * [`angle`] — bearing/angle arithmetic on the circle, plus [`angle::Sector`]
//!   for describing angular fields of view.
//! * [`polygon`] — planar polygons, segment intersection and ray casting,
//!   used by the environment model for obstruction tests.
//!
//! All angles at API boundaries are in **degrees** (like aviation and RF
//! practice); radians appear only inside computations. Distances are in
//! **meters** unless a name says otherwise.

pub mod aabb;
pub mod angle;
pub mod coord;
pub mod polygon;

pub use aabb::Aabb2;
pub use angle::{normalize_bearing, normalize_signed, Sector};
pub use coord::{Ecef, Enu, EnuFrame, LatLon, EARTH_RADIUS_M};
pub use polygon::{Point2, Polygon2, Segment2};
