//! Angle and bearing arithmetic on the circle.
//!
//! Bearings follow the compass convention used throughout the paper's
//! figures: degrees clockwise from true north, in `[0, 360)`. The painful
//! part of angular math is wrap-around; the helpers here centralize it so
//! the rest of the workspace never writes a modulo by hand.

use serde::{Deserialize, Serialize};

/// Normalize any angle in degrees into the compass range `[0, 360)`.
pub fn normalize_bearing(deg: f64) -> f64 {
    let r = deg % 360.0;
    if r < 0.0 {
        r + 360.0
    } else {
        r
    }
}

/// Normalize an angle difference into the signed range `(-180, 180]`.
///
/// Useful for "how far and which way" questions between two bearings.
pub fn normalize_signed(deg: f64) -> f64 {
    let mut r = deg % 360.0;
    if r > 180.0 {
        r -= 360.0;
    } else if r <= -180.0 {
        r += 360.0;
    }
    r
}

/// Smallest absolute angular separation between two bearings, in `[0, 180]`.
pub fn separation(a_deg: f64, b_deg: f64) -> f64 {
    normalize_signed(a_deg - b_deg).abs()
}

/// Circular mean of a set of bearings in degrees.
///
/// Returns `None` for an empty slice or when the resultant vector is
/// numerically zero (e.g. two opposite bearings), in which case no mean
/// direction is defined.
pub fn circular_mean(bearings_deg: &[f64]) -> Option<f64> {
    if bearings_deg.is_empty() {
        return None;
    }
    let (mut s, mut c) = (0.0f64, 0.0f64);
    for &b in bearings_deg {
        let r = b.to_radians();
        s += r.sin();
        c += r.cos();
    }
    let norm = (s * s + c * c).sqrt() / bearings_deg.len() as f64;
    if norm < 1e-12 {
        return None;
    }
    Some(normalize_bearing(s.atan2(c).to_degrees()))
}

/// An angular sector on the compass circle: `width_deg` degrees of arc
/// starting at `start_deg` and sweeping clockwise.
///
/// Sectors model fields of view: the paper's rooftop site has an open
/// sector facing west, the window site a slim south-east aperture. A sector
/// may wrap through north (e.g. start 350°, width 20° covers 350°–10°).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sector {
    /// Clockwise start bearing in degrees, normalized to `[0, 360)`.
    pub start_deg: f64,
    /// Arc width in degrees, clamped to `[0, 360]`.
    pub width_deg: f64,
}

impl Sector {
    /// Create a sector from a start bearing and clockwise width.
    pub fn new(start_deg: f64, width_deg: f64) -> Self {
        Self {
            start_deg: normalize_bearing(start_deg),
            width_deg: width_deg.clamp(0.0, 360.0),
        }
    }

    /// Sector centered on `center_deg` spanning `width_deg`.
    pub fn centered(center_deg: f64, width_deg: f64) -> Self {
        Self::new(center_deg - width_deg / 2.0, width_deg)
    }

    /// The full circle.
    pub fn full() -> Self {
        Self::new(0.0, 360.0)
    }

    /// Center bearing of the sector.
    pub fn center_deg(&self) -> f64 {
        normalize_bearing(self.start_deg + self.width_deg / 2.0)
    }

    /// End bearing (clockwise from start), normalized.
    pub fn end_deg(&self) -> f64 {
        normalize_bearing(self.start_deg + self.width_deg)
    }

    /// Does the sector contain the given bearing?
    ///
    /// The start edge is inclusive, the end edge exclusive, except that a
    /// 360° sector contains everything.
    pub fn contains(&self, bearing_deg: f64) -> bool {
        if self.width_deg >= 360.0 {
            return true;
        }
        let rel = normalize_bearing(bearing_deg - self.start_deg);
        // Tolerate float error at the start edge: a bearing recomputed
        // through trigonometry may land at start − 1e-12, which would
        // otherwise wrap to rel ≈ 360 and be rejected.
        rel < self.width_deg || rel > 360.0 - 1e-6
    }

    /// Angular distance (degrees) from a bearing to the nearest point of the
    /// sector; zero if the bearing is inside.
    pub fn distance_to(&self, bearing_deg: f64) -> f64 {
        if self.contains(bearing_deg) {
            return 0.0;
        }
        let to_start = separation(bearing_deg, self.start_deg);
        let to_end = separation(bearing_deg, self.end_deg());
        to_start.min(to_end)
    }

    /// Width of the overlap between two sectors, in degrees.
    ///
    /// Computed by 0.1°-resolution sampling of the candidate boundary points;
    /// exact for the axis-aligned cases used in practice and accurate to one
    /// sample step otherwise.
    pub fn overlap_deg(&self, other: &Sector) -> f64 {
        // Exact interval intersection on the unwrapped circle: cut both
        // sectors at `self.start_deg` so self becomes [0, w).
        if self.width_deg <= 0.0 || other.width_deg <= 0.0 {
            return 0.0;
        }
        if self.width_deg >= 360.0 {
            return other.width_deg;
        }
        if other.width_deg >= 360.0 {
            return self.width_deg;
        }
        let w_self = self.width_deg;
        let o_start = normalize_bearing(other.start_deg - self.start_deg);
        let o_end = o_start + other.width_deg;
        // other occupies [o_start, o_end) which may extend past 360; split.
        let mut total = 0.0;
        for (lo, hi) in [(o_start, o_end.min(360.0)), (0.0, (o_end - 360.0).max(0.0))] {
            if hi > lo {
                total += (hi.min(w_self) - lo.min(w_self)).max(0.0);
            }
        }
        total
    }

    /// Intersection-over-union of two sectors (angular Jaccard index).
    ///
    /// Used to score estimated fields of view against ground truth.
    pub fn iou(&self, other: &Sector) -> f64 {
        let inter = self.overlap_deg(other);
        let union = self.width_deg + other.width_deg - inter;
        if union <= 0.0 {
            // Two empty sectors are identical.
            1.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps_negative() {
        assert_eq!(normalize_bearing(-90.0), 270.0);
        assert_eq!(normalize_bearing(720.0), 0.0);
        assert_eq!(normalize_bearing(359.0), 359.0);
    }

    #[test]
    fn signed_normalization() {
        assert_eq!(normalize_signed(190.0), -170.0);
        assert_eq!(normalize_signed(-190.0), 170.0);
        assert_eq!(normalize_signed(180.0), 180.0);
        assert_eq!(normalize_signed(0.0), 0.0);
    }

    #[test]
    fn separation_is_symmetric_and_bounded() {
        assert_eq!(separation(10.0, 350.0), 20.0);
        assert_eq!(separation(350.0, 10.0), 20.0);
        assert_eq!(separation(0.0, 180.0), 180.0);
    }

    #[test]
    fn circular_mean_wraps_north() {
        let m = circular_mean(&[350.0, 10.0]).unwrap();
        assert!(m < 1e-9 || (360.0 - m) < 1e-9, "mean was {m}");
    }

    #[test]
    fn circular_mean_empty_and_degenerate() {
        assert!(circular_mean(&[]).is_none());
        assert!(circular_mean(&[0.0, 180.0]).is_none());
    }

    #[test]
    fn sector_contains_with_wrap() {
        let s = Sector::new(350.0, 20.0);
        assert!(s.contains(355.0));
        assert!(s.contains(0.0));
        assert!(s.contains(9.9));
        assert!(!s.contains(10.0));
        assert!(!s.contains(180.0));
    }

    #[test]
    fn full_sector_contains_everything() {
        let s = Sector::full();
        for b in 0..360 {
            assert!(s.contains(b as f64));
        }
    }

    #[test]
    fn sector_centered_construction() {
        let s = Sector::centered(270.0, 90.0); // paper's west-facing rooftop
        assert_eq!(s.start_deg, 225.0);
        assert_eq!(s.end_deg(), 315.0);
        assert!(s.contains(270.0));
        assert!(!s.contains(90.0));
    }

    #[test]
    fn sector_distance() {
        let s = Sector::new(0.0, 90.0);
        assert_eq!(s.distance_to(45.0), 0.0);
        assert!((s.distance_to(100.0) - 10.0).abs() < 1e-9);
        assert!((s.distance_to(350.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_disjoint_and_nested() {
        let a = Sector::new(0.0, 90.0);
        let b = Sector::new(180.0, 90.0);
        assert_eq!(a.overlap_deg(&b), 0.0);
        let c = Sector::new(10.0, 20.0);
        assert!((a.overlap_deg(&c) - 20.0).abs() < 1e-9);
        assert!((c.overlap_deg(&a) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_wrapping() {
        let a = Sector::new(350.0, 20.0); // 350..10
        let b = Sector::new(0.0, 90.0); // 0..90
        assert!((a.overlap_deg(&b) - 10.0).abs() < 1e-9);
        assert!((b.overlap_deg(&a) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = Sector::new(30.0, 60.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-9);
        let b = Sector::new(180.0, 60.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn overlap_with_full_circle() {
        let a = Sector::full();
        let b = Sector::new(10.0, 45.0);
        assert!((a.overlap_deg(&b) - 45.0).abs() < 1e-9);
        assert!((b.overlap_deg(&a) - 45.0).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Overlap is commutative and bounded by both widths.
            #[test]
            fn overlap_commutative_and_bounded(
                s1 in 0.0f64..360.0, w1 in 0.0f64..360.0,
                s2 in 0.0f64..360.0, w2 in 0.0f64..360.0,
            ) {
                let a = Sector::new(s1, w1);
                let b = Sector::new(s2, w2);
                let ab = a.overlap_deg(&b);
                let ba = b.overlap_deg(&a);
                prop_assert!((ab - ba).abs() < 1e-6, "{ab} vs {ba}");
                prop_assert!(ab <= a.width_deg + 1e-9);
                prop_assert!(ab <= b.width_deg + 1e-9);
                prop_assert!(ab >= -1e-9);
            }

            /// IoU is symmetric, within [0, 1], and 1 for self.
            #[test]
            fn iou_properties(s1 in 0.0f64..360.0, w1 in 1.0f64..360.0, s2 in 0.0f64..360.0, w2 in 1.0f64..360.0) {
                let a = Sector::new(s1, w1);
                let b = Sector::new(s2, w2);
                let i = a.iou(&b);
                prop_assert!((i - b.iou(&a)).abs() < 1e-6);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&i));
                prop_assert!((a.iou(&a) - 1.0).abs() < 1e-9);
            }

            /// A sector contains its own center; the antipode of the center
            /// is outside whenever the width is under 180°.
            #[test]
            fn center_containment(start in 0.0f64..360.0, width in 1.0f64..179.0) {
                let s = Sector::new(start, width);
                prop_assert!(s.contains(s.center_deg()));
                prop_assert!(!s.contains(s.center_deg() + 180.0));
            }

            /// `distance_to` is zero exactly on containment.
            #[test]
            fn distance_zero_iff_contained(start in 0.0f64..360.0, width in 1.0f64..359.0, probe in 0.0f64..360.0) {
                let s = Sector::new(start, width);
                let d = s.distance_to(probe);
                if s.contains(probe) {
                    prop_assert_eq!(d, 0.0);
                } else {
                    prop_assert!(d > 0.0);
                }
            }

            /// normalize_signed is idempotent and consistent with
            /// normalize_bearing modulo 360.
            #[test]
            fn normalization_consistency(deg in -2000.0f64..2000.0) {
                let s = normalize_signed(deg);
                prop_assert!((-180.0..=180.0).contains(&s));
                prop_assert!((normalize_signed(s) - s).abs() < 1e-12);
                let b = normalize_bearing(deg);
                prop_assert!((0.0..360.0).contains(&b));
                prop_assert!((normalize_bearing(s) - b).abs() < 1e-9);
            }
        }
    }
}
