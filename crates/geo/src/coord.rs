//! Geographic coordinates and frame conversions.
//!
//! The simulation operates at ranges up to ~100 km (the paper's
//! FlightRadar24 query radius), where a spherical-earth model is accurate to
//! well under 0.5% — far below the RF-level uncertainties being modeled. We
//! therefore use great-circle math on a sphere of mean radius
//! [`EARTH_RADIUS_M`], plus exact WGS-84 ECEF/ENU conversions where a metric
//! local frame is needed.

use crate::angle::normalize_bearing;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (IUGG mean radius R₁).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// WGS-84 semi-major axis in meters.
pub const WGS84_A: f64 = 6_378_137.0;
/// WGS-84 first eccentricity squared.
pub const WGS84_E2: f64 = 6.694_379_990_141_316e-3;

/// A geographic position: latitude/longitude in degrees, altitude in meters
/// above the reference sphere/ellipsoid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon_deg: f64,
    /// Altitude in meters above the reference surface.
    pub alt_m: f64,
}

impl LatLon {
    /// Construct a position at the given latitude/longitude and altitude.
    pub fn new(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        Self {
            lat_deg,
            lon_deg,
            alt_m,
        }
    }

    /// Construct a surface position (altitude zero).
    pub fn surface(lat_deg: f64, lon_deg: f64) -> Self {
        Self::new(lat_deg, lon_deg, 0.0)
    }

    /// Great-circle (surface) distance to `other` in meters, by the
    /// haversine formula. Altitude is ignored.
    pub fn distance_m(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Slant range to `other` in meters: 3-D straight-line distance
    /// accounting for the altitude difference. This is what RF path loss
    /// actually sees for an aircraft overhead.
    pub fn slant_range_m(&self, other: &LatLon) -> f64 {
        let ground = self.distance_m(other);
        let dh = other.alt_m - self.alt_m;
        (ground * ground + dh * dh).sqrt()
    }

    /// Initial great-circle bearing from `self` to `other`, degrees
    /// clockwise from true north in `[0, 360)`.
    pub fn bearing_deg(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        normalize_bearing(y.atan2(x).to_degrees())
    }

    /// Elevation angle in degrees from `self` up to `other` (negative if
    /// `other` is below the local horizontal).
    pub fn elevation_deg(&self, other: &LatLon) -> f64 {
        let ground = self.distance_m(other);
        let dh = other.alt_m - self.alt_m;
        dh.atan2(ground).to_degrees()
    }

    /// The point reached by traveling `distance_m` along the great circle
    /// with the given initial `bearing_deg`. Altitude is preserved.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> LatLon {
        let lat1 = self.lat_deg.to_radians();
        let lon1 = self.lon_deg.to_radians();
        let brg = bearing_deg.to_radians();
        let d = distance_m / EARTH_RADIUS_M;
        let lat2 = (lat1.sin() * d.cos() + lat1.cos() * d.sin() * brg.cos()).asin();
        let lon2 = lon1
            + (brg.sin() * d.sin() * lat1.cos()).atan2(d.cos() - lat1.sin() * lat2.sin());
        LatLon {
            lat_deg: lat2.to_degrees(),
            lon_deg: normalize_lon(lon2.to_degrees()),
            alt_m: self.alt_m,
        }
    }

    /// Convert to Earth-centered Earth-fixed coordinates (WGS-84 ellipsoid).
    pub fn to_ecef(&self) -> Ecef {
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        let n = WGS84_A / (1.0 - WGS84_E2 * lat.sin().powi(2)).sqrt();
        Ecef {
            x: (n + self.alt_m) * lat.cos() * lon.cos(),
            y: (n + self.alt_m) * lat.cos() * lon.sin(),
            z: (n * (1.0 - WGS84_E2) + self.alt_m) * lat.sin(),
        }
    }

    /// Express `other` in the local east-north-up frame anchored at `self`.
    pub fn enu_of(&self, other: &LatLon) -> Enu {
        let origin = self.to_ecef();
        let target = other.to_ecef();
        let (dx, dy, dz) = (target.x - origin.x, target.y - origin.y, target.z - origin.z);
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        let (sl, cl) = (lon.sin(), lon.cos());
        let (sp, cp) = (lat.sin(), lat.cos());
        Enu {
            east: -sl * dx + cl * dy,
            north: -sp * cl * dx - sp * sl * dy + cp * dz,
            up: cp * cl * dx + cp * sl * dy + sp * dz,
        }
    }
}

/// A precomputed east-north-up frame anchored at one origin.
///
/// [`LatLon::enu_of`] recomputes the origin's ECEF position and the four
/// rotation-row trig terms on every call; when thousands of emitters are
/// projected against the same anchor (the world→PHY hot path), that work
/// is pure overhead. `EnuFrame::new(o).enu_of(p)` runs the *same formulas
/// in the same operation order* as `o.enu_of(p)`, so its outputs are
/// bit-identical — it just evaluates the origin-only terms once.
#[derive(Debug, Clone, Copy)]
pub struct EnuFrame {
    origin_ecef: Ecef,
    sin_lon: f64,
    cos_lon: f64,
    sin_lat: f64,
    cos_lat: f64,
}

impl EnuFrame {
    /// Precompute the frame for an origin.
    pub fn new(origin: &LatLon) -> Self {
        let lat = origin.lat_deg.to_radians();
        let lon = origin.lon_deg.to_radians();
        Self {
            origin_ecef: origin.to_ecef(),
            sin_lon: lon.sin(),
            cos_lon: lon.cos(),
            sin_lat: lat.sin(),
            cos_lat: lat.cos(),
        }
    }

    /// Express `other` in this frame; bit-identical to
    /// `origin.enu_of(other)`.
    pub fn enu_of(&self, other: &LatLon) -> Enu {
        let target = other.to_ecef();
        let (dx, dy, dz) = (
            target.x - self.origin_ecef.x,
            target.y - self.origin_ecef.y,
            target.z - self.origin_ecef.z,
        );
        let (sl, cl) = (self.sin_lon, self.cos_lon);
        let (sp, cp) = (self.sin_lat, self.cos_lat);
        Enu {
            east: -sl * dx + cl * dy,
            north: -sp * cl * dx - sp * sl * dy + cp * dz,
            up: cp * cl * dx + cp * sl * dy + sp * dz,
        }
    }
}

/// Normalize a longitude into `[-180, 180)`.
fn normalize_lon(deg: f64) -> f64 {
    let mut r = (deg + 180.0) % 360.0;
    if r < 0.0 {
        r += 360.0;
    }
    r - 180.0
}

/// Earth-centered Earth-fixed Cartesian coordinates, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ecef {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A vector in a local east-north-up frame, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Enu {
    pub east: f64,
    pub north: f64,
    pub up: f64,
}

impl Enu {
    /// Horizontal (ground) distance, meters.
    pub fn horizontal_m(&self) -> f64 {
        (self.east * self.east + self.north * self.north).sqrt()
    }

    /// 3-D distance, meters.
    pub fn range_m(&self) -> f64 {
        (self.east * self.east + self.north * self.north + self.up * self.up).sqrt()
    }

    /// Compass bearing of the horizontal component, degrees from north.
    pub fn bearing_deg(&self) -> f64 {
        normalize_bearing(self.east.atan2(self.north).to_degrees())
    }

    /// Elevation angle above the horizontal plane, degrees.
    pub fn elevation_deg(&self) -> f64 {
        self.up.atan2(self.horizontal_m()).to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's experiment site is in Berkeley, CA; use it as a fixture.
    fn berkeley() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = berkeley();
        assert!(p.distance_m(&p) < 1e-6);
    }

    #[test]
    fn known_distance_sf_to_la() {
        let sf = LatLon::surface(37.7749, -122.4194);
        let la = LatLon::surface(34.0522, -118.2437);
        let d = sf.distance_m(&la);
        // Published great-circle distance ≈ 559 km.
        assert!((d - 559_000.0).abs() < 5_000.0, "distance {d}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let p = berkeley();
        let north = p.destination(0.0, 10_000.0);
        let east = p.destination(90.0, 10_000.0);
        assert!(p.bearing_deg(&north) < 0.1 || p.bearing_deg(&north) > 359.9);
        assert!((p.bearing_deg(&east) - 90.0).abs() < 0.1);
    }

    #[test]
    fn destination_round_trip() {
        let p = berkeley();
        for brg in [0.0, 45.0, 137.0, 270.0, 359.0] {
            for dist in [100.0, 5_000.0, 100_000.0] {
                let q = p.destination(brg, dist);
                assert!((p.distance_m(&q) - dist).abs() < 1.0, "brg {brg} dist {dist}");
                assert!((p.bearing_deg(&q) - brg).abs() < 0.5 || dist < 200.0);
            }
        }
    }

    #[test]
    fn slant_range_includes_altitude() {
        let p = berkeley();
        let mut above = p;
        above.alt_m = 10_000.0;
        assert!((p.slant_range_m(&above) - 10_000.0).abs() < 1e-6);
        let far = p.destination(90.0, 30_000.0);
        let mut far_high = far;
        far_high.alt_m = 10_000.0;
        let expect = (30_000.0f64.powi(2) + 10_000.0f64.powi(2)).sqrt();
        assert!((p.slant_range_m(&far_high) - expect).abs() < 20.0);
    }

    #[test]
    fn elevation_angle_overhead() {
        let p = berkeley();
        let mut up = p;
        up.alt_m = 5_000.0;
        assert!((p.elevation_deg(&up) - 90.0).abs() < 1e-9);
        let far = p.destination(0.0, 10_000.0);
        let mut q = far;
        q.alt_m = 10_000.0;
        assert!((p.elevation_deg(&q) - 45.0).abs() < 0.5);
    }

    #[test]
    fn ecef_magnitude_reasonable() {
        let p = berkeley().to_ecef();
        let r = (p.x * p.x + p.y * p.y + p.z * p.z).sqrt();
        assert!(r > 6.3e6 && r < 6.4e6);
    }

    #[test]
    fn enu_matches_bearing_distance() {
        let p = berkeley();
        let q = p.destination(60.0, 20_000.0);
        let enu = p.enu_of(&q);
        assert!((enu.bearing_deg() - 60.0).abs() < 0.2);
        assert!((enu.horizontal_m() - 20_000.0).abs() < 100.0);
    }

    #[test]
    fn enu_up_axis() {
        let p = berkeley();
        let mut q = p;
        q.alt_m = 1_000.0;
        let enu = p.enu_of(&q);
        assert!(enu.up > 999.0 && enu.up < 1_001.0);
        assert!(enu.horizontal_m() < 1.0);
        assert!((enu.elevation_deg() - 90.0).abs() < 0.1);
    }

    #[test]
    fn enu_frame_bit_identical_to_enu_of() {
        let p = berkeley();
        let frame = EnuFrame::new(&p);
        for brg in [0.0, 33.0, 127.5, 213.9, 290.0] {
            let mut q = p.destination(brg, 12_345.0);
            q.alt_m = 8_000.0;
            let a = p.enu_of(&q);
            let b = frame.enu_of(&q);
            assert_eq!(a.east.to_bits(), b.east.to_bits());
            assert_eq!(a.north.to_bits(), b.north.to_bits());
            assert_eq!(a.up.to_bits(), b.up.to_bits());
        }
    }

    #[test]
    fn lon_normalization_across_dateline() {
        let p = LatLon::surface(0.0, 179.9);
        let q = p.destination(90.0, 50_000.0);
        assert!(q.lon_deg < -179.0 || q.lon_deg > 179.9);
        assert!((p.distance_m(&q) - 50_000.0).abs() < 1.0);
    }
}
