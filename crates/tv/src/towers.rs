//! Broadcast transmitter database.

use crate::channels::AtscChannel;
use aircal_geo::LatLon;
use serde::{Deserialize, Serialize};

/// One broadcast TV transmitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvTower {
    /// Station name.
    pub name: String,
    /// RF channel.
    pub channel: AtscChannel,
    /// Transmitter position; `alt_m` is the antenna height above ground.
    pub position: LatLon,
    /// Effective radiated power, dBm (full-service UHF stations run
    /// 100 kW–1 MW ERP → 80–90 dBm).
    pub erp_dbm: f64,
}

/// The paper's Figure 4 stations: "multiple TV broadcast towers up to
/// 50 km away from the experiment site", on the six measured channels.
///
/// Bearings are chosen to reproduce the figure's one qualitative outlier:
/// the 521 MHz (RF 22) transmitter lies southeast — inside the window
/// site's aperture — so the window location measures it at nearly
/// unobstructed strength ("the tower broadcasting at this frequency is in
/// the field of view of the sensor"). The remaining stations cluster
/// west-southwest (Sutro-Tower-like, across the bay from Berkeley).
pub fn paper_tv_towers(origin: &LatLon) -> Vec<TvTower> {
    let tower = |name: &str, rf: u8, bearing: f64, dist_m: f64, height_m: f64, erp: f64| {
        let mut pos = origin.destination(bearing, dist_m);
        pos.alt_m = height_m;
        TvTower {
            name: name.to_string(),
            channel: AtscChannel::new(rf).expect("valid RF channel"),
            position: pos,
            erp_dbm: erp,
        }
    };
    vec![
        tower("KST-13 (213 MHz)", 13, 255.0, 25_000.0, 500.0, 76.0),
        tower("KST-14 (473 MHz)", 14, 255.0, 25_000.0, 500.0, 80.0),
        tower("KSE-22 (521 MHz)", 22, 135.0, 18_000.0, 350.0, 80.0),
        tower("KST-26 (545 MHz)", 26, 258.0, 26_000.0, 480.0, 80.0),
        tower("KMP-33 (587 MHz)", 33, 280.0, 42_000.0, 700.0, 83.0),
        tower("KMP-36 (605 MHz)", 36, 282.0, 43_000.0, 700.0, 83.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    #[test]
    fn six_stations_on_paper_channels() {
        let towers = paper_tv_towers(&origin());
        assert_eq!(towers.len(), 6);
        let centers: Vec<f64> = towers.iter().map(|t| t.channel.center_hz() / 1e6).collect();
        assert_eq!(centers, vec![213.0, 473.0, 521.0, 545.0, 587.0, 605.0]);
    }

    #[test]
    fn all_within_50_km() {
        for t in paper_tv_towers(&origin()) {
            let d = origin().distance_m(&t.position);
            assert!(d <= 50_000.0, "{} at {d} m", t.name);
        }
    }

    #[test]
    fn outlier_station_southeast() {
        let towers = paper_tv_towers(&origin());
        let rf22 = towers.iter().find(|t| t.channel.number() == 22).unwrap();
        let bearing = origin().bearing_deg(&rf22.position);
        assert!(
            (120.0..150.0).contains(&bearing),
            "RF 22 must sit in the window aperture, bearing {bearing}"
        );
    }

    #[test]
    fn erp_in_broadcast_range() {
        for t in paper_tv_towers(&origin()) {
            assert!((70.0..=90.0).contains(&t.erp_dbm), "{}", t.name);
        }
    }
}
