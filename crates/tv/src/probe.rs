//! The paper's GNU-Radio-style band-power probe, end to end through IQ.
//!
//! For each channel: tune the simulated front end to the channel center at
//! fixed gain, synthesize the 8VSB signal as received through the
//! environment's path profile, and push the IQ through
//! [`aircal_dsp::BandPowerMeter`] (bandpass → |x|² → very long moving
//! average). The result is dBFS — the y-axis of Figure 4.

use crate::synth::synthesize_8vsb;
use crate::towers::TvTower;
use crate::OCCUPIED_BANDWIDTH_HZ;
use aircal_dsp::{BandPowerMeter, Cplx};
use aircal_env::{GeoAccel, SensorSite, World};
use aircal_rfprop::{LinkBudget, PathProfile};
use aircal_sdr::{Frontend, FrontendConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Probe configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TvProbeConfig {
    /// Capture sample rate, Hz (one channel per capture).
    pub sample_rate_hz: f64,
    /// Capture length in samples.
    pub capture_len: usize,
    /// Bandpass filter taps.
    pub filter_taps: usize,
    /// Moving-average length ("very long" per the paper).
    pub average_len: usize,
    /// Full-scale reference of the fixed-gain front end, dBm.
    pub full_scale_dbm: f64,
    /// Worker threads for the channel sweep (`0` = all cores). Each
    /// channel is seeded independently, so results are identical for
    /// every value.
    pub parallelism: usize,
    /// Front-end fault at the sensor.
    pub fault: aircal_sdr::FrontendFault,
}

impl Default for TvProbeConfig {
    fn default() -> Self {
        Self {
            sample_rate_hz: 8e6,
            capture_len: 40_000,
            filter_taps: 129,
            average_len: 16_384,
            full_scale_dbm: -25.0,
            parallelism: 0,
            fault: aircal_sdr::FrontendFault::None,
        }
    }
}

/// One channel measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvMeasurement {
    /// Station name.
    pub station: String,
    /// RF channel number.
    pub rf_channel: u8,
    /// Channel center, Hz.
    pub center_hz: f64,
    /// Band power through the full DSP chain, dBFS.
    pub power_dbfs: f64,
    /// Analytic prediction (received power − full scale), dBFS — used to
    /// validate the DSP chain; a real receiver doesn't have this.
    pub predicted_dbfs: f64,
    /// Deterministic obstruction on the path, dB (diagnostic).
    pub obstruction_db: f64,
}

/// Reusable working memory for [`TvPowerProbe::measure_with`]: the
/// band-power meter (filter design + FFT plan, reset bit-identically
/// between channels) and the rendered IQ buffer. One instance per worker;
/// a scratch is tied to the probe config that first used it.
#[derive(Debug, Default)]
pub struct TvScratch {
    meter: Option<BandPowerMeter>,
    iq: Vec<Cplx>,
}

/// The probe.
#[derive(Debug, Clone, Default)]
pub struct TvPowerProbe {
    /// Configuration.
    pub config: TvProbeConfig,
}

impl TvPowerProbe {
    /// Create a probe.
    pub fn new(config: TvProbeConfig) -> Self {
        Self { config }
    }

    /// Synthesize the unit-power 8VSB capture waveform the probe measures
    /// against. It is deterministic and channel-independent, so a sweep
    /// synthesizes it once and shares it read-only across workers.
    pub fn reference_waveform(&self) -> Vec<Cplx> {
        synthesize_8vsb(self.config.capture_len, self.config.sample_rate_hz)
    }

    /// Measure one station from `site` within `world`. Thin allocating
    /// wrapper over [`TvPowerProbe::measure_with`].
    pub fn measure(
        &self,
        world: &World,
        site: &SensorSite,
        tower: &TvTower,
        seed: u64,
    ) -> TvMeasurement {
        let waveform = self.reference_waveform();
        let mut scratch = TvScratch::default();
        self.measure_with(world, site, tower, seed, &waveform, &mut scratch)
    }

    /// [`TvPowerProbe::measure`] with a shared pre-synthesized waveform
    /// (see [`TvPowerProbe::reference_waveform`]) and caller-owned working
    /// memory. Once the scratch's meter and IQ buffer are warm, repeated
    /// measurements are allocation-free apart from the station-name string
    /// in the result. Output is identical to [`TvPowerProbe::measure`].
    pub fn measure_with(
        &self,
        world: &World,
        site: &SensorSite,
        tower: &TvTower,
        seed: u64,
        waveform: &[Cplx],
        scratch: &mut TvScratch,
    ) -> TvMeasurement {
        let path = world.path_profile(site, &tower.position, tower.channel.center_hz());
        self.measure_with_path(&path, site, tower, seed, waveform, scratch)
    }

    /// [`TvPowerProbe::measure_with`] with the propagation path already in
    /// hand — the sweep entry points profile the static towers through the
    /// world's spatial index and memo, then hand each worker its path.
    pub fn measure_with_path(
        &self,
        path: &PathProfile,
        site: &SensorSite,
        tower: &TvTower,
        seed: u64,
        waveform: &[Cplx],
        scratch: &mut TvScratch,
    ) -> TvMeasurement {
        let _span = aircal_obs::span!("tv_channel");
        let cfg = &self.config;
        let freq = tower.channel.center_hz();
        let bearing = site.position.bearing_deg(&tower.position);
        let elevation = site.position.elevation_deg(&tower.position);
        let rx_gain = site.antenna.gain_dbi(bearing, elevation);
        let budget = LinkBudget::new(tower.erp_dbm, 0.0, rx_gain);

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ tower.channel.number() as u64);
        // Slow fading/shadowing: one draw for the whole capture (the
        // channel is static over milliseconds).
        let rx_dbm = budget.sample_rx_dbm(path, &mut rng);

        // Front end tuned to the channel at fixed gain.
        let mut fe_cfg = FrontendConfig::bladerf_xa9(freq, cfg.sample_rate_hz);
        fe_cfg.full_scale_dbm = cfg.full_scale_dbm;
        fe_cfg.noise_figure_db = site.noise_figure_db;
        fe_cfg.fault = cfg.fault;
        let fe = Frontend::new(fe_cfg);

        // Same math as `Frontend::render_burst`, into the reused buffer.
        fe.scale_and_impair_into(waveform, rx_dbm, 0.4, 0, &mut scratch.iq);
        fe.finalize(&mut scratch.iq, &mut rng);

        // The paper's measurement chain; the meter (filter design + FFT
        // plan) is built once per scratch and reset bit-identically.
        let meter = scratch.meter.get_or_insert_with(|| {
            BandPowerMeter::new(
                0.0,
                OCCUPIED_BANDWIDTH_HZ,
                cfg.sample_rate_hz,
                cfg.filter_taps,
                cfg.average_len,
            )
            .expect("probe configuration valid")
        });
        meter.reset();
        let power_dbfs = meter
            .measure_dbfs(&scratch.iq)
            .expect("capture longer than filter warm-up");

        TvMeasurement {
            station: tower.name.clone(),
            rf_channel: tower.channel.number(),
            center_hz: freq,
            power_dbfs,
            predicted_dbfs: fe.effective_power_dbm(rx_dbm) - cfg.full_scale_dbm,
            obstruction_db: path.diffraction_db + path.penetration_db,
        }
    }

    /// Measure every station (one retune per channel, like the paper's
    /// sweep). Channels fan out over `config.parallelism` workers; each
    /// channel's RNG is already independent (`seed ^ channel`), so the
    /// sweep is identical for any thread count.
    pub fn sweep(
        &self,
        world: &World,
        site: &SensorSite,
        towers: &[TvTower],
        seed: u64,
    ) -> Vec<TvMeasurement> {
        let mut accel = world.accel();
        self.sweep_with_geo(world, &mut accel, site, towers, seed)
    }

    /// [`TvPowerProbe::sweep`] with a caller-owned [`GeoAccel`]: a
    /// long-lived holder (network node, calibration engine) amortizes the
    /// index build and serves repeat sweeps of the static towers from the
    /// propagation memo. Bit-identical to `sweep` for an accelerator
    /// built from `world`.
    pub fn sweep_with_geo(
        &self,
        world: &World,
        accel: &mut GeoAccel,
        site: &SensorSite,
        towers: &[TvTower],
        seed: u64,
    ) -> Vec<TvMeasurement> {
        let _span = aircal_obs::span!("tv_sweep");
        let threads = aircal_dsp::resolve_parallelism(self.config.parallelism);
        // Towers are static emitters: resolve every path serially through
        // the index + memo (all hits after the first sweep), then fan the
        // PHY chain out across workers.
        let paths: Vec<PathProfile> = towers
            .iter()
            .map(|t| accel.profile(world, site, &t.position, t.channel.center_hz()))
            .collect();
        // The 8VSB reference is channel-independent: synthesize once and
        // share it read-only; each worker reuses its own meter + IQ buffer.
        let waveform = self.reference_waveform();
        let mut scratches: Vec<TvScratch> =
            (0..threads.max(1)).map(|_| TvScratch::default()).collect();
        let (mut slots, mut out) = (Vec::new(), Vec::new());
        aircal_dsp::par_map_with(
            towers,
            threads,
            &mut scratches,
            &mut slots,
            &mut out,
            |i, t, scratch| self.measure_with_path(&paths[i], site, t, seed, &waveform, scratch),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::towers::paper_tv_towers;
    use aircal_env::{paper_scenarios, Scenario, ScenarioKind};

    fn sweep(s: &Scenario) -> Vec<TvMeasurement> {
        let towers = paper_tv_towers(&s.world.origin);
        TvPowerProbe::default().sweep(&s.world, &s.site, &towers, 1)
    }

    /// The DSP chain agrees with the analytic link budget to ~1 dB when the
    /// signal is well above the noise floor.
    #[test]
    fn dsp_chain_matches_link_budget() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        for m in sweep(&s) {
            if m.predicted_dbfs > -50.0 {
                assert!(
                    (m.power_dbfs - m.predicted_dbfs).abs() < 1.5,
                    "{}: measured {} vs predicted {}",
                    m.station,
                    m.power_dbfs,
                    m.predicted_dbfs
                );
            }
        }
    }

    /// Figure 4 shape: every location retains measurable sub-600 MHz
    /// signal ("despite some attenuation at locations ② and ③ they can be
    /// used for sub-600 MHz spectrum measurements").
    #[test]
    fn all_locations_retain_signal() {
        for s in paper_scenarios() {
            for m in sweep(&s) {
                assert!(
                    m.power_dbfs > -60.0,
                    "{} at {}: {} dBFS too weak",
                    m.station,
                    s.site.name,
                    m.power_dbfs
                );
            }
        }
    }

    /// Figure 4's outlier: at 521 MHz the window location measures nearly
    /// as strong as (or stronger than) the rooftop, because the transmitter
    /// sits in the window's field of view.
    #[test]
    fn window_521_outlier() {
        let scenarios = paper_scenarios();
        let roof = sweep(&scenarios[0]);
        let window = sweep(&scenarios[1]);
        let idx = roof.iter().position(|m| m.rf_channel == 22).unwrap();
        assert!(
            window[idx].power_dbfs >= roof[idx].power_dbfs - 3.0,
            "window 521 MHz {} should rival rooftop {}",
            window[idx].power_dbfs,
            roof[idx].power_dbfs
        );
        // And for the *other* channels the window is clearly weaker.
        let other_delta: f64 = roof
            .iter()
            .zip(&window)
            .filter(|(r, _)| r.rf_channel != 22)
            .map(|(r, w)| r.power_dbfs - w.power_dbfs)
            .sum::<f64>()
            / 5.0;
        assert!(other_delta > 5.0, "mean non-outlier delta {other_delta}");
    }

    /// Rooftop ≥ window ≥ indoor on the western (non-outlier) stations.
    #[test]
    fn ordering_on_western_stations() {
        let scenarios = paper_scenarios();
        let roof = sweep(&scenarios[0]);
        let window = sweep(&scenarios[1]);
        let indoor = sweep(&scenarios[2]);
        for i in 0..roof.len() {
            if roof[i].rf_channel == 22 {
                continue;
            }
            assert!(
                roof[i].power_dbfs > indoor[i].power_dbfs,
                "ch {}: roof {} !> indoor {}",
                roof[i].rf_channel,
                roof[i].power_dbfs,
                indoor[i].power_dbfs
            );
            assert!(
                window[i].power_dbfs > indoor[i].power_dbfs - 3.0,
                "ch {}: window {} vs indoor {}",
                roof[i].rf_channel,
                window[i].power_dbfs,
                indoor[i].power_dbfs
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let towers = paper_tv_towers(&s.world.origin);
        let a = TvPowerProbe::default().sweep(&s.world, &s.site, &towers, 3);
        let b = TvPowerProbe::default().sweep(&s.world, &s.site, &towers, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let towers = paper_tv_towers(&s.world.origin);
        let probe_with = |parallelism| {
            TvPowerProbe::new(TvProbeConfig {
                parallelism,
                ..TvProbeConfig::default()
            })
        };
        let serial = probe_with(1).sweep(&s.world, &s.site, &towers, 5);
        for threads in [2usize, 8] {
            assert_eq!(serial, probe_with(threads).sweep(&s.world, &s.site, &towers, 5));
        }
    }
}
