//! The North American ATSC RF channel plan (post-repack, channels 2–36).

use serde::{Deserialize, Serialize};

/// One RF channel in the broadcast TV plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AtscChannel(u8);

impl AtscChannel {
    /// Construct from an RF channel number (2–36 after the repack).
    pub fn new(number: u8) -> Option<Self> {
        (2..=36).contains(&number).then_some(Self(number))
    }

    /// The RF channel number.
    pub fn number(&self) -> u8 {
        self.0
    }

    /// Lower band edge, Hz.
    pub fn lower_edge_hz(&self) -> f64 {
        let n = self.0 as f64;
        1e6 * match self.0 {
            2..=4 => 54.0 + (n - 2.0) * 6.0,
            5..=6 => 76.0 + (n - 5.0) * 6.0,
            7..=13 => 174.0 + (n - 7.0) * 6.0,
            _ => 470.0 + (n - 14.0) * 6.0,
        }
    }

    /// Channel center frequency, Hz.
    pub fn center_hz(&self) -> f64 {
        self.lower_edge_hz() + 3e6
    }

    /// ATSC pilot frequency, Hz (309.441 kHz above the lower edge).
    pub fn pilot_hz(&self) -> f64 {
        self.lower_edge_hz() + 309_441.0
    }

    /// The channel containing a frequency, if any.
    pub fn containing(freq_hz: f64) -> Option<Self> {
        (2..=36)
            .filter_map(Self::new)
            .find(|c| freq_hz >= c.lower_edge_hz() && freq_hz < c.lower_edge_hz() + 6e6)
    }

    /// The paper's six measured channels: centers at 213, 473, 521, 545,
    /// 587 and 605 MHz (Figure 4).
    pub fn paper_channels() -> Vec<AtscChannel> {
        [13u8, 14, 22, 26, 33, 36]
            .into_iter()
            .map(|n| Self::new(n).expect("static channel numbers valid"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_centers_match_figure4() {
        let centers: Vec<f64> = AtscChannel::paper_channels()
            .iter()
            .map(|c| c.center_hz() / 1e6)
            .collect();
        assert_eq!(centers, vec![213.0, 473.0, 521.0, 545.0, 587.0, 605.0]);
    }

    #[test]
    fn band_plan_reference_points() {
        assert_eq!(AtscChannel::new(2).unwrap().lower_edge_hz(), 54e6);
        assert_eq!(AtscChannel::new(6).unwrap().lower_edge_hz(), 82e6);
        assert_eq!(AtscChannel::new(7).unwrap().lower_edge_hz(), 174e6);
        assert_eq!(AtscChannel::new(13).unwrap().lower_edge_hz(), 210e6);
        assert_eq!(AtscChannel::new(14).unwrap().lower_edge_hz(), 470e6);
        assert_eq!(AtscChannel::new(36).unwrap().lower_edge_hz(), 602e6);
    }

    #[test]
    fn out_of_plan_rejected() {
        assert!(AtscChannel::new(0).is_none());
        assert!(AtscChannel::new(1).is_none());
        assert!(AtscChannel::new(37).is_none(), "repacked spectrum");
    }

    #[test]
    fn containing_lookup() {
        assert_eq!(
            AtscChannel::containing(473e6),
            Some(AtscChannel::new(14).unwrap())
        );
        assert_eq!(
            AtscChannel::containing(213e6),
            Some(AtscChannel::new(13).unwrap())
        );
        // The 88–174 MHz FM/air band gap.
        assert_eq!(AtscChannel::containing(100e6), None);
    }

    #[test]
    fn pilot_sits_just_above_lower_edge() {
        let c = AtscChannel::new(14).unwrap();
        assert!((c.pilot_hz() - 470_309_441.0).abs() < 1.0);
        assert!(c.pilot_hz() < c.center_hz());
    }
}
