//! 8VSB-like baseband synthesis.
//!
//! For band-power measurement purposes an ATSC signal is (a) a flat
//! ~5.38 MHz-wide data spectrum and (b) a pilot tone near the lower band
//! edge, ~11.3 dB below the total signal power. We synthesize exactly
//! that: a PRBS symbol stream shaped by a lowpass FIR, plus the pilot,
//! normalized to unit mean power so the front end's dBm→dBFS scaling
//! stays exact.

use crate::OCCUPIED_BANDWIDTH_HZ;
use aircal_dsp::fir::design_lowpass;
use aircal_dsp::window::Window;
use aircal_dsp::{Cplx, FirFilter, Lfsr};

/// Synthesize `len` samples of a unit-power 8VSB-like signal at sample
/// rate `fs` (complex baseband centered on the channel center).
///
/// The data spectrum spans ±`OCCUPIED_BANDWIDTH_HZ`/2; the pilot sits at
/// −2.69 MHz (lower edge + 310 kHz relative to a 6 MHz channel).
pub fn synthesize_8vsb(len: usize, fs: f64) -> Vec<Cplx> {
    let cutoff = (OCCUPIED_BANDWIDTH_HZ / 2.0 / fs).min(0.49);
    let taps = design_lowpass(cutoff, 65, Window::Hamming).expect("valid lowpass");
    let mut filter = FirFilter::from_real(&taps).expect("valid filter");
    let mut prbs = Lfsr::prbs23();

    // White bipolar symbols through the shaping filter.
    let warm = taps.len();
    let mut shaped: Vec<Cplx> = Vec::with_capacity(len + warm);
    for _ in 0..len + warm {
        let s = Cplx::new(
            if prbs.next_bit() { 1.0 } else { -1.0 },
            if prbs.next_bit() { 1.0 } else { -1.0 },
        );
        shaped.push(filter.push(s));
    }
    let mut sig: Vec<Cplx> = shaped[warm..].to_vec();

    // Pilot at the ATSC offset, 11.3 dB below the data power.
    let pilot_freq = -2.69e6;
    let data_power = aircal_dsp::cplx::mean_power(&sig).max(1e-30);
    let pilot_amp = (data_power * 10f64.powf(-11.3 / 10.0)).sqrt();
    for (n, s) in sig.iter_mut().enumerate() {
        *s += Cplx::from_polar(
            pilot_amp,
            core::f64::consts::TAU * pilot_freq / fs * n as f64,
        );
    }

    // Normalize to unit mean power.
    let p = aircal_dsp::cplx::mean_power(&sig).max(1e-30);
    let scale = 1.0 / p.sqrt();
    for s in sig.iter_mut() {
        *s = s.scale(scale);
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_dsp::cplx::mean_power;
    use aircal_dsp::fft::{bin_to_freq, power_spectrum};

    #[test]
    fn unit_power() {
        let sig = synthesize_8vsb(16_384, 8e6);
        let p = mean_power(&sig);
        assert!((p - 1.0).abs() < 1e-9, "power {p}");
    }

    #[test]
    fn spectrum_confined_to_channel() {
        let fs = 8e6;
        let sig = synthesize_8vsb(8_192, fs);
        let ps = power_spectrum(&sig[..8_192]).unwrap();
        let (mut in_band, mut out_band) = (0.0, 0.0);
        for (i, &p) in ps.iter().enumerate() {
            let f = bin_to_freq(i, ps.len(), fs);
            if f.abs() <= OCCUPIED_BANDWIDTH_HZ / 2.0 + 0.2e6 {
                in_band += p;
            } else {
                out_band += p;
            }
        }
        assert!(
            in_band / (in_band + out_band) > 0.98,
            "only {:.3} of power in band",
            in_band / (in_band + out_band)
        );
    }

    #[test]
    fn pilot_visible_in_spectrum() {
        let fs = 8e6;
        let sig = synthesize_8vsb(16_384, fs);
        let n = 16_384;
        let ps = power_spectrum(&sig[..n]).unwrap();
        // Find the strongest single bin near −2.69 MHz.
        let target_bin = aircal_dsp::fft::freq_to_bin(-2.69e6, n, fs);
        let pilot_region: f64 = (target_bin.saturating_sub(2)..target_bin + 3)
            .map(|b| ps[b % n])
            .sum();
        // A same-width region in the flat part of the spectrum.
        let flat_bin = aircal_dsp::fft::freq_to_bin(1.0e6, n, fs);
        let flat_region: f64 = (flat_bin - 2..flat_bin + 3).map(|b| ps[b]).sum();
        assert!(
            pilot_region > 3.0 * flat_region,
            "pilot region {pilot_region:e} vs flat {flat_region:e}"
        );
    }

    #[test]
    fn deterministic() {
        let a = synthesize_8vsb(1_024, 8e6);
        let b = synthesize_8vsb(1_024, 8e6);
        assert_eq!(a, b);
    }
}
