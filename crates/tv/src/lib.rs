//! Broadcast TV (ATSC) substrate: channel plan, 8VSB-like signal
//! synthesis, transmitter database, and the paper's band-power probe.
//!
//! §3.2, Broadcast TV: "to measure signal quality, we developed our own
//! program using the GNU Radio software environment. The SDR was
//! configured with a fixed gain … The received power was measured by
//! bandpass filtering a desired ATSC channel, then applying Parseval's
//! identity to measure the band's power by running the magnitude-squared
//! time-domain samples through a very long moving average filter."
//!
//! [`probe::TvPowerProbe`] is that program: it tunes the simulated front
//! end to each channel, synthesizes the 8VSB-like signal as received
//! through the environment model, and measures dBFS through
//! `aircal_dsp::BandPowerMeter` — the same filter → |x|² → long-moving-
//! average chain.

pub mod channels;
pub mod probe;
pub mod synth;
pub mod towers;

pub use channels::AtscChannel;
pub use probe::{TvMeasurement, TvPowerProbe, TvProbeConfig, TvScratch};
pub use towers::{paper_tv_towers, TvTower};

/// ATSC channel bandwidth, Hz.
pub const CHANNEL_BANDWIDTH_HZ: f64 = 6.0e6;
/// Occupied 8VSB symbol bandwidth, Hz (10.762 MHz symbol rate, VSB).
pub const OCCUPIED_BANDWIDTH_HZ: f64 = 5.381e6;
