//! Deterministic thread fan-out for the measurement pipelines.
//!
//! The survey, fleet-audit, and TV-sweep hot paths are all "independent
//! work items, order-stable results" shapes. [`par_map`] runs them on
//! scoped worker threads with an atomic work queue (good load balance
//! for uneven burst costs) and returns results **in item order**, so a
//! parallel caller produces output bit-identical to a serial one as long
//! as each item's computation is self-contained (e.g. derives its own
//! RNG stream instead of sharing one).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Derive an independent per-item RNG seed from a base seed and an item
/// index (SplitMix64 finalizer over their combination). Work items seeded
/// this way get decorrelated streams whose values depend only on
/// `(seed, index)` — never on which thread runs the item or in what
/// order — which is what makes parallel pipelines bit-identical to
/// serial ones.
pub fn derive_stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolve a user-facing parallelism knob: `0` means "all available
/// cores", anything else is used as given.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Map `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// `threads <= 1` (or a short input) runs inline with no thread setup,
/// so the serial path stays allocation- and synchronization-free. A
/// panic in any worker propagates to the caller.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        produced.push((i, f(i, item)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index was computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_for_stateful_items() {
        // Each item derives its own deterministic stream from its index —
        // the pattern the survey pipeline uses for per-burst RNGs.
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &seed: &u64| {
            let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
            for _ in 0..100 {
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
            h
        };
        let serial = par_map(&items, 1, work);
        let parallel = par_map(&items, 8, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn resolve_parallelism_zero_is_auto() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(3), 3);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            for idx in 0..1000u64 {
                assert!(seen.insert(derive_stream_seed(seed, idx)), "collision at {seed}/{idx}");
                assert_eq!(derive_stream_seed(seed, idx), derive_stream_seed(seed, idx));
            }
        }
    }
}
