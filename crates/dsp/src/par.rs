//! Deterministic thread fan-out for the measurement pipelines.
//!
//! The survey, fleet-audit, and TV-sweep hot paths are all "independent
//! work items, order-stable results" shapes. [`par_map`] runs them on
//! scoped worker threads with an atomic work queue (good load balance
//! for uneven burst costs) and returns results **in item order**, so a
//! parallel caller produces output bit-identical to a serial one as long
//! as each item's computation is self-contained (e.g. derives its own
//! RNG stream instead of sharing one).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Derive an independent per-item RNG seed from a base seed and an item
/// index (SplitMix64 finalizer over their combination). Work items seeded
/// this way get decorrelated streams whose values depend only on
/// `(seed, index)` — never on which thread runs the item or in what
/// order — which is what makes parallel pipelines bit-identical to
/// serial ones.
pub fn derive_stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolve a user-facing parallelism knob: `0` means "all available
/// cores", anything else is used as given.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Map `f` over `items` on up to `threads` worker threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// `threads <= 1` (or a short input) runs inline with no thread setup,
/// so the serial path stays allocation- and synchronization-free. A
/// panic in any worker propagates to the caller.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len()).max(1);
    let mut scratches = vec![(); workers];
    let mut slots = Vec::new();
    let mut out = Vec::with_capacity(items.len());
    par_map_with(items, threads, &mut scratches, &mut slots, &mut out, |i, t, ()| f(i, t));
    out
}

/// A raw pointer into the result-slot buffer that workers write through.
/// Each slot index is claimed by exactly one worker (the atomic queue
/// hands out each index once), so the writes are disjoint; the thread
/// scope's join provides the happens-before edge back to the caller.
struct SlotWriter<R>(*mut Option<R>);

unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

/// [`par_map`] with per-worker scratch state and caller-owned result
/// buffers — the zero-allocation variant the burst pipelines run on.
///
/// * `scratches` — one scratch value per worker (at least one, and at
///   least as many as the effective thread count). Worker `w` gets
///   exclusive `&mut` access to `scratches[w]` for the whole call; with
///   `threads <= 1` every item runs inline on `scratches[0]`.
/// * `slots` — reusable staging buffer; its capacity is retained across
///   calls so steady-state calls never grow it.
/// * `out` — cleared and filled with the results in item order.
///
/// Ordering and panic behavior are identical to [`par_map`]; the only
/// difference is where results and intermediate state live. Once
/// `slots`/`out` capacities and every scratch are warm, a call performs
/// no heap allocation beyond what `f` itself does (and the fixed
/// per-call cost of spawning workers when `threads > 1`).
pub fn par_map_with<T, R, S, F>(
    items: &[T],
    threads: usize,
    scratches: &mut [S],
    slots: &mut Vec<Option<R>>,
    out: &mut Vec<R>,
    f: F,
) where
    T: Sync,
    R: Send,
    S: Send,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    out.clear();
    if items.is_empty() {
        return;
    }
    assert!(!scratches.is_empty(), "par_map_with needs at least one scratch");
    let threads = threads.max(1).min(items.len()).min(scratches.len());
    if threads <= 1 {
        let scratch = &mut scratches[0];
        out.extend(items.iter().enumerate().map(|(i, t)| f(i, t, scratch)));
        return;
    }

    let next = AtomicUsize::new(0);
    slots.clear();
    slots.resize_with(items.len(), || None);
    let writer = SlotWriter(slots.as_mut_ptr());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = scratches
            .iter_mut()
            .take(threads)
            .map(|scratch| {
                let next = &next;
                let writer = &writer;
                s.spawn(move || {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let r = f(i, item, scratch);
                        // SAFETY: `i < items.len() == slots.len()`, and the
                        // atomic queue yields each index to exactly one
                        // worker, so this write is in bounds and disjoint
                        // from every other worker's writes.
                        unsafe { *writer.0.add(i) = Some(r) };
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    out.extend(
        slots
            .drain(..)
            .map(|r| r.expect("every index was computed")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_for_stateful_items() {
        // Each item derives its own deterministic stream from its index —
        // the pattern the survey pipeline uses for per-burst RNGs.
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &seed: &u64| {
            let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
            for _ in 0..100 {
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
            h
        };
        let serial = par_map(&items, 1, work);
        let parallel = par_map(&items, 8, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn resolve_parallelism_zero_is_auto() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(3), 3);
    }

    #[test]
    fn par_map_with_matches_par_map_and_reuses_buffers() {
        let items: Vec<u64> = (0..500).collect();
        let expect = par_map(&items, 4, |i, &x| x * 3 + i as u64);
        let mut scratches = vec![0u64; 8];
        let mut slots = Vec::new();
        let mut out = Vec::new();
        for threads in [1usize, 2, 8] {
            par_map_with(&items, threads, &mut scratches, &mut slots, &mut out, |i, &x, s| {
                *s += 1; // scratch is usable per-worker state
                x * 3 + i as u64
            });
            assert_eq!(out, expect, "threads {threads}");
        }
        // Scratch state accumulated across calls: total work = 3 × items.
        assert_eq!(scratches.iter().sum::<u64>(), 3 * items.len() as u64);
    }

    #[test]
    fn par_map_with_serial_uses_first_scratch_only() {
        let items = [1u32, 2, 3];
        let mut scratches = vec![Vec::<u32>::new(), Vec::new()];
        let (mut slots, mut out) = (Vec::new(), Vec::new());
        par_map_with(&items, 1, &mut scratches, &mut slots, &mut out, |_, &x, s| {
            s.push(x);
            x
        });
        assert_eq!(scratches[0], vec![1, 2, 3]);
        assert!(scratches[1].is_empty());
    }

    #[test]
    fn par_map_with_empty_items() {
        let items: Vec<u32> = vec![];
        let mut scratches = vec![(); 1];
        let (mut slots, mut out) = (Vec::new(), Vec::<u32>::new());
        out.push(9); // must be cleared
        par_map_with(&items, 4, &mut scratches, &mut slots, &mut out, |_, &x, ()| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_with_worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            let mut scratches = vec![(); 4];
            let (mut slots, mut out) = (Vec::new(), Vec::new());
            par_map_with(&items, 4, &mut scratches, &mut slots, &mut out, |_, &x, ()| {
                if x == 33 {
                    panic!("boom");
                }
                x
            });
            out
        });
        assert!(result.is_err());
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            for idx in 0..1000u64 {
                assert!(seen.insert(derive_stream_seed(seed, idx)), "collision at {seed}/{idx}");
                assert_eq!(derive_stream_seed(seed, idx), derive_stream_seed(seed, idx));
            }
        }
    }
}
