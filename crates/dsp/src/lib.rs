//! Signal-processing substrate for the `aircal` workspace.
//!
//! The paper's measurement chains are classic SDR DSP:
//!
//! * the broadcast-TV probe is "bandpass filter the desired ATSC channel,
//!   then apply Parseval's identity by running the magnitude-squared
//!   time-domain samples through a very long moving average" — that chain is
//!   [`power::BandPowerMeter`];
//! * the ADS-B demodulator needs preamble correlation and sample-domain
//!   energy detection ([`corr`], [`power`]);
//! * the 8VSB-like TV synthesis needs PRBS sequences ([`prbs`]) and filters
//!   ([`fir`]).
//!
//! Everything is implemented from scratch on a minimal complex type
//! ([`Cplx`]); no external DSP dependencies.

pub mod agc;
pub mod corr;
pub mod cplx;
pub mod fft;
pub mod fir;
pub mod par;
pub mod power;
pub mod prbs;
pub mod psd;
pub mod resample;
pub mod scratch;
pub mod simd;
pub mod window;

pub use cplx::Cplx;
pub use fft::{fft, fft_in_place, ifft, Direction, FftPlanner};
pub use fir::{FastFirFilter, FirFilter};
pub use par::{derive_stream_seed, par_map, par_map_with, resolve_parallelism};
pub use scratch::DspScratch;
pub use power::{db_to_lin, lin_to_db, BandPowerMeter, MovingAverage};
pub use prbs::Lfsr;
pub use simd::{dispatch_label, kernels, Kernels};

/// Errors produced by DSP routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// FFT length was not a power of two.
    NotPowerOfTwo(usize),
    /// A filter or buffer was configured with an invalid length.
    EmptyDesign,
    /// Parameter out of the valid domain (message explains which).
    InvalidParameter(&'static str),
}

impl core::fmt::Display for DspError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DspError::NotPowerOfTwo(n) => write!(f, "FFT length {n} is not a power of two"),
            DspError::EmptyDesign => write!(f, "filter design produced no taps"),
            DspError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for DspError {}
