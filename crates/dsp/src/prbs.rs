//! Pseudo-random binary sequences via Fibonacci LFSRs.
//!
//! The 8VSB-like TV synthesis needs a wideband deterministic data signal; a
//! maximal-length LFSR produces a flat-spectrum bit stream reproducibly,
//! with no dependence on the workspace RNG.

/// A Fibonacci linear-feedback shift register (right-shift form).
///
/// Each step outputs bit 0, shifts right, and inserts the parity of
/// `state & taps` at the top. Tap masks below were verified maximal for
/// this convention by exhaustive period search.
#[derive(Debug, Clone)]
pub struct Lfsr {
    state: u64,
    taps: u64,
    width: u32,
}

impl Lfsr {
    /// PRBS-9: x⁹ + x⁵ + 1 (ITU-T O.150). Period 511.
    pub fn prbs9() -> Self {
        Self::new(9, 0x11, 0x1FF).expect("valid taps")
    }

    /// PRBS-15: x¹⁵ + x¹⁴ + 1. Period 32767.
    pub fn prbs15() -> Self {
        Self::new(15, 0x3, 0x7FFF).expect("valid taps")
    }

    /// PRBS-23: x²³ + x¹⁸ + 1. Period 8388607.
    pub fn prbs23() -> Self {
        Self::new(23, 0x21, 0x7F_FFFF).expect("valid taps")
    }

    /// Create an LFSR of `width` bits with an explicit tap mask and non-zero
    /// seed.
    ///
    /// Returns `None` for zero width (or > 63), a zero/out-of-range tap
    /// mask, or a zero seed (which would lock the register at all-zeros).
    pub fn new(width: u32, taps: u64, seed: u64) -> Option<Self> {
        if width == 0 || width > 63 || taps == 0 || seed == 0 {
            return None;
        }
        let mask = (1u64 << width) - 1;
        if taps & !mask != 0 || seed & mask == 0 {
            return None;
        }
        Some(Self {
            state: seed & mask,
            taps,
            width,
        })
    }

    /// Register width in bits (also the PRBS order).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Advance one step and return the output bit.
    pub fn next_bit(&mut self) -> bool {
        let fb = (self.state & self.taps).count_ones() & 1;
        let out = self.state & 1 == 1;
        self.state >>= 1;
        self.state |= (fb as u64) << (self.width - 1);
        out
    }

    /// Produce `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Produce `n` bipolar symbols (`+1.0` / `-1.0`).
    pub fn symbols(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| if self.next_bit() { 1.0 } else { -1.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(Lfsr::new(9, 0, 1).is_none(), "zero taps");
        assert!(Lfsr::new(9, 0x11, 0).is_none(), "zero seed");
        assert!(Lfsr::new(0, 0x11, 1).is_none(), "zero width");
        assert!(Lfsr::new(4, 0x100, 1).is_none(), "taps outside width");
    }

    #[test]
    fn prbs9_has_full_period() {
        let mut l = Lfsr::prbs9();
        let mut seen = HashSet::new();
        for _ in 0..511 {
            assert!(seen.insert(l.state), "state repeated early");
            l.next_bit();
        }
        // After a full period the state returns to the seed.
        assert!(seen.contains(&l.state));
    }

    #[test]
    fn prbs9_balanced_ones_zeros() {
        let mut l = Lfsr::prbs9();
        let ones = l.bits(511).iter().filter(|&&b| b).count();
        // A maximal-length sequence of order 9 has 256 ones, 255 zeros.
        assert_eq!(ones, 256);
    }

    #[test]
    fn prbs15_period_is_maximal() {
        let mut l = Lfsr::prbs15();
        let start = l.state;
        let mut period = 0u64;
        loop {
            l.next_bit();
            period += 1;
            if l.state == start {
                break;
            }
            assert!(period <= 40_000, "period exceeded bound");
        }
        assert_eq!(period, 32_767);
    }

    #[test]
    fn symbols_are_bipolar() {
        let mut l = Lfsr::prbs9();
        for s in l.symbols(100) {
            assert!(s == 1.0 || s == -1.0);
        }
    }

    #[test]
    fn deterministic_between_instances() {
        let a: Vec<bool> = Lfsr::prbs15().bits(64);
        let b: Vec<bool> = Lfsr::prbs15().bits(64);
        assert_eq!(a, b);
    }

    #[test]
    fn spectrum_is_wideband() {
        // A PRBS symbol stream should spread energy across bins, unlike a tone.
        use crate::fft::power_spectrum;
        use crate::Cplx;
        let mut l = Lfsr::prbs15();
        let sig: Vec<Cplx> = l.symbols(1024).iter().map(|&s| Cplx::new(s, 0.0)).collect();
        let ps = power_spectrum(&sig).unwrap();
        let total: f64 = ps.iter().sum();
        let max = ps.iter().cloned().fold(0.0, f64::max);
        assert!(max / total < 0.05, "energy too concentrated: {}", max / total);
    }
}
