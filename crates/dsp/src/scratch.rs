//! Reusable scratch buffers for the per-burst hot paths.
//!
//! Every DSP kernel in this crate has an `_into` variant that writes into
//! caller-owned buffers instead of allocating fresh ones. [`DspScratch`]
//! is the companion pool those callers draw from: it hands out `Vec`s,
//! takes them back, and reuses their capacity on the next request, so a
//! steady-state loop (render one burst, decode it, return the buffers)
//! performs **zero heap allocations** once the pool is warm.
//!
//! Design rules (also documented in DESIGN.md §9):
//!
//! * **Ownership**: a buffer obtained with `take_*` is owned by the caller
//!   until it is handed back with `put_*`. Returning it is optional —
//!   a buffer that escapes (e.g. becomes part of a result) simply costs
//!   one warm-up allocation the next time the pool is asked for that
//!   size class.
//! * **Contents**: `take_*` returns a buffer of exactly the requested
//!   length, zero-filled. Callers never see stale data.
//! * **Reuse**: the pool is LIFO per element type, and always hands out
//!   the buffer with the largest capacity first, so mixed-size workloads
//!   (capture windows of varying cluster lengths) converge on a small set
//!   of max-sized buffers instead of thrashing.
//! * **Threading**: a pool is deliberately `!Sync`-shaped (all methods
//!   take `&mut self`); parallel pipelines give each worker its own pool
//!   via [`crate::par::par_map_with`], never share one.

use crate::Cplx;

/// A pool of reusable scratch buffers (complex, real, and index).
#[derive(Debug, Default)]
pub struct DspScratch {
    cplx: Vec<Vec<Cplx>>,
    real: Vec<Vec<f64>>,
    index: Vec<Vec<usize>>,
}

/// Pop the pooled buffer with the largest capacity, or a fresh one.
fn take_largest<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    if pool.is_empty() {
        return Vec::new();
    }
    let best = (0..pool.len())
        .max_by_key(|&i| pool[i].capacity())
        .expect("non-empty pool");
    pool.swap_remove(best)
}

impl DspScratch {
    /// An empty pool. The first `take_*` calls allocate (warm-up); after
    /// buffers have been `put_*` back, subsequent takes reuse them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a zero-filled complex buffer of exactly `len` samples.
    pub fn take_cplx(&mut self, len: usize) -> Vec<Cplx> {
        let mut buf = take_largest(&mut self.cplx);
        buf.clear();
        buf.resize(len, Cplx::ZERO);
        buf
    }

    /// Return a complex buffer to the pool for reuse.
    pub fn put_cplx(&mut self, buf: Vec<Cplx>) {
        self.cplx.push(buf);
    }

    /// Take a zero-filled real buffer of exactly `len` samples.
    pub fn take_real(&mut self, len: usize) -> Vec<f64> {
        let mut buf = take_largest(&mut self.real);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a real buffer to the pool for reuse.
    pub fn put_real(&mut self, buf: Vec<f64>) {
        self.real.push(buf);
    }

    /// Take an empty index buffer (capacity reused, length 0).
    pub fn take_index(&mut self) -> Vec<usize> {
        let mut buf = take_largest(&mut self.index);
        buf.clear();
        buf
    }

    /// Return an index buffer to the pool for reuse.
    pub fn put_index(&mut self, buf: Vec<usize>) {
        self.index.push(buf);
    }

    /// Number of buffers currently parked in the pool (diagnostic).
    pub fn pooled_buffers(&self) -> usize {
        self.cplx.len() + self.real.len() + self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut s = DspScratch::new();
        let mut b = s.take_cplx(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == Cplx::ZERO));
        b[3] = Cplx::ONE;
        s.put_cplx(b);
        // Reused buffer must come back zeroed, not with stale data.
        let b2 = s.take_cplx(8);
        assert_eq!(b2.len(), 8);
        assert!(b2.iter().all(|&x| x == Cplx::ZERO));
    }

    #[test]
    fn capacity_is_reused_not_reallocated() {
        let mut s = DspScratch::new();
        let b = s.take_real(1024);
        let ptr = b.as_ptr();
        s.put_real(b);
        // Same or smaller request must reuse the same backing storage.
        let b2 = s.take_real(512);
        assert_eq!(b2.as_ptr(), ptr);
        s.put_real(b2);
        let b3 = s.take_real(1024);
        assert_eq!(b3.as_ptr(), ptr);
    }

    #[test]
    fn largest_capacity_is_preferred() {
        let mut s = DspScratch::new();
        let small = s.take_cplx(4);
        let large = s.take_cplx(4096);
        s.put_cplx(small);
        s.put_cplx(large);
        let got = s.take_cplx(2048);
        assert!(got.capacity() >= 4096, "expected the large buffer back");
    }

    #[test]
    fn index_buffers_come_back_empty() {
        let mut s = DspScratch::new();
        let mut idx = s.take_index();
        idx.extend([1, 2, 3]);
        s.put_index(idx);
        assert!(s.take_index().is_empty());
        assert_eq!(s.pooled_buffers(), 0);
    }
}
