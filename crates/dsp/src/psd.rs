//! Power-spectral-density estimation (Welch's method) and spectrograms.
//!
//! The sensor nodes this system calibrates exist to *monitor spectrum* —
//! their normal product is PSD data shipped to the cloud ("The host may
//! perform various processing tasks on the I/Q data, such as … computing
//! the Fast Fourier Transform", §2). This module is that product, and the
//! examples use it to visualize what a calibrated vs. obstructed node
//! actually reports.

use crate::fft::fft_in_place;
use crate::scratch::DspScratch;
use crate::window::Window;
use crate::{Cplx, Direction, DspError};

/// Welch PSD estimate over a capture.
///
/// * `segment_len` — FFT length per segment (power of two).
/// * `overlap` — fraction of a segment shared with the next, `[0, 0.95]`.
/// * `window` — taper applied per segment.
///
/// Returns `segment_len` bins of power density (linear, per bin), DC at
/// index 0, two-sided. Fails if the capture is shorter than one segment.
pub fn welch_psd(
    samples: &[Cplx],
    segment_len: usize,
    overlap: f64,
    window: Window,
) -> Result<Vec<f64>, DspError> {
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    welch_psd_into(samples, segment_len, overlap, window, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`welch_psd`] with caller-owned working memory: intermediate buffers
/// come from `scratch` and the bins land in `out` (cleared first). A loop
/// that reuses both runs allocation-free once the pool is warm.
pub fn welch_psd_into(
    samples: &[Cplx],
    segment_len: usize,
    overlap: f64,
    window: Window,
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    if segment_len == 0 || segment_len & (segment_len - 1) != 0 {
        return Err(DspError::NotPowerOfTwo(segment_len));
    }
    if samples.len() < segment_len {
        return Err(DspError::InvalidParameter(
            "capture shorter than one Welch segment",
        ));
    }
    let overlap = overlap.clamp(0.0, 0.95);
    let hop = ((segment_len as f64) * (1.0 - overlap)).max(1.0) as usize;
    let k = crate::simd::kernels();
    let mut taps = scratch.take_real(0);
    window.taps_into(segment_len, &mut taps);
    let win_power: f64 = (k.sum_sq_f64)(&taps) / segment_len as f64;

    out.clear();
    out.resize(segment_len, 0.0);
    let mut segments = 0usize;
    let mut start = 0usize;
    let mut buf = scratch.take_cplx(segment_len);
    let mut result = Ok(());
    while start + segment_len <= samples.len() {
        (k.scale_map)(&samples[start..start + segment_len], &taps, &mut buf);
        if let Err(e) = fft_in_place(&mut buf, Direction::Forward) {
            result = Err(e);
            break;
        }
        (k.norm_sq_accum)(&buf, out);
        segments += 1;
        start += hop;
    }
    scratch.put_real(taps);
    scratch.put_cplx(buf);
    result?;
    // Parseval: Σ_k |X[k]|² = N² · mean_power · mean(w²), so dividing by
    // N²·mean(w²) makes the PSD bins sum to the capture's mean power.
    let norm =
        1.0 / (segments as f64 * (segment_len * segment_len) as f64 * win_power.max(1e-30));
    for a in out.iter_mut() {
        *a *= norm;
    }
    Ok(())
}

/// A spectrogram: one Welch-normalized FFT row per hop.
///
/// Rows are time-ordered; each row has `segment_len` two-sided bins.
pub fn spectrogram(
    samples: &[Cplx],
    segment_len: usize,
    overlap: f64,
    window: Window,
) -> Result<Vec<Vec<f64>>, DspError> {
    if segment_len == 0 || segment_len & (segment_len - 1) != 0 {
        return Err(DspError::NotPowerOfTwo(segment_len));
    }
    if samples.len() < segment_len {
        return Err(DspError::InvalidParameter(
            "capture shorter than one spectrogram row",
        ));
    }
    let overlap = overlap.clamp(0.0, 0.95);
    let hop = ((segment_len as f64) * (1.0 - overlap)).max(1.0) as usize;
    let k = crate::simd::kernels();
    let taps = window.taps(segment_len);
    let win_power: f64 = (k.sum_sq_f64)(&taps) / segment_len as f64;
    let norm = 1.0 / ((segment_len * segment_len) as f64 * win_power.max(1e-30));

    let mut rows = Vec::new();
    let mut start = 0usize;
    let mut buf = vec![Cplx::ZERO; segment_len];
    let mut mags = vec![0.0f64; segment_len];
    while start + segment_len <= samples.len() {
        crate::window::apply_taps(&samples[start..start + segment_len], &taps, &mut buf);
        fft_in_place(&mut buf, Direction::Forward)?;
        (k.norm_sq_map)(&buf, &mut mags);
        rows.push(mags.iter().map(|m| m * norm).collect());
        start += hop;
    }
    Ok(rows)
}

/// Integrate a two-sided PSD over a frequency band (Hz), given the sample
/// rate. Returns linear power.
pub fn band_power_from_psd(psd: &[f64], sample_rate: f64, lo_hz: f64, hi_hz: f64) -> f64 {
    let n = psd.len();
    if n == 0 || sample_rate <= 0.0 {
        return 0.0;
    }
    (0..n)
        .filter(|&i| {
            let f = crate::fft::bin_to_freq(i, n, sample_rate);
            f >= lo_hz && f <= hi_hz
        })
        .map(|i| psd[i])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, amp: f64, n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::from_polar(amp, core::f64::consts::TAU * freq * i as f64 / fs))
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        let x = tone(0.0, 1.0, 1.0, 100);
        assert!(welch_psd(&x, 63, 0.5, Window::Hann).is_err());
        assert!(welch_psd(&x[..10], 64, 0.5, Window::Hann).is_err());
        assert!(spectrogram(&x[..10], 64, 0.5, Window::Hann).is_err());
    }

    #[test]
    fn tone_power_preserved() {
        // Parseval-style check: total PSD power equals mean sample power.
        let fs = 1e6;
        let x = tone(125_000.0, fs, 0.7, 8_192);
        let psd = welch_psd(&x, 256, 0.5, Window::Hann).unwrap();
        let total: f64 = psd.iter().sum();
        let expected = 0.49;
        assert!(
            (total / expected - 1.0).abs() < 0.05,
            "total {total} vs {expected}"
        );
    }

    #[test]
    fn tone_lands_in_the_right_bin() {
        let fs = 1e6;
        let x = tone(250_000.0, fs, 1.0, 4_096);
        let psd = welch_psd(&x, 256, 0.5, Window::Hann).unwrap();
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let freq = crate::fft::bin_to_freq(peak, 256, fs);
        assert!((freq - 250_000.0).abs() < fs / 256.0, "peak at {freq}");
    }

    #[test]
    fn band_power_integration() {
        let fs = 1e6;
        let x = tone(100_000.0, fs, 1.0, 8_192);
        let psd = welch_psd(&x, 512, 0.5, Window::Blackman).unwrap();
        let in_band = band_power_from_psd(&psd, fs, 80_000.0, 120_000.0);
        let out_band = band_power_from_psd(&psd, fs, -300_000.0, -200_000.0);
        assert!(in_band > 0.9);
        assert!(out_band < 1e-6, "out-of-band leakage {out_band}");
    }

    #[test]
    fn spectrogram_tracks_a_burst() {
        // Tone present only in the second half of the capture.
        let fs = 1e6;
        let n = 4_096;
        let mut x = vec![Cplx::ZERO; n];
        let t = tone(200_000.0, fs, 1.0, n / 2);
        x[n / 2..].copy_from_slice(&t);
        let rows = spectrogram(&x, 256, 0.0, Window::Hann).unwrap();
        assert_eq!(rows.len(), 16);
        let bin = crate::fft::freq_to_bin(200_000.0, 256, fs);
        let early: f64 = rows[..7].iter().map(|r| r[bin]).sum();
        let late: f64 = rows[9..].iter().map(|r| r[bin]).sum();
        assert!(late > 100.0 * early.max(1e-12), "early {early} late {late}");
    }

    #[test]
    fn welch_variance_reduction() {
        // More averaging (smaller segments over the same capture) gives a
        // flatter noise estimate: the std/mean ratio must drop.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let noise: Vec<Cplx> = (0..16_384)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                Cplx::from_polar((-2.0 * u1.ln()).sqrt(), core::f64::consts::TAU * u2)
            })
            .collect();
        let rel_spread = |psd: &[f64]| {
            let m = psd.iter().sum::<f64>() / psd.len() as f64;
            let v = psd.iter().map(|p| (p - m).powi(2)).sum::<f64>() / psd.len() as f64;
            v.sqrt() / m
        };
        let few = welch_psd(&noise, 4_096, 0.0, Window::Rect).unwrap();
        let many = welch_psd(&noise, 128, 0.5, Window::Rect).unwrap();
        assert!(
            rel_spread(&many) < rel_spread(&few) / 2.0,
            "spread few {} many {}",
            rel_spread(&few),
            rel_spread(&many)
        );
    }
}
