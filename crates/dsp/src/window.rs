//! Window functions for filter design and spectral analysis.

/// Window shape selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// Rectangular (no taper).
    Rect,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (3-term).
    Blackman,
    /// Kaiser with shape parameter β.
    Kaiser(f64),
}

impl Window {
    /// Evaluate the window at tap `i` of an `n`-tap window (symmetric form).
    pub fn coeff(&self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64; // 0..=1 across the window
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * (core::f64::consts::TAU * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (core::f64::consts::TAU * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (core::f64::consts::TAU * x).cos()
                    + 0.08 * (2.0 * core::f64::consts::TAU * x).cos()
            }
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // -1..=1
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(*beta)
            }
        }
    }

    /// Materialize the window as a coefficient vector. Thin allocating
    /// wrapper over [`Window::taps_into`].
    pub fn taps(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        self.taps_into(n, &mut out);
        out
    }

    /// Materialize the window into a caller-owned buffer (cleared first);
    /// reusing `out` across calls keeps repeated designs allocation-free.
    pub fn taps_into(&self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..n).map(|i| self.coeff(i, n)));
    }
}

/// Apply materialized window taps to a sample block: `dst[i] = src[i]·taps[i]`
/// through the dispatched [`crate::simd`] kernel (bit-identical across
/// arms — the taper is purely elementwise).
pub fn apply_taps(src: &[crate::Cplx], taps: &[f64], dst: &mut [crate::Cplx]) {
    (crate::simd::kernels().scale_map)(src, taps, dst);
}

/// Modified Bessel function of the first kind, order zero, by power series.
///
/// Converges quickly for the β ≤ 20 range used in window design.
pub fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half_x_sq = (x / 2.0) * (x / 2.0);
    for k in 1..64 {
        term *= half_x_sq / (k as f64 * k as f64);
        sum += term;
        if term < 1e-17 * sum {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for w in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(8.6),
        ] {
            let n = 33;
            let t = w.taps(n);
            for i in 0..n {
                assert!((t[i] - t[n - 1 - i]).abs() < 1e-12, "{w:?} tap {i}");
            }
        }
    }

    #[test]
    fn hann_endpoints_zero_center_one() {
        let t = Window::Hann.taps(65);
        assert!(t[0].abs() < 1e-12);
        assert!(t[64].abs() < 1e-12);
        assert!((t[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kaiser_peak_at_center() {
        let t = Window::Kaiser(6.0).taps(101);
        assert!((t[50] - 1.0).abs() < 1e-12);
        assert!(t[0] < 0.02);
    }

    #[test]
    fn bessel_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        // I0(1) ≈ 1.2660658777520084
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        // I0(5) ≈ 27.239871823604442
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.taps(1), vec![1.0]);
        assert!(Window::Blackman.taps(0).is_empty());
    }
}
