//! FIR filter design (windowed-sinc) and streaming application.
//!
//! The TV band-power probe isolates one 6 MHz ATSC channel from a wider
//! capture with a complex bandpass filter. We design a real lowpass
//! prototype by the windowed-sinc method and heterodyne it to the channel
//! center to obtain the complex bandpass.

use crate::fft::{Direction, FftPlanner};
use crate::window::Window;
use crate::{Cplx, DspError};

/// Design a real windowed-sinc lowpass filter.
///
/// * `cutoff_norm` — cutoff as a fraction of the sample rate, in `(0, 0.5)`.
/// * `taps` — filter length; odd lengths give exactly linear phase.
///
/// The taps are normalized for unity gain at DC.
pub fn design_lowpass(cutoff_norm: f64, taps: usize, window: Window) -> Result<Vec<f64>, DspError> {
    if taps == 0 {
        return Err(DspError::EmptyDesign);
    }
    if !(0.0..0.5).contains(&cutoff_norm) || cutoff_norm <= 0.0 {
        return Err(DspError::InvalidParameter("cutoff_norm must be in (0, 0.5)"));
    }
    let m = (taps - 1) as f64 / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - m;
            let sinc = if t.abs() < 1e-12 {
                2.0 * cutoff_norm
            } else {
                (core::f64::consts::TAU * cutoff_norm * t).sin() / (core::f64::consts::PI * t)
            };
            sinc * window.coeff(i, taps)
        })
        .collect();
    let sum: f64 = h.iter().sum();
    if sum.abs() < 1e-12 {
        return Err(DspError::EmptyDesign);
    }
    for c in &mut h {
        *c /= sum;
    }
    Ok(h)
}

/// Design a complex bandpass filter centered at `center_norm` (fraction of
/// the sample rate, may be negative) with two-sided bandwidth
/// `bandwidth_norm`, by heterodyning a lowpass prototype.
pub fn design_bandpass(
    center_norm: f64,
    bandwidth_norm: f64,
    taps: usize,
    window: Window,
) -> Result<Vec<Cplx>, DspError> {
    let lp = design_lowpass(bandwidth_norm / 2.0, taps, window)?;
    let m = (taps - 1) as f64 / 2.0;
    Ok(lp
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            Cplx::phasor(core::f64::consts::TAU * center_norm * (i as f64 - m)).scale(c)
        })
        .collect())
}

/// A streaming FIR filter over complex samples (direct form, complex taps).
///
/// Keeps its own delay line so it can be fed sample blocks of any size.
/// Each output is a contiguous dot product `work[n..n+T] · taps_rev`
/// through the dispatched [`crate::simd`] kernel, so the direct form
/// rides the vector units too.
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<Cplx>,
    /// Taps reversed so every output is a forward contiguous dot.
    taps_rev: Vec<Cplx>,
    /// The last `T-1` inputs, oldest first.
    hist: Vec<Cplx>,
    /// `[hist | input block]`, assembled per call and reused.
    work: Vec<Cplx>,
}

impl FirFilter {
    /// Create a filter from complex taps.
    pub fn new(taps: Vec<Cplx>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyDesign);
        }
        let n = taps.len();
        let taps_rev: Vec<Cplx> = taps.iter().rev().copied().collect();
        Ok(Self {
            taps,
            taps_rev,
            hist: vec![Cplx::ZERO; n - 1],
            work: Vec::new(),
        })
    }

    /// Create a filter from real taps.
    pub fn from_real(taps: &[f64]) -> Result<Self, DspError> {
        Self::new(taps.iter().map(|&t| Cplx::new(t, 0.0)).collect())
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if the filter has no taps (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples for a linear-phase (symmetric) design.
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Push one sample, get one output sample.
    pub fn push(&mut self, x: Cplx) -> Cplx {
        self.work.clear();
        self.work.extend_from_slice(&self.hist);
        self.work.push(x);
        let y = (crate::simd::kernels().cdot)(&self.work, &self.taps_rev);
        if !self.hist.is_empty() {
            self.hist.copy_within(1.., 0);
            let h = self.hist.len();
            self.hist[h - 1] = x;
        }
        y
    }

    /// Filter a whole block into a caller-owned buffer (cleared first),
    /// producing one output per input. Reusing `out` across calls keeps
    /// the block loop allocation-free.
    pub fn process_into(&mut self, input: &[Cplx], out: &mut Vec<Cplx>) {
        out.clear();
        let t = self.taps.len();
        let k = crate::simd::kernels();
        self.work.clear();
        self.work.extend_from_slice(&self.hist);
        self.work.extend_from_slice(input);
        out.extend((0..input.len()).map(|n| (k.cdot)(&self.work[n..n + t], &self.taps_rev)));
        let w = self.work.len();
        let h = self.hist.len();
        self.hist.copy_from_slice(&self.work[w - h..]);
    }

    /// Filter a whole block, producing one output per input. Thin
    /// allocating wrapper over [`FirFilter::process_into`].
    pub fn process(&mut self, input: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(input.len());
        self.process_into(input, &mut out);
        out
    }

    /// Reset the delay line to zeros.
    pub fn reset(&mut self) {
        self.hist.fill(Cplx::ZERO);
    }

    /// Frequency response at a normalized frequency (fraction of Fs).
    pub fn response_at(&self, freq_norm: f64) -> Cplx {
        let mut acc = Cplx::ZERO;
        for (i, t) in self.taps.iter().enumerate() {
            acc += *t * Cplx::phasor(-core::f64::consts::TAU * freq_norm * i as f64);
        }
        acc
    }
}

/// A streaming FIR filter computed by overlap-save FFT convolution.
///
/// Drop-in replacement for [`FirFilter`]: same constructor shapes, same
/// one-output-per-input streaming contract, same causal alignment — but
/// each FFT block of `B` outputs costs `O(N log N)` instead of `O(B·T)`
/// direct multiplies, which is the difference between milliseconds and
/// seconds for the TV probe's long bandpass filters.
///
/// The filter buffers up to one block of input. Full blocks are emitted
/// from a single forward/inverse transform pair; a partial tail (block
/// still filling) is evaluated by zero-padding the not-yet-received
/// future, which cannot change causal outputs, so `process` still emits
/// exactly one output per input *eagerly*. Partial-tail work is redone
/// when the block completes — negligible when callers feed blocks, and
/// only then does [`FastFirFilter::push`] (one FFT per sample) make the
/// plain [`FirFilter`] the better choice.
#[derive(Debug, Clone)]
pub struct FastFirFilter {
    taps: Vec<Cplx>,
    /// New samples consumed per FFT block: `N - (T - 1)`.
    block: usize,
    plan: FftPlanner,
    /// FFT of the zero-padded taps.
    h_spec: Vec<Cplx>,
    /// `[history (T-1) | pending (≤ block)]`, length `N`.
    buf: Vec<Cplx>,
    /// Pending new samples currently buffered.
    pending: usize,
    /// Reused transform workspace, length `N`.
    scratch: Vec<Cplx>,
}

impl FastFirFilter {
    /// Create a filter from complex taps.
    pub fn new(taps: Vec<Cplx>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyDesign);
        }
        let t = taps.len();
        // ~8× oversized blocks amortize each transform over many outputs.
        let n = (8 * t).next_power_of_two().max(128);
        let plan = FftPlanner::new(n)?;
        let mut h_spec = vec![Cplx::ZERO; n];
        h_spec[..t].copy_from_slice(&taps);
        plan.process(&mut h_spec, Direction::Forward)?;
        Ok(Self {
            taps,
            block: n - (t - 1),
            plan,
            h_spec,
            buf: vec![Cplx::ZERO; n],
            pending: 0,
            scratch: vec![Cplx::ZERO; n],
        })
    }

    /// Create a filter from real taps.
    pub fn from_real(taps: &[f64]) -> Result<Self, DspError> {
        Self::new(taps.iter().map(|&t| Cplx::new(t, 0.0)).collect())
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if the filter has no taps (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples for a linear-phase (symmetric) design.
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Push one sample, get one output sample. Costs a full block
    /// transform per call — feed [`FastFirFilter::process`] blocks instead
    /// on hot paths.
    pub fn push(&mut self, x: Cplx) -> Cplx {
        self.process(&[x])[0]
    }

    /// Filter a whole block into a caller-owned buffer (cleared first),
    /// producing one output per input. Reusing `out` across calls keeps
    /// the block loop allocation-free.
    pub fn process_into(&mut self, input: &[Cplx], out: &mut Vec<Cplx>) {
        let t = self.taps.len();
        out.clear();
        let mut i = 0;
        while i < input.len() {
            let take = (self.block - self.pending).min(input.len() - i);
            let prev = self.pending;
            self.buf[t - 1 + prev..t - 1 + prev + take]
                .copy_from_slice(&input[i..i + take]);
            self.pending += take;
            i += take;

            // Transform [history | pending | zero-padding]; zeros stand in
            // for the unseen future and cannot affect causal outputs.
            self.scratch.copy_from_slice(&self.buf);
            self.scratch[t - 1 + self.pending..].fill(Cplx::ZERO);
            self.plan
                .process(&mut self.scratch, Direction::Forward)
                .expect("scratch length matches plan");
            (crate::simd::kernels().cmul_assign)(&mut self.scratch, &self.h_spec);
            self.plan
                .process(&mut self.scratch, Direction::Inverse)
                .expect("scratch length matches plan");
            out.extend_from_slice(&self.scratch[t - 1 + prev..t - 1 + self.pending]);

            if self.pending == self.block {
                // Block complete: retire it, carrying the last T-1 inputs
                // forward as the next block's history.
                let n = self.buf.len();
                self.buf.copy_within(n - (t - 1)..n, 0);
                self.pending = 0;
            }
        }
    }

    /// Filter a whole block, producing one output per input. Thin
    /// allocating wrapper over [`FastFirFilter::process_into`].
    pub fn process(&mut self, input: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(input.len());
        self.process_into(input, &mut out);
        out
    }

    /// Reset the delay line to zeros.
    pub fn reset(&mut self) {
        self.buf.fill(Cplx::ZERO);
        self.pending = 0;
    }

    /// Frequency response at a normalized frequency (fraction of Fs).
    pub fn response_at(&self, freq_norm: f64) -> Cplx {
        let mut acc = Cplx::ZERO;
        for (i, t) in self.taps.iter().enumerate() {
            acc += *t * Cplx::phasor(-core::f64::consts::TAU * freq_norm * i as f64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lowpass_rejects_bad_parameters() {
        assert!(design_lowpass(0.0, 31, Window::Hamming).is_err());
        assert!(design_lowpass(0.5, 31, Window::Hamming).is_err());
        assert!(design_lowpass(0.25, 0, Window::Hamming).is_err());
        assert!(design_lowpass(0.25, 31, Window::Hamming).is_ok());
    }

    #[test]
    fn lowpass_unity_dc_gain() {
        let h = design_lowpass(0.1, 63, Window::Hamming).unwrap();
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_passband_and_stopband() {
        let f = FirFilter::from_real(&design_lowpass(0.1, 101, Window::Blackman).unwrap()).unwrap();
        // Passband: well below cutoff.
        assert!((f.response_at(0.02).abs() - 1.0).abs() < 0.01);
        // Stopband: well above cutoff.
        assert!(f.response_at(0.25).abs() < 1e-3);
        assert!(f.response_at(0.4).abs() < 1e-3);
    }

    #[test]
    fn bandpass_centered_response() {
        let taps = design_bandpass(0.2, 0.05, 101, Window::Blackman).unwrap();
        let f = FirFilter::new(taps).unwrap();
        assert!((f.response_at(0.2).abs() - 1.0).abs() < 0.01);
        assert!(f.response_at(0.0).abs() < 1e-3);
        assert!(f.response_at(-0.2).abs() < 1e-3, "complex bandpass is one-sided");
    }

    #[test]
    fn streaming_matches_block_convolution() {
        let h = design_lowpass(0.2, 9, Window::Hann).unwrap();
        let x: Vec<Cplx> = (0..32).map(|i| Cplx::new((i as f64 * 0.7).sin(), 0.0)).collect();
        // Reference: direct convolution.
        let mut expect = vec![Cplx::ZERO; x.len()];
        for (n, e) in expect.iter_mut().enumerate() {
            for (k, &hk) in h.iter().enumerate() {
                if n >= k {
                    *e += x[n - k].scale(hk);
                }
            }
        }
        let mut f = FirFilter::from_real(&h).unwrap();
        let got = f.process(&x);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = FirFilter::from_real(&[0.5, 0.5]).unwrap();
        let first = f.push(Cplx::ONE);
        f.push(Cplx::new(2.0, 0.0));
        f.reset();
        let again = f.push(Cplx::ONE);
        assert_eq!(first, again);
    }

    #[test]
    fn fast_fir_rejects_empty_taps() {
        assert!(FastFirFilter::new(vec![]).is_err());
    }

    #[test]
    fn fast_fir_reset_restores_initial_state() {
        let mut f = FastFirFilter::from_real(&[0.5, 0.25, 0.25]).unwrap();
        let first = f.push(Cplx::ONE);
        f.push(Cplx::new(2.0, 0.0));
        f.reset();
        let again = f.push(Cplx::ONE);
        assert_eq!(first, again);
    }

    #[test]
    fn fast_fir_matches_direct_across_block_boundaries() {
        // Long input crossing several overlap-save blocks, fed in uneven
        // chunks so both the partial-tail path and block retirement run.
        let h = design_bandpass(0.17, 0.06, 129, Window::Blackman).unwrap();
        let mut direct = FirFilter::new(h.clone()).unwrap();
        let mut fast = FastFirFilter::new(h).unwrap();
        let x: Vec<Cplx> = (0..7_000)
            .map(|i| Cplx::phasor(0.31 * i as f64).scale(1.0 + (i as f64 * 0.01).cos()))
            .collect();
        let mut got = Vec::new();
        let mut want = Vec::new();
        let mut i = 0;
        for (k, chunk) in [1usize, 63, 500, 1, 2048, 37, 4000].iter().cycle().enumerate() {
            if i >= x.len() {
                break;
            }
            let end = (i + chunk + k % 3).min(x.len());
            got.extend(fast.process(&x[i..end]));
            want.extend(direct.process(&x[i..end]));
            i = end;
        }
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert!(
                (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                "overlap-save diverged: {a:?} vs {b:?}"
            );
        }
    }

    proptest! {
        /// Overlap-save output matches the direct-form filter to 1e-9 for
        /// random taps, inputs, and chunkings.
        #[test]
        fn fast_fir_matches_direct(
            taps in proptest::collection::vec(-1.0f64..1.0, 1..80),
            xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..400),
            split in 1usize..64,
        ) {
            let mut direct = FirFilter::from_real(&taps).unwrap();
            let mut fast = FastFirFilter::from_real(&taps).unwrap();
            let x: Vec<Cplx> = xs.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
            let mut got = Vec::new();
            let mut want = Vec::new();
            for chunk in x.chunks(split) {
                got.extend(fast.process(chunk));
                want.extend(direct.process(chunk));
            }
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in want.iter().zip(&got) {
                prop_assert!(
                    (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                    "overlap-save diverged: {:?} vs {:?}", a, b
                );
            }
        }
    }

    proptest! {
        /// Filtering is linear: F(ax + y) == a·F(x) + F(y) (fresh state).
        #[test]
        fn filter_linearity(
            xs in proptest::collection::vec(-10.0f64..10.0, 24),
            ys in proptest::collection::vec(-10.0f64..10.0, 24),
            a in -4.0f64..4.0,
        ) {
            let h = design_lowpass(0.15, 11, Window::Hamming).unwrap();
            let run = |data: &[f64]| -> Vec<Cplx> {
                let mut f = FirFilter::from_real(&h).unwrap();
                f.process(&data.iter().map(|&v| Cplx::new(v, 0.0)).collect::<Vec<_>>())
            };
            let combined: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| a * x + y).collect();
            let fx = run(&xs);
            let fy = run(&ys);
            let fc = run(&combined);
            for ((p, q), c) in fx.iter().zip(&fy).zip(&fc) {
                let e = p.scale(a) + *q;
                prop_assert!((e.re - c.re).abs() < 1e-9);
            }
        }
    }
}
