//! Correlation utilities for burst detection.
//!
//! The ADS-B demodulator finds the Mode S preamble by sliding a template
//! across the capture and looking for normalized-correlation peaks; these
//! are the primitives it uses.

use crate::Cplx;

/// Raw sliding cross-correlation of `signal` against `template`
/// (`conj(template)` applied, as usual for matched filtering).
///
/// Output length is `signal.len() - template.len() + 1`; empty if the
/// template is longer than the signal.
pub fn cross_correlate(signal: &[Cplx], template: &[Cplx]) -> Vec<Cplx> {
    let mut out = Vec::new();
    cross_correlate_into(signal, template, &mut out);
    out
}

/// [`cross_correlate`] into a caller-owned buffer (cleared first); reusing
/// `out` across calls keeps the scan loop allocation-free.
pub fn cross_correlate_into(signal: &[Cplx], template: &[Cplx], out: &mut Vec<Cplx>) {
    out.clear();
    if template.is_empty() || signal.len() < template.len() {
        return;
    }
    let k = crate::simd::kernels();
    let m = template.len();
    let n = signal.len() - m + 1;
    out.extend((0..n).map(|i| (k.cdot_conj)(&signal[i..i + m], template)));
}

/// Normalized correlation magnitude in `[0, 1]` at each lag: the cosine
/// similarity between the template and each signal window. Windows with
/// (near-)zero energy report 0.
pub fn normalized_correlation(signal: &[Cplx], template: &[Cplx]) -> Vec<f64> {
    let mut out = Vec::new();
    normalized_correlation_into(signal, template, &mut out);
    out
}

/// [`normalized_correlation`] into a caller-owned buffer (cleared first);
/// reusing `out` across calls keeps the scan loop allocation-free.
pub fn normalized_correlation_into(signal: &[Cplx], template: &[Cplx], out: &mut Vec<f64>) {
    out.clear();
    if template.is_empty() || signal.len() < template.len() {
        return;
    }
    let k = crate::simd::kernels();
    let m = template.len();
    let t_energy = (k.energy)(template);
    if t_energy < 1e-30 {
        out.resize(signal.len() - m + 1, 0.0);
        return;
    }
    let n = signal.len() - m + 1;
    // Running window energy for O(N) instead of O(N·M) energy computation.
    let mut w_energy = (k.energy)(&signal[..m]);
    for i in 0..n {
        let acc = (k.cdot_conj)(&signal[i..i + m], template);
        let denom = (t_energy * w_energy).sqrt();
        out.push(if denom < 1e-30 { 0.0 } else { acc.abs() / denom });
        if i + template.len() < signal.len() {
            w_energy += signal[i + template.len()].norm_sq() - signal[i].norm_sq();
            if w_energy < 0.0 {
                w_energy = 0.0;
            }
        }
    }
}

/// Indices of local maxima in `values` that exceed `threshold`, with at
/// least `min_separation` samples between accepted peaks (the larger peak
/// wins inside a separation window).
pub fn find_peaks(values: &[f64], threshold: f64, min_separation: usize) -> Vec<usize> {
    let mut out = Vec::new();
    find_peaks_into(values, threshold, min_separation, &mut out);
    out
}

/// [`find_peaks`] into a caller-owned buffer (cleared first); reusing
/// `out` across calls keeps the scan loop allocation-free. The suppression
/// pass runs in place by compacting accepted peaks to the buffer's front.
pub fn find_peaks_into(
    values: &[f64],
    threshold: f64,
    min_separation: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.extend((0..values.len()).filter(|&i| {
        values[i] >= threshold
            && (i == 0 || values[i] >= values[i - 1])
            && (i + 1 == values.len() || values[i] > values[i + 1])
    }));
    // Greedy non-maximum suppression by descending height: candidates are
    // visited tallest-first and compacted into an accepted prefix.
    out.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
    let mut accepted = 0;
    for i in 0..out.len() {
        let c = out[i];
        if out[..accepted]
            .iter()
            .all(|&a| a.abs_diff(c) >= min_separation.max(1))
        {
            out[accepted] = c;
            accepted += 1;
        }
    }
    out.truncate(accepted);
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Vec<Cplx> {
        vec![Cplx::ONE, Cplx::ZERO, Cplx::ONE, Cplx::ONE]
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        assert!(cross_correlate(&[], &template()).is_empty());
        assert!(cross_correlate(&template(), &[]).is_empty());
        assert!(normalized_correlation(&[Cplx::ONE], &template()).is_empty());
    }

    #[test]
    fn exact_match_peaks_at_one() {
        let t = template();
        let mut sig = vec![Cplx::ZERO; 10];
        sig[3..7].copy_from_slice(&t);
        let nc = normalized_correlation(&sig, &t);
        let (best, &val) = nc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(best, 3);
        assert!((val - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_is_scale_invariant() {
        let t = template();
        let mut sig = vec![Cplx::ZERO; 12];
        for (i, v) in t.iter().enumerate() {
            sig[4 + i] = v.scale(37.5); // much louder than the template
        }
        let nc = normalized_correlation(&sig, &t);
        assert!((nc[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_rotation_does_not_break_match() {
        let t = template();
        let rot = Cplx::phasor(1.2);
        let mut sig = vec![Cplx::ZERO; 12];
        for (i, v) in t.iter().enumerate() {
            sig[2 + i] = *v * rot;
        }
        let nc = normalized_correlation(&sig, &t);
        assert!((nc[2] - 1.0).abs() < 1e-9, "got {}", nc[2]);
    }

    #[test]
    fn find_peaks_basic() {
        let v = [0.0, 0.2, 0.9, 0.3, 0.0, 0.8, 0.1];
        assert_eq!(find_peaks(&v, 0.5, 1), vec![2, 5]);
        assert_eq!(find_peaks(&v, 0.95, 1), Vec::<usize>::new());
    }

    #[test]
    fn find_peaks_suppression_keeps_larger() {
        let v = [0.0, 0.8, 0.0, 0.9, 0.0];
        // With separation 3, the 0.9 peak at index 3 suppresses index 1.
        assert_eq!(find_peaks(&v, 0.5, 3), vec![3]);
    }

    #[test]
    fn find_peaks_plateau_takes_leading_edge_only_once() {
        let v = [0.0, 1.0, 1.0, 0.0];
        let peaks = find_peaks(&v, 0.5, 1);
        assert_eq!(peaks.len(), 1);
    }
}
