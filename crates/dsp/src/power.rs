//! Power measurement: dB conversions, moving averages, and the paper's
//! band-power probe.
//!
//! §3.2 of the paper: *"The received power was measured by bandpass
//! filtering a desired ATSC channel, then applying Parseval's identity to
//! measure the band's power by running the magnitude-squared time-domain
//! samples through a very long moving average filter for a live
//! measurement."* [`BandPowerMeter`] is exactly that chain.

use crate::fir::{design_bandpass, FastFirFilter};
use crate::window::Window;
use crate::{Cplx, DspError};
use std::collections::VecDeque;

/// Convert a linear power ratio to decibels. Zero/negative input maps to
/// `f64::NEG_INFINITY` rather than NaN, so "no signal" stays ordered.
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * lin.log10()
    }
}

/// Convert decibels to a linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_lin(dbm) * 1e-3
}

/// Convert watts to dBm.
pub fn watts_to_dbm(w: f64) -> f64 {
    lin_to_db(w * 1e3)
}

/// A running mean over the last `len` real samples (boxcar filter).
///
/// Uses a compensated running sum plus periodic exact recomputation so that
/// drift from floating-point cancellation stays bounded even over very long
/// streams ("very long moving average" per the paper).
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: VecDeque<f64>,
    len: usize,
    sum: f64,
    pushes_since_rebuild: usize,
}

impl MovingAverage {
    /// Create a moving average of length `len` (must be ≥ 1).
    pub fn new(len: usize) -> Result<Self, DspError> {
        if len == 0 {
            return Err(DspError::InvalidParameter("moving average length must be >= 1"));
        }
        Ok(Self {
            buf: VecDeque::with_capacity(len),
            len,
            sum: 0.0,
            pushes_since_rebuild: 0,
        })
    }

    /// Push a sample; returns the mean over the current window (which is
    /// shorter than `len` until the filter fills).
    pub fn push(&mut self, x: f64) -> f64 {
        if self.buf.len() == self.len {
            let old = self.buf.pop_front().expect("non-empty");
            self.sum -= old;
        }
        self.buf.push_back(x);
        self.sum += x;
        self.pushes_since_rebuild += 1;
        if self.pushes_since_rebuild >= 1_048_576 {
            self.sum = self.buf.iter().sum();
            self.pushes_since_rebuild = 0;
        }
        self.sum / self.buf.len() as f64
    }

    /// Current mean without pushing; `None` until at least one sample.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Has the window filled to its configured length?
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.len
    }

    /// Clear all state.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
        self.pushes_since_rebuild = 0;
    }
}

/// The paper's live band-power measurement chain: complex bandpass FIR →
/// `|x|²` → very long moving average. Output is linear power relative to
/// full scale; convert with [`lin_to_db`] for dBFS.
#[derive(Debug, Clone)]
pub struct BandPowerMeter {
    filter: FastFirFilter,
    avg: MovingAverage,
    /// Samples to discard while the filter's delay line fills.
    warmup_remaining: usize,
    /// Reused filter-output buffer so steady-state blocks don't allocate.
    scratch: Vec<Cplx>,
    /// Reused `|y|²` buffer, filled by the vectorized magnitude kernel.
    mags: Vec<f64>,
}

impl BandPowerMeter {
    /// Build a meter for a channel centered `center_hz` away from the
    /// capture center, `bandwidth_hz` wide, at `sample_rate` samples/s.
    ///
    /// * `filter_taps` — bandpass length (odd recommended; 129 is a good
    ///   default for a 6 MHz channel in a 20 MS/s capture).
    /// * `average_len` — moving-average length in samples; the paper uses a
    ///   "very long" average, i.e. ≫ filter length.
    pub fn new(
        center_hz: f64,
        bandwidth_hz: f64,
        sample_rate: f64,
        filter_taps: usize,
        average_len: usize,
    ) -> Result<Self, DspError> {
        if sample_rate <= 0.0 {
            return Err(DspError::InvalidParameter("sample_rate must be positive"));
        }
        if bandwidth_hz <= 0.0 || bandwidth_hz >= sample_rate {
            return Err(DspError::InvalidParameter(
                "bandwidth must be positive and below the sample rate",
            ));
        }
        if center_hz.abs() > sample_rate / 2.0 {
            return Err(DspError::InvalidParameter(
                "channel center is outside the captured bandwidth",
            ));
        }
        let taps = design_bandpass(
            center_hz / sample_rate,
            bandwidth_hz / sample_rate,
            filter_taps,
            Window::Blackman,
        )?;
        let filter = FastFirFilter::new(taps)?;
        let warmup = filter.len();
        Ok(Self {
            filter,
            avg: MovingAverage::new(average_len)?,
            warmup_remaining: warmup,
            scratch: Vec::new(),
            mags: Vec::new(),
        })
    }

    /// Feed a block of IQ; returns the latest averaged band power (linear,
    /// full-scale-relative), or `None` if still in filter warm-up.
    ///
    /// The whole block runs through the overlap-save filter in one pass,
    /// so long captures cost O(N log N) rather than O(N·taps).
    pub fn process(&mut self, iq: &[Cplx]) -> Option<f64> {
        let mut buf = std::mem::take(&mut self.scratch);
        self.filter.process_into(iq, &mut buf);
        self.mags.resize(buf.len(), 0.0);
        (crate::simd::kernels().norm_sq_map)(&buf, &mut self.mags);
        let mut latest = None;
        for &m in &self.mags {
            if self.warmup_remaining > 0 {
                self.warmup_remaining -= 1;
                continue;
            }
            latest = Some(self.avg.push(m));
        }
        self.scratch = buf;
        latest.or_else(|| self.avg.mean())
    }

    /// Measure a complete capture and return the band power in dB relative
    /// to full scale (dBFS). Returns `None` if the capture is shorter than
    /// the filter warm-up.
    pub fn measure_dbfs(&mut self, iq: &[Cplx]) -> Option<f64> {
        let _span = aircal_obs::span!("band_power");
        self.process(iq).map(lin_to_db)
    }

    /// Reset filter and averager state for a fresh measurement.
    pub fn reset(&mut self) {
        self.filter.reset();
        self.avg.reset();
        self.warmup_remaining = self.filter.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn db_conversions_round_trip() {
        for db in [-120.0, -30.0, 0.0, 3.0, 60.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
        }
        assert_eq!(lin_to_db(0.0), f64::NEG_INFINITY);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((watts_to_dbm(0.001) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_rejects_zero_len() {
        assert!(MovingAverage::new(0).is_err());
    }

    #[test]
    fn moving_average_basic() {
        let mut ma = MovingAverage::new(3).unwrap();
        assert_eq!(ma.mean(), None);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(6.0), 4.5);
        assert_eq!(ma.push(9.0), 6.0);
        assert!(ma.is_full());
        assert_eq!(ma.push(12.0), 9.0); // window is now [6, 9, 12]
    }

    #[test]
    fn moving_average_reset() {
        let mut ma = MovingAverage::new(4).unwrap();
        ma.push(1.0);
        ma.push(2.0);
        ma.reset();
        assert_eq!(ma.mean(), None);
        assert_eq!(ma.push(10.0), 10.0);
    }

    /// A tone inside the band should be measured at its true power; a tone
    /// outside should be strongly rejected.
    #[test]
    fn band_power_selectivity() {
        let fs = 1_000_000.0;
        let make_tone = |freq: f64, amp: f64, n: usize| -> Vec<Cplx> {
            (0..n)
                .map(|i| {
                    Cplx::from_polar(amp, core::f64::consts::TAU * freq * i as f64 / fs)
                })
                .collect()
        };
        let in_band = make_tone(100_000.0, 0.5, 20_000);
        let out_band = make_tone(-300_000.0, 0.5, 20_000);

        let mut meter = BandPowerMeter::new(100_000.0, 60_000.0, fs, 129, 8_192).unwrap();
        let p_in = meter.measure_dbfs(&in_band).unwrap();
        meter.reset();
        let p_out = meter.measure_dbfs(&out_band).unwrap();
        // 0.5 amplitude tone = 0.25 linear power = ~ -6.02 dBFS.
        assert!((p_in - (-6.02)).abs() < 0.5, "in-band measured {p_in}");
        assert!(p_out < p_in - 50.0, "out-of-band measured {p_out}");
    }

    #[test]
    fn band_power_rejects_bad_config() {
        assert!(BandPowerMeter::new(0.0, 0.0, 1e6, 65, 100).is_err());
        assert!(BandPowerMeter::new(0.0, 2e6, 1e6, 65, 100).is_err());
        assert!(BandPowerMeter::new(9e5, 1e5, 1e6, 65, 100).is_err());
        assert!(BandPowerMeter::new(0.0, 1e5, 0.0, 65, 100).is_err());
    }

    #[test]
    fn band_power_short_capture_returns_none() {
        let mut meter = BandPowerMeter::new(0.0, 100_000.0, 1e6, 129, 1024).unwrap();
        assert!(meter.measure_dbfs(&[Cplx::ONE; 10]).is_none());
    }

    proptest! {
        /// Moving average of a constant is that constant.
        #[test]
        fn moving_average_constant(c in -1e6f64..1e6, len in 1usize..64, pushes in 1usize..200) {
            let mut ma = MovingAverage::new(len).unwrap();
            let mut last = 0.0;
            for _ in 0..pushes {
                last = ma.push(c);
            }
            prop_assert!((last - c).abs() < 1e-6 * (1.0 + c.abs()));
        }

        /// Moving average never exceeds the extremes of its inputs.
        #[test]
        fn moving_average_bounded(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), len in 1usize..16) {
            let mut ma = MovingAverage::new(len).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for &x in &xs {
                let m = ma.push(x);
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
            }
        }
    }
}
