//! Simple rational/fractional resampling.
//!
//! The simulated front ends synthesize at one rate and measurement chains
//! occasionally need another (e.g. feeding a 2 Msps ADS-B demodulator from
//! a wider capture). Quality requirements are modest — linear interpolation
//! after appropriate filtering is sufficient for the SNR regimes simulated.

use crate::Cplx;

/// Resample `input` from `from_rate` to `to_rate` by linear interpolation.
///
/// Returns an empty vector if either rate is non-positive or the input is
/// empty. The output covers the same time span as the input.
pub fn resample_linear(input: &[Cplx], from_rate: f64, to_rate: f64) -> Vec<Cplx> {
    if input.is_empty() || from_rate <= 0.0 || to_rate <= 0.0 {
        return Vec::new();
    }
    if (from_rate - to_rate).abs() < 1e-9 {
        return input.to_vec();
    }
    let duration = input.len() as f64 / from_rate;
    let out_len = (duration * to_rate).round().max(1.0) as usize;
    let step = from_rate / to_rate;
    (0..out_len)
        .map(|i| {
            let pos = i as f64 * step;
            let idx = pos.floor() as usize;
            if idx + 1 >= input.len() {
                input[input.len() - 1]
            } else {
                let frac = pos - idx as f64;
                input[idx].scale(1.0 - frac) + input[idx + 1].scale(frac)
            }
        })
        .collect()
}

/// Integer decimation: keep every `factor`-th sample. Callers must lowpass
/// first if the input has content above the new Nyquist.
pub fn decimate(input: &[Cplx], factor: usize) -> Vec<Cplx> {
    if factor == 0 {
        return Vec::new();
    }
    input.iter().step_by(factor).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_rates_equal() {
        let x = vec![Cplx::ONE, Cplx::J, Cplx::ZERO];
        assert_eq!(resample_linear(&x, 1000.0, 1000.0), x);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(resample_linear(&[], 1.0, 2.0).is_empty());
        assert!(resample_linear(&[Cplx::ONE], 0.0, 2.0).is_empty());
        assert!(resample_linear(&[Cplx::ONE], 2.0, 0.0).is_empty());
        assert!(decimate(&[Cplx::ONE], 0).is_empty());
    }

    #[test]
    fn upsample_doubles_length() {
        let x: Vec<Cplx> = (0..10).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let y = resample_linear(&x, 1000.0, 2000.0);
        assert_eq!(y.len(), 20);
        // Midpoint between samples 0 and 1 is 0.5.
        assert!((y[1].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn downsample_preserves_tone_frequency() {
        // 1 kHz tone at 8 ksps downsampled to 4 ksps still completes the
        // same number of cycles over the capture.
        let fs = 8000.0;
        let x: Vec<Cplx> = (0..800)
            .map(|i| Cplx::phasor(core::f64::consts::TAU * 1000.0 * i as f64 / fs))
            .collect();
        let y = resample_linear(&x, fs, 4000.0);
        assert_eq!(y.len(), 400);
        // Phase advances ~ TAU*1000/4000 per output sample.
        let dphi = (y[11] * y[10].conj()).arg();
        assert!((dphi - core::f64::consts::TAU * 0.25).abs() < 0.02);
    }

    #[test]
    fn decimate_basic() {
        let x: Vec<Cplx> = (0..9).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let y = decimate(&x, 3);
        assert_eq!(y.len(), 3);
        assert_eq!(y[1].re, 3.0);
    }
}
