//! Vectorized DSP kernels with runtime ISA dispatch and a deterministic
//! lane-reduction model.
//!
//! Every hot inner loop in the workspace — magnitude-squared maps, FIR
//! dot products, matched-filter correlation, Welch PSD accumulation —
//! bottoms out in one of the kernels here. The kernels come in several
//! arms (portable scalar, AVX2 and SSE2 on x86_64, NEON on aarch64)
//! behind a single [`Kernels`] vtable selected once at startup by
//! [`kernels`].
//!
//! # The deterministic lane-reduction model
//!
//! The repo's bit-identity discipline (golden vectors, parallel ≡ serial
//! gates, cross-process digests) requires that switching ISA arms never
//! changes a single output bit. Floating-point addition is not
//! associative, so a naive "sum with whatever width the ISA has" breaks
//! that immediately. Instead, **every reduction — the scalar fallback
//! included — computes in a fixed 8-lane chunked order**:
//!
//! 1. Eight lane accumulators `l[0..8]`. Element `i` is folded into lane
//!    `i % 8`, in ascending `i` order within each lane.
//! 2. The remainder (when `len % 8 != 0`) continues the same lane
//!    assignment: element `8k + j` of the tail still lands in lane `j`.
//! 3. The lanes collapse in a fixed pairwise tree:
//!    `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
//!
//! A SIMD arm then reproduces the *exact* per-lane operation sequence
//! with vertical vector ops (one vector slot = one lane chain), so its
//! rounding is identical by construction — the vector arms are
//! bit-for-bit equal to the scalar arm, not merely close. Two
//! consequences shape the implementations:
//!
//! * **No FMA, ever.** A fused multiply-add rounds once where scalar
//!   `mul` + `add` round twice; the arms stick to the scalar op
//!   sequence.
//! * **Operand order is preserved.** `x86` min/max/add NaN semantics and
//!   `a + (-b)` vs `a - b` sign behavior depend on operand order, so the
//!   vector arms keep the scalar order (e.g. `_mm256_addsub_pd` computes
//!   the complex multiply's `t1 - t2` / `t1 + t2` with the same operand
//!   order as [`Cplx`]'s `Mul`).
//!
//! Elementwise kernels (`norm_sq_map`, `cmul_assign`, `scale_map`,
//! `norm_sq_accum`) have no reduction at all, so they are bit-identical
//! across arms as long as the per-element op sequence matches — which the
//! equivalence suite (`crates/dsp/tests/simd_equivalence.rs`) proves over
//! randomized lengths, alignments, tails, and NaN/inf payloads.
//!
//! # Dispatch
//!
//! [`kernels`] picks the widest arm the host supports exactly once (via
//! `OnceLock`) using `std::arch` runtime feature detection. Setting
//! `AIRCAL_FORCE_SCALAR=1` in the environment pins the portable scalar
//! arm — CI runs the whole tier-1 suite on both arms. [`Kernels::scalar`]
//! and [`Kernels::detect`] expose both arms directly so tests and
//! benchmarks can compare them inside a single process regardless of the
//! environment.

use crate::Cplx;
use std::sync::OnceLock;

/// Number of independent accumulator lanes in the canonical reduction.
pub const LANES: usize = 8;

/// Fixed pairwise reduction tree over the eight lane accumulators.
#[inline(always)]
fn tree8(l: &[f64; LANES]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// One ISA arm: a vtable of kernel entry points plus its dispatch label.
///
/// All arms are bit-identical; the only observable difference is speed
/// (and [`Kernels::label`]).
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Dispatch label: `"scalar"`, `"sse2"`, `"avx2"`, or `"neon"`.
    pub label: &'static str,
    /// `Σ x[i]` in canonical lane order.
    pub sum_f64: fn(&[f64]) -> f64,
    /// `Σ x[i]²` in canonical lane order.
    pub sum_sq_f64: fn(&[f64]) -> f64,
    /// `Σ |z[i]|²` in canonical lane order (block energy).
    pub energy: fn(&[Cplx]) -> f64,
    /// `Σ a[i]·b[i]` (complex dot product) in canonical lane order.
    pub cdot: fn(&[Cplx], &[Cplx]) -> Cplx,
    /// `Σ a[i]·conj(b[i])` (matched-filter dot) in canonical lane order.
    pub cdot_conj: fn(&[Cplx], &[Cplx]) -> Cplx,
    /// Elementwise `dst[i] = |src[i]|²`.
    pub norm_sq_map: fn(&[Cplx], &mut [f64]),
    /// Elementwise `dst[i] += |src[i]|²`.
    pub norm_sq_accum: fn(&[Cplx], &mut [f64]),
    /// Elementwise `a[i] *= b[i]` (complex multiply).
    pub cmul_assign: fn(&mut [Cplx], &[Cplx]),
    /// Elementwise `dst[i] = src[i] · taps[i]` (real taper).
    pub scale_map: fn(&[Cplx], &[f64], &mut [Cplx]),
}

static DISPATCH: OnceLock<&'static Kernels> = OnceLock::new();

/// The arm selected for this process: the widest ISA the host supports,
/// or the scalar fallback when `AIRCAL_FORCE_SCALAR` is set. Selected
/// once; every later call returns the same vtable.
pub fn kernels() -> &'static Kernels {
    DISPATCH.get_or_init(|| {
        if force_scalar() {
            &SCALAR
        } else {
            Kernels::detect()
        }
    })
}

/// Label of the arm [`kernels`] selected (`"scalar"`, `"sse2"`,
/// `"avx2"`, or `"neon"`).
pub fn dispatch_label() -> &'static str {
    kernels().label
}

fn force_scalar() -> bool {
    std::env::var_os("AIRCAL_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

impl Kernels {
    /// The portable scalar arm (the canonical reference implementation).
    pub fn scalar() -> &'static Kernels {
        &SCALAR
    }

    /// The widest arm the host's vector units support, ignoring
    /// `AIRCAL_FORCE_SCALAR`. Use this (against [`Kernels::scalar`]) to
    /// compare both arms inside one process.
    pub fn detect() -> &'static Kernels {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return &x86::AVX2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return &x86::SSE2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return &neon::NEON;
            }
        }
        &SCALAR
    }
}

// ---------------------------------------------------------------------
// Scalar arm: the canonical reference. Every other arm must reproduce
// these op sequences bit-for-bit.
// ---------------------------------------------------------------------

/// The portable scalar arm.
pub static SCALAR: Kernels = Kernels {
    label: "scalar",
    sum_f64: scalar_sum_f64,
    sum_sq_f64: scalar_sum_sq_f64,
    energy: scalar_energy,
    cdot: scalar_cdot,
    cdot_conj: scalar_cdot_conj,
    norm_sq_map: scalar_norm_sq_map,
    norm_sq_accum: scalar_norm_sq_accum,
    cmul_assign: scalar_cmul_assign,
    scale_map: scalar_scale_map,
};

fn scalar_sum_f64(xs: &[f64]) -> f64 {
    let mut l = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for j in 0..LANES {
            l[j] += c[j];
        }
    }
    for (j, &x) in chunks.remainder().iter().enumerate() {
        l[j] += x;
    }
    tree8(&l)
}

fn scalar_sum_sq_f64(xs: &[f64]) -> f64 {
    let mut l = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for j in 0..LANES {
            l[j] += c[j] * c[j];
        }
    }
    for (j, &x) in chunks.remainder().iter().enumerate() {
        l[j] += x * x;
    }
    tree8(&l)
}

fn scalar_energy(xs: &[Cplx]) -> f64 {
    let mut l = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for j in 0..LANES {
            l[j] += c[j].re * c[j].re + c[j].im * c[j].im;
        }
    }
    for (j, z) in chunks.remainder().iter().enumerate() {
        l[j] += z.re * z.re + z.im * z.im;
    }
    tree8(&l)
}

fn scalar_cdot(a: &[Cplx], b: &[Cplx]) -> Cplx {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lr = [0.0f64; LANES];
    let mut li = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let p = xa[j] * xb[j];
            lr[j] += p.re;
            li[j] += p.im;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let p = *x * *y;
        lr[j] += p.re;
        li[j] += p.im;
    }
    Cplx::new(tree8(&lr), tree8(&li))
}

fn scalar_cdot_conj(a: &[Cplx], b: &[Cplx]) -> Cplx {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lr = [0.0f64; LANES];
    let mut li = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let p = xa[j] * xb[j].conj();
            lr[j] += p.re;
            li[j] += p.im;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let p = *x * y.conj();
        lr[j] += p.re;
        li[j] += p.im;
    }
    Cplx::new(tree8(&lr), tree8(&li))
}

fn scalar_norm_sq_map(src: &[Cplx], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] = src[i].re * src[i].re + src[i].im * src[i].im;
    }
}

fn scalar_norm_sq_accum(src: &[Cplx], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] += src[i].re * src[i].re + src[i].im * src[i].im;
    }
}

fn scalar_cmul_assign(a: &mut [Cplx], b: &[Cplx]) {
    let n = a.len().min(b.len());
    for i in 0..n {
        a[i] *= b[i];
    }
}

fn scalar_scale_map(src: &[Cplx], taps: &[f64], dst: &mut [Cplx]) {
    let n = src.len().min(taps.len()).min(dst.len());
    for i in 0..n {
        dst[i] = Cplx::new(src[i].re * taps[i], src[i].im * taps[i]);
    }
}

// ---------------------------------------------------------------------
// x86_64 arms.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{tree8, Kernels, LANES};
    use crate::Cplx;
    use core::arch::x86_64::*;

    /// AVX2 arm: all nine kernels vectorized 4 doubles (2 complexes) per
    /// register, two/four registers per canonical 8-lane chunk.
    pub static AVX2: Kernels = Kernels {
        label: "avx2",
        sum_f64: avx2_sum_f64,
        sum_sq_f64: avx2_sum_sq_f64,
        energy: avx2_energy,
        cdot: avx2_cdot,
        cdot_conj: avx2_cdot_conj,
        norm_sq_map: avx2_norm_sq_map,
        norm_sq_accum: avx2_norm_sq_accum,
        cmul_assign: avx2_cmul_assign,
        scale_map: avx2_scale_map,
    };

    /// SSE2 arm: the two pure-`f64` reductions run 2-wide; the
    /// interleaved-complex kernels delegate to the scalar arm (their
    /// shuffle sequences need SSE3+, and SSE2-only hosts are legacy).
    pub static SSE2: Kernels = Kernels {
        label: "sse2",
        sum_f64: sse2_sum_f64,
        sum_sq_f64: sse2_sum_sq_f64,
        energy: super::scalar_energy,
        cdot: super::scalar_cdot,
        cdot_conj: super::scalar_cdot_conj,
        norm_sq_map: super::scalar_norm_sq_map,
        norm_sq_accum: super::scalar_norm_sq_accum,
        cmul_assign: super::scalar_cmul_assign,
        scale_map: super::scalar_scale_map,
    };

    // Every safe wrapper below is only reachable through a vtable that
    // `Kernels::detect` installs after `is_x86_feature_detected!`
    // confirmed the ISA, so the target_feature call is sound.

    fn avx2_sum_f64(xs: &[f64]) -> f64 {
        unsafe { avx2_sum_f64_impl(xs) }
    }
    fn avx2_sum_sq_f64(xs: &[f64]) -> f64 {
        unsafe { avx2_sum_sq_f64_impl(xs) }
    }
    fn avx2_energy(xs: &[Cplx]) -> f64 {
        unsafe { avx2_energy_impl(xs) }
    }
    fn avx2_cdot(a: &[Cplx], b: &[Cplx]) -> Cplx {
        unsafe { avx2_cdot_impl(a, b, false) }
    }
    fn avx2_cdot_conj(a: &[Cplx], b: &[Cplx]) -> Cplx {
        unsafe { avx2_cdot_impl(a, b, true) }
    }
    fn avx2_norm_sq_map(src: &[Cplx], dst: &mut [f64]) {
        unsafe { avx2_norm_sq_map_impl(src, dst, false) }
    }
    fn avx2_norm_sq_accum(src: &[Cplx], dst: &mut [f64]) {
        unsafe { avx2_norm_sq_map_impl(src, dst, true) }
    }
    fn avx2_cmul_assign(a: &mut [Cplx], b: &[Cplx]) {
        unsafe { avx2_cmul_assign_impl(a, b) }
    }
    fn avx2_scale_map(src: &[Cplx], taps: &[f64], dst: &mut [Cplx]) {
        unsafe { avx2_scale_map_impl(src, taps, dst) }
    }
    fn sse2_sum_f64(xs: &[f64]) -> f64 {
        unsafe { sse2_sum_f64_impl(xs) }
    }
    fn sse2_sum_sq_f64(xs: &[f64]) -> f64 {
        unsafe { sse2_sum_sq_f64_impl(xs) }
    }

    /// Complex multiply of two packed pairs `[re0, im0, re1, im1]`,
    /// reproducing `Cplx::mul`'s exact op and operand order:
    /// `re = ar·br − ai·bi`, `im = ar·bi + ai·br` (addsub's even lanes
    /// subtract `t2` from `t1`, odd lanes add — same order as scalar).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmul4(a: __m256d, b: __m256d) -> __m256d {
        let a_re = _mm256_movedup_pd(a); // [ar0, ar0, ar1, ar1]
        let a_im = _mm256_permute_pd(a, 0xF); // [ai0, ai0, ai1, ai1]
        let b_swap = _mm256_permute_pd(b, 0x5); // [bi0, br0, bi1, br1]
        let t1 = _mm256_mul_pd(a_re, b); // [ar·br, ar·bi, ..]
        let t2 = _mm256_mul_pd(a_im, b_swap); // [ai·bi, ai·br, ..]
        _mm256_addsub_pd(t1, t2)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_sum_f64_impl(xs: &[f64]) -> f64 {
        let mut a0 = _mm256_setzero_pd(); // lanes 0..4
        let mut a1 = _mm256_setzero_pd(); // lanes 4..8
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            a0 = _mm256_add_pd(a0, _mm256_loadu_pd(c.as_ptr()));
            a1 = _mm256_add_pd(a1, _mm256_loadu_pd(c.as_ptr().add(4)));
        }
        let mut l = [0.0f64; LANES];
        _mm256_storeu_pd(l.as_mut_ptr(), a0);
        _mm256_storeu_pd(l.as_mut_ptr().add(4), a1);
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x;
        }
        tree8(&l)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_sum_sq_f64_impl(xs: &[f64]) -> f64 {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            let v0 = _mm256_loadu_pd(c.as_ptr());
            let v1 = _mm256_loadu_pd(c.as_ptr().add(4));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(v0, v0));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(v1, v1));
        }
        let mut l = [0.0f64; LANES];
        _mm256_storeu_pd(l.as_mut_ptr(), a0);
        _mm256_storeu_pd(l.as_mut_ptr().add(4), a1);
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x * x;
        }
        tree8(&l)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_energy_impl(xs: &[Cplx]) -> f64 {
        // hadd(sq(v0), sq(v1)) yields |z|² for four complexes in the
        // constant permuted lane order [0, 2, 1, 3]. The permutation is
        // identical every iteration, so each vector slot is one scalar
        // lane chain; un-permute at extraction, before the tree.
        let mut acc_a = _mm256_setzero_pd(); // canonical lanes [0, 2, 1, 3]
        let mut acc_b = _mm256_setzero_pd(); // canonical lanes [4, 6, 5, 7]
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            let p = c.as_ptr() as *const f64;
            let v0 = _mm256_loadu_pd(p);
            let v1 = _mm256_loadu_pd(p.add(4));
            let v2 = _mm256_loadu_pd(p.add(8));
            let v3 = _mm256_loadu_pd(p.add(12));
            let h0 = _mm256_hadd_pd(_mm256_mul_pd(v0, v0), _mm256_mul_pd(v1, v1));
            let h1 = _mm256_hadd_pd(_mm256_mul_pd(v2, v2), _mm256_mul_pd(v3, v3));
            acc_a = _mm256_add_pd(acc_a, h0);
            acc_b = _mm256_add_pd(acc_b, h1);
        }
        let mut ta = [0.0f64; 4];
        let mut tb = [0.0f64; 4];
        _mm256_storeu_pd(ta.as_mut_ptr(), acc_a);
        _mm256_storeu_pd(tb.as_mut_ptr(), acc_b);
        let mut l = [ta[0], ta[2], ta[1], ta[3], tb[0], tb[2], tb[1], tb[3]];
        for (j, z) in chunks.remainder().iter().enumerate() {
            l[j] += z.re * z.re + z.im * z.im;
        }
        tree8(&l)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_cdot_impl(a: &[Cplx], b: &[Cplx], conj_b: bool) -> Cplx {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        // Flips the sign bit of the imaginary slots — bitwise identical
        // to the scalar `conj()` negation, including for NaN and -0.0.
        let conj_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
        // acc[k] holds [Σ p.re, Σ p.im] for complex lanes 2k and 2k+1.
        let mut acc = [_mm256_setzero_pd(); 4];
        let pa = a.as_ptr() as *const f64;
        let pb = b.as_ptr() as *const f64;
        let full = n / LANES;
        for c in 0..full {
            let base = c * 2 * LANES;
            for (k, slot) in acc.iter_mut().enumerate() {
                let va = _mm256_loadu_pd(pa.add(base + 4 * k));
                let mut vb = _mm256_loadu_pd(pb.add(base + 4 * k));
                if conj_b {
                    vb = _mm256_xor_pd(vb, conj_mask);
                }
                *slot = _mm256_add_pd(*slot, cmul4(va, vb));
            }
        }
        let mut lr = [0.0f64; LANES];
        let mut li = [0.0f64; LANES];
        for (k, slot) in acc.iter().enumerate() {
            let mut t = [0.0f64; 4];
            _mm256_storeu_pd(t.as_mut_ptr(), *slot);
            lr[2 * k] = t[0];
            li[2 * k] = t[1];
            lr[2 * k + 1] = t[2];
            li[2 * k + 1] = t[3];
        }
        for (j, (x, y)) in a[full * LANES..]
            .iter()
            .zip(&b[full * LANES..])
            .enumerate()
        {
            let p = if conj_b { *x * y.conj() } else { *x * *y };
            lr[j] += p.re;
            li[j] += p.im;
        }
        Cplx::new(tree8(&lr), tree8(&li))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_norm_sq_map_impl(src: &[Cplx], dst: &mut [f64], accumulate: bool) {
        let n = src.len().min(dst.len());
        let ps = src.as_ptr() as *const f64;
        let pd = dst.as_mut_ptr();
        let full = n / 4;
        for c in 0..full {
            let v0 = _mm256_loadu_pd(ps.add(8 * c));
            let v1 = _mm256_loadu_pd(ps.add(8 * c + 4));
            let h = _mm256_hadd_pd(_mm256_mul_pd(v0, v0), _mm256_mul_pd(v1, v1));
            // hadd order is [n0, n2, n1, n3]; restore sequential order.
            let mut r = _mm256_permute4x64_pd(h, 0xD8);
            if accumulate {
                r = _mm256_add_pd(_mm256_loadu_pd(pd.add(4 * c)), r);
            }
            _mm256_storeu_pd(pd.add(4 * c), r);
        }
        for i in full * 4..n {
            let v = src[i].re * src[i].re + src[i].im * src[i].im;
            if accumulate {
                dst[i] += v;
            } else {
                dst[i] = v;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_cmul_assign_impl(a: &mut [Cplx], b: &[Cplx]) {
        let n = a.len().min(b.len());
        let pa = a.as_mut_ptr() as *mut f64;
        let pb = b.as_ptr() as *const f64;
        let full = n / 2;
        for c in 0..full {
            let va = _mm256_loadu_pd(pa.add(4 * c));
            let vb = _mm256_loadu_pd(pb.add(4 * c));
            _mm256_storeu_pd(pa.add(4 * c), cmul4(va, vb));
        }
        for i in full * 2..n {
            a[i] *= b[i];
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_scale_map_impl(src: &[Cplx], taps: &[f64], dst: &mut [Cplx]) {
        let n = src.len().min(taps.len()).min(dst.len());
        let ps = src.as_ptr() as *const f64;
        let pt = taps.as_ptr();
        let pd = dst.as_mut_ptr() as *mut f64;
        let full = n / 4;
        for c in 0..full {
            let t = _mm256_loadu_pd(pt.add(4 * c)); // [t0, t1, t2, t3]
            let t_lo = _mm256_permute4x64_pd(t, 0x50); // [t0, t0, t1, t1]
            let t_hi = _mm256_permute4x64_pd(t, 0xFA); // [t2, t2, t3, t3]
            let v0 = _mm256_loadu_pd(ps.add(8 * c));
            let v1 = _mm256_loadu_pd(ps.add(8 * c + 4));
            _mm256_storeu_pd(pd.add(8 * c), _mm256_mul_pd(v0, t_lo));
            _mm256_storeu_pd(pd.add(8 * c + 4), _mm256_mul_pd(v1, t_hi));
        }
        for i in full * 4..n {
            dst[i] = Cplx::new(src[i].re * taps[i], src[i].im * taps[i]);
        }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_sum_f64_impl(xs: &[f64]) -> f64 {
        // Four 2-wide accumulators cover the eight canonical lanes.
        let mut a = [_mm_setzero_pd(); 4];
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            for (k, slot) in a.iter_mut().enumerate() {
                *slot = _mm_add_pd(*slot, _mm_loadu_pd(c.as_ptr().add(2 * k)));
            }
        }
        let mut l = [0.0f64; LANES];
        for (k, slot) in a.iter().enumerate() {
            _mm_storeu_pd(l.as_mut_ptr().add(2 * k), *slot);
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x;
        }
        tree8(&l)
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_sum_sq_f64_impl(xs: &[f64]) -> f64 {
        let mut a = [_mm_setzero_pd(); 4];
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            for (k, slot) in a.iter_mut().enumerate() {
                let v = _mm_loadu_pd(c.as_ptr().add(2 * k));
                *slot = _mm_add_pd(*slot, _mm_mul_pd(v, v));
            }
        }
        let mut l = [0.0f64; LANES];
        for (k, slot) in a.iter().enumerate() {
            _mm_storeu_pd(l.as_mut_ptr().add(2 * k), *slot);
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x * x;
        }
        tree8(&l)
    }
}

// ---------------------------------------------------------------------
// aarch64 arm.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{tree8, Kernels, LANES};
    use crate::Cplx;
    use core::arch::aarch64::*;

    /// NEON arm: pure-`f64` reductions and the magnitude-squared kernels
    /// run 2-wide (`vpaddq_f64` computes `re² + im²` in scalar order);
    /// the remaining complex kernels delegate to the scalar arm.
    pub static NEON: Kernels = Kernels {
        label: "neon",
        sum_f64: neon_sum_f64,
        sum_sq_f64: neon_sum_sq_f64,
        energy: neon_energy,
        cdot: super::scalar_cdot,
        cdot_conj: super::scalar_cdot_conj,
        norm_sq_map: neon_norm_sq_map,
        norm_sq_accum: super::scalar_norm_sq_accum,
        cmul_assign: super::scalar_cmul_assign,
        scale_map: super::scalar_scale_map,
    };

    // NEON is baseline on aarch64, so the intrinsics are safe to issue
    // on any host that reached this arm through detection.

    fn neon_sum_f64(xs: &[f64]) -> f64 {
        unsafe { neon_sum_f64_impl(xs) }
    }
    fn neon_sum_sq_f64(xs: &[f64]) -> f64 {
        unsafe { neon_sum_sq_f64_impl(xs) }
    }
    fn neon_energy(xs: &[Cplx]) -> f64 {
        unsafe { neon_energy_impl(xs) }
    }
    fn neon_norm_sq_map(src: &[Cplx], dst: &mut [f64]) {
        unsafe { neon_norm_sq_map_impl(src, dst) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_sum_f64_impl(xs: &[f64]) -> f64 {
        let mut a = [vdupq_n_f64(0.0); 4];
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            for (k, slot) in a.iter_mut().enumerate() {
                *slot = vaddq_f64(*slot, vld1q_f64(c.as_ptr().add(2 * k)));
            }
        }
        let mut l = [0.0f64; LANES];
        for (k, slot) in a.iter().enumerate() {
            vst1q_f64(l.as_mut_ptr().add(2 * k), *slot);
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x;
        }
        tree8(&l)
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_sum_sq_f64_impl(xs: &[f64]) -> f64 {
        let mut a = [vdupq_n_f64(0.0); 4];
        let mut chunks = xs.chunks_exact(LANES);
        for c in &mut chunks {
            for (k, slot) in a.iter_mut().enumerate() {
                let v = vld1q_f64(c.as_ptr().add(2 * k));
                *slot = vaddq_f64(*slot, vmulq_f64(v, v));
            }
        }
        let mut l = [0.0f64; LANES];
        for (k, slot) in a.iter().enumerate() {
            vst1q_f64(l.as_mut_ptr().add(2 * k), *slot);
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            l[j] += x * x;
        }
        tree8(&l)
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_energy_impl(xs: &[Cplx]) -> f64 {
        // vpaddq(sq(z0), sq(z1)) = [re0²+im0², re1²+im1²] — sequential
        // lane order, so the four accumulators map straight onto the
        // canonical lanes.
        let mut a = [vdupq_n_f64(0.0); 4];
        let p = xs.as_ptr() as *const f64;
        let full = xs.len() / LANES;
        for c in 0..full {
            let base = c * 2 * LANES;
            for (k, slot) in a.iter_mut().enumerate() {
                let v0 = vld1q_f64(p.add(base + 4 * k));
                let v1 = vld1q_f64(p.add(base + 4 * k + 2));
                let n = vpaddq_f64(vmulq_f64(v0, v0), vmulq_f64(v1, v1));
                *slot = vaddq_f64(*slot, n);
            }
        }
        let mut l = [0.0f64; LANES];
        for (k, slot) in a.iter().enumerate() {
            vst1q_f64(l.as_mut_ptr().add(2 * k), *slot);
        }
        for (j, z) in xs[full * LANES..].iter().enumerate() {
            l[j] += z.re * z.re + z.im * z.im;
        }
        tree8(&l)
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_norm_sq_map_impl(src: &[Cplx], dst: &mut [f64]) {
        let n = src.len().min(dst.len());
        let ps = src.as_ptr() as *const f64;
        let pd = dst.as_mut_ptr();
        let full = n / 2;
        for c in 0..full {
            let v0 = vld1q_f64(ps.add(4 * c));
            let v1 = vld1q_f64(ps.add(4 * c + 2));
            vst1q_f64(pd.add(2 * c), vpaddq_f64(vmulq_f64(v0, v0), vmulq_f64(v1, v1)));
        }
        for i in full * 2..n {
            dst[i] = src[i].re * src[i].re + src[i].im * src[i].im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::phasor(0.37 * i as f64).scale(1.0 + 0.03 * i as f64))
            .collect()
    }

    fn reals(n: usize) -> Vec<f64> {
        (0..n).map(|i| (0.91 * i as f64).sin() * 3.0).collect()
    }

    /// Every arm reachable on this host is bit-identical to the scalar
    /// reference over awkward lengths (the proptest suite goes further).
    #[test]
    fn detected_arm_matches_scalar_bitwise() {
        let s = Kernels::scalar();
        let d = Kernels::detect();
        for n in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let zs = samples(n);
            let xs = reals(n);
            assert_eq!((s.sum_f64)(&xs).to_bits(), (d.sum_f64)(&xs).to_bits());
            assert_eq!((s.sum_sq_f64)(&xs).to_bits(), (d.sum_sq_f64)(&xs).to_bits());
            assert_eq!((s.energy)(&zs).to_bits(), (d.energy)(&zs).to_bits());
            let t = samples(n.min(16));
            let (cs, cd) = ((s.cdot)(&zs, &zs), (d.cdot)(&zs, &zs));
            assert_eq!(cs.re.to_bits(), cd.re.to_bits());
            assert_eq!(cs.im.to_bits(), cd.im.to_bits());
            let (cs, cd) = ((s.cdot_conj)(&zs, &t), (d.cdot_conj)(&zs, &t));
            assert_eq!(cs.re.to_bits(), cd.re.to_bits());
            assert_eq!(cs.im.to_bits(), cd.im.to_bits());
        }
    }

    /// The canonical reduction applied to the ADS-B preamble template
    /// yields exactly 4.0 — the gated scan's closed-form template energy.
    #[test]
    fn preamble_energy_is_exact() {
        let pulses = [0usize, 2, 7, 9];
        let mut t = vec![Cplx::ZERO; 16];
        for &p in &pulses {
            t[p] = Cplx::ONE;
        }
        assert_eq!((Kernels::scalar().energy)(&t), 4.0);
        assert_eq!((Kernels::detect().energy)(&t), 4.0);
    }

    /// The dispatch label is one of the known arms and stable.
    #[test]
    fn dispatch_label_is_stable() {
        let l = dispatch_label();
        assert!(["scalar", "sse2", "avx2", "neon"].contains(&l));
        assert_eq!(dispatch_label(), l);
    }

    /// Kernels tolerate mismatched slice lengths by truncating to the
    /// shortest, and empty inputs reduce to zero.
    #[test]
    fn length_mismatch_and_empty() {
        let k = kernels();
        assert_eq!((k.sum_f64)(&[]), 0.0);
        assert_eq!((k.energy)(&[]), 0.0);
        let a = samples(10);
        let b = samples(4);
        let want = (k.cdot)(&a[..4], &b);
        let got = (k.cdot)(&a, &b);
        assert_eq!(want.re.to_bits(), got.re.to_bits());
        let mut dst = vec![0.0; 3];
        (k.norm_sq_map)(&a, &mut dst);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst[2].to_bits(), a[2].norm_sq().to_bits());
    }
}
