//! Automatic gain control.
//!
//! The paper explicitly *disables* AGC for the TV measurements ("The SDR was
//! configured with a fixed gain to prevent measurement differences from
//! automatic gain control"). We implement AGC anyway so the harness can
//! demonstrate the artifact the authors avoided: with AGC on, absolute band
//! power readings become meaningless.

use crate::Cplx;

/// A feedback AGC that drives mean sample power toward a target.
#[derive(Debug, Clone)]
pub struct Agc {
    target_power: f64,
    /// Loop rate: fraction of the log-power error corrected per sample.
    rate: f64,
    gain: f64,
    max_gain: f64,
    min_gain: f64,
}

impl Agc {
    /// Create an AGC targeting the given mean power (linear) with the given
    /// loop rate (sensible values: 1e-4 … 1e-2).
    pub fn new(target_power: f64, rate: f64) -> Self {
        Self {
            target_power: target_power.max(1e-30),
            rate: rate.clamp(1e-6, 1.0),
            gain: 1.0,
            max_gain: 1e6,
            min_gain: 1e-6,
        }
    }

    /// Current linear voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Process one sample.
    pub fn push(&mut self, x: Cplx) -> Cplx {
        let y = x.scale(self.gain);
        let p = y.norm_sq();
        if p > 0.0 {
            // Multiplicative update in the log domain.
            let err = (self.target_power / p).ln();
            self.gain *= (self.rate * err * 0.5).exp(); // 0.5: power → voltage
            self.gain = self.gain.clamp(self.min_gain, self.max_gain);
        }
        y
    }

    /// Process a block in place.
    pub fn process(&mut self, block: &mut [Cplx]) {
        for s in block.iter_mut() {
            *s = self.push(*s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::mean_power;

    fn tone(amp: f64, n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::from_polar(amp, 0.01 * i as f64))
            .collect()
    }

    #[test]
    fn converges_to_target_power() {
        let mut agc = Agc::new(1.0, 5e-3);
        let mut sig = tone(0.01, 50_000);
        agc.process(&mut sig);
        let settled = mean_power(&sig[40_000..]);
        assert!((settled - 1.0).abs() < 0.05, "settled power {settled}");
    }

    #[test]
    fn attenuates_loud_signals() {
        let mut agc = Agc::new(1.0, 5e-3);
        let mut sig = tone(100.0, 50_000);
        agc.process(&mut sig);
        let settled = mean_power(&sig[40_000..]);
        assert!((settled - 1.0).abs() < 0.05, "settled power {settled}");
        assert!(agc.gain() < 0.1);
    }

    #[test]
    fn agc_destroys_absolute_power_information() {
        // The reason the paper fixes the gain: two signals 40 dB apart end
        // up at the same level after AGC.
        let measure = |amp: f64| {
            let mut agc = Agc::new(1.0, 5e-3);
            let mut sig = tone(amp, 50_000);
            agc.process(&mut sig);
            mean_power(&sig[40_000..])
        };
        let quiet = measure(0.01);
        let loud = measure(1.0);
        assert!((quiet - loud).abs() < 0.1, "{quiet} vs {loud}");
    }

    #[test]
    fn zero_signal_leaves_gain_bounded() {
        let mut agc = Agc::new(1.0, 1e-2);
        let mut sig = vec![Cplx::ZERO; 1_000];
        agc.process(&mut sig);
        assert!(agc.gain().is_finite());
    }
}
