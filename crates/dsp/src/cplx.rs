//! A minimal complex-sample type.
//!
//! IQ samples flow through every layer of the simulation, so the type is
//! deliberately small: `f64` re/im, `Copy`, with only the arithmetic the
//! workspace needs. (We use `f64` rather than `f32` throughout: sample
//! volumes are modest because IQ is synthesized per burst, and `f64` keeps
//! the propagation math and DSP numerics in one precision.)

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex sample: `re + j·im`.
///
/// `repr(C)` guarantees the `[re, im]` memory order that the vectorized
/// kernels in [`crate::simd`] rely on when loading interleaved IQ blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cplx {
    pub re: f64,
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Construct from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Construct from polar form: `mag·e^{jφ}`.
    pub fn from_polar(mag: f64, phase_rad: f64) -> Self {
        Self::new(mag * phase_rad.cos(), mag * phase_rad.sin())
    }

    /// `e^{jφ}` — a unit phasor.
    pub fn phasor(phase_rad: f64) -> Self {
        Self::from_polar(1.0, phase_rad)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — instantaneous power of a sample.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiply by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cplx {
    fn sub_assign(&mut self, rhs: Cplx) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cplx {
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: f64) -> Cplx {
        self.scale(rhs)
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    fn div(self, rhs: f64) -> Cplx {
        self.scale(1.0 / rhs)
    }
}

impl Div for Cplx {
    type Output = Cplx;
    fn div(self, rhs: Cplx) -> Cplx {
        let d = rhs.norm_sq();
        Cplx::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::new(re, 0.0)
    }
}

/// Mean power (average `|z|²`) of a sample block; zero for an empty block.
///
/// Reduces in the canonical lane order of [`crate::simd`], so the result
/// is bit-identical across dispatch arms.
pub fn mean_power(samples: &[Cplx]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (crate::simd::kernels().energy)(samples) / samples.len() as f64
}

/// Total energy (sum of `|z|²`) of a sample block, in canonical lane
/// order (bit-identical across dispatch arms).
pub fn energy(samples: &[Cplx]) -> f64 {
    (crate::simd::kernels().energy)(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Cplx::new(3.0, -2.0);
        let b = Cplx::new(-1.0, 4.0);
        assert_eq!(a + b, Cplx::new(2.0, 2.0));
        assert_eq!(a - b, Cplx::new(4.0, -6.0));
        assert_eq!(a * Cplx::ONE, a);
        assert_eq!(a * Cplx::ZERO, Cplx::ZERO);
        assert_eq!(-a, Cplx::new(-3.0, 2.0));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Cplx::from_polar(2.0, 0.3);
        let b = Cplx::from_polar(3.0, 1.1);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.arg() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert_eq!(Cplx::J * Cplx::J, Cplx::new(-1.0, 0.0));
    }

    #[test]
    fn division_round_trip() {
        let a = Cplx::new(5.0, -7.0);
        let b = Cplx::new(2.0, 3.0);
        let q = (a / b) * b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let a = Cplx::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        let aa = a * a.conj();
        assert!((aa.re - 25.0).abs() < 1e-12 && aa.im.abs() < 1e-12);
    }

    #[test]
    fn phasor_unit_magnitude() {
        for k in 0..16 {
            let p = Cplx::phasor(k as f64 * 0.5);
            assert!((p.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn block_power_and_energy() {
        let s = vec![Cplx::new(1.0, 0.0), Cplx::new(0.0, 1.0)];
        assert!((mean_power(&s) - 1.0).abs() < 1e-12);
        assert!((energy(&s) - 2.0).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }
}
