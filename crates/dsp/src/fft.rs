//! Iterative radix-2 decimation-in-time FFT.
//!
//! Used for spectrum inspection in tests/examples and to verify Parseval's
//! identity, which underpins the paper's TV band-power measurement. Lengths
//! must be powers of two; the harness only ever uses such lengths.

use crate::{Cplx, DspError};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (`e^{-j2πkn/N}` kernel).
    Forward,
    /// Inverse DFT, including the `1/N` normalization.
    Inverse,
}

/// In-place radix-2 FFT. `data.len()` must be a power of two (1 is allowed).
pub fn fft_in_place(data: &mut [Cplx], dir: Direction) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(DspError::NotPowerOfTwo(n));
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * core::f64::consts::TAU / len as f64;
        let wlen = Cplx::phasor(ang);
        let mut i = 0;
        while i < n {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(inv);
        }
    }
    Ok(())
}

/// A reusable FFT plan for one transform length.
///
/// [`fft_in_place`] recomputes the bit-reversal permutation and the
/// per-stage twiddle recurrence on every call; a planner front-loads both
/// into lookup tables so repeated transforms of the same length (the
/// overlap-save FIR, the band-power probe, PSD sweeps) pay only the
/// butterfly arithmetic. The twiddle tables are built with the same
/// `w *= wlen` recurrence the direct routine uses, so planner output is
/// **bit-identical** to [`fft_in_place`] for every input.
#[derive(Debug, Clone)]
pub struct FftPlanner {
    n: usize,
    /// `rev[i]` = bit-reversed index of `i` (swap applied when `i < rev[i]`).
    rev: Vec<u32>,
    /// Forward twiddles, all stages flattened; stage with butterfly span
    /// `len` starts at offset `len/2 - 1` and holds `len/2` entries.
    fwd: Vec<Cplx>,
    /// Inverse twiddles, same layout.
    inv: Vec<Cplx>,
}

impl FftPlanner {
    /// Plan transforms of length `n` (must be a power of two).
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 || n & (n - 1) != 0 {
            return Err(DspError::NotPowerOfTwo(n));
        }
        let mut rev = vec![0u32; n];
        let mut j = 0usize;
        for r in rev.iter_mut().skip(1) {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            *r = j as u32;
        }
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut inv = Vec::with_capacity(n.saturating_sub(1));
        for (sign, table) in [(-1.0, &mut fwd), (1.0, &mut inv)] {
            let mut len = 2;
            while len <= n {
                let ang = sign * core::f64::consts::TAU / len as f64;
                let wlen = Cplx::phasor(ang);
                let mut w = Cplx::ONE;
                for _ in 0..len / 2 {
                    table.push(w);
                    w *= wlen;
                }
                len <<= 1;
            }
        }
        Ok(Self { n, rev, fwd, inv })
    }

    /// Planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 plan (unconstructable).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place transform of exactly `self.len()` samples.
    pub fn process(&self, data: &mut [Cplx], dir: Direction) -> Result<(), DspError> {
        let n = self.n;
        if data.len() != n {
            return Err(DspError::InvalidParameter("data length must match plan"));
        }
        for i in 1..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let table = match dir {
            Direction::Forward => &self.fwd,
            Direction::Inverse => &self.inv,
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &table[half - 1..half - 1 + half];
            let mut i = 0;
            while i < n {
                for (k, &w) in stage.iter().enumerate() {
                    let u = data[i + k];
                    let v = data[i + k + half] * w;
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
        if dir == Direction::Inverse {
            let scale = 1.0 / n as f64;
            for x in data.iter_mut() {
                *x = x.scale(scale);
            }
        }
        Ok(())
    }

    /// Slice-out forward transform into a caller-owned buffer: `out` is
    /// cleared, filled with `input`, and transformed in place. Reusing
    /// `out` across calls makes repeated transforms allocation-free.
    pub fn forward_into(&self, input: &[Cplx], out: &mut Vec<Cplx>) -> Result<(), DspError> {
        out.clear();
        out.extend_from_slice(input);
        self.process(out, Direction::Forward)
    }

    /// Slice-out inverse transform (normalized by `1/N`) into a
    /// caller-owned buffer; see [`FftPlanner::forward_into`].
    pub fn inverse_into(&self, input: &[Cplx], out: &mut Vec<Cplx>) -> Result<(), DspError> {
        out.clear();
        out.extend_from_slice(input);
        self.process(out, Direction::Inverse)
    }

    /// Out-of-place forward transform. Thin allocating wrapper over
    /// [`FftPlanner::forward_into`].
    pub fn forward(&self, input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
        let mut buf = Vec::with_capacity(input.len());
        self.forward_into(input, &mut buf)?;
        Ok(buf)
    }

    /// Out-of-place inverse transform (normalized by `1/N`). Thin
    /// allocating wrapper over [`FftPlanner::inverse_into`].
    pub fn inverse(&self, input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
        let mut buf = Vec::with_capacity(input.len());
        self.inverse_into(input, &mut buf)?;
        Ok(buf)
    }
}

/// Forward FFT into a caller-owned buffer (cleared and refilled).
pub fn fft_into(input: &[Cplx], out: &mut Vec<Cplx>) -> Result<(), DspError> {
    out.clear();
    out.extend_from_slice(input);
    fft_in_place(out, Direction::Forward)
}

/// Inverse FFT (normalized by `1/N`) into a caller-owned buffer.
pub fn ifft_into(input: &[Cplx], out: &mut Vec<Cplx>) -> Result<(), DspError> {
    out.clear();
    out.extend_from_slice(input);
    fft_in_place(out, Direction::Inverse)
}

/// Out-of-place forward FFT. Thin allocating wrapper over [`fft_into`].
pub fn fft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut buf = Vec::with_capacity(input.len());
    fft_into(input, &mut buf)?;
    Ok(buf)
}

/// Out-of-place inverse FFT (normalized by `1/N`). Thin allocating
/// wrapper over [`ifft_into`].
pub fn ifft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut buf = Vec::with_capacity(input.len());
    ifft_into(input, &mut buf)?;
    Ok(buf)
}

/// [`power_spectrum`] into caller-owned buffers: `spec` holds the
/// intermediate transform, `out` the per-bin power. Both are cleared and
/// refilled; reusing them across calls makes the PSD loop allocation-free.
pub fn power_spectrum_into(
    input: &[Cplx],
    spec: &mut Vec<Cplx>,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    let n = input.len();
    fft_into(input, spec)?;
    out.clear();
    out.extend(spec.iter().map(|b| b.norm_sq() / n as f64));
    Ok(())
}

/// Power spectral density estimate of a block: `|FFT|²/N` per bin, with the
/// DC bin at index 0. No windowing — callers window first if they need it.
/// Thin allocating wrapper over [`power_spectrum_into`].
pub fn power_spectrum(input: &[Cplx]) -> Result<Vec<f64>, DspError> {
    let mut spec = Vec::with_capacity(input.len());
    let mut out = Vec::with_capacity(input.len());
    power_spectrum_into(input, &mut spec, &mut out)?;
    Ok(out)
}

/// Map an FFT bin index to its frequency in Hz for a given sample rate,
/// using the two-sided convention (bins above `N/2` are negative).
pub fn bin_to_freq(bin: usize, n: usize, sample_rate: f64) -> f64 {
    let k = if bin <= n / 2 {
        bin as f64
    } else {
        bin as f64 - n as f64
    };
    k * sample_rate / n as f64
}

/// Map a frequency in Hz (may be negative) to the nearest FFT bin index.
pub fn freq_to_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    let k = (freq / sample_rate * n as f64).round() as i64;
    k.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::energy;
    use proptest::prelude::*;

    #[test]
    fn rejects_non_power_of_two() {
        let mut d = vec![Cplx::ZERO; 3];
        assert_eq!(
            fft_in_place(&mut d, Direction::Forward),
            Err(DspError::NotPowerOfTwo(3))
        );
        let mut e: Vec<Cplx> = vec![];
        assert!(fft_in_place(&mut e, Direction::Forward).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut d = vec![Cplx::ZERO; 8];
        d[0] = Cplx::ONE;
        let spec = fft(&d).unwrap();
        for b in spec {
            assert!((b.re - 1.0).abs() < 1e-12 && b.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let data: Vec<Cplx> = (0..n)
            .map(|i| Cplx::phasor(core::f64::consts::TAU * k as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft(&data).unwrap();
        for (i, b) in spec.iter().enumerate() {
            if i == k {
                assert!((b.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(b.abs() < 1e-9, "leakage at bin {i}: {}", b.abs());
            }
        }
    }

    #[test]
    fn bin_freq_mapping() {
        let n = 8;
        let fs = 8_000.0;
        assert_eq!(bin_to_freq(0, n, fs), 0.0);
        assert_eq!(bin_to_freq(1, n, fs), 1_000.0);
        assert_eq!(bin_to_freq(7, n, fs), -1_000.0);
        assert_eq!(freq_to_bin(1_000.0, n, fs), 1);
        assert_eq!(freq_to_bin(-1_000.0, n, fs), 7);
        assert_eq!(freq_to_bin(0.0, n, fs), 0);
    }

    #[test]
    fn planner_rejects_non_power_of_two() {
        assert!(FftPlanner::new(0).is_err());
        assert!(FftPlanner::new(12).is_err());
        assert!(FftPlanner::new(16).is_ok());
    }

    #[test]
    fn planner_rejects_wrong_length_input() {
        let plan = FftPlanner::new(8).unwrap();
        let mut data = vec![Cplx::ZERO; 16];
        assert!(plan.process(&mut data, Direction::Forward).is_err());
    }

    proptest! {
        /// The planned transform is bit-identical to the direct routine in
        /// both directions — callers may swap one for the other freely.
        #[test]
        fn planner_matches_direct_fft(
            values in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=256),
        ) {
            let n = values.len().next_power_of_two();
            let mut data: Vec<Cplx> = values.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
            data.resize(n, Cplx::ZERO);
            let plan = FftPlanner::new(n).unwrap();
            let direct_fwd = fft(&data).unwrap();
            let planned_fwd = plan.forward(&data).unwrap();
            for (a, b) in direct_fwd.iter().zip(&planned_fwd) {
                prop_assert!(a.re == b.re && a.im == b.im, "forward bins differ");
            }
            let direct_inv = ifft(&direct_fwd).unwrap();
            let planned_inv = plan.inverse(&planned_fwd).unwrap();
            for (a, b) in direct_inv.iter().zip(&planned_inv) {
                prop_assert!(a.re == b.re && a.im == b.im, "inverse bins differ");
            }
        }
    }

    proptest! {
        /// Round trip: ifft(fft(x)) == x.
        #[test]
        fn fft_round_trip(values in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=64)) {
            let n = values.len().next_power_of_two();
            let mut data: Vec<Cplx> = values.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
            data.resize(n, Cplx::ZERO);
            let orig = data.clone();
            let back = ifft(&fft(&data).unwrap()).unwrap();
            for (a, b) in orig.iter().zip(back.iter()) {
                prop_assert!((a.re - b.re).abs() < 1e-6);
                prop_assert!((a.im - b.im).abs() < 1e-6);
            }
        }

        /// Parseval's identity: Σ|x|² == Σ|X|²/N — the mathematical basis of
        /// the paper's TV band-power probe.
        #[test]
        fn parseval_identity(values in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 1..=128)) {
            let n = values.len().next_power_of_two();
            let mut data: Vec<Cplx> = values.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
            data.resize(n, Cplx::ZERO);
            let time_energy = energy(&data);
            let spec = fft(&data).unwrap();
            let freq_energy = energy(&spec) / n as f64;
            let tol = 1e-9 * (1.0 + time_energy);
            prop_assert!((time_energy - freq_energy).abs() < tol,
                "time {time_energy} vs freq {freq_energy}");
        }

        /// Linearity: fft(a·x + y) == a·fft(x) + fft(y).
        #[test]
        fn fft_linearity(
            xs in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 16),
            ys in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 16),
            a in -10.0f64..10.0,
        ) {
            let x: Vec<Cplx> = xs.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
            let y: Vec<Cplx> = ys.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
            let combined: Vec<Cplx> = x.iter().zip(&y).map(|(p, q)| p.scale(a) + *q).collect();
            let fx = fft(&x).unwrap();
            let fy = fft(&y).unwrap();
            let fc = fft(&combined).unwrap();
            for ((p, q), c) in fx.iter().zip(&fy).zip(&fc) {
                let expect = p.scale(a) + *q;
                prop_assert!((expect.re - c.re).abs() < 1e-6);
                prop_assert!((expect.im - c.im).abs() < 1e-6);
            }
        }
    }
}
