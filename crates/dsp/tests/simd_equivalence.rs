//! Bit-level equivalence proofs for the SIMD dispatch arms.
//!
//! Every kernel in `aircal_dsp::simd` — scalar fallback included —
//! computes in the same fixed 8-lane chunked order with the same pairwise
//! reduction tree, so the runtime-detected vector arm must return
//! **bit-identical** results to the scalar arm on every input: any
//! length (including non-multiple-of-8 tails), any slice offset
//! (unaligned starts), and non-finite values (canonical NaN, ±inf, −0.0).
//!
//! The suite compares [`Kernels::scalar`] against [`Kernels::detect`]
//! directly, so it proves the same property on the `AIRCAL_FORCE_SCALAR=1`
//! CI leg as on the native one — `detect()` ignores the env override.
//!
//! Special values: the suite injects canonical NaN, ±inf, and −0.0 and
//! requires results to match bitwise **up to the sign of NaN outputs** —
//! finite values, infinities, and signed zeros must match exactly. The
//! sign carve-out is forced, not chosen: when two NaNs meet at one
//! reduction node (an injected canonical `0x7FF8…` against the `0xFFF8…`
//! indefinite that `inf − inf` creates, or a canonical NaN that a
//! conjugation sign-flipped), x86 keeps the *first operand's* NaN, and
//! LLVM is free to commute a `fadd`/`fmul` — so that one bit cannot be
//! pinned by any implementation, including two builds of the scalar arm
//! alone. Every NaN producible here carries the canonical mantissa, so
//! masking the sign bit is exact, not a tolerance.

use aircal_dsp::simd::Kernels;
use aircal_dsp::Cplx;
use proptest::prelude::*;

fn arms() -> (&'static Kernels, &'static Kernels) {
    (Kernels::scalar(), Kernels::detect())
}

fn cplx_vec(pairs: &[(f64, f64)]) -> Vec<Cplx> {
    pairs.iter().map(|&(re, im)| Cplx::new(re, im)).collect()
}

fn assert_same_bits(label: &str, a: f64, b: f64) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{label}: scalar {a:?} vs dispatched {b:?}"
    );
}

/// The non-finite / signed-zero specials the reduction contract covers.
fn special(sel: u8) -> f64 {
    match sel % 4 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => -0.0,
    }
}

/// The value's bits with the sign masked off NaNs (and only NaNs): the
/// one bit NaN-vs-NaN operand selection leaves to the compiler. See the
/// module docs for why this is exact for every NaN these kernels can
/// produce.
fn nan_sign_masked(v: f64) -> u64 {
    if v.is_nan() {
        v.to_bits() & !(1u64 << 63)
    } else {
        v.to_bits()
    }
}

/// Every remainder class mod 8 (and then some), both arms, all kernels:
/// the deterministic sweep that catches a broken tail path immediately,
/// without waiting on proptest's random lengths.
#[test]
fn all_tail_remainders_bitwise_identical() {
    let (s, d) = arms();
    let xs: Vec<f64> = (0..130).map(|i| (0.7 * i as f64).sin() * 1e3).collect();
    let za: Vec<Cplx> = (0..130).map(|i| Cplx::phasor(0.37 * i as f64)).collect();
    let zb: Vec<Cplx> = (0..130).map(|i| Cplx::phasor(0.11 * i as f64 + 0.5)).collect();
    let taps: Vec<f64> = (0..130).map(|i| 0.5 - 0.5 * (0.05 * i as f64).cos()).collect();
    for n in 0..=xs.len() {
        assert_same_bits("sum_f64", (s.sum_f64)(&xs[..n]), (d.sum_f64)(&xs[..n]));
        assert_same_bits("sum_sq_f64", (s.sum_sq_f64)(&xs[..n]), (d.sum_sq_f64)(&xs[..n]));
        assert_same_bits("energy", (s.energy)(&za[..n]), (d.energy)(&za[..n]));
        let (cs, cd) = ((s.cdot)(&za[..n], &zb[..n]), (d.cdot)(&za[..n], &zb[..n]));
        assert_same_bits("cdot.re", cs.re, cd.re);
        assert_same_bits("cdot.im", cs.im, cd.im);
        let (cs, cd) = ((s.cdot_conj)(&za[..n], &zb[..n]), (d.cdot_conj)(&za[..n], &zb[..n]));
        assert_same_bits("cdot_conj.re", cs.re, cd.re);
        assert_same_bits("cdot_conj.im", cs.im, cd.im);

        let (mut ms, mut md) = (vec![0.0; n], vec![0.0; n]);
        (s.norm_sq_map)(&za[..n], &mut ms);
        (d.norm_sq_map)(&za[..n], &mut md);
        for (a, b) in ms.iter().zip(&md) {
            assert_same_bits("norm_sq_map", *a, *b);
        }
        (s.norm_sq_accum)(&zb[..n], &mut ms);
        (d.norm_sq_accum)(&zb[..n], &mut md);
        for (a, b) in ms.iter().zip(&md) {
            assert_same_bits("norm_sq_accum", *a, *b);
        }

        let (mut ws, mut wd) = (za[..n].to_vec(), za[..n].to_vec());
        (s.cmul_assign)(&mut ws, &zb[..n]);
        (d.cmul_assign)(&mut wd, &zb[..n]);
        for (a, b) in ws.iter().zip(&wd) {
            assert_same_bits("cmul_assign.re", a.re, b.re);
            assert_same_bits("cmul_assign.im", a.im, b.im);
        }
        (s.scale_map)(&za[..n], &taps[..n], &mut ws);
        (d.scale_map)(&za[..n], &taps[..n], &mut wd);
        for (a, b) in ws.iter().zip(&wd) {
            assert_same_bits("scale_map.re", a.re, b.re);
            assert_same_bits("scale_map.im", a.im, b.im);
        }
    }
}

proptest! {
    /// Real reductions agree bitwise over random lengths 0..4096 and
    /// random (unaligned) slice starts.
    #[test]
    fn real_reductions_bitwise(
        values in proptest::collection::vec(-1e6f64..1e6, 0..=4096),
        offset in 0usize..16,
    ) {
        let (s, d) = arms();
        let xs = &values[offset.min(values.len())..];
        prop_assert_eq!((s.sum_f64)(xs).to_bits(), (d.sum_f64)(xs).to_bits());
        prop_assert_eq!((s.sum_sq_f64)(xs).to_bits(), (d.sum_sq_f64)(xs).to_bits());
    }

    /// Complex reductions (burst energy, FIR dot, correlation dot) agree
    /// bitwise, including when the two operand slices have different
    /// lengths (kernels truncate to the shorter).
    #[test]
    fn complex_reductions_bitwise(
        a in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..=1024),
        b in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..=1024),
        offset in 0usize..16,
    ) {
        let (s, d) = arms();
        let za = cplx_vec(&a);
        let zb = cplx_vec(&b);
        let za = &za[offset.min(za.len())..];
        prop_assert_eq!((s.energy)(za).to_bits(), (d.energy)(za).to_bits());
        let (cs, cd) = ((s.cdot)(za, &zb), (d.cdot)(za, &zb));
        prop_assert_eq!(cs.re.to_bits(), cd.re.to_bits());
        prop_assert_eq!(cs.im.to_bits(), cd.im.to_bits());
        let (cs, cd) = ((s.cdot_conj)(za, &zb), (d.cdot_conj)(za, &zb));
        prop_assert_eq!(cs.re.to_bits(), cd.re.to_bits());
        prop_assert_eq!(cs.im.to_bits(), cd.im.to_bits());
    }

    /// Elementwise kernels (|z|² map/accumulate, spectral multiply,
    /// window application) agree bitwise at every output index.
    #[test]
    fn elementwise_kernels_bitwise(
        a in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..=1024),
        b in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..=1024),
        taps in proptest::collection::vec(-2.0f64..2.0, 0..=1024),
    ) {
        let (s, d) = arms();
        let za = cplx_vec(&a);
        let zb = cplx_vec(&b);
        let n = za.len();

        let (mut ms, mut md) = (vec![0.1f64; n], vec![0.1f64; n]);
        (s.norm_sq_map)(&za, &mut ms);
        (d.norm_sq_map)(&za, &mut md);
        prop_assert!(ms.iter().zip(&md).all(|(x, y)| x.to_bits() == y.to_bits()));
        (s.norm_sq_accum)(&zb, &mut ms);
        (d.norm_sq_accum)(&zb, &mut md);
        prop_assert!(ms.iter().zip(&md).all(|(x, y)| x.to_bits() == y.to_bits()));

        let (mut ws, mut wd) = (za.clone(), za.clone());
        (s.cmul_assign)(&mut ws, &zb);
        (d.cmul_assign)(&mut wd, &zb);
        prop_assert!(ws.iter().zip(&wd).all(|(x, y)|
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()));

        let (mut vs, mut vd) = (vec![Cplx::ZERO; n], vec![Cplx::ZERO; n]);
        (s.scale_map)(&za, &taps, &mut vs);
        (d.scale_map)(&za, &taps, &mut vd);
        let m = n.min(taps.len());
        prop_assert!(vs[..m].iter().zip(&vd[..m]).all(|(x, y)|
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()));
    }

    /// Canonical NaN / ±inf / −0.0 injected at random positions propagate
    /// identically (up to NaN sign) through both arms of the real
    /// reductions.
    #[test]
    fn real_special_values_bitwise(
        values in proptest::collection::vec(-1e3f64..1e3, 1..=512),
        inject in proptest::collection::vec((0usize..512, 0u8..4), 1..=8),
        offset in 0usize..16,
    ) {
        let (s, d) = arms();
        let mut xs = values;
        let n = xs.len();
        for &(pos, sel) in &inject {
            xs[pos % n] = special(sel);
        }
        let xs = &xs[offset.min(n)..];
        prop_assert_eq!(nan_sign_masked((s.sum_f64)(xs)), nan_sign_masked((d.sum_f64)(xs)));
        prop_assert_eq!(nan_sign_masked((s.sum_sq_f64)(xs)), nan_sign_masked((d.sum_sq_f64)(xs)));
    }

    /// Canonical NaN / ±inf / −0.0 in either complex operand propagate
    /// identically (up to NaN sign) through energy, both dot kernels, and
    /// the elementwise multiply — the paths a corrupted capture buffer
    /// would exercise.
    #[test]
    fn complex_special_values_bitwise(
        a in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=256),
        b in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..=256),
        inject in proptest::collection::vec((0usize..256, 0u8..4, 0u8..2), 1..=8),
    ) {
        let (s, d) = arms();
        let mut za = cplx_vec(&a);
        let mut zb = cplx_vec(&b);
        for &(pos, sel, part) in &inject {
            let v = special(sel);
            let i = pos % za.len();
            if part == 0 { za[i].re = v } else { za[i].im = v }
            let j = pos % zb.len();
            if part == 0 { zb[j].im = v } else { zb[j].re = v }
        }
        prop_assert_eq!(nan_sign_masked((s.energy)(&za)), nan_sign_masked((d.energy)(&za)));
        let (cs, cd) = ((s.cdot)(&za, &zb), (d.cdot)(&za, &zb));
        prop_assert_eq!(nan_sign_masked(cs.re), nan_sign_masked(cd.re));
        prop_assert_eq!(nan_sign_masked(cs.im), nan_sign_masked(cd.im));
        let (cs, cd) = ((s.cdot_conj)(&za, &zb), (d.cdot_conj)(&za, &zb));
        prop_assert_eq!(nan_sign_masked(cs.re), nan_sign_masked(cd.re));
        prop_assert_eq!(nan_sign_masked(cs.im), nan_sign_masked(cd.im));

        let (mut ws, mut wd) = (za.clone(), za.clone());
        (s.cmul_assign)(&mut ws, &zb);
        (d.cmul_assign)(&mut wd, &zb);
        prop_assert!(ws.iter().zip(&wd).all(|(x, y)|
            nan_sign_masked(x.re) == nan_sign_masked(y.re)
                && nan_sign_masked(x.im) == nan_sign_masked(y.im)));
    }
}
