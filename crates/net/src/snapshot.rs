//! Versioned, checksummed snapshots for crash-safe recovery.
//!
//! A crowd-sourced agent dies and restarts all the time; what must *not*
//! happen is a restarted node silently re-entering the fleet with stale,
//! forked, or bit-rotted state. Snapshots here are a deliberately dumb,
//! serde-free binary format:
//!
//! ```text
//! "ACSN" | version u16 | kind u8 | payload_len u32 | payload … | crc32 u32
//! ```
//!
//! (all integers little-endian; the CRC covers everything before it).
//! Every failure mode is a typed [`SnapshotError`] — a truncated or
//! bit-flipped snapshot must fail restore loudly, never panic, never load.

use crate::adversary::{Adversary, AdversaryKind, AdversaryState};
use crate::node::{NodeAgent, NodeBehavior, ServiceLedger};
use crate::protocol::NodeClaims;
use aircal_aircraft::TrafficSim;
use aircal_env::Scenario;
use aircal_geo::LatLon;
use std::sync::Arc;

/// File magic: **A**ircal **C**alibration **SN**apshot.
pub const MAGIC: [u8; 4] = *b"ACSN";
/// Current codec version.
pub const VERSION: u16 = 1;
/// Snapshot kind: a node agent's durable state.
pub const KIND_NODE: u8 = 1;
/// Snapshot kind: the cloud's registry state.
pub const KIND_REGISTRY: u8 = 2;

/// Why a snapshot failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first four bytes are not `"ACSN"`.
    BadMagic,
    /// The codec version is newer than this binary understands.
    UnsupportedVersion(u16),
    /// The snapshot is of a different kind than the caller asked for.
    WrongKind {
        /// Kind the caller expected.
        expected: u8,
        /// Kind found in the header.
        found: u8,
    },
    /// The byte stream ended before the structure did.
    Truncated,
    /// The CRC32 over header + payload does not match the trailer.
    ChecksumMismatch {
        /// CRC recorded in the snapshot.
        stored: u32,
        /// CRC recomputed over the bytes.
        computed: u32,
    },
    /// Bytes remain after the structure ended.
    TrailingBytes,
    /// A field decoded to a value that cannot be valid.
    Malformed(&'static str),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::WrongKind { expected, found } => {
                write!(f, "wrong snapshot kind: expected {expected}, found {found}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected), bitwise — fast enough for snapshots,
/// zero tables to keep the codec auditable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        crc ^= *b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer / reader primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool")),
        }
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed("utf-8 string"))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed("option tag")),
        }
    }
    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }
}

/// Wrap a payload in the `ACSN` envelope.
fn seal(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 15);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verify the envelope and return the payload slice.
fn unseal(expected_kind: u8, bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(bytes);
    r.take(4)?; // magic
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    let len = r.u32()? as usize;
    let payload_start = r.pos;
    let payload = r.take(len)?;
    let crc_stored = r.u32()?;
    r.done()?;
    let computed = crc32(&bytes[..payload_start + len]);
    if crc_stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            stored: crc_stored,
            computed,
        });
    }
    // Kind is checked after integrity: a corrupted kind byte should read
    // as corruption, not as "wrong kind of valid snapshot".
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Node agent snapshots
// ---------------------------------------------------------------------------

fn write_claims(w: &mut Writer, c: &NodeClaims) {
    w.str(&c.name);
    w.f64(c.position.lat_deg);
    w.f64(c.position.lon_deg);
    w.f64(c.position.alt_m);
    w.bool(c.outdoor);
    w.f64(c.freq_range_hz.0);
    w.f64(c.freq_range_hz.1);
    w.f64(c.price_per_hour);
}

fn read_claims(r: &mut Reader<'_>) -> Result<NodeClaims, SnapshotError> {
    Ok(NodeClaims {
        name: r.str()?,
        position: LatLon::new(r.f64()?, r.f64()?, r.f64()?),
        outdoor: r.bool()?,
        freq_range_hz: (r.f64()?, r.f64()?),
        price_per_hour: r.f64()?,
    })
}

fn write_behavior(w: &mut Writer, b: NodeBehavior) {
    match b {
        NodeBehavior::Honest => w.u8(0),
        NodeBehavior::Fabricator { ghosts } => {
            w.u8(1);
            w.u64(ghosts as u64);
        }
        NodeBehavior::FalseClaims => w.u8(2),
    }
}

fn read_behavior(r: &mut Reader<'_>) -> Result<NodeBehavior, SnapshotError> {
    match r.u8()? {
        0 => Ok(NodeBehavior::Honest),
        1 => Ok(NodeBehavior::Fabricator {
            ghosts: r.u64()? as usize,
        }),
        2 => Ok(NodeBehavior::FalseClaims),
        _ => Err(SnapshotError::Malformed("behavior tag")),
    }
}

fn write_adversary(w: &mut Writer, a: Option<&Adversary>) {
    match a {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            match a.kind {
                AdversaryKind::SpoofAdsb { ghosts } => {
                    w.u8(0);
                    w.u64(ghosts as u64);
                }
                AdversaryKind::ReplayStale => {
                    w.u8(1);
                    w.u64(0);
                }
                AdversaryKind::GainInflate { db } => {
                    w.u8(2);
                    w.f64(db);
                }
                AdversaryKind::FrozenFrontend => {
                    w.u8(3);
                    w.u64(0);
                }
                AdversaryKind::CalibrationPoison { db_per_round } => {
                    w.u8(4);
                    w.f64(db_per_round);
                }
            }
            w.u64(a.seed);
            let st = a.state();
            w.opt_u64(st.stale_survey_seed);
            w.u64(st.surveys_served);
            w.u64(st.cells_served);
            w.u64(st.tv_served);
        }
    }
}

fn read_adversary(r: &mut Reader<'_>) -> Result<Option<Adversary>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let kind_tag = r.u8()?;
            let kind = match kind_tag {
                0 => AdversaryKind::SpoofAdsb {
                    ghosts: r.u64()? as usize,
                },
                1 => {
                    r.u64()?;
                    AdversaryKind::ReplayStale
                }
                2 => AdversaryKind::GainInflate { db: r.f64()? },
                3 => {
                    r.u64()?;
                    AdversaryKind::FrozenFrontend
                }
                4 => AdversaryKind::CalibrationPoison {
                    db_per_round: r.f64()?,
                },
                _ => return Err(SnapshotError::Malformed("adversary kind tag")),
            };
            let seed = r.u64()?;
            let state = AdversaryState {
                stale_survey_seed: r.opt_u64()?,
                surveys_served: r.u64()?,
                cells_served: r.u64()?,
                tv_served: r.u64()?,
            };
            let adv = Adversary::new(kind, seed);
            adv.restore_state(state);
            Ok(Some(adv))
        }
        _ => Err(SnapshotError::Malformed("adversary tag")),
    }
}

/// Serialize a node agent's durable state: claims, behavior, adversary
/// state, and the service ledger. The physical installation (world, site,
/// sky) is ambient and reconstructed by the supervisor on restore.
pub fn snapshot_node(node: &NodeAgent) -> Vec<u8> {
    let mut w = Writer::default();
    write_claims(&mut w, &node.claims);
    write_behavior(&mut w, node.behavior);
    write_adversary(&mut w, node.adversary.as_ref());
    let ledger = node.ledger();
    let hashes = ledger.hashes();
    w.u32(hashes.len() as u32);
    for h in hashes {
        w.u64(*h);
    }
    seal(KIND_NODE, &w.buf)
}

/// Rebuild a node agent from its snapshot, the reconstructed installation,
/// and the shared sky. Fails with a typed error on any corruption.
pub fn restore_node(
    scenario: Scenario,
    sky: Arc<TrafficSim>,
    bytes: &[u8],
) -> Result<NodeAgent, SnapshotError> {
    let payload = unseal(KIND_NODE, bytes)?;
    let mut r = Reader::new(payload);
    let claims = read_claims(&mut r)?;
    let behavior = read_behavior(&mut r)?;
    let adversary = read_adversary(&mut r)?;
    let n = r.u32()? as usize;
    // A length prefix larger than the remaining payload is corruption,
    // not an allocation request.
    if n > payload.len() / 8 + 1 {
        return Err(SnapshotError::Truncated);
    }
    let mut hashes = Vec::with_capacity(n);
    for _ in 0..n {
        hashes.push(r.u64()?);
    }
    r.done()?;
    let mut node = NodeAgent::new(scenario, behavior, sky);
    node.claims = claims;
    node.adversary = adversary;
    node.restore_ledger(ServiceLedger::from_hashes(hashes));
    Ok(node)
}

// ---------------------------------------------------------------------------
// Cloud registry snapshots
// ---------------------------------------------------------------------------

/// One node's durable registry state, as the cloud persists it. The live
/// link, in-flight verdicts, and link statistics are deliberately *not*
/// part of the snapshot — they are reconstructed by re-registering.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryNodeState {
    /// Node name (the registry key).
    pub name: String,
    /// Health-ladder rung, as [`crate::cloud::NodeHealth::severity`].
    pub health: u8,
    /// Last known reachability.
    pub reachable: bool,
    /// Consecutive failed audits (link ladder).
    pub consecutive_failures: u32,
    /// Consecutive audits with data anomalies (data ladder).
    pub consecutive_anomalies: u32,
    /// Commission seed of the node's last completed audit (fingerprint
    /// comparisons are only evidence when the seeds differ).
    pub last_seed: Option<u64>,
    /// Fingerprint of the last completed survey report.
    pub survey_fp: Option<u64>,
    /// Fingerprint of the last completed cellular sweep.
    pub cells_fp: Option<u64>,
    /// Fingerprint of the last completed TV sweep.
    pub tv_fp: Option<u64>,
    /// Per-band power baseline from the node's first clean audit:
    /// `(source tag, label, measured dB)`.
    pub baseline: Vec<(u8, String, f64)>,
    /// Last attested service-history checkpoint `(served, chain)`.
    pub attested: Option<(u64, u64)>,
    /// Why the node was evicted, if it was.
    pub eviction_reason: Option<String>,
}

fn write_node_state(w: &mut Writer, n: &RegistryNodeState) {
    w.str(&n.name);
    w.u8(n.health);
    w.bool(n.reachable);
    w.u32(n.consecutive_failures);
    w.u32(n.consecutive_anomalies);
    w.opt_u64(n.last_seed);
    w.opt_u64(n.survey_fp);
    w.opt_u64(n.cells_fp);
    w.opt_u64(n.tv_fp);
    w.u32(n.baseline.len() as u32);
    for (tag, label, db) in &n.baseline {
        w.u8(*tag);
        w.str(label);
        w.f64(*db);
    }
    match n.attested {
        Some((served, chain)) => {
            w.u8(1);
            w.u64(served);
            w.u64(chain);
        }
        None => w.u8(0),
    }
    match &n.eviction_reason {
        Some(reason) => {
            w.u8(1);
            w.str(reason);
        }
        None => w.u8(0),
    }
}

fn read_node_state(r: &mut Reader<'_>, payload_len: usize) -> Result<RegistryNodeState, SnapshotError> {
    let name = r.str()?;
    let health = r.u8()?;
    if health > 4 {
        return Err(SnapshotError::Malformed("health rung"));
    }
    let reachable = r.bool()?;
    let consecutive_failures = r.u32()?;
    let consecutive_anomalies = r.u32()?;
    let last_seed = r.opt_u64()?;
    let survey_fp = r.opt_u64()?;
    let cells_fp = r.opt_u64()?;
    let tv_fp = r.opt_u64()?;
    let nb = r.u32()? as usize;
    if nb > payload_len {
        return Err(SnapshotError::Truncated);
    }
    let mut baseline = Vec::with_capacity(nb);
    for _ in 0..nb {
        baseline.push((r.u8()?, r.str()?, r.f64()?));
    }
    let attested = match r.u8()? {
        0 => None,
        1 => Some((r.u64()?, r.u64()?)),
        _ => return Err(SnapshotError::Malformed("attested tag")),
    };
    let eviction_reason = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        _ => return Err(SnapshotError::Malformed("eviction tag")),
    };
    Ok(RegistryNodeState {
        name,
        health,
        reachable,
        consecutive_failures,
        consecutive_anomalies,
        last_seed,
        survey_fp,
        cells_fp,
        tv_fp,
        baseline,
        attested,
        eviction_reason,
    })
}

/// Encode one node's registry state as a bare payload (no `ACSN`
/// envelope) — the write-ahead journal embeds these in its `NodeState`
/// records, where the journal's own CRC framing provides integrity.
pub fn encode_node_state(n: &RegistryNodeState) -> Vec<u8> {
    let mut w = Writer::default();
    write_node_state(&mut w, n);
    w.buf
}

/// Decode one node's registry state from a bare payload produced by
/// [`encode_node_state`]. Fails with a typed error on any corruption.
pub fn decode_node_state(bytes: &[u8]) -> Result<RegistryNodeState, SnapshotError> {
    let mut r = Reader::new(bytes);
    let state = read_node_state(&mut r, bytes.len())?;
    r.done()?;
    Ok(state)
}

/// Serialize the cloud's registry state.
pub fn snapshot_registry(nodes: &[RegistryNodeState]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(nodes.len() as u32);
    for n in nodes {
        write_node_state(&mut w, n);
    }
    seal(KIND_REGISTRY, &w.buf)
}

/// Restore the cloud's registry state. Fails with a typed error on any
/// corruption; never panics.
pub fn restore_registry(bytes: &[u8]) -> Result<Vec<RegistryNodeState>, SnapshotError> {
    let payload = unseal(KIND_REGISTRY, bytes)?;
    let mut r = Reader::new(payload);
    let count = r.u32()? as usize;
    if count > payload.len() {
        return Err(SnapshotError::Truncated);
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(read_node_state(&mut r, payload.len())?);
    }
    r.done()?;
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 (the classic CRC-32 check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample_registry() -> Vec<RegistryNodeState> {
        vec![
            RegistryNodeState {
                name: "open-field".into(),
                health: 0,
                reachable: true,
                consecutive_failures: 0,
                consecutive_anomalies: 0,
                last_seed: Some(777),
                survey_fp: Some(0xDEAD_BEEF),
                cells_fp: None,
                tv_fp: Some(1),
                baseline: vec![(0, "Tower 1".into(), -61.25), (1, "KSE-22".into(), -33.5)],
                attested: Some((12, 0x1234_5678_9ABC_DEF0)),
                eviction_reason: None,
            },
            RegistryNodeState {
                name: "ghost-rig".into(),
                health: 4,
                reachable: false,
                consecutive_failures: 2,
                consecutive_anomalies: 4,
                last_seed: None,
                survey_fp: None,
                cells_fp: None,
                tv_fp: None,
                baseline: Vec::new(),
                attested: None,
                eviction_reason: Some("spot-check: 4/4 sampled ICAOs unknown".into()),
            },
        ]
    }

    #[test]
    fn registry_roundtrip() {
        let nodes = sample_registry();
        let bytes = snapshot_registry(&nodes);
        let back = restore_registry(&bytes).unwrap();
        assert_eq!(back, nodes);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let nodes = sample_registry();
        assert_eq!(snapshot_registry(&nodes), snapshot_registry(&nodes));
    }

    #[test]
    fn wrong_kind_is_typed() {
        let bytes = snapshot_registry(&sample_registry());
        let err = unseal(KIND_NODE, &bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongKind {
                expected: KIND_NODE,
                found: KIND_REGISTRY
            }
        );
    }

    #[test]
    fn every_truncation_fails_loudly() {
        let bytes = snapshot_registry(&sample_registry());
        for n in 0..bytes.len() {
            let err = restore_registry(&bytes[..n]);
            assert!(err.is_err(), "truncation to {n} bytes restored silently");
        }
    }

    #[test]
    fn every_bit_flip_fails_loudly() {
        let bytes = snapshot_registry(&sample_registry());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    restore_registry(&bad).is_err(),
                    "bit flip at byte {i} bit {bit} restored silently"
                );
            }
        }
    }

    #[test]
    fn bare_node_state_roundtrips() {
        for n in sample_registry() {
            let bytes = encode_node_state(&n);
            assert_eq!(decode_node_state(&bytes).unwrap(), n);
        }
    }

    #[test]
    fn bare_node_state_truncations_fail_loudly() {
        let n = &sample_registry()[0];
        let bytes = encode_node_state(n);
        for cut in 0..bytes.len() {
            assert!(
                decode_node_state(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes decoded silently"
            );
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = snapshot_registry(&sample_registry());
        bytes[4] = 9; // version low byte
        let err = restore_registry(&bytes).unwrap_err();
        assert_eq!(err, SnapshotError::UnsupportedVersion(9));
    }
}
