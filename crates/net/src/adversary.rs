//! Seeded, deterministic adversarial sensor behaviours.
//!
//! PR 2's chaos layer modelled links that *drop*; this models sensors that
//! *lie*. Each misbehaviour is a concrete data-plane attack from the
//! crowd-sensing literature (Electrosense+, crowdsourced anomaly
//! detection): spoofed ADS-B receptions, replayed stale survey windows,
//! gain-inflated band powers, frozen front ends, and slow calibration
//! poisoning designed to stay under per-step thresholds.
//!
//! Everything is seeded and counter-driven — no wall clock, no global RNG —
//! so an adversarial campaign replays bit-identically, and the adversary's
//! whole mutable state fits in a handful of words (snapshot/restore uses
//! exactly those words).

use aircal_adsb::IcaoAddress;
use aircal_cellular::CellMeasurement;
use aircal_core::survey::SurveyResult;
use aircal_geo::LatLon;
use aircal_tv::TvMeasurement;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// ICAO block used for spoofed aircraft: deliberately outside any
/// ground-truth roster (the traffic simulator allocates well below this).
pub const SPOOFED_ICAO_BASE: u32 = 0xADB000;

/// Which lie a compromised node tells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Inject ADS-B receptions from aircraft that never existed (ICAOs
    /// absent from the tracking service's ground truth).
    SpoofAdsb {
        /// Ghost aircraft injected per survey.
        ghosts: usize,
    },
    /// Serve the *first* survey window forever: the node records one
    /// honest capture, then replays it for every later commissioned seed.
    ReplayStale,
    /// Report band powers inflated by a flat gain error — a poor
    /// installation dressed up as a premium one.
    GainInflate {
        /// Inflation applied to every reported band power, dB.
        db: f64,
    },
    /// Stuck front end: every sweep and survey returns the identical
    /// capture regardless of the commissioned seed.
    FrozenFrontend,
    /// Calibration poisoning: reported band powers drift upward a little
    /// more each round, each step small enough to pass per-step checks.
    CalibrationPoison {
        /// Added drift per completed sweep round, dB.
        db_per_round: f64,
    },
}

impl AdversaryKind {
    /// Short tag for logs, tables, and CLI flags.
    pub fn tag(&self) -> &'static str {
        match self {
            AdversaryKind::SpoofAdsb { .. } => "spoof",
            AdversaryKind::ReplayStale => "replay",
            AdversaryKind::GainInflate { .. } => "gain",
            AdversaryKind::FrozenFrontend => "frozen",
            AdversaryKind::CalibrationPoison { .. } => "poison",
        }
    }

    /// Parse a CLI `--adversary <kind>` value (with default parameters).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "spoof" => Ok(AdversaryKind::SpoofAdsb { ghosts: 12 }),
            "replay" => Ok(AdversaryKind::ReplayStale),
            "gain" => Ok(AdversaryKind::GainInflate { db: 25.0 }),
            "frozen" => Ok(AdversaryKind::FrozenFrontend),
            "poison" => Ok(AdversaryKind::CalibrationPoison { db_per_round: 2.5 }),
            other => Err(format!(
                "unknown adversary kind {other:?} (expected spoof|replay|gain|frozen|poison)"
            )),
        }
    }
}

impl core::fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdversaryKind::SpoofAdsb { ghosts } => write!(f, "spoof ({ghosts} ghosts)"),
            AdversaryKind::ReplayStale => write!(f, "replay stale surveys"),
            AdversaryKind::GainInflate { db } => write!(f, "gain +{db:.0} dB"),
            AdversaryKind::FrozenFrontend => write!(f, "frozen frontend"),
            AdversaryKind::CalibrationPoison { db_per_round } => {
                write!(f, "poison +{db_per_round:.1} dB/round")
            }
        }
    }
}

/// The adversary's entire mutable state — a handful of counters, so a
/// snapshot captures it exactly and a restored node resumes its campaign
/// of lies bit-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryState {
    /// First commissioned survey seed (what `ReplayStale` keeps serving).
    pub stale_survey_seed: Option<u64>,
    /// Surveys served so far.
    pub surveys_served: u64,
    /// Cellular sweeps served so far (drives poison drift).
    pub cells_served: u64,
    /// TV sweeps served so far (drives poison drift).
    pub tv_served: u64,
}

/// A compromised node's misbehaviour engine.
#[derive(Debug, Clone)]
pub struct Adversary {
    /// The lie.
    pub kind: AdversaryKind,
    /// Private adversary seed (spoofed positions derive from it).
    pub seed: u64,
    state: Arc<Mutex<AdversaryState>>,
}

impl Adversary {
    /// Create with empty state.
    pub fn new(kind: AdversaryKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            state: Arc::new(Mutex::new(AdversaryState::default())),
        }
    }

    /// The seed the node actually uses for a commissioned survey. Honest
    /// kinds pass the commissioned seed through; `ReplayStale` pins the
    /// first seed it ever saw; `FrozenFrontend` always uses its own.
    pub fn survey_seed(&self, commissioned: u64) -> u64 {
        let mut st = self.state.lock().expect("adversary state poisoned");
        st.surveys_served += 1;
        match self.kind {
            AdversaryKind::ReplayStale => *st.stale_survey_seed.get_or_insert(commissioned),
            AdversaryKind::FrozenFrontend => self.seed,
            _ => commissioned,
        }
    }

    /// The seed used for a commissioned cells/TV sweep.
    pub fn sweep_seed(&self, commissioned: u64) -> u64 {
        match self.kind {
            AdversaryKind::FrozenFrontend => self.seed,
            _ => commissioned,
        }
    }

    /// Post-process a survey before it goes on the wire.
    pub fn corrupt_survey(&self, commissioned: u64, survey: &mut SurveyResult) {
        if let AdversaryKind::SpoofAdsb { ghosts } = self.kind {
            // Ghost receptions: plausible-looking positions, ICAOs the
            // ground truth has never heard of. Deterministic in
            // (adversary seed, commissioned seed).
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ commissioned.rotate_left(17));
            let origin = survey
                .decoded_positions
                .first()
                .map(|(_, p)| *p)
                .unwrap_or_else(|| LatLon::new(37.87, -122.27, 9_000.0));
            for g in 0..ghosts {
                let icao = IcaoAddress::new(SPOOFED_ICAO_BASE + g as u32);
                let pos = LatLon::new(
                    origin.lat_deg + rng.gen_range(-0.3..0.3),
                    origin.lon_deg + rng.gen_range(-0.3..0.3),
                    rng.gen_range(6_000.0..11_000.0),
                );
                survey.decoded_positions.push((icao, pos));
            }
            survey
                .decoded_positions
                .sort_by_key(|(icao, _)| icao.value());
            survey.total_messages += ghosts * 8;
            survey.unmatched_messages += ghosts * 8;
        }
    }

    /// Post-process a cellular sweep before it goes on the wire
    /// (increments the round counter that drives poison drift).
    pub fn corrupt_cells(&self, cells: &mut [CellMeasurement]) {
        let shift = {
            let mut st = self.state.lock().expect("adversary state poisoned");
            let rounds_before = st.cells_served;
            st.cells_served += 1;
            self.power_shift_db(rounds_before)
        };
        if shift != 0.0 {
            for c in cells.iter_mut() {
                if let Some(r) = c.rsrp_dbm.as_mut() {
                    *r += shift;
                }
            }
        }
    }

    /// Post-process a TV sweep before it goes on the wire.
    pub fn corrupt_tv(&self, tv: &mut [TvMeasurement]) {
        let shift = {
            let mut st = self.state.lock().expect("adversary state poisoned");
            let rounds_before = st.tv_served;
            st.tv_served += 1;
            self.power_shift_db(rounds_before)
        };
        if shift != 0.0 {
            for t in tv.iter_mut() {
                t.power_dbfs += shift;
            }
        }
    }

    fn power_shift_db(&self, rounds_before: u64) -> f64 {
        match self.kind {
            AdversaryKind::GainInflate { db } => db,
            AdversaryKind::CalibrationPoison { db_per_round } => {
                db_per_round * rounds_before as f64
            }
            _ => 0.0,
        }
    }

    /// Copy out the mutable state (for snapshots).
    pub fn state(&self) -> AdversaryState {
        *self.state.lock().expect("adversary state poisoned")
    }

    /// Overwrite the mutable state (for restore).
    pub fn restore_state(&self, state: AdversaryState) {
        *self.state.lock().expect("adversary state poisoned") = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survey_stub() -> SurveyResult {
        SurveyResult {
            points: Vec::new(),
            total_messages: 100,
            unmatched_messages: 0,
            skipped_low_snr: 0,
            decoded_positions: vec![(
                IcaoAddress::new(0xA0_0001),
                LatLon::new(37.9, -122.3, 9_000.0),
            )],
            config: aircal_core::survey::SurveyConfig::quick(),
        }
    }

    #[test]
    fn parse_kinds() {
        assert_eq!(
            AdversaryKind::parse("spoof").unwrap().tag(),
            "spoof"
        );
        for k in ["replay", "gain", "frozen", "poison"] {
            assert_eq!(AdversaryKind::parse(k).unwrap().tag(), k);
        }
        assert!(AdversaryKind::parse("nope").is_err());
    }

    #[test]
    fn spoof_injects_unknown_icaos_deterministically() {
        let a = Adversary::new(AdversaryKind::SpoofAdsb { ghosts: 4 }, 9);
        let mut s1 = survey_stub();
        let mut s2 = survey_stub();
        a.corrupt_survey(123, &mut s1);
        a.corrupt_survey(123, &mut s2);
        assert_eq!(s1.decoded_positions.len(), 5);
        assert_eq!(s1.unmatched_messages, 32);
        let spoofed: Vec<u32> = s1
            .decoded_positions
            .iter()
            .map(|(i, _)| i.value())
            .filter(|v| *v >= SPOOFED_ICAO_BASE)
            .collect();
        assert_eq!(spoofed.len(), 4);
        // Bit-identical for the same (adversary seed, commissioned seed).
        assert_eq!(
            serde_json::to_string(&s1.decoded_positions).unwrap(),
            serde_json::to_string(&s2.decoded_positions).unwrap()
        );
    }

    #[test]
    fn replay_pins_the_first_seed() {
        let a = Adversary::new(AdversaryKind::ReplayStale, 1);
        assert_eq!(a.survey_seed(41), 41);
        assert_eq!(a.survey_seed(42), 41);
        assert_eq!(a.survey_seed(999), 41);
        assert_eq!(a.state().surveys_served, 3);
    }

    #[test]
    fn frozen_always_uses_its_own_seed() {
        let a = Adversary::new(AdversaryKind::FrozenFrontend, 77);
        assert_eq!(a.survey_seed(1), 77);
        assert_eq!(a.sweep_seed(2), 77);
        assert_eq!(a.survey_seed(3), 77);
    }

    #[test]
    fn poison_drifts_per_round_and_gain_is_flat() {
        let p = Adversary::new(AdversaryKind::CalibrationPoison { db_per_round: 2.0 }, 5);
        let mut tv = vec![TvMeasurement {
            station: "KSE".into(),
            rf_channel: 22,
            center_hz: 521e6,
            power_dbfs: -30.0,
            predicted_dbfs: -30.0,
            obstruction_db: 0.0,
        }];
        p.corrupt_tv(&mut tv); // round 0: no drift yet
        assert_eq!(tv[0].power_dbfs, -30.0);
        p.corrupt_tv(&mut tv); // round 1: +2
        assert_eq!(tv[0].power_dbfs, -28.0);
        p.corrupt_tv(&mut tv); // round 2: +4
        assert_eq!(tv[0].power_dbfs, -24.0);

        let g = Adversary::new(AdversaryKind::GainInflate { db: 25.0 }, 5);
        let mut tv2 = tv.clone();
        let before = tv2[0].power_dbfs;
        g.corrupt_tv(&mut tv2);
        g.corrupt_tv(&mut tv2);
        assert_eq!(tv2[0].power_dbfs, before + 50.0);
    }

    #[test]
    fn state_roundtrip() {
        let a = Adversary::new(AdversaryKind::ReplayStale, 1);
        a.survey_seed(10);
        a.survey_seed(11);
        let st = a.state();
        let b = Adversary::new(AdversaryKind::ReplayStale, 1);
        b.restore_state(st);
        // The restored adversary keeps replaying the same stale window.
        assert_eq!(b.survey_seed(999), 10);
        assert_eq!(b.state().surveys_served, 3);
    }
}
