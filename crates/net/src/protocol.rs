//! Node ⇄ cloud wire protocol.
//!
//! Every message is serde-serializable: the in-process transport carries
//! the structs directly, and the integration tests round-trip them through
//! JSON to prove a networked deployment could too.

use aircal_cellular::CellMeasurement;
use aircal_core::survey::{SurveyConfig, SurveyResult};
use aircal_geo::LatLon;
use aircal_tv::TvMeasurement;
use serde::{Deserialize, Serialize};

/// What a node operator *claims* about their installation when they
/// register — exactly the self-reported data the paper wants to verify
/// (cf. CBRS: "every CBRS modem is required to self-report its location,
/// indoor/outdoor status, installation situation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeClaims {
    /// Node name.
    pub name: String,
    /// Claimed position.
    pub position: LatLon,
    /// Claimed outdoor installation?
    pub outdoor: bool,
    /// Claimed usable frequency range, Hz.
    pub freq_range_hz: (f64, f64),
    /// Asking price per hour of sensing, arbitrary units.
    pub price_per_hour: f64,
}

/// Delivery envelope stamped on every request and echoed verbatim on its
/// reply: the link's stable node id plus a per-link monotonic sequence
/// number (the wire-attempt index).
///
/// The envelope is what makes at-least-once delivery safe. Retries,
/// duplicated frames and reordered frames all surface as replies whose
/// `seq` is not the one currently in flight; the cloud's per-node dedup
/// window drops them before any trust or profile effect is applied, so
/// delivery effort never changes calibration state — exactly-once
/// effects over an at-least-once wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Stable per-node identifier (FNV-1a of the registered name).
    pub node_id: u64,
    /// Per-link monotonic sequence number, assigned at send time.
    pub seq: u64,
}

/// A message together with its delivery envelope. The transport carries
/// `Sequenced<Request>` down and `Sequenced<Response>` back; the node
/// service loop echoes the request envelope on the reply unchanged.
///
/// Not serde-derived (the vendored derive shim has no generics
/// support); a networked deployment serializes the [`Envelope`] and the
/// body side by side, both of which round-trip through JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequenced<T> {
    /// Delivery envelope (who, and which attempt).
    pub env: Envelope,
    /// The protocol message itself.
    pub body: T,
}

/// A request from the cloud to a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Describe yourself (returns the operator's claims).
    Describe,
    /// Run an ADS-B directional survey with this configuration and seed.
    RunSurvey {
        /// Survey parameters.
        config: SurveyConfig,
        /// Seed for the capture (the cloud picks it so a cheater cannot
        /// pre-compute plausible data).
        seed: u64,
    },
    /// Run the cellular sweep.
    ScanCells {
        /// Measurement seed.
        seed: u64,
    },
    /// Run the broadcast-TV sweep.
    SweepTv {
        /// Measurement seed.
        seed: u64,
    },
    /// The rented product: monitor a band and return its PSD. The node
    /// tunes to `center_hz`, captures, and reports a Welch PSD.
    MonitorBand {
        /// Tuned center frequency, Hz.
        center_hz: f64,
        /// Capture sample rate / span, Hz.
        span_hz: f64,
        /// Capture seed.
        seed: u64,
    },
    /// Attest to the node's service history: return the hash chain over
    /// the first `upto` measurement requests it ever served (and the
    /// current chain head). The cloud compares the reply against what it
    /// recorded earlier, so a node restarting from a forked or
    /// rolled-back snapshot cannot silently re-enter.
    Attest {
        /// Chain length to attest (clamped to the node's served count).
        upto: u64,
    },
    /// Orderly shutdown.
    Shutdown,
}

impl Request {
    /// Short tag for logs and audit-step reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Describe => "describe",
            Request::RunSurvey { .. } => "survey",
            Request::ScanCells { .. } => "cells",
            Request::SweepTv { .. } => "tv",
            Request::MonitorBand { .. } => "monitor",
            Request::Attest { .. } => "attest",
            Request::Shutdown => "shutdown",
        }
    }

    /// The [`Response::kind`] this request must produce. The transport
    /// uses this to classify a mismatched reply as corrupt/wrong-kind
    /// instead of handing it to the caller.
    pub fn expected_response_kind(&self) -> &'static str {
        match self {
            Request::Describe => "description",
            Request::RunSurvey { .. } => "survey",
            Request::ScanCells { .. } => "cells",
            Request::SweepTv { .. } => "tv",
            Request::MonitorBand { .. } => "psd",
            Request::Attest { .. } => "attestation",
            Request::Shutdown => "bye",
        }
    }
}

/// A node's response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Describe`].
    Description(NodeClaims),
    /// Reply to [`Request::RunSurvey`].
    Survey(SurveyResult),
    /// Reply to [`Request::ScanCells`].
    Cells(Vec<CellMeasurement>),
    /// Reply to [`Request::SweepTv`].
    Tv(Vec<TvMeasurement>),
    /// Reply to [`Request::MonitorBand`]: two-sided PSD bins (linear,
    /// full-scale-relative; DC at index 0) plus the capture parameters.
    Psd {
        /// Tuned center, Hz.
        center_hz: f64,
        /// Span, Hz.
        span_hz: f64,
        /// PSD bins.
        bins: Vec<f64>,
    },
    /// Reply to [`Request::Attest`]: the node's sworn service history.
    Attestation {
        /// Measurement requests served in this node's lifetime.
        served: u64,
        /// Hash-chain head over the full history.
        chain: u64,
        /// Hash-chain value after `min(upto, served)` requests.
        upto_chain: u64,
    },
    /// The node acknowledged shutdown.
    Bye,
}

impl Response {
    /// Short tag for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Description(_) => "description",
            Response::Survey(_) => "survey",
            Response::Cells(_) => "cells",
            Response::Tv(_) => "tv",
            Response::Psd { .. } => "psd",
            Response::Attestation { .. } => "attestation",
            Response::Bye => "bye",
        }
    }
}

// `SurveyResult` intentionally does not implement PartialEq in core; add a
// cheap equality for protocol tests via JSON comparison instead.

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_core::survey::SurveyConfig;

    #[test]
    fn requests_round_trip_json() {
        let reqs = vec![
            Request::Describe,
            Request::RunSurvey {
                config: SurveyConfig::quick(),
                seed: 7,
            },
            Request::ScanCells { seed: 1 },
            Request::SweepTv { seed: 2 },
            Request::MonitorBand {
                center_hz: 545e6,
                span_hz: 8e6,
                seed: 3,
            },
            Request::Attest { upto: 9 },
            Request::Shutdown,
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn claims_round_trip_json() {
        let c = NodeClaims {
            name: "berkeley-roof-01".into(),
            position: LatLon::new(37.87, -122.27, 19.5),
            outdoor: true,
            freq_range_hz: (100e6, 6e9),
            price_per_hour: 1.25,
        };
        let back: NodeClaims =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn every_request_kind_pairs_with_a_response_kind() {
        let reqs = [
            Request::Describe,
            Request::RunSurvey {
                config: SurveyConfig::quick(),
                seed: 0,
            },
            Request::ScanCells { seed: 0 },
            Request::SweepTv { seed: 0 },
            Request::MonitorBand {
                center_hz: 5e8,
                span_hz: 8e6,
                seed: 0,
            },
            Request::Attest { upto: 0 },
            Request::Shutdown,
        ];
        let kinds: Vec<&str> = reqs.iter().map(|r| r.kind()).collect();
        assert_eq!(
            kinds,
            vec!["describe", "survey", "cells", "tv", "monitor", "attest", "shutdown"]
        );
        let expected: Vec<&str> = reqs.iter().map(|r| r.expected_response_kind()).collect();
        assert_eq!(
            expected,
            vec!["description", "survey", "cells", "tv", "psd", "attestation", "bye"]
        );
    }

    #[test]
    fn response_kinds() {
        assert_eq!(Response::Bye.kind(), "bye");
        assert_eq!(Response::Cells(vec![]).kind(), "cells");
        let psd = Response::Psd {
            center_hz: 5e8,
            span_hz: 8e6,
            bins: vec![1.0, 2.0],
        };
        assert_eq!(psd.kind(), "psd");
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&psd).unwrap()).unwrap();
        assert_eq!(back, psd);
    }
}
