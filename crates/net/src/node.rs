//! The node agent: a volunteer's sensor installation, as a process.

use crate::adversary::{Adversary, AdversaryKind};
use crate::protocol::{NodeClaims, Request, Response};
use aircal_aircraft::TrafficSim;
use aircal_cellular::{paper_towers, CellScanner};
use aircal_core::survey::run_survey_indexed;
use aircal_core::trust::fabricate_survey;
use aircal_env::{GeoAccel, Scenario};
use aircal_tv::{paper_tv_towers, TvPowerProbe};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// FNV-1a offset basis: the hash-chain value of an empty service history.
pub(crate) const CHAIN_EMPTY: u64 = 0xcbf2_9ce4_8422_2325;

pub(crate) fn fnv1a_step(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only log of the measurement requests a node has served, folded
/// into a hash chain. The cloud records `(served, chain)` checkpoints via
/// [`Request::Attest`]; a node restarting from a forked or rolled-back
/// history produces a different chain value at the checkpointed length
/// and is caught at reconciliation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceLedger {
    /// `hashes[i]` = chain head after `i + 1` recorded requests.
    hashes: Vec<u64>,
}

impl ServiceLedger {
    /// Record one served measurement request.
    pub fn record(&mut self, kind: &str, seed: u64) {
        let prev = self.chain();
        let h = fnv1a_step(fnv1a_step(prev, kind.as_bytes()), &seed.to_le_bytes());
        self.hashes.push(h);
    }

    /// Measurement requests served so far.
    pub fn served(&self) -> u64 {
        self.hashes.len() as u64
    }

    /// Current chain head ([`CHAIN_EMPTY`] before any request).
    pub fn chain(&self) -> u64 {
        self.hashes.last().copied().unwrap_or(CHAIN_EMPTY)
    }

    /// Chain value after `min(upto, served)` requests.
    pub fn chain_at(&self, upto: u64) -> u64 {
        let n = (upto.min(self.served())) as usize;
        if n == 0 {
            CHAIN_EMPTY
        } else {
            self.hashes[n - 1]
        }
    }

    /// Raw chain history (for snapshots).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Rebuild from a snapshot's chain history.
    pub fn from_hashes(hashes: Vec<u64>) -> Self {
        Self { hashes }
    }
}

/// How the operator behaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeBehavior {
    /// Runs the requested measurements and reports them as-is.
    Honest,
    /// Pads survey reports with invented receptions and ghost aircraft —
    /// the paper's "potential incentive to provide fabricated or incorrect
    /// data in order to receive reimbursement".
    Fabricator {
        /// Ghost aircraft injected per survey.
        ghosts: usize,
    },
    /// Honest measurements, dishonest *claims* (e.g. an indoor install
    /// registered as outdoor to command a higher price).
    FalseClaims,
}

/// One sensor node: an installation plus the operator's behavior and
/// public claims.
#[derive(Debug, Clone)]
pub struct NodeAgent {
    /// The physical installation (world + site).
    pub scenario: Scenario,
    /// Operator behavior.
    pub behavior: NodeBehavior,
    /// What the operator registered with the marketplace.
    pub claims: NodeClaims,
    /// The shared sky (every node hears the same aircraft).
    pub sky: Arc<TrafficSim>,
    /// Per-installation geometry accelerator: spatial index plus path
    /// memo, built once at install time and reused across every request
    /// this node services. Behind a mutex because [`NodeAgent::handle`]
    /// takes `&self`; cloned nodes share the warm cache.
    geo: Arc<Mutex<GeoAccel>>,
    /// Active data-plane adversary, if the node is compromised.
    pub adversary: Option<Adversary>,
    /// Hash-chained log of served measurement requests. Shared by clones,
    /// so a supervisor holding a clone can snapshot the live agent even
    /// after the original moved into a service thread.
    ledger: Arc<Mutex<ServiceLedger>>,
}

impl NodeAgent {
    /// Create a node whose claims match reality (modulo behavior).
    pub fn new(scenario: Scenario, behavior: NodeBehavior, sky: Arc<TrafficSim>) -> Self {
        let claimed_outdoor = match behavior {
            NodeBehavior::FalseClaims => true, // always claims the premium tier
            _ => scenario.is_outdoor,
        };
        let claims = NodeClaims {
            name: scenario.site.name.clone(),
            position: scenario.site.position,
            outdoor: claimed_outdoor,
            freq_range_hz: (100e6, 6e9),
            price_per_hour: if claimed_outdoor { 2.0 } else { 0.8 },
        };
        let geo = Arc::new(Mutex::new(scenario.world.accel()));
        Self {
            scenario,
            behavior,
            claims,
            sky,
            geo,
            adversary: None,
            ledger: Arc::new(Mutex::new(ServiceLedger::default())),
        }
    }

    /// Create a compromised node: honest claims, adversarial data plane.
    pub fn with_adversary(
        scenario: Scenario,
        sky: Arc<TrafficSim>,
        kind: AdversaryKind,
        seed: u64,
    ) -> Self {
        let mut node = Self::new(scenario, NodeBehavior::Honest, sky);
        node.adversary = Some(Adversary::new(kind, seed));
        node
    }

    /// Copy out the service ledger (for attestation checks in tests and
    /// for snapshots).
    pub fn ledger(&self) -> ServiceLedger {
        self.ledger.lock().expect("ledger poisoned").clone()
    }

    fn record_served(&self, kind: &str, seed: u64) {
        self.ledger.lock().expect("ledger poisoned").record(kind, seed);
    }

    /// Overwrite the service ledger (snapshot restore only).
    pub fn restore_ledger(&self, ledger: ServiceLedger) {
        *self.ledger.lock().expect("ledger poisoned") = ledger;
    }

    /// Serialize this node's durable state (claims, behavior, adversary
    /// state, service ledger) into a versioned, checksummed snapshot.
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::snapshot_node(self)
    }

    /// Rebuild a node from its snapshot plus the reconstructed physical
    /// installation. See [`crate::snapshot`] for the failure modes.
    pub fn restore(
        scenario: Scenario,
        sky: Arc<TrafficSim>,
        bytes: &[u8],
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::restore_node(scenario, sky, bytes)
    }

    /// Service one request. `Shutdown` yields [`Response::Bye`]; the
    /// transport layer stops the node afterwards.
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Describe => Response::Description(self.claims.clone()),
            Request::RunSurvey { config, seed } => {
                // An adversary may substitute the commissioned seed (stale
                // replay, frozen capture); the ledger records what was
                // *commissioned*, because that is what the cloud can later
                // cross-examine.
                let eff_seed = self
                    .adversary
                    .as_ref()
                    .map_or(*seed, |a| a.survey_seed(*seed));
                let geo = self.geo.lock().expect("geo accel poisoned");
                let honest = run_survey_indexed(
                    &self.scenario.world,
                    &geo.index,
                    &self.scenario.site,
                    &self.sky,
                    config,
                    eff_seed,
                );
                drop(geo);
                let mut reported = match self.behavior {
                    NodeBehavior::Fabricator { ghosts } => fabricate_survey(&honest, ghosts),
                    _ => honest,
                };
                if let Some(a) = &self.adversary {
                    a.corrupt_survey(*seed, &mut reported);
                }
                self.record_served("survey", *seed);
                Response::Survey(reported)
            }
            Request::ScanCells { seed } => {
                let eff_seed = self
                    .adversary
                    .as_ref()
                    .map_or(*seed, |a| a.sweep_seed(*seed));
                let db = paper_towers(&self.scenario.world.origin);
                let mut geo = self.geo.lock().expect("geo accel poisoned");
                let mut out = Vec::new();
                CellScanner::default().scan_with_geo(
                    &self.scenario.world,
                    &mut geo,
                    &self.scenario.site,
                    &db,
                    eff_seed,
                    &mut out,
                );
                drop(geo);
                if let Some(a) = &self.adversary {
                    a.corrupt_cells(&mut out);
                }
                self.record_served("cells", *seed);
                Response::Cells(out)
            }
            Request::SweepTv { seed } => {
                let eff_seed = self
                    .adversary
                    .as_ref()
                    .map_or(*seed, |a| a.sweep_seed(*seed));
                let towers = paper_tv_towers(&self.scenario.world.origin);
                let mut geo = self.geo.lock().expect("geo accel poisoned");
                let mut out = TvPowerProbe::default().sweep_with_geo(
                    &self.scenario.world,
                    &mut geo,
                    &self.scenario.site,
                    &towers,
                    eff_seed,
                );
                drop(geo);
                if let Some(a) = &self.adversary {
                    a.corrupt_tv(&mut out);
                }
                self.record_served("tv", *seed);
                Response::Tv(out)
            }
            Request::MonitorBand {
                center_hz,
                span_hz,
                seed,
            } => {
                let (bins, center, span) = self.monitor_band(*center_hz, *span_hz, *seed);
                self.record_served("monitor", *seed);
                Response::Psd {
                    center_hz: center,
                    span_hz: span,
                    bins,
                }
            }
            Request::Attest { upto } => {
                let ledger = self.ledger.lock().expect("ledger poisoned");
                Response::Attestation {
                    served: ledger.served(),
                    chain: ledger.chain(),
                    upto_chain: ledger.chain_at(*upto),
                }
            }
            Request::Shutdown => Response::Bye,
        }
    }

    /// Event-driven service entry point: drive this agent under a fault
    /// plan without spawning a service thread.
    ///
    /// Replicates the node-side semantics of
    /// [`crate::transport::spawn_node_with_faults`] exactly: a crashed
    /// daemon exits before touching the request (the counter does not
    /// advance), a hung request is swallowed after being received (the
    /// counter advances but no reply is produced), and everything else is
    /// serviced via [`NodeAgent::handle`]. `served` is the caller-held
    /// count of requests that have reached the node so far — the same
    /// counter the service thread keeps privately.
    pub fn service_offline(
        &self,
        request: &Request,
        faults: &crate::transport::LinkFaults,
        served: &mut u64,
    ) -> ServiceOutcome {
        use crate::transport::NodeVerdict;
        match faults.node_verdict(*served) {
            NodeVerdict::Crashed => ServiceOutcome::Crashed,
            NodeVerdict::Hang => {
                *served += 1;
                ServiceOutcome::Hung
            }
            NodeVerdict::Service => {
                *served += 1;
                ServiceOutcome::Reply(self.handle(request))
            }
        }
    }

    /// The rented product: tune to a band, capture through this node's
    /// actual environment and front end, and return a Welch PSD. Every
    /// broadcast transmitter whose channel overlaps the span contributes
    /// its signal at the power this installation really receives — so a
    /// renter of an obstructed node gets (correctly) pessimistic data.
    fn monitor_band(&self, center_hz: f64, span_hz: f64, seed: u64) -> (Vec<f64>, f64, f64) {
        use aircal_dsp::psd::welch_psd;
        use aircal_dsp::window::Window;
        use aircal_dsp::Cplx;
        use aircal_rfprop::LinkBudget;
        use aircal_sdr::{Frontend, FrontendConfig};
        use rand::SeedableRng;

        let span = span_hz.clamp(1e6, 20e6);
        let n = 16_384usize;
        let mut fe_cfg = FrontendConfig::bladerf_xa9(center_hz, span);
        fe_cfg.full_scale_dbm = -25.0;
        fe_cfg.noise_figure_db = self.scenario.site.noise_figure_db;
        let fe = Frontend::new(fe_cfg);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

        let mut capture = vec![Cplx::ZERO; n];
        let mut geo = self.geo.lock().expect("geo accel poisoned");
        for tower in paper_tv_towers(&self.scenario.world.origin) {
            let f_c = tower.channel.center_hz();
            let offset = f_c - center_hz;
            if offset.abs() > span / 2.0 + 3e6 {
                continue;
            }
            let path =
                geo.profile(&self.scenario.world, &self.scenario.site, &tower.position, f_c);
            let bearing = self.scenario.site.position.bearing_deg(&tower.position);
            let elevation = self.scenario.site.position.elevation_deg(&tower.position);
            let rx_gain = self.scenario.site.antenna.gain_dbi(bearing, elevation);
            let rx_dbm =
                LinkBudget::new(tower.erp_dbm, 0.0, rx_gain).sample_rx_dbm(&path, &mut rng);
            // Synthesize at baseband and heterodyne to the channel offset.
            let base = aircal_tv::synth::synthesize_8vsb(n, span);
            let sig = fe.scale_and_impair(&base, rx_dbm, 0.2, 0);
            for (k, s) in sig.iter().enumerate() {
                capture[k] +=
                    *s * Cplx::phasor(core::f64::consts::TAU * offset / span * k as f64);
            }
        }
        fe.finalize(&mut capture, &mut rng);
        let bins =
            welch_psd(&capture, 512, 0.5, Window::Hann).expect("capture longer than a segment");
        (bins, center_hz, span)
    }
}

/// What happened when a request was driven through
/// [`NodeAgent::service_offline`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOutcome {
    /// The node serviced the request and produced this reply.
    Reply(Response),
    /// The node received the request but wedged mid-service; no reply
    /// will ever come. The request still counts against the served
    /// counter, exactly as in the threaded service loop.
    Hung,
    /// The node's host daemon has crashed; the request was never
    /// received and the served counter does not advance.
    Crashed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_aircraft::TrafficConfig;
    use aircal_core::survey::SurveyConfig;
    use aircal_env::ScenarioKind;

    fn sky(center: aircal_geo::LatLon) -> Arc<TrafficSim> {
        Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 30,
                ..TrafficConfig::paper_default(center)
            },
            77,
        ))
    }

    #[test]
    fn honest_node_reports_true_claims() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let node = NodeAgent::new(s.clone(), NodeBehavior::Honest, sky(s.site.position));
        match node.handle(&Request::Describe) {
            Response::Description(c) => {
                assert!(!c.outdoor);
                assert_eq!(c.name, "indoor");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_offline_mirrors_threaded_fault_semantics() {
        use crate::transport::LinkFaults;
        let s = Scenario::build(ScenarioKind::Indoor);
        let node = NodeAgent::new(s.clone(), NodeBehavior::Honest, sky(s.site.position));
        let faults = LinkFaults {
            hang_on: vec![1],
            crash_after: Some(3),
            ..LinkFaults::default()
        };
        let mut served = 0u64;
        let req = Request::Describe;
        // Request 0 is serviced normally.
        match node.service_offline(&req, &faults, &mut served) {
            ServiceOutcome::Reply(Response::Description(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(served, 1);
        // Request 1 hangs: swallowed after receipt, counter still advances.
        assert_eq!(
            node.service_offline(&req, &faults, &mut served),
            ServiceOutcome::Hung
        );
        assert_eq!(served, 2);
        // Request 2 serviced, then the daemon crashes before request 3.
        assert!(matches!(
            node.service_offline(&req, &faults, &mut served),
            ServiceOutcome::Reply(_)
        ));
        assert_eq!(served, 3);
        assert_eq!(
            node.service_offline(&req, &faults, &mut served),
            ServiceOutcome::Crashed
        );
        assert_eq!(served, 3, "a crashed daemon never receives the request");
    }

    #[test]
    fn false_claims_node_lies_about_install() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let node = NodeAgent::new(s.clone(), NodeBehavior::FalseClaims, sky(s.site.position));
        match node.handle(&Request::Describe) {
            Response::Description(c) => {
                assert!(c.outdoor, "FalseClaims must register as outdoor");
                assert!(c.price_per_hour > 1.0, "and charge the premium rate");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fabricator_pads_survey() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let shared = sky(s.site.position);
        let honest = NodeAgent::new(s.clone(), NodeBehavior::Honest, shared.clone());
        let cheat = NodeAgent::new(
            s.clone(),
            NodeBehavior::Fabricator { ghosts: 50 },
            shared,
        );
        let req = Request::RunSurvey {
            config: SurveyConfig::quick(),
            seed: 3,
        };
        let (h, c) = match (honest.handle(&req), cheat.handle(&req)) {
            (Response::Survey(h), Response::Survey(c)) => (h, c),
            other => panic!("unexpected {other:?}"),
        };
        assert!(c.unmatched_messages > h.unmatched_messages + 400);
        assert!(c.observation_rate() >= h.observation_rate());
    }

    /// Renting a rooftop node yields a hot channel; the same rental from
    /// the indoor node yields tens of dB less in-band power — the renter
    /// sees exactly what the calibration predicted.
    #[test]
    fn monitor_band_reflects_installation_quality() {
        use aircal_dsp::psd::band_power_from_psd;
        let shared = sky(aircal_env::scenarios::testbed_origin());
        let req = Request::MonitorBand {
            center_hz: 473e6, // KST-14, west of the site
            span_hz: 8e6,
            seed: 5,
        };
        let power_at = |kind: ScenarioKind| -> f64 {
            let node = NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, shared.clone());
            match node.handle(&req) {
                Response::Psd { bins, span_hz, .. } => aircal_dsp::power::lin_to_db(
                    band_power_from_psd(&bins, span_hz, -2.7e6, 2.7e6),
                ),
                other => panic!("unexpected {other:?}"),
            }
        };
        let roof = power_at(ScenarioKind::Rooftop);
        let indoor = power_at(ScenarioKind::Indoor);
        assert!(
            roof > indoor + 15.0,
            "rooftop {roof:.1} dBFS vs indoor {indoor:.1} dBFS"
        );
        // And the rooftop actually sees a strong station.
        assert!(roof > -20.0, "rooftop in-band {roof:.1} dBFS");
    }

    #[test]
    fn monitor_empty_band_is_noise_floor() {
        use aircal_dsp::psd::band_power_from_psd;
        let shared = sky(aircal_env::scenarios::testbed_origin());
        let node = NodeAgent::new(
            Scenario::build(ScenarioKind::OpenField),
            NodeBehavior::Honest,
            shared,
        );
        // 150 MHz: no broadcast source modeled there.
        let req = Request::MonitorBand {
            center_hz: 150e6,
            span_hz: 8e6,
            seed: 6,
        };
        match node.handle(&req) {
            Response::Psd { bins, span_hz, .. } => {
                let p = aircal_dsp::power::lin_to_db(band_power_from_psd(
                    &bins, span_hz, -3e6, 3e6,
                ));
                assert!(p < -55.0, "empty band measured {p:.1} dBFS");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn measurement_requests_answered() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let node = NodeAgent::new(s.clone(), NodeBehavior::Honest, sky(s.site.position));
        match node.handle(&Request::ScanCells { seed: 1 }) {
            Response::Cells(ms) => assert_eq!(ms.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
        match node.handle(&Request::SweepTv { seed: 1 }) {
            Response::Tv(ms) => assert_eq!(ms.len(), 6),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(node.handle(&Request::Shutdown).kind(), "bye");
    }
}
