//! The cloud aggregator: remote calibration, claim verification, and the
//! marketplace gate.
//!
//! The cloud never sees the node's environment — only what comes back
//! over the link: the operator's claims, a survey it *commissioned* (with
//! a seed the operator couldn't predict), and the cross-band sweeps. From
//! those plus its own ground truth (the tracking service and the public
//! tower databases) it independently verifies the claims, which is
//! precisely the paper's end goal: "These deductions can be used to
//! independently verify claims about a node installation."
//!
//! Because the fleet is volunteer-run, audits degrade instead of abort:
//! every step is retried under the [`RetryPolicy`], a step that still
//! fails becomes a typed [`StepFailure`] on the verdict (with the trust
//! score penalized for the missing evidence), and repeated failures move
//! a node through the `Healthy → Degraded → Quarantined` lifecycle with
//! re-admission on the next clean audit.

use crate::protocol::{NodeClaims, Request, Response};
use crate::transport::{Link, LinkError, LinkStats, RetryPolicy};
use aircal_aircraft::TrafficSim;
use aircal_cellular::{paper_towers, CellMeasurement, CellScanner};
use aircal_core::classifier::{IndoorOutdoorClassifier, InstallFeatures, InstallVerdict};
use aircal_core::engine::{publish_profile_metrics, publish_survey_metrics};
use aircal_core::fov::{FovEstimate, FovEstimator};
use aircal_core::freqprofile::{BandMeasurement, FrequencyProfile, SourceKind};
use aircal_core::survey::{SurveyConfig, SurveyResult};
use aircal_core::trust::{TrustAuditor, TrustScore};
use aircal_env::{SensorSite, World};
use aircal_geo::LatLon;
use aircal_obs::{AuditEventKind, Obs};
use aircal_tv::{paper_tv_towers, TvMeasurement, TvPowerProbe};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one audit step: the payload, or a typed failure that lets
/// the rest of the audit continue instead of aborting it.
#[derive(Debug, Clone)]
pub enum StepOutcome<T> {
    /// The step completed and returned its payload.
    Complete(T),
    /// The step failed after exhausting the retry budget.
    Failed(StepFailure),
}

impl<T> StepOutcome<T> {
    /// The failure record, if the step failed.
    pub fn failure(&self) -> Option<&StepFailure> {
        match self {
            StepOutcome::Complete(_) => None,
            StepOutcome::Failed(f) => Some(f),
        }
    }
}

/// A failed audit step, as recorded on the verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepFailure {
    /// Which step ("describe", "survey", "cells", "tv").
    pub step: String,
    /// The transport error that exhausted the retry budget.
    pub error: LinkError,
    /// Wire attempts spent on the step.
    pub attempts: u32,
}

/// Node lifecycle state, driven by consecutive failed or partial audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Last audit was clean (reachable, every step complete).
    Healthy,
    /// Recent audits failed or came back partial; still fully audited.
    Degraded,
    /// Too many consecutive failures: excluded from the marketplace and
    /// probed with a cheap `Describe` before any full audit budget is
    /// spent on it. A clean audit re-admits it to `Healthy`.
    Quarantined,
}

impl core::fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeHealth::Healthy => write!(f, "healthy"),
            NodeHealth::Degraded => write!(f, "degraded"),
            NodeHealth::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Thresholds for the health lifecycle.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failed/partial audits before `Degraded`.
    pub degraded_after: u32,
    /// Consecutive failed/partial audits before `Quarantined`.
    pub quarantined_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            degraded_after: 1,
            quarantined_after: 3,
        }
    }
}

/// Everything the cloud concluded about one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationVerdict {
    /// What the operator claimed.
    pub claims: NodeClaims,
    /// Field-of-view estimate from the commissioned survey.
    pub fov: FovEstimate,
    /// Cross-band profile assembled from the sweeps (its
    /// `missing_sources` records sweeps that never arrived).
    pub profile: FrequencyProfile,
    /// The classifier's independent indoor/outdoor call.
    pub install: InstallVerdict,
    /// Whether the operator's indoor/outdoor claim survived verification.
    pub outdoor_claim_verified: bool,
    /// Highest frequency with a usable measurement, Hz.
    pub measured_max_freq_hz: Option<f64>,
    /// Trust audit of the reported data (penalized per missing step).
    pub trust: TrustScore,
    /// Admitted to the marketplace?
    pub approved: bool,
    /// Audit steps that failed after retries (empty = complete audit).
    pub failed_steps: Vec<StepFailure>,
}

impl VerificationVerdict {
    /// Did every audit step deliver its evidence?
    pub fn is_complete(&self) -> bool {
        self.failed_steps.is_empty()
    }
}

/// One row in the cloud's registry.
pub struct NodeRecord {
    /// The node's link.
    pub link: Link,
    /// Last verdict, if audited.
    pub verdict: Option<VerificationVerdict>,
    /// Did the node answer its last audit?
    pub reachable: bool,
    /// Lifecycle state.
    pub health: NodeHealth,
    /// Consecutive audits that failed or came back partial.
    pub consecutive_failures: u32,
}

/// The aggregator.
pub struct Cloud {
    /// Ground truth the cloud can consult independently (the tracking
    /// service's view of the sky).
    pub sky: Arc<TrafficSim>,
    /// Survey configuration commissioned from nodes.
    pub survey_config: SurveyConfig,
    /// Classifier used for claim verification.
    pub classifier: IndoorOutdoorClassifier,
    /// Trust auditor.
    pub auditor: TrustAuditor,
    /// Retry/backoff/timeout policy for every node call.
    pub retry_policy: RetryPolicy,
    /// Health lifecycle thresholds.
    pub health_policy: HealthPolicy,
    /// Observability: wire/audit counters and the structured
    /// [`AuditEvent`](aircal_obs::AuditEvent) log. Disabled by default;
    /// set to [`Obs::recording`] before auditing to collect telemetry.
    /// Everything published here comes from the sequential audit path,
    /// so for a fixed seed the event stream and counters are identical
    /// at any `survey_config.parallelism`.
    pub obs: Obs,
    /// Registered nodes, by name.
    registry: parking_lot::Mutex<std::collections::BTreeMap<String, NodeRecord>>,
}

/// Per-kind wire-counter deltas between two [`LinkStats`] snapshots, in a
/// fixed publication order.
fn wire_delta(before: &LinkStats, after: &LinkStats) -> [(&'static str, u64); 8] {
    [
        ("attempts", after.attempts - before.attempts),
        ("ok", after.ok - before.ok),
        ("retries", after.retries - before.retries),
        ("gave_up", after.gave_up - before.gave_up),
        ("wrong_kind", after.wrong_kind - before.wrong_kind),
        ("dropped", after.dropped - before.dropped),
        ("timeouts", after.timeouts - before.timeouts),
        ("send_failed", after.send_failed - before.send_failed),
    ]
}

/// Publish a step's wire-counter deltas as `wire.*` metrics, and emit a
/// [`AuditEventKind::FaultObserved`] for each fault kind the link
/// absorbed during the step (whether or not retries recovered it).
fn publish_wire(obs: &Obs, node: &str, step: &str, before: &LinkStats, after: &LinkStats) {
    for (kind, n) in wire_delta(before, after) {
        obs.incr(&format!("wire.{kind}"), n);
        let is_fault = matches!(kind, "wrong_kind" | "dropped" | "timeouts" | "send_failed");
        if is_fault && n > 0 {
            obs.emit(
                node,
                AuditEventKind::FaultObserved {
                    step: step.to_string(),
                    fault: kind.to_string(),
                    count: n,
                },
            );
        }
    }
}

/// Run one audit step with retries and turn its result into a
/// [`StepOutcome`], publishing wire metrics and step events into `obs`
/// (tagged with the node's registry `node` name).
fn step<T>(
    link: &mut Link,
    policy: &RetryPolicy,
    obs: &Obs,
    node: &str,
    name: &str,
    request: Request,
    extract: impl FnOnce(Response) -> Option<T>,
) -> StepOutcome<T> {
    obs.emit(
        node,
        AuditEventKind::StepStarted {
            step: name.to_string(),
        },
    );
    obs.incr("audit.steps_total", 1);
    let before = link.stats();
    let outcome = match link.call_with_retry(request, policy) {
        Ok(resp) => {
            let got = resp.kind();
            match extract(resp) {
                Some(v) => StepOutcome::Complete(v),
                // The transport already kind-checks replies; this arm is
                // defensive against a future extract/kind mismatch.
                None => StepOutcome::Failed(StepFailure {
                    step: name.to_string(),
                    error: LinkError::WrongKind {
                        got: got.to_string(),
                    },
                    attempts: (link.stats().attempts - before.attempts) as u32,
                }),
            }
        }
        Err(error) => StepOutcome::Failed(StepFailure {
            step: name.to_string(),
            error,
            attempts: (link.stats().attempts - before.attempts) as u32,
        }),
    };
    let after = link.stats();
    publish_wire(obs, node, name, &before, &after);
    let wire_attempts = after.attempts - before.attempts;
    match &outcome {
        StepOutcome::Complete(_) => obs.emit(
            node,
            AuditEventKind::StepCompleted {
                step: name.to_string(),
                wire_attempts,
            },
        ),
        StepOutcome::Failed(f) => {
            obs.incr("audit.steps_failed", 1);
            obs.emit(
                node,
                AuditEventKind::StepFailed {
                    step: name.to_string(),
                    error: f.error.to_string(),
                    wire_attempts,
                },
            );
        }
    }
    outcome
}

impl Cloud {
    /// Create a cloud with the given ground-truth sky.
    pub fn new(sky: Arc<TrafficSim>) -> Self {
        Self {
            sky,
            survey_config: SurveyConfig::quick(),
            classifier: IndoorOutdoorClassifier::default(),
            auditor: TrustAuditor::default(),
            retry_policy: RetryPolicy::default(),
            health_policy: HealthPolicy::default(),
            obs: Obs::disabled(),
            registry: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Register a node by asking it to describe itself (with retries).
    /// Returns the claimed name, or `None` if unreachable.
    pub fn register(&self, mut link: Link) -> Option<String> {
        let before = link.stats();
        let claims = match link.call_with_retry(Request::Describe, &self.retry_policy) {
            Ok(Response::Description(c)) => c,
            _ => {
                // Unreachable at registration: dropping the link joins
                // the node thread; the operator can be chased offline.
                self.obs.incr("cloud.registrations_failed", 1);
                return None;
            }
        };
        let name = claims.name.clone();
        publish_wire(&self.obs, &name, "register", &before, &link.stats());
        self.obs.incr("cloud.nodes_registered", 1);
        self.registry.lock().insert(
            name.clone(),
            NodeRecord {
                link,
                verdict: None,
                reachable: true,
                health: NodeHealth::Healthy,
                consecutive_failures: 0,
            },
        );
        Some(name)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Audit every registered node with seeds derived from `base_seed`,
    /// updating each node's health state. Returns verdicts sorted by
    /// name (`None` = identity could not even be established).
    pub fn audit_all(&self, base_seed: u64) -> Vec<(String, Option<VerificationVerdict>)> {
        let _span = aircal_obs::span!("audit_all");
        self.obs.incr("audit.rounds", 1);
        let mut registry = self.registry.lock();
        let mut out = Vec::new();
        for (i, (name, record)) in registry.iter_mut().enumerate() {
            let seed = base_seed.wrapping_add(i as u64 * 0x9E37_79B9);
            self.obs
                .emit(name, AuditEventKind::AuditStarted { seed });
            self.obs.incr("audit.nodes_audited", 1);
            // Quarantined nodes get a cheap probe first: no full audit
            // budget until they at least answer a Describe.
            if record.health == NodeHealth::Quarantined
                && matches!(
                    step(
                        &mut record.link,
                        &self.retry_policy,
                        &self.obs,
                        name,
                        "probe",
                        Request::Describe,
                        |r| match r {
                            Response::Description(c) => Some(c),
                            _ => None,
                        },
                    ),
                    StepOutcome::Failed(_)
                )
            {
                record.reachable = false;
                record.consecutive_failures = record.consecutive_failures.saturating_add(1);
                record.verdict = None;
                self.obs.incr("audit.unreachable", 1);
                self.obs.emit(
                    name,
                    AuditEventKind::AuditCompleted {
                        complete: false,
                        approved: false,
                    },
                );
                out.push((name.clone(), None));
                continue;
            }
            let verdict = self.audit_one_named(name, &mut record.link, seed);
            record.reachable = verdict.is_some();
            if verdict.is_none() {
                self.obs.incr("audit.unreachable", 1);
            }
            let clean = verdict.as_ref().is_some_and(|v| v.is_complete());
            let previous = record.health;
            if clean {
                // Re-admission: one clean audit returns the node to full
                // standing regardless of history.
                record.consecutive_failures = 0;
                record.health = NodeHealth::Healthy;
            } else {
                record.consecutive_failures = record.consecutive_failures.saturating_add(1);
                if record.consecutive_failures >= self.health_policy.quarantined_after {
                    record.health = NodeHealth::Quarantined;
                } else if record.consecutive_failures >= self.health_policy.degraded_after {
                    record.health = NodeHealth::Degraded;
                }
            }
            if record.health != previous {
                self.obs.incr("health.transitions", 1);
                self.obs.emit(
                    name,
                    AuditEventKind::HealthTransition {
                        from: previous.to_string(),
                        to: record.health.to_string(),
                        consecutive_failures: record.consecutive_failures,
                    },
                );
            }
            self.obs.emit(
                name,
                AuditEventKind::AuditCompleted {
                    complete: clean,
                    approved: verdict.as_ref().is_some_and(|v| v.approved),
                },
            );
            record.verdict = verdict.clone();
            out.push((name.clone(), verdict));
        }
        out
    }

    /// Audit one node over its link. Returns `None` only when the node's
    /// identity cannot be established (the `Describe` step fails even
    /// with retries); any later step failure degrades to a partial
    /// verdict instead of aborting the audit.
    pub fn audit_one(&self, link: &mut Link, seed: u64) -> Option<VerificationVerdict> {
        self.audit_one_named("", link, seed)
    }

    /// [`Cloud::audit_one`] with a registry name so the audit's telemetry
    /// (step events, trust deltas, wire counters) is tagged per node.
    pub fn audit_one_named(
        &self,
        name: &str,
        link: &mut Link,
        seed: u64,
    ) -> Option<VerificationVerdict> {
        let policy = &self.retry_policy;
        let obs = &self.obs;
        let claims = match step(
            link,
            policy,
            obs,
            name,
            "describe",
            Request::Describe,
            |r| match r {
                Response::Description(c) => Some(c),
                _ => None,
            },
        ) {
            StepOutcome::Complete(c) => c,
            StepOutcome::Failed(_) => return None,
        };
        let survey = step(
            link,
            policy,
            obs,
            name,
            "survey",
            Request::RunSurvey {
                config: self.survey_config,
                seed,
            },
            |r| match r {
                Response::Survey(s) => Some(s),
                _ => None,
            },
        );
        let cells = step(
            link,
            policy,
            obs,
            name,
            "cells",
            Request::ScanCells { seed: seed ^ 0xCE11 },
            |r| match r {
                Response::Cells(c) => Some(c),
                _ => None,
            },
        );
        let tv = step(
            link,
            policy,
            obs,
            name,
            "tv",
            Request::SweepTv { seed: seed ^ 0x7E1E },
            |r| match r {
                Response::Tv(t) => Some(t),
                _ => None,
            },
        );
        Some(self.judge_partial_named(name, claims, survey, cells, tv, seed))
    }

    /// Verification when some evidence may be missing: judge whatever
    /// the node delivered, mark the gaps on the profile, and penalize
    /// the trust score once per missing evidence source.
    pub fn judge_partial(
        &self,
        claims: NodeClaims,
        survey: StepOutcome<SurveyResult>,
        cells: StepOutcome<Vec<CellMeasurement>>,
        tv: StepOutcome<Vec<TvMeasurement>>,
        seed: u64,
    ) -> VerificationVerdict {
        self.judge_partial_named("", claims, survey, cells, tv, seed)
    }

    /// [`Cloud::judge_partial`] with a registry name so the round's
    /// [`AuditEventKind::TrustDelta`] is tagged per node.
    pub fn judge_partial_named(
        &self,
        name: &str,
        claims: NodeClaims,
        survey: StepOutcome<SurveyResult>,
        cells: StepOutcome<Vec<CellMeasurement>>,
        tv: StepOutcome<Vec<TvMeasurement>>,
        seed: u64,
    ) -> VerificationVerdict {
        let mut failures = Vec::new();
        let survey = match survey {
            StepOutcome::Complete(s) => s,
            StepOutcome::Failed(f) => {
                failures.push(f);
                // An empty survey: no points, no messages — the trust
                // auditor's "no evidence" branch handles it.
                SurveyResult {
                    points: Vec::new(),
                    total_messages: 0,
                    unmatched_messages: 0,
                    skipped_low_snr: 0,
                    decoded_positions: Vec::new(),
                    config: self.survey_config,
                }
            }
        };
        let (cells, cells_missing) = match cells {
            StepOutcome::Complete(c) => (c, false),
            StepOutcome::Failed(f) => {
                failures.push(f);
                (Vec::new(), true)
            }
        };
        let (tv, tv_missing) = match tv {
            StepOutcome::Complete(t) => (t, false),
            StepOutcome::Failed(f) => {
                failures.push(f);
                (Vec::new(), true)
            }
        };

        publish_survey_metrics(&self.obs, &survey);
        let mut verdict = self.judge(claims, survey, cells, tv, seed);
        if cells_missing {
            verdict.profile.missing_sources.push(SourceKind::Cellular);
        }
        if tv_missing {
            verdict
                .profile
                .missing_sources
                .push(SourceKind::BroadcastTv);
        }
        publish_profile_metrics(&self.obs, &verdict.profile);
        let unpenalized = verdict.trust.score;
        for f in &failures {
            verdict.trust.penalize_missing_evidence(&f.step);
        }
        // Approval must reflect the penalized trust score.
        verdict.approved = verdict.trust.is_trustworthy() && verdict.outdoor_claim_verified;
        self.obs.emit(
            name,
            AuditEventKind::TrustDelta {
                score: verdict.trust.score,
                delta: verdict.trust.score - unpenalized,
                reasons: failures.iter().map(|f| f.step.clone()).collect(),
            },
        );
        verdict.failed_steps = failures;
        verdict
    }

    /// Pure verification logic (no I/O): turn reported measurements into a
    /// verdict. Public so the tests and the example can drive it directly.
    pub fn judge(
        &self,
        claims: NodeClaims,
        survey: SurveyResult,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> VerificationVerdict {
        let fov = FovEstimator::default().estimate(&survey.points);
        let profile = self.assemble_profile(&claims.position, cells, tv, seed);
        let features = InstallFeatures::extract(&survey, &fov, &profile);
        let install = self.classifier.classify(&features);
        let trust = self
            .auditor
            .audit(&survey, &profile, &self.sky, fov.open_fraction());
        let outdoor_claim_verified = claims.outdoor == install.outdoor;
        let approved = trust.is_trustworthy() && outdoor_claim_verified;
        VerificationVerdict {
            measured_max_freq_hz: profile.max_usable_freq_hz(),
            claims,
            fov,
            install,
            outdoor_claim_verified,
            trust,
            approved,
            profile,
            failed_steps: Vec::new(),
        }
    }

    /// Build the band profile: reported measurements vs the cloud's own
    /// clear-sky expectation (computed from the public tower databases at
    /// the claimed coordinates — no access to the node's environment).
    fn assemble_profile(
        &self,
        claimed_position: &LatLon,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> FrequencyProfile {
        let mut origin = *claimed_position;
        origin.alt_m = 0.0;
        let clear_world = World::open(origin);
        let clear_site = SensorSite::outdoor("expectation", *claimed_position);
        let cell_db = paper_towers(&origin);
        let tv_db = paper_tv_towers(&origin);
        let clear_cells = CellScanner::default().scan(&clear_world, &clear_site, &cell_db, seed ^ 1);
        let clear_tv = TvPowerProbe::default().sweep(&clear_world, &clear_site, &tv_db, seed ^ 1);

        let mut bands = Vec::new();
        for (r, c) in cells.iter().zip(&clear_cells) {
            bands.push(BandMeasurement {
                label: r.tower_name.clone(),
                freq_hz: r.freq_hz,
                source: SourceKind::Cellular,
                measured_db: r.rsrp_dbm,
                expected_clear_db: c.rsrp_dbm.unwrap_or(-120.0),
            });
        }
        for (r, c) in tv.iter().zip(&clear_tv) {
            bands.push(BandMeasurement {
                label: r.station.clone(),
                freq_hz: r.center_hz,
                source: SourceKind::BroadcastTv,
                measured_db: Some(r.power_dbfs),
                expected_clear_db: c.power_dbfs,
            });
        }
        bands.sort_by(|a, b| a.freq_hz.partial_cmp(&b.freq_hz).unwrap());
        FrequencyProfile {
            bands,
            missing_sources: Vec::new(),
        }
    }

    /// The marketplace: approved, non-quarantined nodes, cheapest first.
    pub fn marketplace(&self) -> Vec<(String, f64, f64)> {
        let registry = self.registry.lock();
        let mut listings: Vec<(String, f64, f64)> = registry
            .iter()
            .filter(|(_, rec)| rec.health != NodeHealth::Quarantined)
            .filter_map(|(name, rec)| {
                let v = rec.verdict.as_ref()?;
                v.approved.then(|| {
                    (
                        name.clone(),
                        v.claims.price_per_hour,
                        v.trust.score,
                    )
                })
            })
            .collect();
        listings.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        listings
    }

    /// Health lifecycle snapshot, sorted by name:
    /// `(name, state, consecutive failed/partial audits)`.
    pub fn health_report(&self) -> Vec<(String, NodeHealth, u32)> {
        self.registry
            .lock()
            .iter()
            .map(|(name, rec)| (name.clone(), rec.health, rec.consecutive_failures))
            .collect()
    }

    /// Per-node wire counters, sorted by name.
    pub fn link_stats(&self) -> Vec<(String, LinkStats)> {
        self.registry
            .lock()
            .iter()
            .map(|(name, rec)| (name.clone(), rec.link.stats()))
            .collect()
    }

    /// Shut down every registered node.
    pub fn shutdown(self) {
        let mut registry = self.registry.into_inner();
        while let Some((_, record)) = registry.pop_first() {
            record.link.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeAgent, NodeBehavior};
    use crate::transport::{spawn_node, spawn_node_with_faults, LinkFaults};
    use aircal_aircraft::TrafficConfig;
    use aircal_env::{Scenario, ScenarioKind};

    fn sky() -> Arc<TrafficSim> {
        let center = aircal_env::scenarios::testbed_origin();
        Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 40,
                ..TrafficConfig::paper_default(center)
            },
            500,
        ))
    }

    fn spawn(kind: ScenarioKind, behavior: NodeBehavior, sky: &Arc<TrafficSim>, seed: u64) -> Link {
        spawn_node(
            NodeAgent::new(Scenario::build(kind), behavior, sky.clone()),
            0.0,
            seed,
        )
    }

    #[test]
    fn honest_outdoor_node_approved() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::OpenField, NodeBehavior::Honest, &sky, 1))
            .unwrap();
        let verdicts = cloud.audit_all(600);
        let (_, v) = &verdicts[0];
        let v = v.as_ref().expect("reachable");
        assert!(v.outdoor_claim_verified);
        assert!(v.approved, "verdict {v:?}");
        assert!(v.is_complete());
        assert_eq!(cloud.marketplace().len(), 1);
        let health = cloud.health_report();
        assert_eq!(health[0].1, NodeHealth::Healthy);
        cloud.shutdown();
    }

    #[test]
    fn false_outdoor_claim_caught() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::Indoor, NodeBehavior::FalseClaims, &sky, 2))
            .unwrap();
        let verdicts = cloud.audit_all(601);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(v.claims.outdoor, "the lie");
        assert!(!v.install.outdoor, "the independent call");
        assert!(!v.outdoor_claim_verified);
        assert!(!v.approved);
        assert!(cloud.marketplace().is_empty());
        cloud.shutdown();
    }

    #[test]
    fn fabricator_rejected_by_trust() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(
                ScenarioKind::OpenField,
                NodeBehavior::Fabricator { ghosts: 120 },
                &sky,
                3,
            ))
            .unwrap();
        let verdicts = cloud.audit_all(602);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(!v.trust.flags.is_empty(), "fabrication must be flagged");
        assert!(!v.approved);
        cloud.shutdown();
    }

    #[test]
    fn mixed_fleet_marketplace() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        for (kind, behavior, seed) in [
            (ScenarioKind::OpenField, NodeBehavior::Honest, 10u64),
            (ScenarioKind::Rooftop, NodeBehavior::Honest, 11),
            (ScenarioKind::Indoor, NodeBehavior::Honest, 12),
            (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims, 13),
        ] {
            cloud.register(spawn(kind, behavior, &sky, seed)).unwrap();
        }
        assert_eq!(cloud.node_count(), 4);
        let verdicts = cloud.audit_all(603);
        assert_eq!(verdicts.len(), 4);

        let market = cloud.marketplace();
        let names: Vec<&str> = market.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"open-field"), "market {names:?}");
        assert!(names.contains(&"rooftop"), "market {names:?}");
        assert!(
            !names.contains(&"behind-window"),
            "false claimant must be excluded: {names:?}"
        );
        // The honest indoor node is honest about being indoor: the claim
        // verifies; whether it is *approved* depends on its trust score.
        for v in verdicts.iter().filter_map(|(_, v)| v.as_ref()) {
            if v.claims.name == "indoor" {
                assert!(v.outdoor_claim_verified);
            }
        }
        cloud.shutdown();
    }

    #[test]
    fn unreachable_node_reported() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        // The node daemon crashed before ever answering: registration
        // fails fast (SendFailed is not retried) and cleanly.
        let dead_link = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                crash_after: Some(0),
                ..LinkFaults::none()
            },
            4,
        );
        assert!(cloud.register(dead_link).is_none());
        assert_eq!(cloud.node_count(), 0);
        cloud.shutdown();
    }

    /// One node's daemon dies mid-audit; its neighbors' audits complete
    /// untouched and the victim still gets a partial verdict.
    #[test]
    fn node_dropping_mid_audit_leaves_neighbors_clean() {
        let sky = sky();
        let mut cloud = Cloud::new(sky.clone());
        cloud.retry_policy = RetryPolicy::quick();
        cloud
            .register(spawn(ScenarioKind::OpenField, NodeBehavior::Honest, &sky, 20))
            .unwrap();
        cloud
            .register(spawn(ScenarioKind::Rooftop, NodeBehavior::Honest, &sky, 21))
            .unwrap();
        // Daemon survives registration (1 request) + describe + survey,
        // then crashes: the cells and tv steps fail with SendFailed.
        let crasher = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::Indoor),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            22,
        );
        cloud.register(crasher).unwrap();

        let verdicts = cloud.audit_all(604);
        assert_eq!(verdicts.len(), 3);
        for (name, v) in &verdicts {
            let v = v.as_ref().expect("every node answered Describe");
            if name == "indoor" {
                assert!(!v.is_complete(), "crasher must be partial");
                let failed: Vec<&str> =
                    v.failed_steps.iter().map(|f| f.step.as_str()).collect();
                assert_eq!(failed, vec!["cells", "tv"]);
                assert!(v
                    .failed_steps
                    .iter()
                    .all(|f| f.error == LinkError::SendFailed));
                assert!(v
                    .trust
                    .flags
                    .iter()
                    .any(|f| f.contains("missing evidence")));
            } else {
                assert!(v.is_complete(), "{name} must be untouched");
            }
        }
        let health = cloud.health_report();
        let by_name = |n: &str| health.iter().find(|(name, _, _)| name == n).unwrap().1;
        assert_eq!(by_name("indoor"), NodeHealth::Degraded);
        assert_eq!(by_name("open-field"), NodeHealth::Healthy);
        assert_eq!(by_name("rooftop"), NodeHealth::Healthy);
        cloud.shutdown();
    }

    /// Repeated failures quarantine a node (and drop it from the
    /// marketplace); a clean audit re-admits it.
    #[test]
    fn quarantine_and_readmission_lifecycle() {
        let sky = sky();
        let mut cloud = Cloud::new(sky.clone());
        // Single attempt + tight tv budget so each hung sweep costs one
        // second, not a full retry ladder (retries are covered by the
        // transport tests; this test is about the lifecycle).
        cloud.retry_policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::quick()
        };
        cloud.retry_policy.budgets.tv = std::time::Duration::from_secs(1);
        // Registration is request 0; audits are 4 node-side requests
        // each (describe, survey, cells, tv). Hang the tv request of the
        // first three audits (indices 4, 8, 12), then behave.
        let flaky = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                hang_on: vec![4, 8, 12],
                ..LinkFaults::none()
            },
            30,
        );
        cloud.register(flaky).unwrap();

        for (round, expected) in [
            (1u64, NodeHealth::Degraded),
            (2, NodeHealth::Degraded),
            (3, NodeHealth::Quarantined),
        ] {
            let verdicts = cloud.audit_all(700 + round);
            let v = verdicts[0].1.as_ref().expect("describe still answers");
            assert!(!v.is_complete(), "round {round} must be partial");
            assert_eq!(cloud.health_report()[0].1, expected, "round {round}");
        }
        assert!(
            cloud.marketplace().is_empty(),
            "quarantined nodes are not rentable"
        );
        // Probation: the cheap probe answers, the full audit is clean,
        // and the node is re-admitted.
        let verdicts = cloud.audit_all(704);
        let v = verdicts[0].1.as_ref().expect("re-admitted");
        assert!(v.is_complete());
        let (_, health, failures) = cloud.health_report()[0].clone();
        assert_eq!(health, NodeHealth::Healthy);
        assert_eq!(failures, 0);
        assert!(!cloud.marketplace().is_empty(), "rentable again");
        cloud.shutdown();
    }
}
