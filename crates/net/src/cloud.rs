//! The cloud aggregator: remote calibration, claim verification, and the
//! marketplace gate.
//!
//! The cloud never sees the node's environment — only what comes back
//! over the link: the operator's claims, a survey it *commissioned* (with
//! a seed the operator couldn't predict), and the cross-band sweeps. From
//! those plus its own ground truth (the tracking service and the public
//! tower databases) it independently verifies the claims, which is
//! precisely the paper's end goal: "These deductions can be used to
//! independently verify claims about a node installation."
//!
//! Because the fleet is volunteer-run, audits degrade instead of abort:
//! every step is retried under the [`RetryPolicy`], a step that still
//! fails becomes a typed [`StepFailure`] on the verdict (with the trust
//! score penalized for the missing evidence), and repeated failures move
//! a node through the `Healthy → Degraded → Quarantined` lifecycle with
//! re-admission on the next clean audit.

use crate::protocol::{NodeClaims, Request, Response};
use crate::snapshot::{decode_node_state, encode_node_state, RegistryNodeState, SnapshotError};
use crate::transport::{Link, LinkError, LinkStats, RetryPolicy};
use aircal_core::wal::{Journal, WalRecord};
use aircal_aircraft::TrafficSim;
use aircal_cellular::{paper_towers, CellMeasurement, CellScanner};
use aircal_core::classifier::{IndoorOutdoorClassifier, InstallFeatures, InstallVerdict};
use aircal_core::engine::{publish_profile_metrics, publish_survey_metrics};
use aircal_core::fov::{FovEstimate, FovEstimator};
use aircal_core::freqprofile::{BandMeasurement, FrequencyProfile, SourceKind};
use aircal_core::robust::{self, FusedProfile, FusionRule};
use aircal_core::survey::{SurveyConfig, SurveyResult};
use aircal_core::trust::{TrustAuditor, TrustScore};
use aircal_env::{SensorSite, World};
use aircal_geo::LatLon;
use aircal_obs::{AuditEventKind, Obs};
use aircal_tv::{paper_tv_towers, TvMeasurement, TvPowerProbe};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one audit step: the payload, or a typed failure that lets
/// the rest of the audit continue instead of aborting it.
#[derive(Debug, Clone)]
pub enum StepOutcome<T> {
    /// The step completed and returned its payload.
    Complete(T),
    /// The step failed after exhausting the retry budget.
    Failed(StepFailure),
}

impl<T> StepOutcome<T> {
    /// The failure record, if the step failed.
    pub fn failure(&self) -> Option<&StepFailure> {
        match self {
            StepOutcome::Complete(_) => None,
            StepOutcome::Failed(f) => Some(f),
        }
    }
}

/// A failed audit step, as recorded on the verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepFailure {
    /// Which step ("describe", "survey", "cells", "tv").
    pub step: String,
    /// The transport error that exhausted the retry budget.
    pub error: LinkError,
    /// Wire attempts spent on the step.
    pub attempts: u32,
}

/// Node lifecycle state: the quarantine ladder. Two drivers move a node
/// down it — consecutive failed/partial audits (the *link* ladder, PR 2)
/// and consecutive data-plane anomalies (the *Byzantine* ladder); the
/// effective state is whichever driver currently demands the more severe
/// rung. `Evicted` is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Last audit was clean (reachable, every step complete, no
    /// anomalies).
    Healthy,
    /// A data anomaly was detected this round; fully audited, still
    /// rentable, but under scrutiny.
    Suspect,
    /// Recent audits failed, came back partial, or repeated an anomaly;
    /// still fully audited.
    Degraded,
    /// Too many consecutive failures or anomalies: excluded from the
    /// marketplace and probed with a cheap `Describe` before any full
    /// audit budget is spent on it. A clean audit re-admits it.
    Quarantined,
    /// Terminal: the anomaly ladder ran out. Never audited again, never
    /// rentable again.
    Evicted,
}

impl NodeHealth {
    /// Rung on the ladder (0 = healthy … 4 = evicted); also the byte the
    /// registry snapshot stores.
    pub fn severity(&self) -> u8 {
        match self {
            NodeHealth::Healthy => 0,
            NodeHealth::Suspect => 1,
            NodeHealth::Degraded => 2,
            NodeHealth::Quarantined => 3,
            NodeHealth::Evicted => 4,
        }
    }

    /// Inverse of [`NodeHealth::severity`].
    pub fn from_severity(rung: u8) -> Option<NodeHealth> {
        match rung {
            0 => Some(NodeHealth::Healthy),
            1 => Some(NodeHealth::Suspect),
            2 => Some(NodeHealth::Degraded),
            3 => Some(NodeHealth::Quarantined),
            4 => Some(NodeHealth::Evicted),
            _ => None,
        }
    }

    /// The more severe of two rungs.
    pub fn max_severity(self, other: NodeHealth) -> NodeHealth {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl core::fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeHealth::Healthy => write!(f, "healthy"),
            NodeHealth::Suspect => write!(f, "suspect"),
            NodeHealth::Degraded => write!(f, "degraded"),
            NodeHealth::Quarantined => write!(f, "quarantined"),
            NodeHealth::Evicted => write!(f, "evicted"),
        }
    }
}

/// Thresholds for the health lifecycle.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failed/partial audits before `Degraded`.
    pub degraded_after: u32,
    /// Consecutive failed/partial audits before `Quarantined`.
    pub quarantined_after: u32,
    /// Consecutive anomalous audits before `Suspect`.
    pub suspect_anomalies: u32,
    /// Consecutive anomalous audits before `Degraded`.
    pub degraded_anomalies: u32,
    /// Consecutive anomalous audits before `Quarantined`.
    pub quarantined_anomalies: u32,
    /// Consecutive anomalous audits before `Evicted` (terminal).
    pub evicted_anomalies: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            degraded_after: 1,
            quarantined_after: 3,
            suspect_anomalies: 1,
            degraded_anomalies: 2,
            quarantined_anomalies: 3,
            evicted_anomalies: 4,
        }
    }
}

impl HealthPolicy {
    /// The rung the link ladder demands for a given run of consecutive
    /// failed/partial audits.
    pub fn link_rung(&self, consecutive_failures: u32) -> NodeHealth {
        if consecutive_failures >= self.quarantined_after {
            NodeHealth::Quarantined
        } else if consecutive_failures >= self.degraded_after {
            NodeHealth::Degraded
        } else {
            NodeHealth::Healthy
        }
    }

    /// The rung the Byzantine ladder demands for a given run of
    /// consecutive anomalous audits.
    pub fn anomaly_rung(&self, consecutive_anomalies: u32) -> NodeHealth {
        if consecutive_anomalies >= self.evicted_anomalies {
            NodeHealth::Evicted
        } else if consecutive_anomalies >= self.quarantined_anomalies {
            NodeHealth::Quarantined
        } else if consecutive_anomalies >= self.degraded_anomalies {
            NodeHealth::Degraded
        } else if consecutive_anomalies >= self.suspect_anomalies {
            NodeHealth::Suspect
        } else {
            NodeHealth::Healthy
        }
    }
}

/// Event-driven form of the registry's per-node health lifecycle: the
/// counters [`Cloud::audit_all`] keeps inside each [`NodeRecord`],
/// extracted so a discrete-event driver (`aircal-sim`) can run the same
/// ladder one audit outcome at a time, with no links or threads. Both
/// counter runs feed the same [`HealthPolicy`] rungs as the threaded
/// registry, the effective state is the more severe of the two, and
/// `Evicted` is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthLadder {
    /// Consecutive failed/partial audits (the link ladder).
    pub consecutive_failures: u32,
    /// Consecutive anomalous audits (the Byzantine ladder).
    pub consecutive_anomalies: u32,
    health: NodeHealth,
}

impl Default for HealthLadder {
    fn default() -> Self {
        Self {
            consecutive_failures: 0,
            consecutive_anomalies: 0,
            health: NodeHealth::Healthy,
        }
    }
}

impl HealthLadder {
    /// Fold one audit outcome into the ladder and return the node's new
    /// effective health. `link_ok` is "the audit reached the node and
    /// completed"; `anomalous` is "the data plane looked Byzantine".
    pub fn record(&mut self, policy: &HealthPolicy, link_ok: bool, anomalous: bool) -> NodeHealth {
        if self.health == NodeHealth::Evicted {
            return self.health;
        }
        if link_ok {
            self.consecutive_failures = 0;
        } else {
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        }
        if anomalous {
            self.consecutive_anomalies = self.consecutive_anomalies.saturating_add(1);
        } else {
            self.consecutive_anomalies = 0;
        }
        self.health = policy
            .link_rung(self.consecutive_failures)
            .max_severity(policy.anomaly_rung(self.consecutive_anomalies));
        self.health
    }

    /// The node's current effective health.
    pub fn health(&self) -> NodeHealth {
        self.health
    }
}

/// Thresholds for the cross-sensor consistency checks. Every check is
/// *hard-evidence*: its false-positive rate on honest (if obstructed)
/// installations is negligible, so honest nodes never ride the Byzantine
/// ladder. Soft disagreement (fusion residual) only docks trust.
#[derive(Debug, Clone, Copy)]
pub struct ConsistencyPolicy {
    /// Estimator for the fleet's fused frequency profile.
    pub fusion_rule: FusionRule,
    /// Reported ICAOs spot-checked against ground truth per audit.
    pub spot_check_k: usize,
    /// Minimum unknown ICAOs among the sampled ones to call spoofing.
    pub spot_check_min_unknown: usize,
    /// Minimum unknown *fraction* among the sampled ICAOs.
    pub spot_check_min_frac: f64,
    /// A band measured this far above the clear-sky expectation is
    /// physically implausible (fading upside is single-digit dB).
    pub overshoot_db: f64,
    /// Bands over [`ConsistencyPolicy::overshoot_db`] to call inflation.
    pub overshoot_min_bands: usize,
    /// Mean drift vs the node's own first-clean-audit baseline that
    /// calls calibration poisoning, dB.
    pub drift_db: f64,
    /// Fusion residual beyond which trust is docked (no ladder action).
    pub residual_penalty_db: f64,
}

impl Default for ConsistencyPolicy {
    fn default() -> Self {
        Self {
            fusion_rule: FusionRule::Median,
            spot_check_k: 8,
            spot_check_min_unknown: 2,
            spot_check_min_frac: 0.25,
            overshoot_db: 12.0,
            overshoot_min_bands: 3,
            drift_db: 6.0,
            residual_penalty_db: 35.0,
        }
    }
}

/// FNV-1a fingerprints of a round's completed report payloads (over their
/// canonical JSON). Two rounds commissioned with *different* seeds that
/// produce the *same* fingerprint are hard evidence of a replayed or
/// frozen capture — an honest front end resamples its noise every time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportFingerprints {
    /// Fingerprint of the survey report (`None` if the step failed).
    pub survey: Option<u64>,
    /// Fingerprint of the cellular sweep (`None` if the step failed).
    pub cells: Option<u64>,
    /// Fingerprint of the TV sweep (`None` if the step failed).
    pub tv: Option<u64>,
}

/// Ground-truth spot-check of the ICAO addresses a node claims to have
/// received: the cloud samples evenly across the sorted roster and asks
/// its own tracking service whether each aircraft exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotCheck {
    /// ICAOs sampled from the reported survey.
    pub sampled: usize,
    /// Sampled ICAOs the ground truth has never heard of.
    pub unknown: usize,
    /// Up to four unknown ICAOs, kept as evidence.
    pub examples: Vec<u32>,
}

/// Everything the cloud concluded about one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationVerdict {
    /// What the operator claimed.
    pub claims: NodeClaims,
    /// Field-of-view estimate from the commissioned survey.
    pub fov: FovEstimate,
    /// Cross-band profile assembled from the sweeps (its
    /// `missing_sources` records sweeps that never arrived).
    pub profile: FrequencyProfile,
    /// The classifier's independent indoor/outdoor call.
    pub install: InstallVerdict,
    /// Whether the operator's indoor/outdoor claim survived verification.
    pub outdoor_claim_verified: bool,
    /// Highest frequency with a usable measurement, Hz.
    pub measured_max_freq_hz: Option<f64>,
    /// Trust audit of the reported data (penalized per missing step).
    pub trust: TrustScore,
    /// Admitted to the marketplace?
    pub approved: bool,
    /// Audit steps that failed after retries (empty = complete audit).
    pub failed_steps: Vec<StepFailure>,
    /// Fingerprints of the round's completed report payloads.
    pub fingerprints: ReportFingerprints,
    /// Ground-truth spot-check of reported ICAOs (`None` if the survey
    /// decoded nothing).
    pub spot_check: Option<SpotCheck>,
    /// Mean absolute deviation from the fleet's fused consensus, dB
    /// (`None` until a fleet consistency pass has run).
    pub consensus_residual_db: Option<f64>,
}

impl VerificationVerdict {
    /// Did every audit step deliver its evidence?
    pub fn is_complete(&self) -> bool {
        self.failed_steps.is_empty()
    }
}

/// Durable per-node evidence the cloud keeps between audits: fingerprint
/// history, the commissioning power baseline, the attested service-ledger
/// checkpoint. This (not the link or the verdict) is what a registry
/// snapshot persists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeForensics {
    /// Commission seed of the last completed audit.
    pub last_seed: Option<u64>,
    /// Survey fingerprint from the last completed audit.
    pub survey_fp: Option<u64>,
    /// Cellular-sweep fingerprint from the last completed audit.
    pub cells_fp: Option<u64>,
    /// TV-sweep fingerprint from the last completed audit.
    pub tv_fp: Option<u64>,
    /// Per-band power baseline from the node's first anomaly-free
    /// complete audit: `(source tag, label, measured dB)`.
    pub baseline: Vec<(u8, String, f64)>,
    /// Last attested service-history checkpoint `(served, chain)`.
    pub attested: Option<(u64, u64)>,
    /// Why the node was evicted, if it was.
    pub eviction_reason: Option<String>,
}

/// One row in the cloud's registry.
pub struct NodeRecord {
    /// The node's link.
    pub link: Link,
    /// Last verdict, if audited.
    pub verdict: Option<VerificationVerdict>,
    /// Did the node answer its last audit?
    pub reachable: bool,
    /// Lifecycle state.
    pub health: NodeHealth,
    /// Consecutive audits that failed or came back partial.
    pub consecutive_failures: u32,
    /// Consecutive completed audits with data-plane anomalies.
    pub consecutive_anomalies: u32,
    /// Cross-audit evidence (fingerprints, baseline, attestation).
    pub forensics: NodeForensics,
}

/// What [`Cloud::recover`] found and did: how much of the journal was
/// readable, how much of a torn tail was discarded, and how many node
/// upserts were replayed onto the snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid journal records recovered (torn tail excluded).
    pub recovered_records: u64,
    /// Bytes discarded from the journal's torn tail.
    pub truncated_bytes: u64,
    /// `NodeState` upserts actually applied to the registry.
    pub applied_upserts: u64,
}

/// The aggregator.
pub struct Cloud {
    /// Ground truth the cloud can consult independently (the tracking
    /// service's view of the sky).
    pub sky: Arc<TrafficSim>,
    /// Survey configuration commissioned from nodes.
    pub survey_config: SurveyConfig,
    /// Classifier used for claim verification.
    pub classifier: IndoorOutdoorClassifier,
    /// Trust auditor.
    pub auditor: TrustAuditor,
    /// Retry/backoff/timeout policy for every node call.
    pub retry_policy: RetryPolicy,
    /// Health lifecycle thresholds.
    pub health_policy: HealthPolicy,
    /// Cross-sensor consistency thresholds (Byzantine detection).
    pub consistency: ConsistencyPolicy,
    /// Observability: wire/audit counters and the structured
    /// [`AuditEvent`](aircal_obs::AuditEvent) log. Disabled by default;
    /// set to [`Obs::recording`] before auditing to collect telemetry.
    /// Everything published here comes from the sequential audit path,
    /// so for a fixed seed the event stream and counters are identical
    /// at any `survey_config.parallelism`.
    pub obs: Obs,
    /// Registered nodes, by name.
    registry: parking_lot::Mutex<std::collections::BTreeMap<String, NodeRecord>>,
    /// The fleet's fused consensus profile from the last audit round.
    fused: parking_lot::Mutex<Option<FusedProfile>>,
    /// Write-ahead journal of audit-round effects. Effect records
    /// (trust deltas, ladder transitions, profile updates) are appended
    /// at their effect points; each round commits with per-node state
    /// upserts and a sync barrier, so [`Cloud::recover`] can replay a
    /// crash-torn journal onto the latest snapshot bit-identically.
    journal: parking_lot::Mutex<Journal>,
}

/// One node's durable registry state, as persisted by snapshots and the
/// write-ahead journal's per-round upsert records.
fn registry_state_of(name: &str, rec: &NodeRecord) -> RegistryNodeState {
    RegistryNodeState {
        name: name.to_string(),
        health: rec.health.severity(),
        reachable: rec.reachable,
        consecutive_failures: rec.consecutive_failures,
        consecutive_anomalies: rec.consecutive_anomalies,
        last_seed: rec.forensics.last_seed,
        survey_fp: rec.forensics.survey_fp,
        cells_fp: rec.forensics.cells_fp,
        tv_fp: rec.forensics.tv_fp,
        baseline: rec.forensics.baseline.clone(),
        attested: rec.forensics.attested,
        eviction_reason: rec.forensics.eviction_reason.clone(),
    }
}

/// Overlay one durable node state onto a live registry record.
fn apply_node_state(rec: &mut NodeRecord, st: RegistryNodeState) -> Result<(), SnapshotError> {
    rec.health =
        NodeHealth::from_severity(st.health).ok_or(SnapshotError::Malformed("health rung"))?;
    rec.reachable = st.reachable;
    rec.consecutive_failures = st.consecutive_failures;
    rec.consecutive_anomalies = st.consecutive_anomalies;
    rec.forensics = NodeForensics {
        last_seed: st.last_seed,
        survey_fp: st.survey_fp,
        cells_fp: st.cells_fp,
        tv_fp: st.tv_fp,
        baseline: st.baseline,
        attested: st.attested,
        eviction_reason: st.eviction_reason,
    };
    Ok(())
}

/// FNV-1a over a payload's canonical JSON — the report fingerprint used
/// for replay/frozen detection (same basis as the node's service ledger).
fn fingerprint_json<T: serde::Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("report payloads always serialize");
    crate::node::fnv1a_step(crate::node::CHAIN_EMPTY, json.as_bytes())
}

/// Stable tag for a band's source (the key half of baseline entries).
fn source_tag(s: SourceKind) -> u8 {
    match s {
        SourceKind::Cellular => 0,
        SourceKind::BroadcastTv => 1,
    }
}

/// Bands both the node and the fused consensus measured with finite values.
fn common_band_count(profile: &FrequencyProfile, fused: &FusedProfile) -> usize {
    profile
        .bands
        .iter()
        .filter(|b| {
            b.measured_db.is_some_and(|m| m.is_finite())
                && fused.fused_for(&b.label, b.source).is_some()
        })
        .count()
}

/// Per-kind wire-counter deltas between two [`LinkStats`] snapshots, in a
/// fixed publication order.
fn wire_delta(before: &LinkStats, after: &LinkStats) -> [(&'static str, u64); 11] {
    [
        ("attempts", after.attempts - before.attempts),
        ("ok", after.ok - before.ok),
        ("retries", after.retries - before.retries),
        ("gave_up", after.gave_up - before.gave_up),
        ("wrong_kind", after.wrong_kind - before.wrong_kind),
        ("dropped", after.dropped - before.dropped),
        ("timeouts", after.timeouts - before.timeouts),
        ("send_failed", after.send_failed - before.send_failed),
        ("first_try_ok", after.first_try_ok - before.first_try_ok),
        ("retried_ok", after.retried_ok - before.retried_ok),
        ("stale_drained", after.stale_drained - before.stale_drained),
    ]
}

/// Publish a step's wire-counter deltas as `wire.*` metrics, and emit a
/// [`AuditEventKind::FaultObserved`] for each fault kind the link
/// absorbed during the step (whether or not retries recovered it).
fn publish_wire(obs: &Obs, node: &str, step: &str, before: &LinkStats, after: &LinkStats) {
    for (kind, n) in wire_delta(before, after) {
        obs.incr(&format!("wire.{kind}"), n);
        let is_fault = matches!(kind, "wrong_kind" | "dropped" | "timeouts" | "send_failed");
        if is_fault && n > 0 {
            obs.emit(
                node,
                AuditEventKind::FaultObserved {
                    step: step.to_string(),
                    fault: kind.to_string(),
                    count: n,
                },
            );
        }
    }
}

/// Run one audit step with retries and turn its result into a
/// [`StepOutcome`], publishing wire metrics and step events into `obs`
/// (tagged with the node's registry `node` name).
fn step<T>(
    link: &mut Link,
    policy: &RetryPolicy,
    obs: &Obs,
    node: &str,
    name: &str,
    request: Request,
    extract: impl FnOnce(Response) -> Option<T>,
) -> StepOutcome<T> {
    obs.emit(
        node,
        AuditEventKind::StepStarted {
            step: name.to_string(),
        },
    );
    obs.incr("audit.steps_total", 1);
    let before = link.stats();
    let outcome = match link.call_with_retry(request, policy) {
        Ok(resp) => {
            let got = resp.kind();
            match extract(resp) {
                Some(v) => StepOutcome::Complete(v),
                // The transport already kind-checks replies; this arm is
                // defensive against a future extract/kind mismatch.
                None => StepOutcome::Failed(StepFailure {
                    step: name.to_string(),
                    error: LinkError::WrongKind {
                        got: got.to_string(),
                    },
                    attempts: (link.stats().attempts - before.attempts) as u32,
                }),
            }
        }
        Err(error) => StepOutcome::Failed(StepFailure {
            step: name.to_string(),
            error,
            attempts: (link.stats().attempts - before.attempts) as u32,
        }),
    };
    let after = link.stats();
    publish_wire(obs, node, name, &before, &after);
    let wire_attempts = after.attempts - before.attempts;
    match &outcome {
        StepOutcome::Complete(_) => obs.emit(
            node,
            AuditEventKind::StepCompleted {
                step: name.to_string(),
                wire_attempts,
            },
        ),
        StepOutcome::Failed(f) => {
            obs.incr("audit.steps_failed", 1);
            obs.emit(
                node,
                AuditEventKind::StepFailed {
                    step: name.to_string(),
                    error: f.error.to_string(),
                    wire_attempts,
                },
            );
        }
    }
    outcome
}

impl Cloud {
    /// Create a cloud with the given ground-truth sky.
    pub fn new(sky: Arc<TrafficSim>) -> Self {
        Self {
            sky,
            survey_config: SurveyConfig::quick(),
            classifier: IndoorOutdoorClassifier::default(),
            auditor: TrustAuditor::default(),
            retry_policy: RetryPolicy::default(),
            health_policy: HealthPolicy::default(),
            consistency: ConsistencyPolicy::default(),
            obs: Obs::disabled(),
            registry: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
            fused: parking_lot::Mutex::new(None),
            journal: parking_lot::Mutex::new(Journal::default()),
        }
    }

    /// Append one effect record to the write-ahead journal (counted as
    /// `wal.append`).
    fn wal_append(&self, record: WalRecord) {
        self.journal.lock().append(&record);
        self.obs.incr("wal.append", 1);
    }

    /// Issue a journal durability barrier (counted as `wal.sync`).
    fn wal_sync(&self) {
        self.journal.lock().sync();
        self.obs.incr("wal.sync", 1);
    }

    /// The journal as one contiguous byte stream — what a crash leaves
    /// behind for [`Cloud::recover`].
    pub fn journal_bytes(&self) -> Vec<u8> {
        self.journal.lock().to_bytes()
    }

    /// Lifetime `(appends, syncs)` counters of the journal.
    pub fn journal_stats(&self) -> (u64, u64) {
        let j = self.journal.lock();
        (j.appends(), j.syncs())
    }

    /// Register a node by asking it to describe itself (with retries).
    /// Returns the claimed name, or `None` if unreachable.
    pub fn register(&self, mut link: Link) -> Option<String> {
        let before = link.stats();
        let claims = match link.call_with_retry(Request::Describe, &self.retry_policy) {
            Ok(Response::Description(c)) => c,
            _ => {
                // Unreachable at registration: dropping the link joins
                // the node thread; the operator can be chased offline.
                self.obs.incr("cloud.registrations_failed", 1);
                return None;
            }
        };
        let name = claims.name.clone();
        publish_wire(&self.obs, &name, "register", &before, &link.stats());
        self.obs.incr("cloud.nodes_registered", 1);
        self.registry.lock().insert(
            name.clone(),
            NodeRecord {
                link,
                verdict: None,
                reachable: true,
                health: NodeHealth::Healthy,
                consecutive_failures: 0,
                consecutive_anomalies: 0,
                forensics: NodeForensics::default(),
            },
        );
        Some(name)
    }

    /// Replace the link of an already-registered node (a restarted daemon
    /// re-attaching) *without* resetting its health, anomaly run, or
    /// forensic history — crash-restart must not launder a bad record.
    /// Returns `false` if the name is unknown.
    pub fn reattach(&self, name: &str, link: Link) -> bool {
        let mut registry = self.registry.lock();
        match registry.get_mut(name) {
            Some(record) => {
                let old = std::mem::replace(&mut record.link, link);
                old.shutdown();
                record.reachable = true;
                self.obs.incr("cloud.reattached", 1);
                true
            }
            None => false,
        }
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Audit every registered node with seeds derived from `base_seed`,
    /// updating each node's health state. Returns verdicts sorted by
    /// name (`None` = identity could not even be established, or the
    /// node is evicted).
    ///
    /// After the per-node audits, a wire-free *consistency pass* fuses
    /// the round's complete profiles ([`aircal_core::robust`]), runs the
    /// hard-evidence anomaly checks (ICAO spot-check, replay/frozen
    /// fingerprints, physics overshoot, baseline drift), and walks both
    /// health ladders. Evicted nodes are never audited again.
    pub fn audit_all(&self, base_seed: u64) -> Vec<(String, Option<VerificationVerdict>)> {
        let _span = aircal_obs::span!("audit_all");
        self.obs.incr("audit.rounds", 1);
        self.wal_append(WalRecord::RoundStarted {
            seed: base_seed,
            tick: 0,
        });
        let mut registry = self.registry.lock();
        let mut out = Vec::new();
        for (i, (name, record)) in registry.iter_mut().enumerate() {
            // Terminal rung: no probe, no audit budget, no events. The
            // node still consumes its seed index, so its neighbors' seeds
            // do not shift as the fleet shrinks.
            if record.health == NodeHealth::Evicted {
                self.obs.incr("audit.evicted_skipped", 1);
                out.push((name.clone(), None));
                continue;
            }
            let seed = base_seed.wrapping_add(i as u64 * 0x9E37_79B9);
            self.obs
                .emit(name, AuditEventKind::AuditStarted { seed });
            self.obs.incr("audit.nodes_audited", 1);
            // Quarantined nodes get a cheap probe first: no full audit
            // budget until they at least answer a Describe.
            if record.health == NodeHealth::Quarantined
                && matches!(
                    step(
                        &mut record.link,
                        &self.retry_policy,
                        &self.obs,
                        name,
                        "probe",
                        Request::Describe,
                        |r| match r {
                            Response::Description(c) => Some(c),
                            _ => None,
                        },
                    ),
                    StepOutcome::Failed(_)
                )
            {
                record.reachable = false;
                record.consecutive_failures = record.consecutive_failures.saturating_add(1);
                record.verdict = None;
                self.obs.incr("audit.unreachable", 1);
                self.obs.emit(
                    name,
                    AuditEventKind::AuditCompleted {
                        complete: false,
                        approved: false,
                    },
                );
                out.push((name.clone(), None));
                continue;
            }
            let wire_before = record.link.stats().attempts;
            let verdict = self.audit_one_named(name, &mut record.link, seed);
            record.reachable = verdict.is_some();
            if verdict.is_none() {
                self.obs.incr("audit.unreachable", 1);
            }
            let clean = verdict.as_ref().is_some_and(|v| v.is_complete());
            if let Some(v) = &verdict {
                for f in &v.failed_steps {
                    self.wal_append(WalRecord::StepOutcome {
                        node: name.clone(),
                        step: f.step.clone(),
                        ok: false,
                        attempts: f.attempts as u64,
                    });
                }
            }
            self.wal_append(WalRecord::StepOutcome {
                node: name.clone(),
                step: "audit".to_string(),
                ok: clean,
                attempts: record.link.stats().attempts - wire_before,
            });
            if clean {
                // Re-admission: one clean audit clears the link ladder
                // (the anomaly ladder is walked in the consistency pass).
                record.consecutive_failures = 0;
            } else {
                record.consecutive_failures = record.consecutive_failures.saturating_add(1);
            }
            self.obs.emit(
                name,
                AuditEventKind::AuditCompleted {
                    complete: clean,
                    approved: verdict.as_ref().is_some_and(|v| v.approved),
                },
            );
            record.verdict = verdict.clone();
            out.push((name.clone(), verdict));
        }
        self.consistency_pass(&mut registry, base_seed, &mut out);
        // Round commit: journal every node's post-round registry state
        // as an upsert, then sync. Replay after a crash applies these
        // onto the last snapshot, so a torn round re-runs from its
        // RoundStarted instead of half-applying.
        let mut effects = 0u32;
        for (name, rec) in registry.iter() {
            self.wal_append(WalRecord::NodeState {
                node: name.clone(),
                state: encode_node_state(&registry_state_of(name, rec)),
            });
            effects += 1;
        }
        self.wal_append(WalRecord::RoundCompleted {
            seed: base_seed,
            effects,
        });
        self.wal_sync();
        out
    }

    /// The wire-free cross-sensor consistency pass that closes every
    /// audit round: robust fusion, hard-evidence anomaly checks, and the
    /// health-ladder walk. Emits [`AuditEventKind::ConsistencyChecked`],
    /// [`AuditEventKind::AnomalyDetected`], [`AuditEventKind::HealthTransition`],
    /// and [`AuditEventKind::NodeEvicted`] — but never touches a link and
    /// never increments `audit.steps_total`.
    fn consistency_pass(
        &self,
        registry: &mut std::collections::BTreeMap<String, NodeRecord>,
        base_seed: u64,
        out: &mut [(String, Option<VerificationVerdict>)],
    ) {
        // Fuse the complete profiles of nodes still in good standing (as
        // of the previous round's ladder state — a freshly-suspect liar
        // still contributes, which is exactly what the robust estimator
        // is for).
        let eligible: Vec<&FrequencyProfile> = registry
            .values()
            .filter(|r| r.health.severity() < NodeHealth::Quarantined.severity())
            .filter_map(|r| r.verdict.as_ref())
            .filter(|v| v.is_complete())
            .map(|v| &v.profile)
            .collect();
        let fused =
            (!eligible.is_empty()).then(|| robust::fuse_profiles(&eligible, self.consistency.fusion_rule));

        let pol = &self.consistency;
        for (i, (name, record)) in registry.iter_mut().enumerate() {
            if record.health == NodeHealth::Evicted {
                continue;
            }
            let seed = base_seed.wrapping_add(i as u64 * 0x9E37_79B9);
            let complete = record.verdict.as_ref().is_some_and(|v| v.is_complete());
            let mut anomalies: Vec<(String, String)> = Vec::new();
            if complete {
                let verdict = record.verdict.as_mut().expect("complete implies verdict");
                // 1) ADS-B spot-check: reported aircraft the tracking
                //    service has never heard of cannot be a propagation
                //    artifact.
                if let Some(sc) = &verdict.spot_check {
                    if sc.unknown >= pol.spot_check_min_unknown
                        && sc.sampled > 0
                        && sc.unknown as f64 >= pol.spot_check_min_frac * sc.sampled as f64
                    {
                        anomalies.push((
                            "spot-check".to_string(),
                            format!(
                                "{}/{} sampled ICAOs unknown to ground truth (e.g. {:06X})",
                                sc.unknown,
                                sc.sampled,
                                sc.examples.first().copied().unwrap_or(0)
                            ),
                        ));
                    }
                }
                // 2) Replay / frozen capture: a report fingerprint that
                //    repeats under a *different* commission seed. Honest
                //    front ends resample their noise every capture.
                let fp = verdict.fingerprints.clone();
                let seeds_differ = record.forensics.last_seed.is_some_and(|s| s != seed);
                let survey_rep =
                    seeds_differ && fp.survey.is_some() && fp.survey == record.forensics.survey_fp;
                let cells_rep =
                    seeds_differ && fp.cells.is_some() && fp.cells == record.forensics.cells_fp;
                let tv_rep = seeds_differ && fp.tv.is_some() && fp.tv == record.forensics.tv_fp;
                if survey_rep && cells_rep && tv_rep {
                    anomalies.push((
                        "frozen".to_string(),
                        "identical survey, cells, and tv reports under a fresh commission seed"
                            .to_string(),
                    ));
                } else if survey_rep {
                    anomalies.push((
                        "replay".to_string(),
                        format!(
                            "survey fingerprint {:016x} replayed under a fresh commission seed",
                            fp.survey.unwrap_or(0)
                        ),
                    ));
                }
                // 3) Physics overshoot: measuring well above the
                //    clear-sky expectation at the claimed coordinates is
                //    implausible — obstructions only remove power.
                let over = verdict
                    .profile
                    .bands
                    .iter()
                    .filter(|b| {
                        b.expected_clear_db.is_finite()
                            && b.measured_db
                                .is_some_and(|m| m.is_finite() && m > b.expected_clear_db + pol.overshoot_db)
                    })
                    .count();
                if over >= pol.overshoot_min_bands {
                    anomalies.push((
                        "overshoot".to_string(),
                        format!(
                            "{over} bands more than {:.0} dB above the clear-sky expectation",
                            pol.overshoot_db
                        ),
                    ));
                }
                // 4) Baseline drift: slow calibration poisoning shows up
                //    as a signed mean shift against the node's own
                //    commissioning baseline.
                if !record.forensics.baseline.is_empty() {
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for b in &verdict.profile.bands {
                        let Some(m) = b.measured_db.filter(|m| m.is_finite()) else {
                            continue;
                        };
                        if let Some((_, _, base)) = record
                            .forensics
                            .baseline
                            .iter()
                            .find(|(t, l, _)| *t == source_tag(b.source) && *l == b.label)
                        {
                            sum += m - base;
                            n += 1;
                        }
                    }
                    if n > 0 {
                        let dev = sum / n as f64;
                        if dev.abs() > pol.drift_db {
                            anomalies.push((
                                "drift".to_string(),
                                format!(
                                    "mean band power drifted {dev:+.1} dB from the commissioning baseline"
                                ),
                            ));
                        }
                    }
                }
                // Residual vs the fused consensus: honest-but-obstructed
                // installations legitimately sit far from the fleet, so
                // this is a *trust* signal, never ladder evidence.
                if let Some(fused) = &fused {
                    if let Some(res) = robust::residual_db(&verdict.profile, fused) {
                        verdict.consensus_residual_db = Some(res);
                        self.obs.emit(
                            name,
                            AuditEventKind::ConsistencyChecked {
                                residual_db: res,
                                bands: common_band_count(&verdict.profile, fused),
                            },
                        );
                        if res > pol.residual_penalty_db {
                            verdict.trust.penalize_fusion_residual(res);
                            verdict.approved =
                                verdict.trust.is_trustworthy() && verdict.outdoor_claim_verified;
                        }
                    }
                }
                // Record this round's evidence for the next one (the
                // profile update is journaled before the overwrite).
                if let Some(fingerprint) = fp.survey {
                    self.wal_append(WalRecord::ProfileUpdate {
                        node: name.clone(),
                        fingerprint,
                    });
                }
                record.forensics.last_seed = Some(seed);
                record.forensics.survey_fp = fp.survey;
                record.forensics.cells_fp = fp.cells;
                record.forensics.tv_fp = fp.tv;
                if anomalies.is_empty() && record.forensics.baseline.is_empty() {
                    record.forensics.baseline = verdict
                        .profile
                        .bands
                        .iter()
                        .filter_map(|b| {
                            b.measured_db
                                .filter(|m| m.is_finite())
                                .map(|m| (source_tag(b.source), b.label.clone(), m))
                        })
                        .collect();
                }
            }
            // Ladder bookkeeping: complete rounds advance or reset the
            // anomaly run; partial rounds leave it unchanged (the link
            // ladder already charged them).
            if complete {
                if anomalies.is_empty() {
                    record.consecutive_anomalies = 0;
                } else {
                    record.consecutive_anomalies = record.consecutive_anomalies.saturating_add(1);
                    for (check, evidence) in &anomalies {
                        self.obs.incr("audit.anomalies", 1);
                        self.obs.emit(
                            name,
                            AuditEventKind::AnomalyDetected {
                                check: check.clone(),
                                evidence: evidence.clone(),
                                consecutive: record.consecutive_anomalies,
                            },
                        );
                    }
                }
            }
            self.apply_health(name, record, NodeHealth::Healthy, || {
                anomalies
                    .first()
                    .map(|(c, e)| format!("{c}: {e}"))
                    .unwrap_or_else(|| "anomaly ladder exhausted".to_string())
            });
            // Residual penalties must reach the caller's copies too.
            if complete {
                if let Some(slot) = out.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = record.verdict.clone();
                }
            }
        }
        *self.fused.lock() = fused;
    }

    /// Walk both health ladders for one node and apply the more severe
    /// rung (never dropping below `floor`), emitting the transition and —
    /// on the terminal rung — the eviction event with its evidence.
    fn apply_health(
        &self,
        name: &str,
        record: &mut NodeRecord,
        floor: NodeHealth,
        eviction_reason: impl FnOnce() -> String,
    ) {
        let effective = floor
            .max_severity(self.health_policy.link_rung(record.consecutive_failures))
            .max_severity(self.health_policy.anomaly_rung(record.consecutive_anomalies));
        if effective == record.health {
            return;
        }
        let previous = record.health;
        // Journal the transition before applying it to the registry.
        self.wal_append(WalRecord::LadderTransition {
            node: name.to_string(),
            from: previous.severity(),
            to: effective.severity(),
            consecutive: record.consecutive_failures.max(record.consecutive_anomalies),
        });
        record.health = effective;
        self.obs.incr("health.transitions", 1);
        self.obs.emit(
            name,
            AuditEventKind::HealthTransition {
                from: previous.to_string(),
                to: effective.to_string(),
                consecutive_failures: record.consecutive_failures.max(record.consecutive_anomalies),
            },
        );
        if effective == NodeHealth::Evicted {
            let reason = eviction_reason();
            record.forensics.eviction_reason = Some(reason.clone());
            self.obs.incr("audit.evictions", 1);
            self.obs.emit(
                name,
                AuditEventKind::NodeEvicted {
                    reason,
                    after_audits: record.consecutive_anomalies,
                },
            );
        }
    }

    /// Audit one node over its link. Returns `None` only when the node's
    /// identity cannot be established (the `Describe` step fails even
    /// with retries); any later step failure degrades to a partial
    /// verdict instead of aborting the audit.
    pub fn audit_one(&self, link: &mut Link, seed: u64) -> Option<VerificationVerdict> {
        self.audit_one_named("", link, seed)
    }

    /// [`Cloud::audit_one`] with a registry name so the audit's telemetry
    /// (step events, trust deltas, wire counters) is tagged per node.
    pub fn audit_one_named(
        &self,
        name: &str,
        link: &mut Link,
        seed: u64,
    ) -> Option<VerificationVerdict> {
        let policy = &self.retry_policy;
        let obs = &self.obs;
        let claims = match step(
            link,
            policy,
            obs,
            name,
            "describe",
            Request::Describe,
            |r| match r {
                Response::Description(c) => Some(c),
                _ => None,
            },
        ) {
            StepOutcome::Complete(c) => c,
            StepOutcome::Failed(_) => return None,
        };
        let survey = step(
            link,
            policy,
            obs,
            name,
            "survey",
            Request::RunSurvey {
                config: self.survey_config,
                seed,
            },
            |r| match r {
                Response::Survey(s) => Some(s),
                _ => None,
            },
        );
        let cells = step(
            link,
            policy,
            obs,
            name,
            "cells",
            Request::ScanCells { seed: seed ^ 0xCE11 },
            |r| match r {
                Response::Cells(c) => Some(c),
                _ => None,
            },
        );
        let tv = step(
            link,
            policy,
            obs,
            name,
            "tv",
            Request::SweepTv { seed: seed ^ 0x7E1E },
            |r| match r {
                Response::Tv(t) => Some(t),
                _ => None,
            },
        );
        Some(self.judge_partial_named(name, claims, survey, cells, tv, seed))
    }

    /// Verification when some evidence may be missing: judge whatever
    /// the node delivered, mark the gaps on the profile, and penalize
    /// the trust score once per missing evidence source.
    pub fn judge_partial(
        &self,
        claims: NodeClaims,
        survey: StepOutcome<SurveyResult>,
        cells: StepOutcome<Vec<CellMeasurement>>,
        tv: StepOutcome<Vec<TvMeasurement>>,
        seed: u64,
    ) -> VerificationVerdict {
        self.judge_partial_named("", claims, survey, cells, tv, seed)
    }

    /// [`Cloud::judge_partial`] with a registry name so the round's
    /// [`AuditEventKind::TrustDelta`] is tagged per node.
    pub fn judge_partial_named(
        &self,
        name: &str,
        claims: NodeClaims,
        survey: StepOutcome<SurveyResult>,
        cells: StepOutcome<Vec<CellMeasurement>>,
        tv: StepOutcome<Vec<TvMeasurement>>,
        seed: u64,
    ) -> VerificationVerdict {
        // Fingerprint the completed payloads exactly as they arrived —
        // replay/frozen detection compares these across rounds.
        let fingerprints = ReportFingerprints {
            survey: match &survey {
                StepOutcome::Complete(s) => {
                    // The config echo carries scheduling knobs (worker
                    // parallelism) that must not affect the fingerprint;
                    // canonicalize it so only the measurement is hashed.
                    let mut canon = s.clone();
                    canon.config.parallelism = 1;
                    Some(fingerprint_json(&canon))
                }
                StepOutcome::Failed(_) => None,
            },
            cells: match &cells {
                StepOutcome::Complete(c) => Some(fingerprint_json(c)),
                StepOutcome::Failed(_) => None,
            },
            tv: match &tv {
                StepOutcome::Complete(t) => Some(fingerprint_json(t)),
                StepOutcome::Failed(_) => None,
            },
        };
        let mut failures = Vec::new();
        let survey = match survey {
            StepOutcome::Complete(s) => s,
            StepOutcome::Failed(f) => {
                failures.push(f);
                // An empty survey: no points, no messages — the trust
                // auditor's "no evidence" branch handles it.
                SurveyResult {
                    points: Vec::new(),
                    total_messages: 0,
                    unmatched_messages: 0,
                    skipped_low_snr: 0,
                    decoded_positions: Vec::new(),
                    config: self.survey_config,
                }
            }
        };
        let (cells, cells_missing) = match cells {
            StepOutcome::Complete(c) => (c, false),
            StepOutcome::Failed(f) => {
                failures.push(f);
                (Vec::new(), true)
            }
        };
        let (tv, tv_missing) = match tv {
            StepOutcome::Complete(t) => (t, false),
            StepOutcome::Failed(f) => {
                failures.push(f);
                (Vec::new(), true)
            }
        };

        publish_survey_metrics(&self.obs, &survey);
        let mut verdict = self.judge(claims, survey, cells, tv, seed);
        verdict.fingerprints = fingerprints;
        if cells_missing {
            verdict.profile.missing_sources.push(SourceKind::Cellular);
        }
        if tv_missing {
            verdict
                .profile
                .missing_sources
                .push(SourceKind::BroadcastTv);
        }
        publish_profile_metrics(&self.obs, &verdict.profile);
        let unpenalized = verdict.trust.score;
        for f in &failures {
            verdict.trust.penalize_missing_evidence(&f.step);
        }
        // Approval must reflect the penalized trust score.
        verdict.approved = verdict.trust.is_trustworthy() && verdict.outdoor_claim_verified;
        // Journal the trust movement before it is surfaced anywhere: a
        // replay can then verify no delta was applied twice.
        self.wal_append(WalRecord::TrustDelta {
            node: name.to_string(),
            score_bits: verdict.trust.score.to_bits(),
            delta_bits: (verdict.trust.score - unpenalized).to_bits(),
        });
        self.obs.emit(
            name,
            AuditEventKind::TrustDelta {
                score: verdict.trust.score,
                delta: verdict.trust.score - unpenalized,
                reasons: failures.iter().map(|f| f.step.clone()).collect(),
            },
        );
        verdict.failed_steps = failures;
        verdict
    }

    /// Pure verification logic (no I/O): turn reported measurements into a
    /// verdict. Public so the tests and the example can drive it directly.
    pub fn judge(
        &self,
        claims: NodeClaims,
        survey: SurveyResult,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> VerificationVerdict {
        let fov = FovEstimator::default().estimate(&survey.points);
        let profile = self.assemble_profile(&claims.position, cells, tv, seed);
        let features = InstallFeatures::extract(&survey, &fov, &profile);
        let install = self.classifier.classify(&features);
        let trust = self
            .auditor
            .audit(&survey, &profile, &self.sky, fov.open_fraction());
        let outdoor_claim_verified = claims.outdoor == install.outdoor;
        let approved = trust.is_trustworthy() && outdoor_claim_verified;
        let spot_check = self.spot_check_survey(&survey);
        VerificationVerdict {
            measured_max_freq_hz: profile.max_usable_freq_hz(),
            claims,
            fov,
            install,
            outdoor_claim_verified,
            trust,
            approved,
            profile,
            failed_steps: Vec::new(),
            fingerprints: ReportFingerprints::default(),
            spot_check,
            consensus_residual_db: None,
        }
    }

    /// Sample reported ICAOs evenly across the sorted roster and check
    /// each against the cloud's own tracking service. Deterministic (no
    /// RNG), and `None` when the survey decoded nothing.
    fn spot_check_survey(&self, survey: &SurveyResult) -> Option<SpotCheck> {
        let k = self.consistency.spot_check_k;
        if k == 0 || survey.decoded_positions.is_empty() {
            return None;
        }
        let mut icaos: Vec<u32> = survey
            .decoded_positions
            .iter()
            .map(|(icao, _)| icao.value())
            .collect();
        icaos.sort_unstable();
        icaos.dedup();
        let n = icaos.len();
        let take = k.min(n);
        let mut sampled: Vec<u32> = (0..take)
            .map(|j| {
                let idx = if take == 1 { 0 } else { j * (n - 1) / (take - 1) };
                icaos[idx]
            })
            .collect();
        sampled.dedup();
        let mut unknown = 0usize;
        let mut examples = Vec::new();
        for icao in &sampled {
            if self.sky.by_icao(aircal_adsb::IcaoAddress::new(*icao)).is_none() {
                unknown += 1;
                if examples.len() < 4 {
                    examples.push(*icao);
                }
            }
        }
        Some(SpotCheck {
            sampled: sampled.len(),
            unknown,
            examples,
        })
    }

    /// Build the band profile: reported measurements vs the cloud's own
    /// clear-sky expectation (computed from the public tower databases at
    /// the claimed coordinates — no access to the node's environment).
    fn assemble_profile(
        &self,
        claimed_position: &LatLon,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> FrequencyProfile {
        let mut origin = *claimed_position;
        origin.alt_m = 0.0;
        let clear_world = World::open(origin);
        let clear_site = SensorSite::outdoor("expectation", *claimed_position);
        let cell_db = paper_towers(&origin);
        let tv_db = paper_tv_towers(&origin);
        let clear_cells = CellScanner::default().scan(&clear_world, &clear_site, &cell_db, seed ^ 1);
        let clear_tv = TvPowerProbe::default().sweep(&clear_world, &clear_site, &tv_db, seed ^ 1);

        let mut bands = Vec::new();
        for (r, c) in cells.iter().zip(&clear_cells) {
            bands.push(BandMeasurement {
                label: r.tower_name.clone(),
                freq_hz: r.freq_hz,
                source: SourceKind::Cellular,
                measured_db: r.rsrp_dbm,
                expected_clear_db: c.rsrp_dbm.unwrap_or(-120.0),
            });
        }
        for (r, c) in tv.iter().zip(&clear_tv) {
            bands.push(BandMeasurement {
                label: r.station.clone(),
                freq_hz: r.center_hz,
                source: SourceKind::BroadcastTv,
                measured_db: Some(r.power_dbfs),
                expected_clear_db: c.power_dbfs,
            });
        }
        bands.sort_by(|a, b| a.freq_hz.total_cmp(&b.freq_hz));
        FrequencyProfile {
            bands,
            missing_sources: Vec::new(),
        }
    }

    /// The marketplace: approved nodes below the quarantine rung,
    /// cheapest first. Quarantined and evicted nodes are never rentable.
    pub fn marketplace(&self) -> Vec<(String, f64, f64)> {
        let registry = self.registry.lock();
        let mut listings: Vec<(String, f64, f64)> = registry
            .iter()
            .filter(|(_, rec)| rec.health.severity() < NodeHealth::Quarantined.severity())
            .filter_map(|(name, rec)| {
                let v = rec.verdict.as_ref()?;
                v.approved.then(|| {
                    (
                        name.clone(),
                        v.claims.price_per_hour,
                        v.trust.score,
                    )
                })
            })
            .collect();
        listings.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        listings
    }

    /// Health lifecycle snapshot, sorted by name:
    /// `(name, state, consecutive failed/partial audits)`.
    pub fn health_report(&self) -> Vec<(String, NodeHealth, u32)> {
        self.registry
            .lock()
            .iter()
            .map(|(name, rec)| (name.clone(), rec.health, rec.consecutive_failures))
            .collect()
    }

    /// Anomaly-ladder snapshot, sorted by name:
    /// `(name, consecutive anomalous audits, eviction reason if evicted)`.
    pub fn anomaly_report(&self) -> Vec<(String, u32, Option<String>)> {
        self.registry
            .lock()
            .iter()
            .map(|(name, rec)| {
                (
                    name.clone(),
                    rec.consecutive_anomalies,
                    rec.forensics.eviction_reason.clone(),
                )
            })
            .collect()
    }

    /// The fleet's fused consensus profile from the last audit round.
    pub fn fused_profile(&self) -> Option<FusedProfile> {
        self.fused.lock().clone()
    }

    /// Cross-examine every non-evicted node's service ledger against the
    /// checkpoint recorded at the previous attestation. Returns
    /// `(name, consistent)` per node checked.
    ///
    /// A node whose chain *at the recorded checkpoint length* no longer
    /// matches what the cloud saw — or whose history shrank — has forked
    /// or rolled back its served-request log (e.g. restarted from a stale
    /// snapshot and silently re-served different requests). That is hard
    /// evidence: it rides the anomaly ladder and quarantines on the spot.
    ///
    /// Attestation is reconciliation, not measurement: it bypasses the
    /// audit step machinery (no step events, no `audit.steps_total`), so
    /// audit telemetry totals stay exact.
    pub fn attest_all(&self) -> Vec<(String, bool)> {
        let mut registry = self.registry.lock();
        let mut out = Vec::new();
        for (name, record) in registry.iter_mut() {
            if record.health == NodeHealth::Evicted {
                continue;
            }
            self.obs.incr("attest.checks", 1);
            let before = record.link.stats();
            let upto = record.forensics.attested.map(|(served, _)| served).unwrap_or(0);
            let resp = record
                .link
                .call_with_retry(Request::Attest { upto }, &self.retry_policy);
            publish_wire(&self.obs, name, "attest", &before, &record.link.stats());
            let ok = match resp {
                Ok(Response::Attestation {
                    served,
                    chain,
                    upto_chain,
                }) => {
                    let consistent = match record.forensics.attested {
                        Some((prev_served, prev_chain)) => {
                            upto_chain == prev_chain && served >= prev_served
                        }
                        None => true,
                    };
                    if consistent {
                        record.forensics.attested = Some((served, chain));
                    } else {
                        let (prev_served, prev_chain) =
                            record.forensics.attested.expect("inconsistent implies prior");
                        record.consecutive_anomalies =
                            record.consecutive_anomalies.saturating_add(1);
                        self.obs.incr("audit.anomalies", 1);
                        let evidence = format!(
                            "service chain at checkpoint {prev_served} is {upto_chain:016x}, cloud recorded {prev_chain:016x} (served {served})"
                        );
                        self.obs.emit(
                            name,
                            AuditEventKind::AnomalyDetected {
                                check: "history-fork".to_string(),
                                evidence: evidence.clone(),
                                consecutive: record.consecutive_anomalies,
                            },
                        );
                        // Never demote below the current rung here, and
                        // treat a fork as at least quarantine-worthy.
                        let floor = record.health.max_severity(NodeHealth::Quarantined);
                        self.apply_health(name, record, floor, || {
                            format!("history-fork: {evidence}")
                        });
                    }
                    consistent
                }
                // Unreachable for attestation: the link ladder will
                // charge it at the next audit; nothing to conclude here.
                _ => false,
            };
            out.push((name.clone(), ok));
        }
        // Attestation moves durable state (checkpoints, possibly the
        // anomaly ladder): commit it like an audit round.
        for (name, rec) in registry.iter() {
            self.wal_append(WalRecord::NodeState {
                node: name.clone(),
                state: encode_node_state(&registry_state_of(name, rec)),
            });
        }
        self.wal_sync();
        out
    }

    /// Serialize the registry's durable state (health ladders, forensic
    /// evidence, attestation checkpoints) into a versioned, checksummed
    /// snapshot. Links, links' stats, and in-flight verdicts are not
    /// included — they are reconstructed by re-registering.
    pub fn snapshot_registry(&self) -> Vec<u8> {
        let registry = self.registry.lock();
        let states: Vec<RegistryNodeState> = registry
            .iter()
            .map(|(name, rec)| registry_state_of(name, rec))
            .collect();
        crate::snapshot::snapshot_registry(&states)
    }

    /// Overlay a registry snapshot onto the live registry: every snapshot
    /// entry whose name is currently registered gets its health ladders
    /// and forensic history restored (entries for unregistered names are
    /// skipped). Returns how many nodes were restored.
    pub fn restore_registry(&self, bytes: &[u8]) -> Result<usize, SnapshotError> {
        let states = crate::snapshot::restore_registry(bytes)?;
        let mut registry = self.registry.lock();
        let mut applied = 0usize;
        for st in states {
            let Some(rec) = registry.get_mut(&st.name) else {
                continue;
            };
            apply_node_state(rec, st)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Checkpoint: serialize the registry snapshot, reset the journal
    /// (the snapshot now covers everything it recorded), and open the
    /// fresh journal with a [`WalRecord::SnapshotTaken`] record carrying
    /// the snapshot's CRC — chaining journal and snapshot together so
    /// [`Cloud::recover`] can refuse a mismatched pair.
    pub fn checkpoint(&self) -> Vec<u8> {
        let bytes = self.snapshot_registry();
        let crc = crate::snapshot::crc32(&bytes);
        {
            let mut journal = self.journal.lock();
            journal.reset();
            journal.append(&WalRecord::SnapshotTaken {
                tick: 0,
                state_crc: crc,
            });
            journal.sync();
        }
        self.obs.incr("wal.append", 1);
        self.obs.incr("wal.sync", 1);
        self.obs.incr("wal.checkpoints", 1);
        bytes
    }

    /// FNV-1a digest over every node's durable registry state, in name
    /// order — the bit-identity witness for crash/recovery tests.
    pub fn registry_digest(&self) -> u64 {
        let registry = self.registry.lock();
        let mut h = crate::node::CHAIN_EMPTY;
        for (name, rec) in registry.iter() {
            h = crate::node::fnv1a_step(h, &encode_node_state(&registry_state_of(name, rec)));
        }
        h
    }

    /// Simulate a cloud crash: the aggregator process dies, the node
    /// daemons keep running. Consumes the cloud and hands back the still
    /// -live links plus whatever the journal managed to persist — all
    /// in-memory registry state is lost, exactly as in a real crash.
    pub fn crash(self) -> (Vec<(String, Link)>, Vec<u8>) {
        let journal_bytes = self.journal.lock().to_bytes();
        let mut registry = self.registry.into_inner();
        let mut links = Vec::new();
        while let Some((name, record)) = registry.pop_first() {
            links.push((name, record.link));
        }
        (links, journal_bytes)
    }

    /// Rebuild a crashed cloud from the latest checkpoint snapshot plus
    /// the (possibly torn) journal, re-attaching the surviving links.
    /// The journal's tail is truncated at the first invalid frame and
    /// every per-node upsert in the valid prefix is replayed onto the
    /// snapshot, arriving at the exact registry state the crashed cloud
    /// had at its last sync. Counted as `wal.replay.*` in `obs`.
    pub fn recover(
        sky: Arc<TrafficSim>,
        snapshot: Option<&[u8]>,
        journal_bytes: &[u8],
        links: Vec<(String, Link)>,
        obs: Obs,
    ) -> Result<(Cloud, RecoveryReport), SnapshotError> {
        let mut cloud = Cloud::new(sky);
        cloud.obs = obs;
        {
            let mut registry = cloud.registry.lock();
            for (name, link) in links {
                registry.insert(
                    name,
                    NodeRecord {
                        link,
                        verdict: None,
                        reachable: true,
                        health: NodeHealth::Healthy,
                        consecutive_failures: 0,
                        consecutive_anomalies: 0,
                        forensics: NodeForensics::default(),
                    },
                );
            }
        }
        if let Some(bytes) = snapshot {
            cloud.restore_registry(bytes)?;
        }
        let (journal, open) = Journal::open(journal_bytes, 64 * 1024);
        // If the journal opens on a checkpoint marker, it must belong to
        // the snapshot we were handed.
        if let (Some(WalRecord::SnapshotTaken { state_crc, .. }), Some(bytes)) =
            (journal.records().first(), snapshot)
        {
            let computed = crate::snapshot::crc32(bytes);
            if *state_crc != computed {
                return Err(SnapshotError::ChecksumMismatch {
                    stored: *state_crc,
                    computed,
                });
            }
        }
        let mut report = RecoveryReport {
            recovered_records: open.recovered,
            truncated_bytes: open.truncated_bytes,
            applied_upserts: 0,
        };
        {
            let mut registry = cloud.registry.lock();
            for record in journal.records() {
                cloud.obs.incr("wal.replay", 1);
                if let WalRecord::NodeState { node, state } = record {
                    let st = decode_node_state(&state)?;
                    if let Some(rec) = registry.get_mut(&node) {
                        apply_node_state(rec, st)?;
                        report.applied_upserts += 1;
                    }
                }
            }
        }
        cloud.obs.incr("wal.recoveries", 1);
        *cloud.journal.lock() = journal;
        Ok((cloud, report))
    }

    /// Per-node wire counters, sorted by name.
    pub fn link_stats(&self) -> Vec<(String, LinkStats)> {
        self.registry
            .lock()
            .iter()
            .map(|(name, rec)| (name.clone(), rec.link.stats()))
            .collect()
    }

    /// Shut down every registered node.
    pub fn shutdown(self) {
        let mut registry = self.registry.into_inner();
        while let Some((_, record)) = registry.pop_first() {
            record.link.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeAgent, NodeBehavior};
    use crate::transport::{spawn_node, spawn_node_with_faults, LinkFaults};
    use aircal_aircraft::TrafficConfig;
    use aircal_env::{Scenario, ScenarioKind};

    fn sky() -> Arc<TrafficSim> {
        let center = aircal_env::scenarios::testbed_origin();
        Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 40,
                ..TrafficConfig::paper_default(center)
            },
            500,
        ))
    }

    fn spawn(kind: ScenarioKind, behavior: NodeBehavior, sky: &Arc<TrafficSim>, seed: u64) -> Link {
        spawn_node(
            NodeAgent::new(Scenario::build(kind), behavior, sky.clone()),
            0.0,
            seed,
        )
    }

    #[test]
    fn health_ladder_walks_both_rungs_and_eviction_is_terminal() {
        let policy = HealthPolicy::default();
        let mut ladder = HealthLadder::default();
        assert_eq!(ladder.health(), NodeHealth::Healthy);

        // Link ladder: one failure degrades, three quarantine, recovery
        // on the next clean audit — same thresholds as the registry.
        assert_eq!(ladder.record(&policy, false, false), NodeHealth::Degraded);
        ladder.record(&policy, false, false);
        assert_eq!(ladder.record(&policy, false, false), NodeHealth::Quarantined);
        assert_eq!(ladder.record(&policy, true, false), NodeHealth::Healthy);

        // Byzantine ladder runs out at four consecutive anomalies and
        // eviction is terminal: clean audits no longer help.
        assert_eq!(ladder.record(&policy, true, true), NodeHealth::Suspect);
        assert_eq!(ladder.record(&policy, true, true), NodeHealth::Degraded);
        assert_eq!(ladder.record(&policy, true, true), NodeHealth::Quarantined);
        assert_eq!(ladder.record(&policy, true, true), NodeHealth::Evicted);
        assert_eq!(ladder.record(&policy, true, false), NodeHealth::Evicted);
    }

    #[test]
    fn honest_outdoor_node_approved() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::OpenField, NodeBehavior::Honest, &sky, 1))
            .unwrap();
        let verdicts = cloud.audit_all(600);
        let (_, v) = &verdicts[0];
        let v = v.as_ref().expect("reachable");
        assert!(v.outdoor_claim_verified);
        assert!(v.approved, "verdict {v:?}");
        assert!(v.is_complete());
        assert_eq!(cloud.marketplace().len(), 1);
        let health = cloud.health_report();
        assert_eq!(health[0].1, NodeHealth::Healthy);
        cloud.shutdown();
    }

    #[test]
    fn false_outdoor_claim_caught() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::Indoor, NodeBehavior::FalseClaims, &sky, 2))
            .unwrap();
        let verdicts = cloud.audit_all(601);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(v.claims.outdoor, "the lie");
        assert!(!v.install.outdoor, "the independent call");
        assert!(!v.outdoor_claim_verified);
        assert!(!v.approved);
        assert!(cloud.marketplace().is_empty());
        cloud.shutdown();
    }

    #[test]
    fn fabricator_rejected_by_trust() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(
                ScenarioKind::OpenField,
                NodeBehavior::Fabricator { ghosts: 120 },
                &sky,
                3,
            ))
            .unwrap();
        let verdicts = cloud.audit_all(602);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(!v.trust.flags.is_empty(), "fabrication must be flagged");
        assert!(!v.approved);
        cloud.shutdown();
    }

    #[test]
    fn mixed_fleet_marketplace() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        for (kind, behavior, seed) in [
            (ScenarioKind::OpenField, NodeBehavior::Honest, 10u64),
            (ScenarioKind::Rooftop, NodeBehavior::Honest, 11),
            (ScenarioKind::Indoor, NodeBehavior::Honest, 12),
            (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims, 13),
        ] {
            cloud.register(spawn(kind, behavior, &sky, seed)).unwrap();
        }
        assert_eq!(cloud.node_count(), 4);
        let verdicts = cloud.audit_all(603);
        assert_eq!(verdicts.len(), 4);

        let market = cloud.marketplace();
        let names: Vec<&str> = market.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"open-field"), "market {names:?}");
        assert!(names.contains(&"rooftop"), "market {names:?}");
        assert!(
            !names.contains(&"behind-window"),
            "false claimant must be excluded: {names:?}"
        );
        // The honest indoor node is honest about being indoor: the claim
        // verifies; whether it is *approved* depends on its trust score.
        for v in verdicts.iter().filter_map(|(_, v)| v.as_ref()) {
            if v.claims.name == "indoor" {
                assert!(v.outdoor_claim_verified);
            }
        }
        cloud.shutdown();
    }

    #[test]
    fn unreachable_node_reported() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        // The node daemon crashed before ever answering: registration
        // fails fast (SendFailed is not retried) and cleanly.
        let dead_link = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                crash_after: Some(0),
                ..LinkFaults::none()
            },
            4,
        );
        assert!(cloud.register(dead_link).is_none());
        assert_eq!(cloud.node_count(), 0);
        cloud.shutdown();
    }

    /// One node's daemon dies mid-audit; its neighbors' audits complete
    /// untouched and the victim still gets a partial verdict.
    #[test]
    fn node_dropping_mid_audit_leaves_neighbors_clean() {
        let sky = sky();
        let mut cloud = Cloud::new(sky.clone());
        cloud.retry_policy = RetryPolicy::quick();
        cloud
            .register(spawn(ScenarioKind::OpenField, NodeBehavior::Honest, &sky, 20))
            .unwrap();
        cloud
            .register(spawn(ScenarioKind::Rooftop, NodeBehavior::Honest, &sky, 21))
            .unwrap();
        // Daemon survives registration (1 request) + describe + survey,
        // then crashes: the cells and tv steps fail with SendFailed.
        let crasher = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::Indoor),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            22,
        );
        cloud.register(crasher).unwrap();

        let verdicts = cloud.audit_all(604);
        assert_eq!(verdicts.len(), 3);
        for (name, v) in &verdicts {
            let v = v.as_ref().expect("every node answered Describe");
            if name == "indoor" {
                assert!(!v.is_complete(), "crasher must be partial");
                let failed: Vec<&str> =
                    v.failed_steps.iter().map(|f| f.step.as_str()).collect();
                assert_eq!(failed, vec!["cells", "tv"]);
                assert!(v
                    .failed_steps
                    .iter()
                    .all(|f| f.error == LinkError::SendFailed));
                assert!(v
                    .trust
                    .flags
                    .iter()
                    .any(|f| f.contains("missing evidence")));
            } else {
                assert!(v.is_complete(), "{name} must be untouched");
            }
        }
        let health = cloud.health_report();
        let by_name = |n: &str| health.iter().find(|(name, _, _)| name == n).unwrap().1;
        assert_eq!(by_name("indoor"), NodeHealth::Degraded);
        assert_eq!(by_name("open-field"), NodeHealth::Healthy);
        assert_eq!(by_name("rooftop"), NodeHealth::Healthy);
        cloud.shutdown();
    }

    /// Repeated failures quarantine a node (and drop it from the
    /// marketplace); a clean audit re-admits it.
    #[test]
    fn quarantine_and_readmission_lifecycle() {
        let sky = sky();
        let mut cloud = Cloud::new(sky.clone());
        // Single attempt + tight tv budget so each hung sweep costs one
        // second, not a full retry ladder (retries are covered by the
        // transport tests; this test is about the lifecycle).
        cloud.retry_policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::quick()
        };
        cloud.retry_policy.budgets.tv = std::time::Duration::from_secs(1);
        // Registration is request 0; audits are 4 node-side requests
        // each (describe, survey, cells, tv). Hang the tv request of the
        // first three audits (indices 4, 8, 12), then behave.
        let flaky = spawn_node_with_faults(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            LinkFaults {
                hang_on: vec![4, 8, 12],
                ..LinkFaults::none()
            },
            30,
        );
        cloud.register(flaky).unwrap();

        for (round, expected) in [
            (1u64, NodeHealth::Degraded),
            (2, NodeHealth::Degraded),
            (3, NodeHealth::Quarantined),
        ] {
            let verdicts = cloud.audit_all(700 + round);
            let v = verdicts[0].1.as_ref().expect("describe still answers");
            assert!(!v.is_complete(), "round {round} must be partial");
            assert_eq!(cloud.health_report()[0].1, expected, "round {round}");
        }
        assert!(
            cloud.marketplace().is_empty(),
            "quarantined nodes are not rentable"
        );
        // Probation: the cheap probe answers, the full audit is clean,
        // and the node is re-admitted.
        let verdicts = cloud.audit_all(704);
        let v = verdicts[0].1.as_ref().expect("re-admitted");
        assert!(v.is_complete());
        let (_, health, failures) = cloud.health_report()[0].clone();
        assert_eq!(health, NodeHealth::Healthy);
        assert_eq!(failures, 0);
        assert!(!cloud.marketplace().is_empty(), "rentable again");
        cloud.shutdown();
    }
}
