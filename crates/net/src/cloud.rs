//! The cloud aggregator: remote calibration, claim verification, and the
//! marketplace gate.
//!
//! The cloud never sees the node's environment — only what comes back
//! over the link: the operator's claims, a survey it *commissioned* (with
//! a seed the operator couldn't predict), and the cross-band sweeps. From
//! those plus its own ground truth (the tracking service and the public
//! tower databases) it independently verifies the claims, which is
//! precisely the paper's end goal: "These deductions can be used to
//! independently verify claims about a node installation."

use crate::protocol::{NodeClaims, Request, Response};
use crate::transport::Link;
use aircal_aircraft::TrafficSim;
use aircal_cellular::{paper_towers, CellMeasurement, CellScanner};
use aircal_core::classifier::{IndoorOutdoorClassifier, InstallFeatures, InstallVerdict};
use aircal_core::fov::{FovEstimate, FovEstimator};
use aircal_core::freqprofile::{BandMeasurement, FrequencyProfile, SourceKind};
use aircal_core::survey::{SurveyConfig, SurveyResult};
use aircal_core::trust::{TrustAuditor, TrustScore};
use aircal_env::{SensorSite, World};
use aircal_geo::LatLon;
use aircal_tv::{paper_tv_towers, TvMeasurement, TvPowerProbe};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything the cloud concluded about one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationVerdict {
    /// What the operator claimed.
    pub claims: NodeClaims,
    /// Field-of-view estimate from the commissioned survey.
    pub fov: FovEstimate,
    /// Cross-band profile assembled from the sweeps.
    pub profile: FrequencyProfile,
    /// The classifier's independent indoor/outdoor call.
    pub install: InstallVerdict,
    /// Whether the operator's indoor/outdoor claim survived verification.
    pub outdoor_claim_verified: bool,
    /// Highest frequency with a usable measurement, Hz.
    pub measured_max_freq_hz: Option<f64>,
    /// Trust audit of the reported data.
    pub trust: TrustScore,
    /// Admitted to the marketplace?
    pub approved: bool,
}

/// One row in the cloud's registry.
pub struct NodeRecord {
    /// The node's link (None once shut down).
    pub link: Link,
    /// Last verdict, if audited.
    pub verdict: Option<VerificationVerdict>,
    /// Did the node answer its last audit?
    pub reachable: bool,
}

/// The aggregator.
pub struct Cloud {
    /// Ground truth the cloud can consult independently (the tracking
    /// service's view of the sky).
    pub sky: Arc<TrafficSim>,
    /// Survey configuration commissioned from nodes.
    pub survey_config: SurveyConfig,
    /// Classifier used for claim verification.
    pub classifier: IndoorOutdoorClassifier,
    /// Trust auditor.
    pub auditor: TrustAuditor,
    /// Registered nodes, by name.
    registry: parking_lot::Mutex<std::collections::BTreeMap<String, NodeRecord>>,
}

impl Cloud {
    /// Create a cloud with the given ground-truth sky.
    pub fn new(sky: Arc<TrafficSim>) -> Self {
        Self {
            sky,
            survey_config: SurveyConfig::quick(),
            classifier: IndoorOutdoorClassifier::default(),
            auditor: TrustAuditor::default(),
            registry: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Register a node by asking it to describe itself. Returns the
    /// claimed name, or `None` if unreachable.
    pub fn register(&self, mut link: Link) -> Option<String> {
        let claims = match link.call(Request::Describe) {
            Some(Response::Description(c)) => c,
            _ => {
                // Unreachable at registration: keep the link around as
                // unreachable so the operator can be chased.
                return None;
            }
        };
        let name = claims.name.clone();
        self.registry.lock().insert(
            name.clone(),
            NodeRecord {
                link,
                verdict: None,
                reachable: true,
            },
        );
        Some(name)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Audit every registered node with seeds derived from `base_seed`.
    /// Returns verdicts sorted by name.
    pub fn audit_all(&self, base_seed: u64) -> Vec<(String, Option<VerificationVerdict>)> {
        let mut registry = self.registry.lock();
        let mut out = Vec::new();
        for (i, (name, record)) in registry.iter_mut().enumerate() {
            let seed = base_seed.wrapping_add(i as u64 * 0x9E37_79B9);
            let verdict = self.audit_one(&mut record.link, seed);
            record.reachable = verdict.is_some();
            record.verdict = verdict.clone();
            out.push((name.clone(), verdict));
        }
        out
    }

    /// Audit one node over its link.
    pub fn audit_one(&self, link: &mut Link, seed: u64) -> Option<VerificationVerdict> {
        let claims = match link.call(Request::Describe)? {
            Response::Description(c) => c,
            _ => return None,
        };
        let survey = match link.call(Request::RunSurvey {
            config: self.survey_config,
            seed,
        })? {
            Response::Survey(s) => s,
            _ => return None,
        };
        let cells = match link.call(Request::ScanCells { seed: seed ^ 0xCE11 })? {
            Response::Cells(c) => c,
            _ => return None,
        };
        let tv = match link.call(Request::SweepTv { seed: seed ^ 0x7E1E })? {
            Response::Tv(t) => t,
            _ => return None,
        };
        Some(self.judge(claims, survey, cells, tv, seed))
    }

    /// Pure verification logic (no I/O): turn reported measurements into a
    /// verdict. Public so the tests and the example can drive it directly.
    pub fn judge(
        &self,
        claims: NodeClaims,
        survey: SurveyResult,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> VerificationVerdict {
        let fov = FovEstimator::default().estimate(&survey.points);
        let profile = self.assemble_profile(&claims.position, cells, tv, seed);
        let features = InstallFeatures::extract(&survey, &fov, &profile);
        let install = self.classifier.classify(&features);
        let trust = self
            .auditor
            .audit(&survey, &profile, &self.sky, fov.open_fraction());
        let outdoor_claim_verified = claims.outdoor == install.outdoor;
        let approved = trust.is_trustworthy() && outdoor_claim_verified;
        VerificationVerdict {
            measured_max_freq_hz: profile.max_usable_freq_hz(),
            claims,
            fov,
            install,
            outdoor_claim_verified,
            trust,
            approved,
            profile,
        }
    }

    /// Build the band profile: reported measurements vs the cloud's own
    /// clear-sky expectation (computed from the public tower databases at
    /// the claimed coordinates — no access to the node's environment).
    fn assemble_profile(
        &self,
        claimed_position: &LatLon,
        cells: Vec<CellMeasurement>,
        tv: Vec<TvMeasurement>,
        seed: u64,
    ) -> FrequencyProfile {
        let mut origin = *claimed_position;
        origin.alt_m = 0.0;
        let clear_world = World::open(origin);
        let clear_site = SensorSite::outdoor("expectation", *claimed_position);
        let cell_db = paper_towers(&origin);
        let tv_db = paper_tv_towers(&origin);
        let clear_cells = CellScanner::default().scan(&clear_world, &clear_site, &cell_db, seed ^ 1);
        let clear_tv = TvPowerProbe::default().sweep(&clear_world, &clear_site, &tv_db, seed ^ 1);

        let mut bands = Vec::new();
        for (r, c) in cells.iter().zip(&clear_cells) {
            bands.push(BandMeasurement {
                label: r.tower_name.clone(),
                freq_hz: r.freq_hz,
                source: SourceKind::Cellular,
                measured_db: r.rsrp_dbm,
                expected_clear_db: c.rsrp_dbm.unwrap_or(-120.0),
            });
        }
        for (r, c) in tv.iter().zip(&clear_tv) {
            bands.push(BandMeasurement {
                label: r.station.clone(),
                freq_hz: r.center_hz,
                source: SourceKind::BroadcastTv,
                measured_db: Some(r.power_dbfs),
                expected_clear_db: c.power_dbfs,
            });
        }
        bands.sort_by(|a, b| a.freq_hz.partial_cmp(&b.freq_hz).unwrap());
        FrequencyProfile { bands }
    }

    /// The marketplace: approved nodes, cheapest first.
    pub fn marketplace(&self) -> Vec<(String, f64, f64)> {
        let registry = self.registry.lock();
        let mut listings: Vec<(String, f64, f64)> = registry
            .iter()
            .filter_map(|(name, rec)| {
                let v = rec.verdict.as_ref()?;
                v.approved.then(|| {
                    (
                        name.clone(),
                        v.claims.price_per_hour,
                        v.trust.score,
                    )
                })
            })
            .collect();
        listings.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        listings
    }

    /// Shut down every registered node.
    pub fn shutdown(self) {
        let mut registry = self.registry.into_inner();
        while let Some((_, record)) = registry.pop_first() {
            record.link.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeAgent, NodeBehavior};
    use crate::transport::spawn_node;
    use aircal_aircraft::TrafficConfig;
    use aircal_env::{Scenario, ScenarioKind};

    fn sky() -> Arc<TrafficSim> {
        let center = aircal_env::scenarios::testbed_origin();
        Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 40,
                ..TrafficConfig::paper_default(center)
            },
            500,
        ))
    }

    fn spawn(kind: ScenarioKind, behavior: NodeBehavior, sky: &Arc<TrafficSim>, seed: u64) -> Link {
        spawn_node(
            NodeAgent::new(Scenario::build(kind), behavior, sky.clone()),
            0.0,
            seed,
        )
    }

    #[test]
    fn honest_outdoor_node_approved() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::OpenField, NodeBehavior::Honest, &sky, 1))
            .unwrap();
        let verdicts = cloud.audit_all(600);
        let (_, v) = &verdicts[0];
        let v = v.as_ref().expect("reachable");
        assert!(v.outdoor_claim_verified);
        assert!(v.approved, "verdict {v:?}");
        assert_eq!(cloud.marketplace().len(), 1);
        cloud.shutdown();
    }

    #[test]
    fn false_outdoor_claim_caught() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(ScenarioKind::Indoor, NodeBehavior::FalseClaims, &sky, 2))
            .unwrap();
        let verdicts = cloud.audit_all(601);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(v.claims.outdoor, "the lie");
        assert!(!v.install.outdoor, "the independent call");
        assert!(!v.outdoor_claim_verified);
        assert!(!v.approved);
        assert!(cloud.marketplace().is_empty());
        cloud.shutdown();
    }

    #[test]
    fn fabricator_rejected_by_trust() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        cloud
            .register(spawn(
                ScenarioKind::OpenField,
                NodeBehavior::Fabricator { ghosts: 120 },
                &sky,
                3,
            ))
            .unwrap();
        let verdicts = cloud.audit_all(602);
        let v = verdicts[0].1.as_ref().unwrap();
        assert!(!v.trust.flags.is_empty(), "fabrication must be flagged");
        assert!(!v.approved);
        cloud.shutdown();
    }

    #[test]
    fn mixed_fleet_marketplace() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        for (kind, behavior, seed) in [
            (ScenarioKind::OpenField, NodeBehavior::Honest, 10u64),
            (ScenarioKind::Rooftop, NodeBehavior::Honest, 11),
            (ScenarioKind::Indoor, NodeBehavior::Honest, 12),
            (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims, 13),
        ] {
            cloud.register(spawn(kind, behavior, &sky, seed)).unwrap();
        }
        assert_eq!(cloud.node_count(), 4);
        let verdicts = cloud.audit_all(603);
        assert_eq!(verdicts.len(), 4);

        let market = cloud.marketplace();
        let names: Vec<&str> = market.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"open-field"), "market {names:?}");
        assert!(names.contains(&"rooftop"), "market {names:?}");
        assert!(
            !names.contains(&"behind-window"),
            "false claimant must be excluded: {names:?}"
        );
        // The honest indoor node is honest about being indoor: the claim
        // verifies; whether it is *approved* depends on its trust score.
        for v in verdicts.iter().filter_map(|(_, v)| v.as_ref()) {
            if v.claims.name == "indoor" {
                assert!(v.outdoor_claim_verified);
            }
        }
        cloud.shutdown();
    }

    #[test]
    fn unreachable_node_reported() {
        let sky = sky();
        let cloud = Cloud::new(sky.clone());
        // 100%-lossy link: registration fails cleanly.
        let dead_link = spawn_node(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            0.999,
            4,
        );
        assert!(cloud.register(dead_link).is_none());
        assert_eq!(cloud.node_count(), 0);
        cloud.shutdown();
    }
}
