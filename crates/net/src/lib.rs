//! The crowd-sourced sensor network itself.
//!
//! §2 of the paper sketches the deployment the calibration exists for:
//! volunteer-run sensor nodes (SDR + host computer) stream measurements to
//! a cloud; operators "offer virtualized spectrum monitoring resources,
//! which users then rent and pay for"; and the open problem is *trusting*
//! nodes installed by strangers — possibly careless, possibly dishonest.
//!
//! This crate is that deployment, in-process:
//!
//! * [`protocol`] — the node⇄cloud wire messages (serde; a real system
//!   would put them on TLS, we put them on crossbeam channels);
//! * [`node`] — the node agent: owns an installation (a
//!   [`aircal_env::Scenario`]), services measurement requests, and may be
//!   [`node::NodeBehavior::Honest`] or one of the cheater models the paper
//!   worries about;
//! * [`cloud`] — the aggregator: registry, remote calibration driver,
//!   claim verification ("These deductions can be used to independently
//!   verify claims about a node installation"), and the rentable-node
//!   marketplace query;
//! * [`transport`] — the duplex link, with a seeded chaos plan
//!   ([`transport::LinkFaults`]: drops, latency, burst outages, crashes,
//!   hangs, corrupted replies), typed [`transport::LinkError`]s, and a
//!   deterministic retry/backoff policy ([`transport::RetryPolicy`]).
//!
//! The rented *product* is also here: [`protocol::Request::MonitorBand`]
//! makes a node capture a band through its real environment and return a
//! Welch PSD — so renting an obstructed node yields (correctly)
//! pessimistic spectrum data, closing the loop on why calibration is
//! worth paying for.
//!
//! Everything stays deterministic: node work is seeded, threads only add
//! scheduling nondeterminism to *ordering*, and the registry sorts by
//! name before reporting.

pub mod adversary;
pub mod cloud;
pub mod node;
pub mod protocol;
pub mod snapshot;
pub mod transport;

pub use adversary::{Adversary, AdversaryKind};
pub use cloud::{
    Cloud, ConsistencyPolicy, HealthLadder, HealthPolicy, NodeForensics, NodeHealth, NodeRecord,
    RecoveryReport, ReportFingerprints, SpotCheck, StepFailure, StepOutcome, VerificationVerdict,
};
pub use node::{NodeAgent, NodeBehavior, ServiceLedger, ServiceOutcome};
pub use protocol::{Envelope, NodeClaims, Request, Response, Sequenced};
pub use snapshot::{RegistryNodeState, SnapshotError};
pub use transport::{
    node_id_for, spawn_node, spawn_node_with_faults, AttemptVerdict, BurstOutage, Link, LinkError,
    LinkFaults, LinkStats, NodeVerdict, RetryPolicy, TimeoutBudgets,
};
