//! The node ⇄ cloud transport: a duplex crossbeam-channel link plus the
//! node service loop on its own OS thread — with a deterministic failure
//! model and a retry layer on top.
//!
//! A crowd-sourced fleet runs on volunteer links: dropped messages, burst
//! outages, crashed host daemons, wedged threads and garbled replies are
//! the *normal* operating condition, not the exception. [`LinkFaults`]
//! injects all of those from a seeded plan (same seed ⇒ same faults, so
//! every chaos run is reproducible), [`RetryPolicy`] governs how the
//! cloud retries around them, and [`LinkStats`] counts what actually
//! happened on the wire.

use crate::node::NodeAgent;
use crate::protocol::{Envelope, Request, Response, Sequenced};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many accepted sequence numbers the per-node dedup window
/// remembers. Far larger than any reply that could still be in flight
/// (the link is half-duplex: at most one request outstanding).
const DEDUP_WINDOW: usize = 64;

/// Stable node id for the envelope: FNV-1a over the registered name, so
/// the id survives restarts and is identical on every machine.
pub fn node_id_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a [`Link::call`] failed. The variants matter to the caller: a dead
/// node thread is permanent, everything else is worth a retry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkError {
    /// The node's service thread is gone (request channel disconnected).
    /// Retrying cannot help; the node must be respawned by its operator.
    SendFailed,
    /// No reply arrived within the timeout budget. The node may be hung
    /// or the reply may still be in flight — retryable.
    Timeout,
    /// The message was swallowed by the (simulated) network, in either
    /// direction — retryable.
    Dropped,
    /// A parseable reply arrived, but of the wrong kind for the request
    /// (garbled frame or misbehaving node) — retryable, counted apart.
    WrongKind {
        /// The kind tag the node actually returned.
        got: String,
    },
}

impl LinkError {
    /// Whether another attempt over the same link could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, LinkError::SendFailed)
    }
}

impl core::fmt::Display for LinkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkError::SendFailed => write!(f, "node thread dead"),
            LinkError::Timeout => write!(f, "timed out"),
            LinkError::Dropped => write!(f, "dropped by the network"),
            LinkError::WrongKind { got } => write!(f, "wrong-kind reply ({got})"),
        }
    }
}

/// Per-link wire counters, updated by every attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Wire attempts made (every send tried, including retries).
    pub attempts: u64,
    /// Attempts that returned the expected reply.
    pub ok: u64,
    /// Re-attempts made by [`Link::call_with_retry`].
    pub retries: u64,
    /// Calls where [`Link::call_with_retry`] exhausted its budget.
    pub gave_up: u64,
    /// Replies of the wrong kind for their request.
    pub wrong_kind: u64,
    /// Messages swallowed by the network (either direction).
    pub dropped: u64,
    /// Attempts that hit the reply deadline.
    pub timeouts: u64,
    /// Attempts that found the node thread dead.
    pub send_failed: u64,
    /// Calls answered on the very first attempt. Split from
    /// [`retried_ok`](Self::retried_ok) so a flaky link that limps
    /// through on retries is distinguishable from a clean one — before
    /// the split, a retry success was indistinguishable from a clean
    /// call and flaky links hid inside healthy `health_report` rows.
    pub first_try_ok: u64,
    /// Calls that failed at least once and then succeeded on a retry.
    pub retried_ok: u64,
    /// Stale replies discarded by the dedup window: duplicated frames,
    /// reordered (late) frames, and replies to attempts that already
    /// timed out. These are *not* wire attempts, so the per-attempt
    /// identity `attempts == ok + dropped + timeouts + send_failed +
    /// wrong_kind` is unaffected.
    pub stale_drained: u64,
}

impl LinkStats {
    /// Calls that completed successfully, however many attempts it took.
    pub fn calls_ok(&self) -> u64 {
        self.first_try_ok + self.retried_ok
    }

    /// Fraction of successful calls that needed at least one retry —
    /// the flakiness signal `health_report` consumers sort by.
    pub fn retried_fraction(&self) -> f64 {
        let calls = self.calls_ok();
        if calls == 0 {
            0.0
        } else {
            self.retried_ok as f64 / calls as f64
        }
    }
}

/// A contiguous run of wire attempts during which the link is down:
/// requests vanish before reaching the node (a last-mile outage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstOutage {
    /// First affected wire-attempt index (0-based, per link).
    pub start: u64,
    /// Number of consecutive attempts affected.
    pub len: u64,
}

impl BurstOutage {
    fn covers(&self, idx: u64) -> bool {
        idx >= self.start && idx < self.start.saturating_add(self.len)
    }
}

/// Deterministic fault plan for one link.
///
/// Probabilistic faults draw from the link's seeded ChaCha stream (same
/// seed ⇒ same faults); scheduled faults key off message counters, so a
/// test can predict exactly which attempts fail. The two sides count
/// differently: [`burst_outages`](Self::burst_outages) and
/// [`corrupt_on`](Self::corrupt_on) index *wire attempts* (cloud side,
/// retries included), while [`hang_on`](Self::hang_on) and
/// [`crash_after`](Self::crash_after) index *requests the node actually
/// received* (attempts minus anything dropped before delivery). The
/// node-side knobs are installed at spawn time; mutating them on a live
/// link's `faults` field has no effect.
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    /// Per-attempt probability the request vanishes before the node,
    /// [0, 1). Values ≥ 1 are silently clamped to 0.999 at the draw — a
    /// link that dropped *everything* would turn every call into a
    /// guaranteed timeout and hide the code path under test.
    pub request_drop: f64,
    /// Per-attempt probability the reply vanishes *after* the node did
    /// the work (answer lost, effort wasted), [0, 1); clamped like
    /// `request_drop`.
    pub response_drop: f64,
    /// Extra one-way latency added to every delivered request, ms.
    pub latency_ms: u64,
    /// Scheduled burst outages, by wire-attempt index.
    pub burst_outages: Vec<BurstOutage>,
    /// The node's host daemon crashes (service thread exits) after
    /// servicing this many requests; everything after is `SendFailed`.
    pub crash_after: Option<u64>,
    /// Node-received request indices swallowed mid-service: the node
    /// wedges, never replies, and the cloud eats a timeout.
    pub hang_on: Vec<u64>,
    /// Wire-attempt indices whose reply is replaced with a parseable but
    /// wrong-kind message (garbled frame).
    pub corrupt_on: Vec<u64>,
    /// Wire-attempt indices whose reply is *duplicated*: the matching
    /// copy is delivered normally and a second identical copy arrives
    /// later (drained by the dedup window as stale). Wire-attempt
    /// indexed, cloud side, like `burst_outages`/`corrupt_on`.
    pub duplicate_on: Vec<u64>,
    /// Wire-attempt indices whose reply is *reordered*: it arrives
    /// after the caller's deadline, behind newer traffic. The caller
    /// eats a timeout, retries, and the late original is drained as
    /// stale by the dedup window. Wire-attempt indexed, cloud side.
    /// Note the node *did* service the request — a retried call costs a
    /// second serviced request, exactly like a real at-least-once wire.
    pub reorder_on: Vec<u64>,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub fn none() -> Self {
        Self::default()
    }

    /// The original single-knob lossy link: requests dropped with the
    /// given probability, nothing else.
    pub fn lossy(request_drop: f64) -> Self {
        Self {
            request_drop,
            ..Self::default()
        }
    }

    /// Offline, event-driven evaluation of this plan for wire attempt
    /// `idx`: what the link does to the attempt, without threads,
    /// channels, or sleeps. Probabilistic faults draw from `rng` in the
    /// same order as the live [`Link::attempt`] path (request drop, then
    /// response drop), so a fixed seed yields a fixed fault schedule.
    /// The discrete-event campaign engine (`aircal-sim`) turns the
    /// returned verdict into delivery/loss events; node-side faults
    /// (`hang_on`, `crash_after`) are evaluated separately via
    /// [`LinkFaults::node_verdict`] because they key off requests the
    /// node actually *received*.
    pub fn attempt_verdict(&self, idx: u64, rng: &mut ChaCha8Rng) -> AttemptVerdict {
        if self.burst_outages.iter().any(|b| b.covers(idx)) {
            return AttemptVerdict::DroppedRequest;
        }
        let p_req = self.request_drop.clamp(0.0, 0.999);
        if p_req > 0.0 && rng.gen_range(0.0..1.0) < p_req {
            return AttemptVerdict::DroppedRequest;
        }
        let p_resp = self.response_drop.clamp(0.0, 0.999);
        if p_resp > 0.0 && rng.gen_range(0.0..1.0) < p_resp {
            return AttemptVerdict::DroppedResponse;
        }
        if self.corrupt_on.contains(&idx) {
            return AttemptVerdict::Corrupted;
        }
        if self.duplicate_on.contains(&idx) {
            return AttemptVerdict::Duplicated {
                latency_ms: self.latency_ms,
            };
        }
        if self.reorder_on.contains(&idx) {
            return AttemptVerdict::Reordered {
                latency_ms: self.latency_ms,
            };
        }
        AttemptVerdict::Deliver {
            latency_ms: self.latency_ms,
        }
    }

    /// Offline evaluation of the node-side fault knobs for the
    /// `served`-th request the node receives (0-based): does the service
    /// loop answer, wedge, or find the host daemon dead? Mirrors the
    /// [`spawn_node_with_faults`] service-thread semantics exactly.
    pub fn node_verdict(&self, served: u64) -> NodeVerdict {
        if self.crash_after.is_some_and(|n| served >= n) {
            NodeVerdict::Crashed
        } else if self.hang_on.contains(&served) {
            NodeVerdict::Hang
        } else {
            NodeVerdict::Service
        }
    }
}

/// What a fault plan does to one wire attempt, evaluated offline (no
/// threads) by [`LinkFaults::attempt_verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptVerdict {
    /// The request reaches the node and (node faults permitting) the
    /// reply comes back after the link's extra one-way latency.
    Deliver {
        /// Extra one-way latency the plan adds, ms.
        latency_ms: u64,
    },
    /// The request vanishes before the node (drop or burst outage): the
    /// node never sees it, the caller eats a timeout.
    DroppedRequest,
    /// The node does the work but the reply vanishes on the way back.
    DroppedResponse,
    /// The reply arrives garbled: parseable, wrong kind.
    Corrupted,
    /// The reply is delivered *and* an identical duplicate copy arrives
    /// one delivery slot later. Only the dedup window stands between the
    /// duplicate and a double-applied report.
    Duplicated {
        /// Extra one-way latency the plan adds, ms.
        latency_ms: u64,
    },
    /// The reply is delivered late, behind newer traffic: by the time it
    /// arrives the caller has timed out and moved on, so it lands as a
    /// stale retransmission of an already-superseded sequence number.
    Reordered {
        /// Extra one-way latency the plan adds, ms.
        latency_ms: u64,
    },
}

/// What the node-side service loop does with a received request,
/// evaluated offline by [`LinkFaults::node_verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeVerdict {
    /// Serviced normally.
    Service,
    /// Wedged mid-service: the request is swallowed, no reply ever.
    Hang,
    /// The host daemon is dead; every send fails from now on.
    Crashed,
}

/// Per-request-kind reply deadlines. A commissioned survey renders tens
/// of seconds of virtual signal; a describe is a struct copy — a single
/// global timeout either wedges the cloud for minutes per dead node or
/// kills slow-but-honest sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutBudgets {
    /// `Describe` deadline.
    pub describe: Duration,
    /// `RunSurvey` deadline.
    pub survey: Duration,
    /// `ScanCells` deadline.
    pub cells: Duration,
    /// `SweepTv` deadline.
    pub tv: Duration,
    /// `MonitorBand` deadline.
    pub monitor: Duration,
    /// `Shutdown` deadline.
    pub shutdown: Duration,
}

impl TimeoutBudgets {
    /// The deadline for one request.
    pub fn for_request(&self, request: &Request) -> Duration {
        match request {
            Request::Describe => self.describe,
            Request::RunSurvey { .. } => self.survey,
            Request::ScanCells { .. } => self.cells,
            Request::SweepTv { .. } => self.tv,
            Request::MonitorBand { .. } => self.monitor,
            // An attestation is a struct copy over the node's in-memory
            // ledger — describe-class latency.
            Request::Attest { .. } => self.describe,
            Request::Shutdown => self.shutdown,
        }
    }
}

/// How the cloud calls a flaky node: bounded attempts, deterministic
/// exponential backoff with seeded jitter, per-kind timeout budgets.
///
/// Budgets must sit well above honest compute time: a genuine timeout on
/// a *slow* (rather than hung) node would leave its reply in flight, and
/// although [`Link::call`] drains stale replies before the next send, a
/// reply racing the drain would cost determinism.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Backoff cap (pre-jitter).
    pub max_backoff: Duration,
    /// Fraction of the capped backoff added as seeded jitter, [0, 1].
    pub jitter: f64,
    /// Reply deadlines by request kind.
    pub budgets: TimeoutBudgets,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(5),
            jitter: 0.25,
            budgets: TimeoutBudgets {
                describe: Duration::from_secs(10),
                survey: Duration::from_secs(90),
                cells: Duration::from_secs(30),
                tv: Duration::from_secs(30),
                monitor: Duration::from_secs(30),
                shutdown: Duration::from_secs(5),
            },
        }
    }
}

impl RetryPolicy {
    /// Millisecond-scale backoffs and second-scale budgets: generous
    /// against quick-mode compute time, tiny against wall-clock test
    /// budgets.
    pub fn quick() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            budgets: TimeoutBudgets {
                describe: Duration::from_secs(5),
                survey: Duration::from_secs(30),
                cells: Duration::from_secs(10),
                tv: Duration::from_secs(10),
                monitor: Duration::from_secs(10),
                shutdown: Duration::from_secs(2),
            },
        }
    }

    /// Backoff before retry number `retry` (0-based), jitter drawn from
    /// `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut ChaCha8Rng) -> Duration {
        let exp = self.base_backoff.as_secs_f64() * self.multiplier.powi(retry as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        let jitter = if self.jitter > 0.0 {
            capped * self.jitter * rng.gen_range(0.0..1.0)
        } else {
            0.0
        };
        Duration::from_secs_f64(capped + jitter)
    }

    /// The full backoff schedule a call could sleep through, generated
    /// from a seed. Deterministic: same seed ⇒ same schedule.
    pub fn backoff_schedule(&self, seed: u64, retries: u32) -> Vec<Duration> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..retries).map(|r| self.backoff(r, &mut rng)).collect()
    }
}

/// The cloud's handle to one node.
pub struct Link {
    /// `None` once a clean [`Link::shutdown`] has closed the channel.
    tx: Option<Sender<Sequenced<Request>>>,
    rx: Receiver<Sequenced<Response>>,
    /// Cloud-side fault plan (drops, bursts, latency, corruption). The
    /// node-side knobs (`hang_on`, `crash_after`) were cloned into the
    /// service thread at spawn time.
    pub faults: LinkFaults,
    /// Fallback reply deadline for bare [`Link::call`]; retry paths use
    /// the policy's per-kind budgets instead.
    pub timeout: Duration,
    /// Envelope node id (FNV-1a of the node name), stamped on every
    /// request.
    node_id: u64,
    rng: ChaCha8Rng,
    handle: Option<JoinHandle<()>>,
    sent: u64,
    stats: LinkStats,
    /// Replies the fault plan held back (duplicates, reordered frames);
    /// they "arrive" at the next attempt and are drained as stale.
    stale_pending: Vec<Sequenced<Response>>,
    /// Per-node dedup window: the most recent sequence numbers whose
    /// reply was accepted. A reply whose seq is not the one in flight —
    /// or is already in this window — is stale and never reaches a
    /// cloud handler, which is what makes every handler idempotent
    /// under at-least-once delivery.
    accepted: VecDeque<u64>,
}

impl Link {
    /// One wire attempt: send the request and wait for the matching
    /// reply, using the link's default [`timeout`](Self::timeout).
    pub fn call(&mut self, request: Request) -> Result<Response, LinkError> {
        let timeout = self.timeout;
        let out = self.attempt(request, timeout);
        if out.is_ok() {
            self.stats.first_try_ok += 1;
        }
        out
    }

    /// One wire attempt with an explicit reply deadline.
    pub fn call_with_timeout(
        &mut self,
        request: Request,
        timeout: Duration,
    ) -> Result<Response, LinkError> {
        let out = self.attempt(request, timeout);
        if out.is_ok() {
            self.stats.first_try_ok += 1;
        }
        out
    }

    /// Call with retries under `policy`: per-kind timeout budget,
    /// exponential backoff with seeded jitter between attempts. A
    /// [`LinkError::SendFailed`] is returned immediately — there is no
    /// point retrying a dead thread.
    pub fn call_with_retry(
        &mut self,
        request: Request,
        policy: &RetryPolicy,
    ) -> Result<Response, LinkError> {
        let _span = aircal_obs::span!("link_call");
        let timeout = policy.budgets.for_request(&request);
        let mut last = LinkError::Timeout;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                let pause = policy.backoff(attempt - 1, &mut self.rng);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match self.attempt(request.clone(), timeout) {
                Ok(resp) => {
                    if attempt == 0 {
                        self.stats.first_try_ok += 1;
                    } else {
                        self.stats.retried_ok += 1;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    let retryable = e.is_retryable();
                    last = e;
                    if !retryable {
                        break;
                    }
                }
            }
        }
        self.stats.gave_up += 1;
        Err(last)
    }

    /// Record a seq as accepted in the bounded dedup window.
    fn mark_accepted(&mut self, seq: u64) {
        self.accepted.push_back(seq);
        while self.accepted.len() > DEDUP_WINDOW {
            self.accepted.pop_front();
        }
    }

    fn attempt(&mut self, request: Request, timeout: Duration) -> Result<Response, LinkError> {
        let idx = self.sent;
        self.sent += 1;
        self.stats.attempts += 1;
        // Drain the dedup window's backlog: duplicated or reordered
        // replies the fault plan held back, plus anything still sitting
        // in the channel from an attempt that timed out. Every discard
        // is counted — these are exactly the frames that would have
        // double-applied effects without the envelope.
        self.stats.stale_drained += self.stale_pending.drain(..).count() as u64;
        while self.rx.try_recv().is_ok() {
            self.stats.stale_drained += 1;
        }
        let expected = request.expected_response_kind();

        if self.faults.burst_outages.iter().any(|b| b.covers(idx)) {
            self.stats.dropped += 1;
            return Err(LinkError::Dropped);
        }
        let p_req = self.faults.request_drop.clamp(0.0, 0.999);
        if p_req > 0.0 && self.rng.gen_range(0.0..1.0) < p_req {
            self.stats.dropped += 1;
            return Err(LinkError::Dropped);
        }
        if self.faults.latency_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.faults.latency_ms));
        }
        let env = Envelope {
            node_id: self.node_id,
            seq: idx,
        };
        let tx = self.tx.as_ref().expect("link still open");
        if tx
            .send(Sequenced {
                env,
                body: request,
            })
            .is_err()
        {
            self.stats.send_failed += 1;
            return Err(LinkError::SendFailed);
        }
        // Wait for the reply whose envelope matches this attempt's seq;
        // anything else that arrives inside the deadline is stale
        // (late reply to an earlier attempt) and is drained, counted,
        // and never surfaced to a handler.
        let deadline = Instant::now() + timeout;
        let sequenced = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(r) => {
                    if r.env.seq != idx || self.accepted.contains(&r.env.seq) {
                        self.stats.stale_drained += 1;
                        continue;
                    }
                    break r;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.timeouts += 1;
                    return Err(LinkError::Timeout);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The node thread died between our send and its reply.
                    self.stats.send_failed += 1;
                    return Err(LinkError::SendFailed);
                }
            }
        };
        let p_resp = self.faults.response_drop.clamp(0.0, 0.999);
        if p_resp > 0.0 && self.rng.gen_range(0.0..1.0) < p_resp {
            self.stats.dropped += 1;
            return Err(LinkError::Dropped);
        }
        // Fault priority mirrors the offline `attempt_verdict`: corrupt,
        // then duplicate, then reorder.
        if !self.faults.corrupt_on.contains(&idx) {
            if self.faults.duplicate_on.contains(&idx) {
                // The wire delivers the reply twice; the second copy
                // lands at the next attempt and is drained as stale.
                self.stale_pending.push(sequenced.clone());
            } else if self.faults.reorder_on.contains(&idx) {
                // The reply exists but is stuck behind newer traffic: it
                // misses this attempt's deadline and resurfaces — stale —
                // at the next one. The node serviced the request, so a
                // retried call costs a second serviced request, exactly
                // as on a real at-least-once wire.
                self.stale_pending.push(sequenced);
                self.stats.timeouts += 1;
                return Err(LinkError::Timeout);
            }
        }
        let resp = if self.faults.corrupt_on.contains(&idx) {
            garble(sequenced.body)
        } else {
            sequenced.body
        };
        if resp.kind() != expected {
            self.stats.wrong_kind += 1;
            return Err(LinkError::WrongKind {
                got: resp.kind().to_string(),
            });
        }
        self.mark_accepted(idx);
        self.stats.ok += 1;
        Ok(resp)
    }

    /// Snapshot of the wire counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The envelope node id this link stamps on requests.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// Shut the node down cleanly and join its thread. After this, the
    /// `Drop` impl has nothing left to do (the request channel is closed
    /// and the thread joined here).
    pub fn shutdown(mut self) {
        if let Some(tx) = &self.tx {
            let env = Envelope {
                node_id: self.node_id,
                seq: self.sent,
            };
            let _ = tx.send(Sequenced {
                env,
                body: Request::Shutdown,
            });
        }
        // Drain the Bye; capped so a node that swallowed the Shutdown (a
        // hang fault) cannot wedge us for the full call timeout.
        let _ = self
            .rx
            .recv_timeout(self.timeout.min(Duration::from_secs(2)));
        // Close the request channel: a node that never saw the Shutdown
        // still observes the disconnect and exits its service loop.
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        // After a clean `shutdown()` both the handle and the sender are
        // gone and this is a no-op.
        let Some(h) = self.handle.take() else { return };
        if let Some(tx) = self.tx.take() {
            let env = Envelope {
                node_id: self.node_id,
                seq: self.sent,
            };
            let _ = tx.send(Sequenced {
                env,
                body: Request::Shutdown,
            });
            // Dropping `tx` disconnects the channel, so the node exits
            // even if a fault swallowed the Shutdown request.
        }
        let _ = h.join();
    }
}

/// Replace a reply with a parseable message of the wrong kind — the
/// in-process stand-in for a garbled frame that still deserializes.
fn garble(resp: Response) -> Response {
    match resp {
        Response::Bye => Response::Cells(Vec::new()),
        _ => Response::Bye,
    }
}

/// Start a node agent on its own thread under a fault plan and return
/// the cloud-side link.
pub fn spawn_node_with_faults(agent: NodeAgent, faults: LinkFaults, link_seed: u64) -> Link {
    let (req_tx, req_rx) = bounded::<Sequenced<Request>>(4);
    let (resp_tx, resp_rx) = bounded::<Sequenced<Response>>(4);
    let node_id = node_id_for(&agent.claims.name);
    let crash_after = faults.crash_after;
    let hang_on = faults.hang_on.clone();
    let handle = std::thread::Builder::new()
        .name(format!("node-{}", agent.claims.name))
        .spawn(move || {
            let mut served: u64 = 0;
            while let Ok(req) = req_rx.recv() {
                if crash_after.is_some_and(|n| served >= n) {
                    break; // host daemon crash: exit without replying
                }
                let idx = served;
                served += 1;
                if hang_on.contains(&idx) {
                    continue; // wedged mid-request: swallow, never reply
                }
                let shutdown = matches!(req.body, Request::Shutdown);
                let resp = agent.handle(&req.body);
                // Echo the request envelope verbatim: the cloud matches
                // replies to attempts by seq.
                let sequenced = Sequenced {
                    env: req.env,
                    body: resp,
                };
                if resp_tx.send(sequenced).is_err() || shutdown {
                    break;
                }
            }
        })
        .expect("spawn node thread");
    Link {
        tx: Some(req_tx),
        rx: resp_rx,
        faults,
        timeout: Duration::from_secs(120),
        node_id,
        rng: ChaCha8Rng::seed_from_u64(link_seed),
        handle: Some(handle),
        sent: 0,
        stats: LinkStats::default(),
        stale_pending: Vec::new(),
        accepted: VecDeque::new(),
    }
}

/// Start a node over a request-drop-only link (the original single-knob
/// fault model).
pub fn spawn_node(agent: NodeAgent, drop_probability: f64, link_seed: u64) -> Link {
    spawn_node_with_faults(agent, LinkFaults::lossy(drop_probability), link_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBehavior;
    use aircal_aircraft::{TrafficConfig, TrafficSim};
    use aircal_env::{Scenario, ScenarioKind};
    use std::sync::Arc;

    fn agent(kind: ScenarioKind) -> NodeAgent {
        let s = Scenario::build(kind);
        let sky = Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 20,
                ..TrafficConfig::paper_default(s.site.position)
            },
            11,
        ));
        NodeAgent::new(s, NodeBehavior::Honest, sky)
    }

    #[test]
    fn request_reply_over_thread() {
        let mut link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 1);
        let resp = link.call(Request::Describe).expect("reply");
        assert_eq!(resp.kind(), "description");
        assert_eq!(link.stats().ok, 1);
        link.shutdown();
    }

    #[test]
    fn lossy_link_sometimes_swallows() {
        let mut link = spawn_node(agent(ScenarioKind::OpenField), 0.7, 2);
        let mut answered = 0;
        for _ in 0..30 {
            if link.call(Request::Describe).is_ok() {
                answered += 1;
            }
        }
        assert!(answered > 0, "some requests should get through");
        assert!(answered < 30, "a 70% lossy link cannot answer everything");
        let stats = link.stats();
        assert_eq!(stats.attempts, 30);
        assert_eq!(stats.ok + stats.dropped, 30);
        link.shutdown();
    }

    #[test]
    fn multiple_nodes_run_concurrently() {
        let mut links: Vec<Link> = [
            ScenarioKind::Rooftop,
            ScenarioKind::Indoor,
            ScenarioKind::OpenField,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| spawn_node(agent(k), 0.0, i as u64))
        .collect();
        let mut names = Vec::new();
        for link in &mut links {
            if let Ok(Response::Description(c)) = link.call(Request::Describe) {
                names.push(c.name);
            }
        }
        names.sort();
        assert_eq!(names, vec!["indoor", "open-field", "rooftop"]);
        for link in links {
            link.shutdown();
        }
    }

    #[test]
    fn drop_is_graceful_without_shutdown_call() {
        let link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 3);
        drop(link); // Drop impl must join without hanging.
    }

    #[test]
    fn retry_recovers_from_burst_outage() {
        let faults = LinkFaults {
            burst_outages: vec![BurstOutage { start: 0, len: 2 }],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 4);
        let policy = RetryPolicy::quick();
        let resp = link
            .call_with_retry(Request::Describe, &policy)
            .expect("third attempt clears the outage");
        assert_eq!(resp.kind(), "description");
        let stats = link.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.gave_up, 0);
        link.shutdown();
    }

    #[test]
    fn wrong_kind_reply_detected_and_retried() {
        let faults = LinkFaults {
            corrupt_on: vec![0],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 5);
        let policy = RetryPolicy::quick();
        let resp = link
            .call_with_retry(Request::Describe, &policy)
            .expect("retry passes the garbled frame");
        assert_eq!(resp.kind(), "description");
        let stats = link.stats();
        assert_eq!(stats.wrong_kind, 1);
        assert_eq!(stats.ok, 1);
        link.shutdown();
    }

    #[test]
    fn dead_thread_not_retried() {
        let faults = LinkFaults {
            crash_after: Some(0),
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 6);
        let policy = RetryPolicy::quick();
        let err = link
            .call_with_retry(Request::Describe, &policy)
            .expect_err("node daemon is dead");
        assert_eq!(err, LinkError::SendFailed);
        assert!(!err.is_retryable());
        let stats = link.stats();
        assert_eq!(stats.attempts, 1, "SendFailed must not be retried");
        assert_eq!(stats.gave_up, 1);
        link.shutdown();
    }

    #[test]
    fn hung_node_times_out_then_recovers() {
        let faults = LinkFaults {
            hang_on: vec![0],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 7);
        link.timeout = Duration::from_millis(200);
        let err = link.call(Request::Describe).expect_err("swallowed");
        assert_eq!(err, LinkError::Timeout);
        let resp = link.call(Request::Describe).expect("node recovered");
        assert_eq!(resp.kind(), "description");
        let stats = link.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.ok, 1);
        link.shutdown();
    }

    #[test]
    fn response_drop_loses_the_answer() {
        let faults = LinkFaults {
            response_drop: 2.0, // documents the silent clamp to 0.999
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 8);
        for _ in 0..5 {
            let err = link.call(Request::Describe).expect_err("reply swallowed");
            assert_eq!(err, LinkError::Dropped);
        }
        assert_eq!(link.stats().dropped, 5);
        link.shutdown();
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_schedule(42, 6);
        let b = policy.backoff_schedule(42, 6);
        assert_eq!(a, b, "same seed must give the same schedule");
        let c = policy.backoff_schedule(43, 6);
        assert_ne!(a, c, "different seeds must jitter differently");
        // Pre-jitter growth is exponential up to the cap; jitter adds at
        // most `jitter` of the capped value.
        for (i, d) in a.iter().enumerate() {
            let base = policy.base_backoff.as_secs_f64() * policy.multiplier.powi(i as i32);
            let capped = base.min(policy.max_backoff.as_secs_f64());
            let secs = d.as_secs_f64();
            assert!(secs >= capped && secs <= capped * (1.0 + policy.jitter));
        }
    }

    #[test]
    fn backoff_without_jitter_is_pure_exponential() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let sched = policy.backoff_schedule(1, 4);
        assert_eq!(sched[0], Duration::from_millis(100));
        assert_eq!(sched[1], Duration::from_millis(200));
        assert_eq!(sched[2], Duration::from_millis(400));
        assert_eq!(sched[3], Duration::from_millis(800));
    }

    #[test]
    fn duplicated_reply_is_drained_not_double_applied() {
        let faults = LinkFaults {
            duplicate_on: vec![0],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 20);
        let resp = link.call(Request::Describe).expect("original delivered");
        assert_eq!(resp.kind(), "description");
        // The duplicate copy surfaces at the next attempt and is drained
        // by the dedup window instead of being surfaced as a reply.
        let resp = link.call(Request::Describe).expect("second call clean");
        assert_eq!(resp.kind(), "description");
        let stats = link.stats();
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.stale_drained, 1, "the duplicate was discarded");
        assert_eq!(stats.first_try_ok, 2);
        link.shutdown();
    }

    #[test]
    fn reordered_reply_times_out_then_retry_succeeds() {
        let faults = LinkFaults {
            reorder_on: vec![0],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 21);
        let policy = RetryPolicy::quick();
        let resp = link
            .call_with_retry(Request::Describe, &policy)
            .expect("retry lands after the reordered original");
        assert_eq!(resp.kind(), "description");
        let stats = link.stats();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.timeouts, 1, "the reordered reply missed its deadline");
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.stale_drained, 1, "the late original was discarded");
        assert_eq!(stats.retried_ok, 1);
        assert_eq!(stats.first_try_ok, 0);
        link.shutdown();
    }

    #[test]
    fn first_try_and_retried_successes_counted_apart() {
        let faults = LinkFaults {
            burst_outages: vec![BurstOutage { start: 1, len: 1 }],
            ..LinkFaults::none()
        };
        let mut link = spawn_node_with_faults(agent(ScenarioKind::OpenField), faults, 22);
        let policy = RetryPolicy::quick();
        link.call_with_retry(Request::Describe, &policy)
            .expect("attempt 0 clean");
        link.call_with_retry(Request::Describe, &policy)
            .expect("attempt 1 dropped, attempt 2 succeeds");
        let stats = link.stats();
        assert_eq!(stats.first_try_ok, 1);
        assert_eq!(stats.retried_ok, 1);
        assert_eq!(stats.calls_ok(), 2);
        assert!((stats.retried_fraction() - 0.5).abs() < 1e-12);
        link.shutdown();
    }

    #[test]
    fn offline_verdicts_cover_duplicate_and_reorder() {
        let faults = LinkFaults {
            duplicate_on: vec![1],
            reorder_on: vec![2],
            latency_ms: 3,
            ..LinkFaults::none()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            faults.attempt_verdict(0, &mut rng),
            AttemptVerdict::Deliver { latency_ms: 3 }
        );
        assert_eq!(
            faults.attempt_verdict(1, &mut rng),
            AttemptVerdict::Duplicated { latency_ms: 3 }
        );
        assert_eq!(
            faults.attempt_verdict(2, &mut rng),
            AttemptVerdict::Reordered { latency_ms: 3 }
        );
    }

    #[test]
    fn envelope_node_id_is_stable() {
        assert_eq!(node_id_for("rooftop"), node_id_for("rooftop"));
        assert_ne!(node_id_for("rooftop"), node_id_for("indoor"));
        let link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 23);
        assert_eq!(link.node_id(), node_id_for("open-field"));
        link.shutdown();
    }

    #[test]
    fn clean_shutdown_leaves_nothing_for_drop() {
        let link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 9);
        // shutdown() joins the thread and closes the channel; the Drop
        // impl that runs as `link` leaves scope must be a no-op (this
        // would deadlock or double-send otherwise).
        link.shutdown();
    }
}
