//! The node ⇄ cloud transport: a duplex crossbeam-channel link plus the
//! node service loop on its own OS thread.
//!
//! The link optionally drops requests (flaky last-mile connectivity) —
//! the cloud treats a timeout as "node unreachable", which is itself an
//! auditable signal.

use crate::node::NodeAgent;
use crate::protocol::{Request, Response};
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::thread::JoinHandle;
use std::time::Duration;

/// The cloud's handle to one node.
pub struct Link {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    /// Per-request drop probability, [0, 1).
    pub drop_probability: f64,
    /// How long the cloud waits before declaring the node unreachable.
    pub timeout: Duration,
    rng: ChaCha8Rng,
    handle: Option<JoinHandle<()>>,
}

impl Link {
    /// Send a request and wait for the reply. `None` = dropped or timed
    /// out (the cloud cannot tell the difference, as in real life).
    pub fn call(&mut self, request: Request) -> Option<Response> {
        if self.drop_probability > 0.0 && self.rng.gen_range(0.0..1.0) < self.drop_probability {
            return None; // swallowed by the network
        }
        self.tx.send(request).ok()?;
        // Timeout and disconnect both read as a drop.
        self.rx.recv_timeout(self.timeout).ok()
    }

    /// Shut the node down and join its thread.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Request::Shutdown);
        // Drain the Bye (or give up after the timeout).
        let _ = self.rx.recv_timeout(self.timeout);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Start a node agent on its own thread and return the cloud-side link.
pub fn spawn_node(agent: NodeAgent, drop_probability: f64, link_seed: u64) -> Link {
    let (req_tx, req_rx) = bounded::<Request>(4);
    let (resp_tx, resp_rx) = bounded::<Response>(4);
    let handle = std::thread::Builder::new()
        .name(format!("node-{}", agent.claims.name))
        .spawn(move || {
            while let Ok(req) = req_rx.recv() {
                let shutdown = matches!(req, Request::Shutdown);
                let resp = agent.handle(&req);
                if resp_tx.send(resp).is_err() || shutdown {
                    break;
                }
            }
        })
        .expect("spawn node thread");
    Link {
        tx: req_tx,
        rx: resp_rx,
        drop_probability: drop_probability.clamp(0.0, 0.999),
        timeout: Duration::from_secs(120),
        rng: ChaCha8Rng::seed_from_u64(link_seed),
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBehavior;
    use aircal_aircraft::{TrafficConfig, TrafficSim};
    use aircal_env::{Scenario, ScenarioKind};
    use std::sync::Arc;

    fn agent(kind: ScenarioKind) -> NodeAgent {
        let s = Scenario::build(kind);
        let sky = Arc::new(TrafficSim::generate(
            TrafficConfig {
                count: 20,
                ..TrafficConfig::paper_default(s.site.position)
            },
            11,
        ));
        NodeAgent::new(s, NodeBehavior::Honest, sky)
    }

    #[test]
    fn request_reply_over_thread() {
        let mut link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 1);
        let resp = link.call(Request::Describe).expect("reply");
        assert_eq!(resp.kind(), "description");
        link.shutdown();
    }

    #[test]
    fn lossy_link_sometimes_swallows() {
        let mut link = spawn_node(agent(ScenarioKind::OpenField), 0.7, 2);
        let mut answered = 0;
        for _ in 0..30 {
            if link.call(Request::Describe).is_some() {
                answered += 1;
            }
        }
        assert!(answered > 0, "some requests should get through");
        assert!(answered < 30, "a 70% lossy link cannot answer everything");
        link.shutdown();
    }

    #[test]
    fn multiple_nodes_run_concurrently() {
        let mut links: Vec<Link> = [
            ScenarioKind::Rooftop,
            ScenarioKind::Indoor,
            ScenarioKind::OpenField,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| spawn_node(agent(k), 0.0, i as u64))
        .collect();
        let mut names = Vec::new();
        for link in &mut links {
            if let Some(Response::Description(c)) = link.call(Request::Describe) {
                names.push(c.name);
            }
        }
        names.sort();
        assert_eq!(names, vec!["indoor", "open-field", "rooftop"]);
        for link in links {
            link.shutdown();
        }
    }

    #[test]
    fn drop_is_graceful_without_shutdown_call() {
        let link = spawn_node(agent(ScenarioKind::OpenField), 0.0, 3);
        drop(link); // Drop impl must join without hanging.
    }
}
