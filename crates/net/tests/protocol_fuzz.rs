//! Seed-corpus fuzz for the node⇄cloud protocol decoder.
//!
//! A real deployment would feed [`Request`]/[`Response`] decode with
//! bytes from strangers' machines, so decode must be total: malformed,
//! truncated, type-confused, or bit-flipped frames are *errors*, never
//! panics, and anything that does decode must re-encode/re-decode to
//! the same value (otherwise the transport's corrupt-reply detection
//! can be confused by a frame that changes meaning on the second look).
//!
//! The corpus under `tests/corpus/` commits one well-formed frame per
//! message kind plus hand-written adversarial seeds (extreme numbers,
//! wrong types, trailing garbage, truncation, invalid UTF-8). Each seed
//! is then pushed through a fixed budget of deterministic mutations —
//! byte flips, truncations, splices, insertions — from a ChaCha8 stream
//! keyed by the file name, so every CI run fuzzes the exact same
//! mutants and a failure is a one-line reproducer, not a flake. The
//! budget keeps the whole suite a bounded tier-1 `cargo test`, per the
//! deterministic-simulation-testing posture of the repo.

use aircal_net::{Request, Response};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// Deterministic mutants generated per corpus seed.
const MUTATIONS_PER_SEED: usize = 150;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed corpus file, sorted by name for run-order stability.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir committed")
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).unwrap();
            (name, bytes)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 12,
        "corpus went missing: only {} files",
        files.len()
    );
    files
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic mutation of `seed`: flip, insert, delete, splice,
/// or truncate. Always returns *some* byte string (possibly empty).
fn mutate(seed: &[u8], rng: &mut ChaCha8Rng) -> Vec<u8> {
    let mut out = seed.to_vec();
    let ops = 1 + rng.gen_range(0..3u32);
    for _ in 0..ops {
        if out.is_empty() {
            out.push(rng.gen_range(0..=255u32) as u8);
            continue;
        }
        let pos = rng.gen_range(0..out.len() as u64) as usize;
        match rng.gen_range(0..5u32) {
            0 => out[pos] ^= 1 << rng.gen_range(0..8u32), // bit flip
            1 => out.insert(pos, rng.gen_range(0..=255u32) as u8), // insert
            2 => {
                out.remove(pos); // delete
            }
            3 => out.truncate(pos), // truncate
            _ => {
                // Splice: copy a short window from elsewhere in the seed.
                let src = rng.gen_range(0..seed.len() as u64) as usize;
                let len = (rng.gen_range(1..8u32) as usize).min(seed.len() - src);
                let window: Vec<u8> = seed[src..src + len].to_vec();
                let pos = pos.min(out.len());
                for (i, b) in window.into_iter().enumerate() {
                    out.insert(pos + i, b);
                }
            }
        }
    }
    out
}

/// Decode `text` both ways; whatever decodes must round-trip stably.
/// Returns how many decodes succeeded (to prove the fuzz isn't only
/// exercising the error path).
fn check_total_and_stable(name: &str, text: &str) -> u32 {
    let mut hits = 0;
    if let Ok(req) = serde_json::from_str::<Request>(text) {
        hits += 1;
        let re = serde_json::to_string(&req).expect("re-encode decoded request");
        let back: Request = serde_json::from_str(&re)
            .unwrap_or_else(|e| panic!("{name}: re-decode of {re} failed: {e:?}"));
        assert_eq!(back, req, "{name}: request changed meaning across a round-trip");
    }
    if let Ok(resp) = serde_json::from_str::<Response>(text) {
        hits += 1;
        let re = serde_json::to_string(&resp).expect("re-encode decoded response");
        let back: Response = serde_json::from_str(&re)
            .unwrap_or_else(|e| panic!("{name}: re-decode of {re} failed: {e:?}"));
        // `SurveyResult` has no PartialEq; compare re-encodings instead.
        let re2 = serde_json::to_string(&back).unwrap();
        assert_eq!(re, re2, "{name}: response changed meaning across a round-trip");
    }
    hits
}

/// The well-formed corpus members must actually decode: a corpus that
/// rots into all-garbage would silently stop exercising the success
/// paths the mutants start from.
#[test]
fn corpus_seeds_decode_as_committed() {
    for (name, bytes) in corpus() {
        let text = String::from_utf8_lossy(&bytes);
        let hits = check_total_and_stable(&name, &text);
        if name.starts_with("req_") || name.starts_with("resp_") {
            assert!(hits > 0, "{name}: committed frame no longer decodes");
        }
    }
}

/// The fuzz proper: a fixed budget of deterministic mutants per seed.
/// Decode must be total (no panic — reaching the end of this test *is*
/// the assertion) and stable on everything that decodes.
#[test]
fn mutated_frames_never_panic_the_decoder() {
    let mut mutants = 0u64;
    let mut decoded = 0u64;
    for (name, bytes) in corpus() {
        // Per-file stream: adding a corpus file never changes the
        // mutants generated for existing files.
        let mut rng = ChaCha8Rng::seed_from_u64(fnv(name.as_bytes()));
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&bytes, &mut rng);
            let text = String::from_utf8_lossy(&mutant);
            decoded += check_total_and_stable(&name, &text) as u64;
            mutants += 1;
        }
    }
    assert_eq!(
        mutants,
        corpus().len() as u64 * MUTATIONS_PER_SEED as u64,
        "bounded budget: every seed gets exactly its share"
    );
    assert!(
        decoded >= 25,
        "only {decoded} mutants decoded — mutations too destructive to cover success paths"
    );
}
