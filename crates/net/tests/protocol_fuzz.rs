//! Seed-corpus fuzz for the node⇄cloud protocol decoder.
//!
//! A real deployment would feed [`Request`]/[`Response`] decode with
//! bytes from strangers' machines, so decode must be total: malformed,
//! truncated, type-confused, or bit-flipped frames are *errors*, never
//! panics, and anything that does decode must re-encode/re-decode to
//! the same value (otherwise the transport's corrupt-reply detection
//! can be confused by a frame that changes meaning on the second look).
//!
//! The corpus under `tests/corpus/` commits one well-formed frame per
//! message kind plus hand-written adversarial seeds (extreme numbers,
//! wrong types, trailing garbage, truncation, invalid UTF-8), and
//! `wal_`-prefixed binary seeds exercising the write-ahead journal's
//! crash-recovery scan ([`Journal::open`] must be total too). Each seed
//! is then pushed through a fixed budget of deterministic mutations —
//! byte flips, truncations, splices, insertions — from a ChaCha8 stream
//! keyed by the file name, so every CI run fuzzes the exact same
//! mutants and a failure is a one-line reproducer, not a flake. The
//! budget keeps the whole suite a bounded tier-1 `cargo test`, per the
//! deterministic-simulation-testing posture of the repo.

use aircal_core::wal::{Journal, WalRecord};
use aircal_net::{Request, Response};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// Deterministic mutants generated per corpus seed.
const MUTATIONS_PER_SEED: usize = 150;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed corpus file, sorted by name for run-order stability.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir committed")
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).unwrap();
            (name, bytes)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 12,
        "corpus went missing: only {} files",
        files.len()
    );
    files
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic mutation of `seed`: flip, insert, delete, splice,
/// or truncate. Always returns *some* byte string (possibly empty).
fn mutate(seed: &[u8], rng: &mut ChaCha8Rng) -> Vec<u8> {
    let mut out = seed.to_vec();
    let ops = 1 + rng.gen_range(0..3u32);
    for _ in 0..ops {
        if out.is_empty() {
            out.push(rng.gen_range(0..=255u32) as u8);
            continue;
        }
        let pos = rng.gen_range(0..out.len() as u64) as usize;
        match rng.gen_range(0..5u32) {
            0 => out[pos] ^= 1 << rng.gen_range(0..8u32), // bit flip
            1 => out.insert(pos, rng.gen_range(0..=255u32) as u8), // insert
            2 => {
                out.remove(pos); // delete
            }
            3 => out.truncate(pos), // truncate
            _ => {
                // Splice: copy a short window from elsewhere in the seed.
                let src = rng.gen_range(0..seed.len() as u64) as usize;
                let len = (rng.gen_range(1..8u32) as usize).min(seed.len() - src);
                let window: Vec<u8> = seed[src..src + len].to_vec();
                let pos = pos.min(out.len());
                for (i, b) in window.into_iter().enumerate() {
                    out.insert(pos + i, b);
                }
            }
        }
    }
    out
}

/// Decode `text` both ways; whatever decodes must round-trip stably.
/// Returns how many decodes succeeded (to prove the fuzz isn't only
/// exercising the error path).
fn check_total_and_stable(name: &str, text: &str) -> u32 {
    let mut hits = 0;
    if let Ok(req) = serde_json::from_str::<Request>(text) {
        hits += 1;
        let re = serde_json::to_string(&req).expect("re-encode decoded request");
        let back: Request = serde_json::from_str(&re)
            .unwrap_or_else(|e| panic!("{name}: re-decode of {re} failed: {e:?}"));
        assert_eq!(back, req, "{name}: request changed meaning across a round-trip");
    }
    if let Ok(resp) = serde_json::from_str::<Response>(text) {
        hits += 1;
        let re = serde_json::to_string(&resp).expect("re-encode decoded response");
        let back: Response = serde_json::from_str(&re)
            .unwrap_or_else(|e| panic!("{name}: re-decode of {re} failed: {e:?}"));
        // `SurveyResult` has no PartialEq; compare re-encodings instead.
        let re2 = serde_json::to_string(&back).unwrap();
        assert_eq!(re, re2, "{name}: response changed meaning across a round-trip");
    }
    hits
}

/// The well-formed corpus members must actually decode: a corpus that
/// rots into all-garbage would silently stop exercising the success
/// paths the mutants start from.
#[test]
fn corpus_seeds_decode_as_committed() {
    for (name, bytes) in corpus() {
        let text = String::from_utf8_lossy(&bytes);
        let hits = check_total_and_stable(&name, &text);
        if name.starts_with("req_") || name.starts_with("resp_") {
            assert!(hits > 0, "{name}: committed frame no longer decodes");
        }
    }
}

/// The fuzz proper: a fixed budget of deterministic mutants per seed.
/// Decode must be total (no panic — reaching the end of this test *is*
/// the assertion) and stable on everything that decodes.
#[test]
fn mutated_frames_never_panic_the_decoder() {
    let mut mutants = 0u64;
    let mut decoded = 0u64;
    for (name, bytes) in corpus() {
        // Per-file stream: adding a corpus file never changes the
        // mutants generated for existing files.
        let mut rng = ChaCha8Rng::seed_from_u64(fnv(name.as_bytes()));
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&bytes, &mut rng);
            let text = String::from_utf8_lossy(&mutant);
            decoded += check_total_and_stable(&name, &text) as u64;
            mutants += 1;
        }
    }
    assert_eq!(
        mutants,
        corpus().len() as u64 * MUTATIONS_PER_SEED as u64,
        "bounded budget: every seed gets exactly its share"
    );
    assert!(
        decoded >= 25,
        "only {decoded} mutants decoded — mutations too destructive to cover success paths"
    );
}

/// Salt separating the WAL mutation streams from the JSON ones, so the
/// two fuzz tests never share mutants for a same-named seed.
const WAL_STREAM_SALT: u64 = 0x0057_414C; // "WAL"

/// The committed WAL seeds, built in code: a canonical journal holding
/// one record per variant the cloud writes (small segment cap, so the
/// frames span several segments), a torn-tail copy cut mid-frame, and a
/// copy with one bit flipped in the middle (CRC mismatch partway in).
fn wal_seed_journals() -> Vec<(&'static str, Vec<u8>)> {
    let mut j = Journal::new(96);
    j.append(&WalRecord::RoundStarted { seed: 0xA1B2, tick: 7 });
    j.append(&WalRecord::StepOutcome {
        node: "node-3".into(),
        step: "survey".into(),
        ok: true,
        attempts: 2,
    });
    j.append(&WalRecord::TrustDelta {
        node: "node-3".into(),
        score_bits: 0.875f64.to_bits(),
        delta_bits: (-0.125f64).to_bits(),
    });
    j.append(&WalRecord::LadderTransition {
        node: "node-3".into(),
        from: 0,
        to: 1,
        consecutive: 2,
    });
    j.append(&WalRecord::ProfileUpdate {
        node: "node-3".into(),
        fingerprint: 0xDEAD_BEEF,
    });
    j.append(&WalRecord::NodeState {
        node: "node-3".into(),
        state: vec![1, 2, 3, 4, 5],
    });
    j.append(&WalRecord::Dispatch {
        node: 3,
        kind: 1,
        seq: 9,
        tick: 11,
    });
    j.append(&WalRecord::ReportApplied {
        node: 3,
        kind: 1,
        seq: 9,
        value_bits: (-61.5f64).to_bits(),
        tick: 14,
    });
    j.append(&WalRecord::AuditApplied {
        node: 3,
        trust_bits: 1.0f64.to_bits(),
        health: 0,
    });
    j.append(&WalRecord::SnapshotTaken {
        tick: 14,
        state_crc: 0x1234_5678,
    });
    j.append(&WalRecord::RoundCompleted {
        seed: 0xA1B2,
        effects: 4,
    });
    j.append(&WalRecord::DeliveryFailed {
        node: 3,
        kind: 2,
        seq: 10,
        tick: 15,
    });
    j.sync();
    let clean = j.to_bytes();

    let mut torn = clean.clone();
    torn.truncate(clean.len() - 5);
    let mut flipped = clean.clone();
    let mid = clean.len() / 2;
    flipped[mid] ^= 0x40;

    vec![
        ("wal_clean_journal.bin", clean),
        ("wal_torn_tail.bin", torn),
        ("wal_bitflip_mid.bin", flipped),
    ]
}

/// The committed `wal_` seeds must match what the in-code builder
/// produces — a codec change that silently re-frames the journal would
/// otherwise leave the corpus fuzzing stale bytes. Regenerate with
/// `UPDATE_CORPUS=1 cargo test -p aircal-net --test protocol_fuzz`.
#[test]
fn wal_corpus_seeds_match_committed() {
    for (name, bytes) in wal_seed_journals() {
        let path = corpus_dir().join(name);
        if std::env::var_os("UPDATE_CORPUS").is_some() {
            std::fs::write(&path, &bytes).unwrap();
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{name}: missing committed seed (run UPDATE_CORPUS=1): {e}"));
        assert_eq!(committed, bytes, "{name}: committed WAL seed diverged from the codec");
    }
}

/// WAL crash-recovery fuzz: [`Journal::open`] over every `wal_` seed,
/// every byte-truncation of every seed, and the per-seed mutation
/// budget. It must be total (no panic), recover only frame-boundary
/// prefixes (truncating the input never yields records the full input
/// didn't), and be idempotent (reopening its own recovered bytes loses
/// nothing).
#[test]
fn wal_frames_recover_longest_valid_prefix_and_never_panic() {
    let wal_seeds: Vec<(String, Vec<u8>)> = corpus()
        .into_iter()
        .filter(|(n, _)| n.starts_with("wal_"))
        .collect();
    assert!(
        wal_seeds.len() >= 3,
        "WAL corpus went missing: only {} wal_ seeds",
        wal_seeds.len()
    );

    for (name, bytes) in &wal_seeds {
        let full = Journal::open(bytes, 96).0.records();

        // Every truncation recovers a (monotonically growing) prefix of
        // the full recovery: the scan can only stop earlier, never
        // invent records past a cut.
        let mut prev = 0usize;
        for cut in 0..=bytes.len() {
            let (j, report) = Journal::open(&bytes[..cut], 96);
            let records = j.records();
            assert_eq!(
                report.recovered as usize,
                records.len(),
                "{name}@{cut}: open report disagrees with the journal it built"
            );
            assert!(
                records.len() >= prev,
                "{name}@{cut}: recovery went backwards as bytes were added"
            );
            assert_eq!(
                records.as_slice(),
                &full[..records.len()],
                "{name}@{cut}: truncated input recovered a non-prefix"
            );
            prev = records.len();
        }
    }

    // The fuzz proper: deterministic mutants, on a stream salted away
    // from the JSON decoder's mutants for the same file names.
    let mut mutants = 0u64;
    let mut recovered_some = 0u64;
    for (name, bytes) in &wal_seeds {
        let mut rng = ChaCha8Rng::seed_from_u64(fnv(name.as_bytes()) ^ WAL_STREAM_SALT);
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(bytes, &mut rng);
            let (j, report) = Journal::open(&mutant, 96);
            let records = j.records();
            assert_eq!(
                report.recovered as usize,
                records.len(),
                "{name}: open report disagrees with the journal it built"
            );
            // Idempotence: the recovered prefix is itself fully valid.
            let (j2, report2) = Journal::open(&j.to_bytes(), 96);
            assert_eq!(
                report2.truncated_bytes, 0,
                "{name}: recovered bytes were not self-clean"
            );
            assert_eq!(j2.records(), records, "{name}: recovery is not idempotent");
            if report.recovered > 0 {
                recovered_some += 1;
            }
            mutants += 1;
        }
    }
    assert_eq!(
        mutants,
        wal_seeds.len() as u64 * MUTATIONS_PER_SEED as u64,
        "bounded budget: every WAL seed gets exactly its share"
    );
    assert!(
        recovered_some >= 25,
        "only {recovered_some} mutants recovered any records — mutations too destructive"
    );
}
