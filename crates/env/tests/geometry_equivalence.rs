//! Property tests (vendored `proptest` shim): the geometry acceleration
//! layer is *exact*. Over randomized worlds — 0 to 64 buildings of random
//! placement, size, height, and material — and randomized sites, emitters,
//! and frequencies:
//!
//! * the spatial-index `path_profile` is bit-identical to brute force;
//! * the path memo is bit-identical warm and cold (a hit can only return
//!   what the miss path computed).

use aircal_env::{Building, Enclosure, GeoScratch, PathCache, SensorSite, World};
use aircal_geo::{LatLon, Point2, Sector};
use aircal_rfprop::{Material, PathProfile};
use proptest::prelude::*;

fn origin() -> LatLon {
    LatLon::surface(37.8716, -122.2727)
}

fn material(tag: u8) -> Material {
    match tag % 6 {
        0 => Material::Glass,
        1 => Material::IrrGlass,
        2 => Material::Concrete,
        3 => Material::Brick,
        4 => Material::Drywall,
        _ => Material::Wood,
    }
}

/// Deterministically expand compact per-building tuples into a world.
fn build_world(specs: &[(f64, f64, f64, f64, f64, u8)]) -> World {
    let mut world = World::open(origin());
    for (i, &(cx, cy, w, d, h, m)) in specs.iter().enumerate() {
        world.buildings.push(Building::rect(
            format!("b{i}"),
            Point2::new(cx, cy),
            w.max(0.5),
            d.max(0.5),
            h.max(1.0),
            material(m),
        ));
    }
    world
}

fn assert_bits_equal(a: &PathProfile, b: &PathProfile, what: &str) -> Result<(), TestCaseError> {
    for (name, x, y) in [
        ("distance_m", a.distance_m, b.distance_m),
        ("freq_hz", a.freq_hz, b.freq_hz),
        ("diffraction_db", a.diffraction_db, b.diffraction_db),
        ("penetration_db", a.penetration_db, b.penetration_db),
        ("excess_db", a.excess_db, b.excess_db),
        ("k_factor_db", a.k_factor_db, b.k_factor_db),
        ("shadowing_sigma_db", a.shadowing_sigma_db, b.shadowing_sigma_db),
    ] {
        prop_assert!(
            x.to_bits() == y.to_bits(),
            "{what}: {name} diverged ({x:?} vs {y:?})"
        );
    }
    Ok(())
}

proptest! {
    /// Indexed `path_profile` over a random world is bit-identical to the
    /// brute-force loop over every building, for outdoor and indoor sites.
    #[test]
    fn indexed_profile_bit_identical_to_brute(
        specs in proptest::collection::vec(
            (-400.0f64..400.0, -400.0f64..400.0, 0.5f64..80.0, 0.5f64..80.0,
             1.0f64..60.0, proptest::any::<u8>()),
            0..64,
        ),
        site_bearing in 0.0f64..360.0,
        site_range in 0.0f64..300.0,
        site_alt in 1.0f64..40.0,
        indoor in proptest::any::<bool>(),
        em_bearing in 0.0f64..360.0,
        em_range in 50.0f64..60_000.0,
        em_alt in 0.0f64..11_000.0,
        freq_mhz in 100.0f64..6_000.0,
    ) {
        let world = build_world(&specs);
        let mut pos = origin().destination(site_bearing, site_range);
        pos.alt_m = site_alt;
        let site = if indoor {
            SensorSite::indoor("p", pos, Enclosure::behind_window(Sector::centered(90.0, 40.0)))
        } else {
            SensorSite::outdoor("p", pos)
        };
        let mut emitter = pos.destination(em_bearing, em_range);
        emitter.alt_m = em_alt;
        let freq_hz = freq_mhz * 1e6;

        let brute = world.path_profile(&site, &emitter, freq_hz);
        let index = world.index();
        let mut scratch = GeoScratch::new();
        let indexed = world.path_profile_indexed(&index, &site, &emitter, freq_hz, &mut scratch);
        assert_bits_equal(&brute, &indexed, "indexed vs brute")?;
    }

    /// The path memo is deterministic: a cold miss and the warm hit that
    /// follows return the same bits, which are the brute-force bits.
    #[test]
    fn path_cache_warm_equals_cold(
        specs in proptest::collection::vec(
            (-300.0f64..300.0, -300.0f64..300.0, 1.0f64..60.0, 1.0f64..60.0,
             2.0f64..50.0, proptest::any::<u8>()),
            0..32,
        ),
        em_bearings in proptest::collection::vec(0.0f64..360.0, 1..8),
        em_range in 100.0f64..40_000.0,
        freq_mhz in 100.0f64..6_000.0,
    ) {
        let world = build_world(&specs);
        let mut pos = origin();
        pos.alt_m = 10.0;
        let site = SensorSite::outdoor("p", pos);
        let freq_hz = freq_mhz * 1e6;
        let index = world.index();
        let mut cache = PathCache::new();
        let mut scratch = GeoScratch::new();

        let emitters: Vec<LatLon> = em_bearings
            .iter()
            .map(|&b| {
                let mut e = pos.destination(b, em_range);
                e.alt_m = 9_000.0;
                e
            })
            .collect();
        for e in &emitters {
            let brute = world.path_profile(&site, e, freq_hz);
            let cold =
                world.path_profile_cached(&index, &mut cache, &site, e, freq_hz, &mut scratch);
            let warm =
                world.path_profile_cached(&index, &mut cache, &site, e, freq_hz, &mut scratch);
            assert_bits_equal(&brute, &cold, "cold vs brute")?;
            assert_bits_equal(&cold, &warm, "warm vs cold")?;
        }
        // Distinct bearings can collide only if two emitters share bit
        // patterns; with distinct keys every second lookup hit.
        prop_assert!(cache.hits() >= emitters.len() as u64);
        prop_assert!(cache.len() <= emitters.len());
    }
}
