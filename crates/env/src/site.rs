//! Sensor sites and enclosures.

use aircal_geo::{LatLon, Sector};
use aircal_rfprop::{AntennaPattern, Material};
use serde::{Deserialize, Serialize};

/// Describes the immediate enclosure of an indoor-mounted sensor: which
/// materials a ray must cross to leave the room, as a function of direction.
///
/// This models the paper's window and interior sites more faithfully than
/// raw footprint geometry: the window site's field of view is set by a
/// glass aperture between flanking walls, and the interior site pays
/// multiple walls in every direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Enclosure {
    /// The angular aperture (e.g. a window), if any.
    pub aperture: Option<Sector>,
    /// Maximum elevation (degrees) at which the aperture is usable; above
    /// this, rays hit the wall/ceiling instead of the window.
    pub aperture_max_elevation_deg: f64,
    /// Materials crossed when exiting through the aperture.
    pub aperture_materials: Vec<Material>,
    /// Materials crossed when exiting through the walls (any non-aperture
    /// azimuth below the roofline).
    pub wall_materials: Vec<Material>,
    /// Materials crossed when exiting upward (elevation above
    /// `roof_elevation_deg`).
    pub roof_materials: Vec<Material>,
    /// Elevation (degrees) above which a ray exits through the roof stack.
    pub roof_elevation_deg: f64,
}

impl Enclosure {
    /// A sensor behind a single glass window spanning `aperture`, in an
    /// otherwise masonry-walled corner room. Exiting any non-aperture
    /// direction means crossing the room's brick/concrete exterior
    /// elements plus interior partitions (the sensor sits at a corner of a
    /// large building).
    pub fn behind_window(aperture: Sector) -> Self {
        Self {
            aperture: Some(aperture),
            aperture_max_elevation_deg: 35.0,
            aperture_materials: vec![Material::Glass],
            wall_materials: vec![
                Material::Brick,
                Material::Brick,
                Material::Concrete,
                Material::Drywall,
                Material::Drywall,
            ],
            roof_materials: vec![Material::Concrete],
            roof_elevation_deg: 55.0,
        }
    }

    /// A deep-interior room ≥ 8 m from any window: no aperture, and every
    /// exit crosses several structural walls and partitions; one concrete
    /// floor slab above (a 6-story building has one floor overhead of the
    /// 5th floor, plus roof structure).
    pub fn interior() -> Self {
        Self {
            aperture: None,
            aperture_max_elevation_deg: 0.0,
            aperture_materials: Vec::new(),
            wall_materials: vec![
                Material::Concrete,
                Material::Concrete,
                Material::Concrete,
                Material::Drywall,
                Material::Drywall,
                Material::Drywall,
                Material::Drywall,
            ],
            roof_materials: vec![Material::Concrete, Material::Concrete],
            roof_elevation_deg: 40.0,
        }
    }

    /// Penetration loss in dB for a ray leaving toward the given azimuth
    /// and elevation, at `freq_hz`.
    pub fn exit_loss_db(&self, azimuth_deg: f64, elevation_deg: f64, freq_hz: f64) -> f64 {
        let stack: &[Material] = if elevation_deg >= self.roof_elevation_deg {
            &self.roof_materials
        } else if let Some(ap) = &self.aperture {
            if ap.contains(azimuth_deg) && elevation_deg <= self.aperture_max_elevation_deg {
                &self.aperture_materials
            } else {
                &self.wall_materials
            }
        } else {
            &self.wall_materials
        };
        aircal_rfprop::materials::stack_loss_db(stack, freq_hz)
    }

    /// Does this enclosure give the ray a clear-ish exit (≤ 5 dB at 1 GHz)?
    pub fn is_open_toward(&self, azimuth_deg: f64, elevation_deg: f64) -> bool {
        self.exit_loss_db(azimuth_deg, elevation_deg, 1e9) <= 5.0
    }
}

/// A spectrum sensor installation: where it is, how high it sits, what
/// antenna it has, and what (if anything) encloses it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorSite {
    /// Display name ("rooftop", "behind-window", …).
    pub name: String,
    /// Geographic position; `alt_m` is the antenna height above local
    /// ground (not sea level — the simulation uses a flat local datum).
    pub position: LatLon,
    /// Receive antenna pattern.
    pub antenna: AntennaPattern,
    /// Enclosure, if the sensor is indoors.
    pub enclosure: Option<Enclosure>,
    /// Receiver noise figure in dB (front end + cabling).
    pub noise_figure_db: f64,
}

impl SensorSite {
    /// An outdoor site with the paper's wideband whip antenna and a typical
    /// 7 dB receive noise figure.
    pub fn outdoor(name: impl Into<String>, position: LatLon) -> Self {
        Self {
            name: name.into(),
            position,
            antenna: AntennaPattern::paper_wideband_whip(),
            enclosure: None,
            noise_figure_db: 7.0,
        }
    }

    /// An indoor site with the given enclosure.
    pub fn indoor(name: impl Into<String>, position: LatLon, enclosure: Enclosure) -> Self {
        Self {
            enclosure: Some(enclosure),
            ..Self::outdoor(name, position)
        }
    }

    /// Is the sensor indoors (has an enclosure)?
    pub fn is_indoor(&self) -> bool {
        self.enclosure.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_aperture_is_cheap_walls_are_not() {
        let e = Enclosure::behind_window(Sector::centered(135.0, 40.0));
        let f = 1.09e9;
        let through_window = e.exit_loss_db(135.0, 10.0, f);
        let through_wall = e.exit_loss_db(315.0, 10.0, f);
        assert!(through_window < 4.0, "window {through_window}");
        assert!(through_wall > 10.0, "wall {through_wall}");
        assert!(e.is_open_toward(135.0, 10.0));
        assert!(!e.is_open_toward(315.0, 10.0));
    }

    #[test]
    fn window_closes_at_high_elevation() {
        let e = Enclosure::behind_window(Sector::centered(135.0, 40.0));
        let f = 1.09e9;
        assert!(e.exit_loss_db(135.0, 50.0, f) > e.exit_loss_db(135.0, 10.0, f) + 5.0);
        // Above the roofline, the roof stack applies.
        let roof = e.exit_loss_db(135.0, 80.0, f);
        assert!(roof > 5.0);
    }

    #[test]
    fn interior_blocked_everywhere() {
        let e = Enclosure::interior();
        for az in (0..360).step_by(30) {
            assert!(!e.is_open_toward(az as f64, 5.0), "azimuth {az}");
        }
    }

    #[test]
    fn interior_loss_grows_with_frequency() {
        let e = Enclosure::interior();
        let low = e.exit_loss_db(0.0, 5.0, 731e6);
        let mid = e.exit_loss_db(0.0, 5.0, 2.145e9);
        assert!(mid > low + 5.0, "low {low}, mid {mid}");
    }

    #[test]
    fn site_constructors() {
        let pos = LatLon::new(37.8716, -122.2727, 18.5);
        let s = SensorSite::outdoor("roof", pos);
        assert!(!s.is_indoor());
        let w = SensorSite::indoor(
            "window",
            pos,
            Enclosure::behind_window(Sector::centered(135.0, 40.0)),
        );
        assert!(w.is_indoor());
        assert_eq!(w.noise_figure_db, 7.0);
    }
}
