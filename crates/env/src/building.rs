//! Buildings: extruded footprints with materials.

use aircal_geo::{Aabb2, Point2, Polygon2, Segment2};
use aircal_rfprop::Material;
use serde::{Deserialize, Serialize};

/// A building: a 2-D footprint (in the world's local ENU frame, meters)
/// extruded to a height, with exterior wall and roof materials and a bulk
/// interior attenuation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Building {
    /// Display name for reports.
    pub name: String,
    /// Footprint polygon in world-ENU meters.
    pub footprint: Polygon2,
    /// Roof height above local ground, meters.
    pub height_m: f64,
    /// Exterior wall material (each traversal of the footprint boundary
    /// crosses one wall).
    pub wall_material: Material,
    /// Bulk interior attenuation in dB per meter of chord at 1 GHz
    /// (scaled ∝ √f; furniture, partitions, people).
    pub interior_db_per_m: f64,
}

impl Building {
    /// Construct a building with typical interior clutter (0.4 dB/m at
    /// 1 GHz, the usual dense-office figure).
    pub fn new(name: impl Into<String>, footprint: Polygon2, height_m: f64, wall: Material) -> Self {
        Self {
            name: name.into(),
            footprint,
            height_m: height_m.max(0.0),
            wall_material: wall,
            interior_db_per_m: 0.4,
        }
    }

    /// Override the bulk interior attenuation (dB/m at 1 GHz) — e.g.
    /// machinery penthouses are far denser than open-plan offices.
    pub fn with_interior_loss(mut self, db_per_m: f64) -> Self {
        self.interior_db_per_m = db_per_m.max(0.0);
        self
    }

    /// Penetration loss for a ray whose 2-D track is `seg`, at `freq_hz`,
    /// in dB: one wall per boundary crossing plus bulk interior loss along
    /// the inside chord. Zero if the ray misses the footprint.
    pub fn through_loss_db(&self, seg: &Segment2, freq_hz: f64) -> f64 {
        let crossings = self.footprint.crossings(seg);
        if crossings.is_empty() && !self.footprint.contains(&seg.a) {
            return 0.0;
        }
        let wall = self.wall_material.penetration_loss_db(freq_hz);
        let chord = self.footprint.chord_length_inside(seg);
        let f_scale = (freq_hz / 1e9).max(0.01).sqrt();
        crossings.len() as f64 * wall + chord * self.interior_db_per_m * f_scale
    }

    /// Does the ray's 2-D track cross or start inside the footprint?
    pub fn blocks_track(&self, seg: &Segment2) -> bool {
        self.footprint.contains(&seg.a) || !self.footprint.crossings(seg).is_empty()
    }

    /// Distance from `seg.a` to the first boundary crossing, if any.
    pub fn first_crossing_distance(&self, seg: &Segment2) -> Option<f64> {
        self.footprint
            .crossings(seg)
            .first()
            .map(|(t, _)| t * seg.length())
    }

    /// Tight 2-D bounding box of the footprint (for the spatial index).
    pub fn aabb(&self) -> Aabb2 {
        Aabb2::of_polygon(&self.footprint)
    }

    /// Fused obstruction test for the path-profile loop: one boundary
    /// crossings pass answers [`blocks_track`](Self::blocks_track),
    /// [`first_crossing_distance`](Self::first_crossing_distance) and
    /// [`through_loss_db`](Self::through_loss_db) together, writing into
    /// caller-owned scratch buffers. Returns `None` when the track misses
    /// the footprint; otherwise `(first_crossing_m, through_loss_db)`,
    /// bit-identical to the three separate calls.
    pub(crate) fn cut_with(
        &self,
        seg: &Segment2,
        freq_hz: f64,
        hits: &mut Vec<(f64, Point2)>,
        ts: &mut Vec<f64>,
    ) -> Option<(Option<f64>, f64)> {
        let contains_a = self.footprint.contains(&seg.a);
        self.footprint.crossings_into(seg, hits);
        if !contains_a && hits.is_empty() {
            return None;
        }
        let first = hits.first().map(|(t, _)| t * seg.length());
        let wall = self.wall_material.penetration_loss_db(freq_hz);
        let chord = self.footprint.chord_length_inside_from(seg, hits, ts);
        let f_scale = (freq_hz / 1e9).max(0.01).sqrt();
        let through = hits.len() as f64 * wall + chord * self.interior_db_per_m * f_scale;
        Some((first, through))
    }

    /// Convenience: rectangular building centered at `center` with the
    /// given width (east-west), depth (north-south) and height.
    pub fn rect(
        name: impl Into<String>,
        center: Point2,
        width_m: f64,
        depth_m: f64,
        height_m: f64,
        wall: Material,
    ) -> Self {
        let footprint = Polygon2::rect(
            center.x - width_m / 2.0,
            center.y - depth_m / 2.0,
            center.x + width_m / 2.0,
            center.y + depth_m / 2.0,
        );
        Self::new(name, footprint, height_m, wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn building() -> Building {
        Building::rect(
            "block",
            Point2::new(50.0, 0.0),
            20.0,
            20.0,
            15.0,
            Material::Concrete,
        )
    }

    #[test]
    fn ray_through_building_pays_two_walls_and_chord() {
        let b = building();
        let ray = Segment2::new(Point2::new(0.0, 0.0), Point2::new(100.0, 0.0));
        let loss = b.through_loss_db(&ray, 1e9);
        let wall = Material::Concrete.penetration_loss_db(1e9);
        let expect = 2.0 * wall + 20.0 * 0.4; // 20 m chord at 1 GHz
        assert!((loss - expect).abs() < 0.5, "loss {loss}, expect {expect}");
    }

    #[test]
    fn ray_missing_building_is_free() {
        let b = building();
        let ray = Segment2::new(Point2::new(0.0, 50.0), Point2::new(100.0, 50.0));
        assert_eq!(b.through_loss_db(&ray, 1e9), 0.0);
        assert!(!b.blocks_track(&ray));
    }

    #[test]
    fn ray_from_inside_pays_one_wall() {
        let b = building();
        let ray = Segment2::new(Point2::new(50.0, 0.0), Point2::new(200.0, 0.0));
        let loss = b.through_loss_db(&ray, 1e9);
        let wall = Material::Concrete.penetration_loss_db(1e9);
        let expect = wall + 10.0 * 0.4; // half the 20 m footprint
        assert!((loss - expect).abs() < 0.5, "loss {loss}");
        assert!(b.blocks_track(&ray));
    }

    #[test]
    fn higher_frequency_loses_more_through_building() {
        let b = building();
        let ray = Segment2::new(Point2::new(0.0, 0.0), Point2::new(100.0, 0.0));
        assert!(b.through_loss_db(&ray, 2.6e9) > b.through_loss_db(&ray, 731e6) + 5.0);
    }

    #[test]
    fn first_crossing_distance() {
        let b = building();
        let ray = Segment2::new(Point2::new(0.0, 0.0), Point2::new(100.0, 0.0));
        let d = b.first_crossing_distance(&ray).unwrap();
        assert!((d - 40.0).abs() < 1e-9, "got {d}");
        let miss = Segment2::new(Point2::new(0.0, 50.0), Point2::new(100.0, 50.0));
        assert!(b.first_crossing_distance(&miss).is_none());
    }

    #[test]
    fn height_clamped_non_negative() {
        let b = Building::rect("x", Point2::new(0.0, 0.0), 5.0, 5.0, -3.0, Material::Brick);
        assert_eq!(b.height_m, 0.0);
    }
}
