//! Reconstruction of the paper's three experiment sites, plus two extra
//! synthetic worlds for ablations.
//!
//! The paper's testbed is one Berkeley apartment building (we anchor the
//! world at 37.8716 N, 122.2727 W):
//!
//! * **Location ①** — rooftop of the 6-story building, "open field of view
//!   to the west … some building structures on the rooftop obscure its view
//!   in other directions". Modeled as a sensor on the west parapet with a
//!   concrete penthouse to its east and wing walls north and south.
//! * **Location ②** — "behind a window that faces southeast on the 5th
//!   floor. Because of the buildings to the left and right, this location
//!   has a narrow field of view." Modeled as an indoor sensor with a glass
//!   aperture toward 135° and flanking neighbor buildings.
//! * **Location ③** — "inside the building on the 5th floor at least 8
//!   meters away from windows, with no field of view to the outside."
//!   Modeled as a deep-interior enclosure.

use crate::building::Building;
use crate::site::{Enclosure, SensorSite};
use crate::world::World;
use aircal_geo::{LatLon, Point2, Polygon2, Sector};
use aircal_rfprop::Material;
use serde::{Deserialize, Serialize};

/// Geographic anchor of the paper's testbed (Berkeley, CA).
pub fn testbed_origin() -> LatLon {
    LatLon::surface(37.8716, -122.2727)
}

/// Which experiment location a scenario reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Paper Location ①: rooftop, open west sector.
    Rooftop,
    /// Paper Location ②: behind a southeast-facing window.
    BehindWindow,
    /// Paper Location ③: deep interior, no field of view.
    Indoor,
    /// Extra: unobstructed open field (ideal installation).
    OpenField,
    /// Extra: street canyon open only to the north.
    UrbanCanyon,
    /// Extra: suburban yard mast above low wooden houses.
    Suburban,
    /// Extra: a 150 m ridge shadows the northern half of the sky.
    HillShadow,
}

impl ScenarioKind {
    /// Parse a command-line-friendly name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rooftop" | "1" | "loc1" => Some(Self::Rooftop),
            "window" | "behind-window" | "2" | "loc2" => Some(Self::BehindWindow),
            "indoor" | "inside" | "3" | "loc3" => Some(Self::Indoor),
            "open" | "open-field" => Some(Self::OpenField),
            "canyon" | "urban-canyon" => Some(Self::UrbanCanyon),
            "suburban" => Some(Self::Suburban),
            "hill" | "hill-shadow" => Some(Self::HillShadow),
            _ => None,
        }
    }

    /// Kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Rooftop => "rooftop",
            Self::BehindWindow => "behind-window",
            Self::Indoor => "indoor",
            Self::OpenField => "open-field",
            Self::UrbanCanyon => "urban-canyon",
            Self::Suburban => "suburban",
            Self::HillShadow => "hill-shadow",
        }
    }
}

/// A complete experiment setup: the world, the sensor under test, and the
/// ground-truth field of view the calibration should discover.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Which location this is.
    pub kind: ScenarioKind,
    /// The world geometry.
    pub world: World,
    /// The sensor installation under test.
    pub site: SensorSite,
    /// Ground-truth long-range field of view (width 0 = none).
    pub expected_fov: Sector,
    /// Whether the installation is genuinely outdoors (ground truth for
    /// the indoor/outdoor classifier).
    pub is_outdoor: bool,
}

impl Scenario {
    /// Build the scenario for a given kind.
    pub fn build(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::Rooftop => rooftop(),
            ScenarioKind::BehindWindow => behind_window(),
            ScenarioKind::Indoor => indoor(),
            ScenarioKind::OpenField => open_field(),
            ScenarioKind::UrbanCanyon => urban_canyon(),
            ScenarioKind::Suburban => suburban(),
            ScenarioKind::HillShadow => hill_shadow(),
        }
    }
}

/// The three scenarios evaluated in the paper (Locations ①–③).
pub fn paper_scenarios() -> Vec<Scenario> {
    vec![rooftop(), behind_window(), indoor()]
}

/// All scenarios, including the two extra synthetic worlds.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        rooftop(),
        behind_window(),
        indoor(),
        open_field(),
        urban_canyon(),
        suburban(),
        hill_shadow(),
    ]
}

/// A dense synthetic downtown for geometry benchmarks: an `n_per_side` ×
/// `n_per_side` block grid of mid-rise buildings on a 60 m pitch, heights
/// cycling 10–42 m, with an outdoor rooftop sensor at the center. Far
/// bigger than any paper scenario — this is where the spatial index earns
/// its keep — and deliberately **not** part of [`all_scenarios`], so the
/// calibration test suite stays on the paper's worlds.
pub fn dense_city(n_per_side: usize) -> Scenario {
    let origin = testbed_origin();
    let mut world = World::open(origin);
    let half = (n_per_side as f64 - 1.0) * 30.0;
    for i in 0..n_per_side {
        for j in 0..n_per_side {
            let c = Point2::new(i as f64 * 60.0 - half, j as f64 * 60.0 - half);
            // Leave a small plaza around the sensor itself.
            if c.x.abs() < 25.0 && c.y.abs() < 25.0 {
                continue;
            }
            let material = match (i + 2 * j) % 3 {
                0 => Material::Concrete,
                1 => Material::Brick,
                _ => Material::Glass,
            };
            world.buildings.push(Building::rect(
                format!("block-{i}-{j}"),
                c,
                26.0,
                26.0,
                10.0 + ((i * 7 + j * 3) % 5) as f64 * 8.0,
                material,
            ));
        }
    }
    let mut pos = origin;
    pos.alt_m = 12.0;
    Scenario {
        kind: ScenarioKind::UrbanCanyon,
        world,
        site: SensorSite::outdoor("dense-city", pos),
        expected_fov: Sector::full(),
        is_outdoor: true,
    }
}

/// The apartment building hosting all three paper sites: 30 m × 25 m,
/// six stories (18 m), concrete.
fn apartment_building() -> Building {
    Building::new(
        "apartment",
        Polygon2::rect(-15.0, -12.5, 15.0, 12.5),
        18.0,
        Material::Concrete,
    )
}

/// Neighbor buildings flanking the southeast window of Location ②.
fn neighbors() -> Vec<Building> {
    vec![
        Building::new(
            "east-neighbor",
            Polygon2::rect(30.0, -15.0, 50.0, 15.0),
            25.0,
            Material::Brick,
        ),
        Building::new(
            "south-neighbor",
            Polygon2::rect(-15.0, -50.0, 15.0, -30.0),
            25.0,
            Material::Brick,
        ),
    ]
}

fn base_world() -> World {
    let mut w = World::open(testbed_origin()).with_building(apartment_building());
    for n in neighbors() {
        w.buildings.push(n);
    }
    w
}

/// Location ①: rooftop with an open west sector.
fn rooftop() -> Scenario {
    let mut world = base_world();
    // Concrete penthouse east of the sensor (stairs/elevator machinery —
    // dense interior, hence the elevated bulk loss).
    world.buildings.push(
        Building::new(
            "penthouse",
            Polygon2::rect(-10.0, -9.0, 2.0, 9.0),
            25.5,
            Material::Concrete,
        )
        .with_interior_loss(2.5),
    );
    // Rooftop machinery enclosures north and south of the sensor position
    // (dense: ducting, tanks, equipment — hence the high bulk loss).
    world.buildings.push(
        Building::new(
            "north-wing",
            Polygon2::rect(-14.5, 4.0, -8.3, 9.0),
            24.5,
            Material::Concrete,
        )
        .with_interior_loss(2.5),
    );
    world.buildings.push(
        Building::new(
            "south-wing",
            Polygon2::rect(-14.5, -9.0, -8.3, -4.0),
            24.5,
            Material::Concrete,
        )
        .with_interior_loss(2.5),
    );
    // Sensor on the west parapet, antenna 1.5 m above the 18 m roof.
    let mut pos = testbed_origin().destination(270.0, 12.0);
    pos.alt_m = 19.5;
    Scenario {
        kind: ScenarioKind::Rooftop,
        world,
        site: SensorSite::outdoor("rooftop", pos),
        expected_fov: Sector::centered(270.0, 120.0),
        is_outdoor: true,
    }
}

/// Location ②: behind a southeast-facing window on the 5th floor.
fn behind_window() -> Scenario {
    let world = base_world();
    // Sensor just inside the building's southeast corner, 5th floor (15 m).
    let corner_2d = Point2::new(13.0, -10.5);
    let mut pos = testbed_origin().destination(corner_2d.bearing_deg(), corner_2d.range_m());
    pos.alt_m = 15.0;
    let enclosure = Enclosure::behind_window(Sector::centered(135.0, 30.0));
    Scenario {
        kind: ScenarioKind::BehindWindow,
        world,
        site: SensorSite::indoor("behind-window", pos, enclosure),
        expected_fov: Sector::centered(135.0, 30.0),
        is_outdoor: false,
    }
}

/// Location ③: deep interior, 5th floor, ≥8 m from any window.
fn indoor() -> Scenario {
    let world = base_world();
    let mut pos = testbed_origin();
    pos.alt_m = 15.0;
    Scenario {
        kind: ScenarioKind::Indoor,
        world,
        site: SensorSite::indoor("indoor", pos, Enclosure::interior()),
        expected_fov: Sector::new(0.0, 0.0),
        is_outdoor: false,
    }
}

/// Extra: a mast in an open field — the ideal reference installation.
fn open_field() -> Scenario {
    let world = World::open(testbed_origin());
    let mut pos = testbed_origin();
    pos.alt_m = 10.0;
    Scenario {
        kind: ScenarioKind::OpenField,
        world,
        site: SensorSite::outdoor("open-field", pos),
        expected_fov: Sector::full(),
        is_outdoor: true,
    }
}

/// Extra: a street canyon between two tall slabs, open only northward.
fn urban_canyon() -> Scenario {
    let world = World::open(testbed_origin())
        .with_building(
            Building::new(
                "west-slab",
                Polygon2::rect(-40.0, -80.0, -10.0, 10.0),
                45.0,
                Material::Concrete,
            )
            // Dense office slab: through-the-building paths are hopeless,
            // only over-the-roof diffraction matters.
            .with_interior_loss(2.0),
        )
        .with_building(
            Building::new(
                "east-slab",
                Polygon2::rect(10.0, -80.0, 40.0, 10.0),
                45.0,
                Material::Concrete,
            )
            .with_interior_loss(2.0),
        )
        .with_building(
            Building::new(
                "south-block",
                Polygon2::rect(-40.0, -110.0, 40.0, -85.0),
                45.0,
                Material::Concrete,
            )
            .with_interior_loss(2.0),
        );
    let mut pos = testbed_origin();
    pos.alt_m = 3.0;
    Scenario {
        kind: ScenarioKind::UrbanCanyon,
        world,
        site: SensorSite::outdoor("urban-canyon", pos),
        // The slab ends sit 10 m north and 10 m east/west of the sensor:
        // the mouth subtends ±45°.
        expected_fov: Sector::centered(0.0, 90.0),
        is_outdoor: true,
    }
}

/// Extra: a mast in a suburban yard, above the surrounding single-story
/// wooden houses — a realistic "good volunteer" installation.
fn suburban() -> Scenario {
    let mut world = World::open(testbed_origin());
    // A ring of low wooden houses around the yard.
    for (i, bearing) in [30.0, 100.0, 170.0, 250.0, 320.0].iter().enumerate() {
        let c = Point2::from_bearing(*bearing, 35.0);
        world.buildings.push(Building::rect(
            format!("house-{i}"),
            c,
            14.0,
            10.0,
            6.0,
            Material::Wood,
        ));
    }
    let mut pos = testbed_origin();
    pos.alt_m = 8.0; // mast above the rooflines
    Scenario {
        kind: ScenarioKind::Suburban,
        world,
        site: SensorSite::outdoor("suburban", pos),
        expected_fov: Sector::full(),
        is_outdoor: true,
    }
}

/// Extra: open installation with a 150 m ridge ~800 m north — terrain
/// shadowing, the paper's "nearby buildings or mountains" case.
fn hill_shadow() -> Scenario {
    let world = World::open(testbed_origin()).with_building(
        Building::new(
            "ridge",
            Polygon2::rect(-3_000.0, 800.0, 3_000.0, 1_400.0),
            150.0,
            Material::Concrete, // rock: treated as opaque
        )
        .with_interior_loss(10.0),
    );
    let mut pos = testbed_origin();
    pos.alt_m = 5.0;
    Scenario {
        kind: ScenarioKind::HillShadow,
        world,
        site: SensorSite::outdoor("hill-shadow", pos),
        expected_fov: Sector::centered(180.0, 210.0),
        is_outdoor: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mean deterministic obstruction loss (dB) inside / outside a sector
    /// for a scenario, at ADS-B geometry (low elevation, long range).
    fn sector_losses(s: &Scenario, sector: &Sector) -> (f64, f64) {
        let prof = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 2.0, 50_000.0, 72);
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0, 0.0, 0);
        for (i, &loss) in prof.iter().enumerate() {
            let bearing = i as f64 * 5.0;
            if sector.contains(bearing) {
                in_sum += loss;
                in_n += 1;
            } else {
                out_sum += loss;
                out_n += 1;
            }
        }
        (in_sum / in_n.max(1) as f64, out_sum / out_n.max(1) as f64)
    }

    #[test]
    fn rooftop_open_west_blocked_elsewhere() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let (inside, outside) = sector_losses(&s, &s.expected_fov);
        assert!(inside < 3.0, "west sector should be clear, got {inside} dB");
        assert!(
            outside > 15.0,
            "other sectors should be obstructed, got {outside} dB"
        );
    }

    #[test]
    fn window_narrow_aperture() {
        let s = Scenario::build(ScenarioKind::BehindWindow);
        let (inside, outside) = sector_losses(&s, &s.expected_fov);
        assert!(inside < 5.0, "aperture should be cheap, got {inside} dB");
        assert!(outside > 12.0, "walls should be lossy, got {outside} dB");
    }

    #[test]
    fn indoor_blocked_everywhere() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let prof = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 2.0, 50_000.0, 36);
        for (i, &loss) in prof.iter().enumerate() {
            assert!(loss > 15.0, "bearing {} only {loss} dB", i * 10);
        }
    }

    #[test]
    fn open_field_clear_everywhere() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let prof = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 2.0, 50_000.0, 36);
        assert!(prof.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn canyon_open_north() {
        let s = Scenario::build(ScenarioKind::UrbanCanyon);
        let (inside, outside) = sector_losses(&s, &s.expected_fov);
        assert!(inside < 3.0, "north should be clear, got {inside}");
        assert!(outside > 10.0, "canyon walls should block, got {outside}");
    }

    #[test]
    fn kinds_parse_round_trip() {
        for k in [
            ScenarioKind::Rooftop,
            ScenarioKind::BehindWindow,
            ScenarioKind::Indoor,
            ScenarioKind::OpenField,
            ScenarioKind::UrbanCanyon,
            ScenarioKind::Suburban,
            ScenarioKind::HillShadow,
        ] {
            assert_eq!(ScenarioKind::parse(k.name()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("nonsense"), None);
    }

    #[test]
    fn paper_scenarios_are_the_three_locations() {
        let s = paper_scenarios();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].kind, ScenarioKind::Rooftop);
        assert_eq!(s[1].kind, ScenarioKind::BehindWindow);
        assert_eq!(s[2].kind, ScenarioKind::Indoor);
        assert!(s[0].is_outdoor && !s[1].is_outdoor && !s[2].is_outdoor);
    }

    #[test]
    fn window_elevation_dependence() {
        // The aperture works at low elevation but closes at high elevation
        // (ceiling): distant aircraft through the window, overhead ones not.
        let s = Scenario::build(ScenarioKind::BehindWindow);
        let low = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 5.0, 40_000.0, 72);
        let high = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 60.0, 5_000.0, 72);
        let idx_135 = 27; // 135° at 5° steps
        assert!(low[idx_135] < 5.0);
        assert!(high[idx_135] > low[idx_135] + 5.0);
    }
}

#[cfg(test)]
mod extra_scenario_tests {
    use super::*;

    #[test]
    fn suburban_mostly_clear() {
        let s = Scenario::build(ScenarioKind::Suburban);
        let prof = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 2.0, 50_000.0, 72);
        let clear = prof.iter().filter(|&&l| l < 3.0).count();
        // The mast clears the rooflines in (almost) every direction.
        assert!(clear >= 60, "only {clear}/72 bearings clear");
    }

    #[test]
    fn hill_blocks_north_low_elevation_only() {
        let s = Scenario::build(ScenarioKind::HillShadow);
        let low = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 2.0, 50_000.0, 72);
        // North (index 0) deeply shadowed at low elevation…
        assert!(low[0] > 15.0, "north low-elevation {}", low[0]);
        // …south untouched…
        assert!(low[36] < 1.0, "south {}", low[36]);
        // …and the ridge cannot stop a high-elevation aircraft.
        let high = s
            .world
            .obstruction_profile(&s.site, 1.09e9, 30.0, 20_000.0, 72);
        assert!(high[0] < 3.0, "north high-elevation {}", high[0]);
    }
}
