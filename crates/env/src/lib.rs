//! Environment model: buildings, sensor sites, and the geometry →
//! [`aircal_rfprop::PathProfile`] bridge.
//!
//! The paper evaluates three installations of the same sensor around one
//! Berkeley apartment building:
//!
//! 1. **Rooftop** (6th floor) — open field of view to the west, rooftop
//!    structures obscuring the other directions;
//! 2. **Behind a window** (5th floor, facing southeast) — a slim aperture
//!    between neighboring buildings;
//! 3. **Inside the building** (5th floor, ≥8 m from windows) — no field of
//!    view at all.
//!
//! [`scenarios`] reconstructs those worlds; [`World::path_profile`] answers
//! the question every measurement chain asks: *given this emitter and this
//! sensor, what does the path look like?* — by ray-casting through building
//! footprints, comparing ray height against building heights, and choosing
//! the cheaper of over-the-roof diffraction and through-the-walls
//! penetration.

pub mod building;
pub mod index;
pub mod scenarios;
pub mod site;
pub mod world;

pub use building::Building;
pub use index::{GeoAccel, GeoScratch, GeoStats, PathCache, WorldIndex};
pub use scenarios::{all_scenarios, paper_scenarios, Scenario, ScenarioKind};
pub use site::{Enclosure, SensorSite};
pub use world::World;
