//! Spatial acceleration for the world→PHY hot path.
//!
//! Every ADS-B burst plan, TV sweep channel and cellular scan calls
//! [`World::path_profile`](crate::World::path_profile), which brute-forces
//! all buildings and re-projects the site per call. This module makes that
//! hot path fast without changing a single output bit:
//!
//! * [`WorldIndex`] — a uniform grid over (padded) building-footprint
//!   AABBs with a conservative ray-traversal query. Pruned buildings are
//!   exactly those that provably cannot touch the 2-D track, so the
//!   accelerated profile is **bit-identical** to the brute-force scan
//!   (excluded buildings contribute exactly 0 dB and never touch the
//!   accumulators; survivors are visited in the same ascending order).
//! * [`PathCache`] — an exact-key memo for static emitters (TV/cell
//!   towers, obstruction-sweep points): key = the *bit patterns* of the
//!   site position, enclosure flag, emitter position and frequency, so a
//!   hit can only ever return what a miss would have computed.
//! * [`GeoScratch`] — caller-owned buffers in the PR-4 `DspScratch`
//!   style, so the steady-state query loop is allocation-free.
//!
//! ## Exactness argument
//!
//! A building contributes to a profile only if its footprint contains the
//! track start or its boundary crosses the track; both imply the track
//! intersects the footprint's closed AABB. Buildings are binned into grid
//! cells by AABBs padded by [`PAD_M`] (≫ any f64 rounding at city scale),
//! and the query walks every cell whose slab the track's clipped interval
//! overlaps, padded again by [`QUERY_EPS_M`]; a final per-candidate exact
//! slab test only discards boxes the segment provably misses. Hence the
//! candidate set is a superset of the contributing set, and the survivors
//! run the identical per-building arithmetic.

use crate::site::SensorSite;
use crate::world::World;
use aircal_geo::{Aabb2, EnuFrame, LatLon, Point2, Segment2};
use aircal_rfprop::PathProfile;
use std::collections::HashMap;

/// Padding applied to building AABBs before binning, meters. City-scale
/// coordinates stay below ~1e5 m, where f64 rounding is ~1e-11 m; a
/// millimeter of slack makes floating-point corner grazes unmissable
/// while adding no measurable false-positive cost.
const PAD_M: f64 = 1e-3;

/// Padding applied to slab/cell windows during traversal, meters.
const QUERY_EPS_M: f64 = 1e-6;

/// Uniform-grid spatial index over a [`World`]'s building footprints,
/// plus the world's precomputed ENU projection frame.
///
/// An index is a pure function of the world that built it: rebuild after
/// mutating `world.buildings` or `world.origin`.
#[derive(Debug, Clone)]
pub struct WorldIndex {
    frame: EnuFrame,
    /// Padded footprint AABBs, indexed by building id.
    aabbs: Vec<Aabb2>,
    bounds: Aabb2,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    /// CSR layout: cell `c` holds `cell_items[cell_start[c]..cell_start[c+1]]`.
    cell_start: Vec<u32>,
    cell_items: Vec<u32>,
}

impl WorldIndex {
    /// Build the index for a world.
    pub fn new(world: &World) -> Self {
        let frame = EnuFrame::new(&world.origin);
        let aabbs: Vec<Aabb2> = world.buildings.iter().map(|b| b.aabb().expand(PAD_M)).collect();
        let mut bounds = Aabb2::empty();
        for b in &aabbs {
            bounds = bounds.union(b);
        }
        if aabbs.is_empty() || bounds.is_empty() {
            return Self {
                frame,
                aabbs,
                bounds: Aabb2::empty(),
                nx: 0,
                ny: 0,
                cell_w: 1.0,
                cell_h: 1.0,
                cell_start: vec![0],
                cell_items: Vec::new(),
            };
        }

        // ~2·√n cells per axis keeps occupancy near O(1) per cell for
        // roughly uniform layouts while bounding the grid footprint.
        let per_axis = (((aabbs.len() as f64).sqrt().ceil() as usize) * 2).clamp(1, 192);
        let (nx, ny) = (per_axis, per_axis);
        let cell_w = (bounds.width() / nx as f64).max(1e-6);
        let cell_h = (bounds.height() / ny as f64).max(1e-6);

        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
        for (bi, bb) in aabbs.iter().enumerate() {
            let i0 = cell_of((bb.min.x - bounds.min.x) / cell_w, nx);
            let i1 = cell_of((bb.max.x - bounds.min.x) / cell_w, nx);
            let j0 = cell_of((bb.min.y - bounds.min.y) / cell_h, ny);
            let j1 = cell_of((bb.max.y - bounds.min.y) / cell_h, ny);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    cells[j * nx + i].push(bi as u32);
                }
            }
        }

        let mut cell_start = Vec::with_capacity(nx * ny + 1);
        let mut cell_items = Vec::new();
        cell_start.push(0u32);
        for c in &cells {
            cell_items.extend_from_slice(c);
            cell_start.push(cell_items.len() as u32);
        }

        Self {
            frame,
            aabbs,
            bounds,
            nx,
            ny,
            cell_w,
            cell_h,
            cell_start,
            cell_items,
        }
    }

    /// Number of indexed buildings.
    pub fn n_buildings(&self) -> usize {
        self.aabbs.len()
    }

    /// Grid dimensions `(nx, ny)` — `(0, 0)` for an empty world.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Project a geographic position into the world's 2-D ENU plane;
    /// bit-identical to [`World::project`] for the anchoring world.
    pub fn project(&self, pos: &LatLon) -> Point2 {
        let enu = self.frame.enu_of(pos);
        Point2::new(enu.east, enu.north)
    }

    /// Collect into `scratch.candidates` the ids (ascending, deduplicated)
    /// of every building whose padded AABB the track could touch. The
    /// result is a superset of the buildings that interact with `seg`.
    pub fn candidates_into(&self, seg: &Segment2, scratch: &mut GeoScratch) {
        scratch.begin(self.aabbs.len());
        if self.nx == 0 {
            return;
        }
        let Some((t0, t1)) = self.bounds.expand(QUERY_EPS_M).clip_segment(seg) else {
            return;
        };
        let (dx, dy) = (seg.b.x - seg.a.x, seg.b.y - seg.a.y);
        let (ya, yb) = (seg.a.y + t0 * dy, seg.a.y + t1 * dy);
        let j0 = cell_of((ya.min(yb) - QUERY_EPS_M - self.bounds.min.y) / self.cell_h, self.ny);
        let j1 = cell_of((ya.max(yb) + QUERY_EPS_M - self.bounds.min.y) / self.cell_h, self.ny);

        for j in j0..=j1 {
            let slab_lo = self.bounds.min.y + j as f64 * self.cell_h - QUERY_EPS_M;
            let slab_hi = self.bounds.min.y + (j + 1) as f64 * self.cell_h + QUERY_EPS_M;
            // Parameter window of the track inside this row's y-slab.
            let (u0, u1) = if dy == 0.0 {
                if seg.a.y < slab_lo || seg.a.y > slab_hi {
                    continue;
                }
                (t0, t1)
            } else {
                let (mut c0, mut c1) = ((slab_lo - seg.a.y) / dy, (slab_hi - seg.a.y) / dy);
                if c0 > c1 {
                    std::mem::swap(&mut c0, &mut c1);
                }
                let (u0, u1) = (t0.max(c0), t1.min(c1));
                if u0 > u1 {
                    continue;
                }
                (u0, u1)
            };
            let (xa, xb) = (seg.a.x + u0 * dx, seg.a.x + u1 * dx);
            let i0 = cell_of((xa.min(xb) - QUERY_EPS_M - self.bounds.min.x) / self.cell_w, self.nx);
            let i1 = cell_of((xa.max(xb) + QUERY_EPS_M - self.bounds.min.x) / self.cell_w, self.nx);
            for i in i0..=i1 {
                let c = j * self.nx + i;
                let lo = self.cell_start[c] as usize;
                let hi = self.cell_start[c + 1] as usize;
                for &bi in &self.cell_items[lo..hi] {
                    if scratch.stamp[bi as usize] == scratch.epoch {
                        continue;
                    }
                    scratch.stamp[bi as usize] = scratch.epoch;
                    scratch.stats.aabb_tests += 1;
                    if self.aabbs[bi as usize].intersects_segment(seg) {
                        scratch.candidates.push(bi);
                    }
                }
            }
        }
        // Ascending building order: the accumulation loop must visit
        // survivors in exactly the brute-force order for bit-identity.
        scratch.candidates.sort_unstable();
        scratch.stats.candidates += scratch.candidates.len() as u64;
    }
}

/// Map a (possibly slightly out-of-range) cell coordinate to a valid index.
fn cell_of(v: f64, n: usize) -> usize {
    (v.floor() as isize).clamp(0, n as isize - 1) as usize
}

/// Counters describing how much work the accelerated geometry path did —
/// exported through `aircal-obs` by the calibration engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GeoStats {
    /// Index queries issued (one per accelerated `path_profile`).
    pub queries: u64,
    /// Per-building AABB tests performed during traversal.
    pub aabb_tests: u64,
    /// Candidates that survived pruning (exact polygon math ran).
    pub candidates: u64,
}

impl GeoStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &GeoStats) {
        self.queries += other.queries;
        self.aabb_tests += other.aabb_tests;
        self.candidates += other.candidates;
    }

    /// Return the accumulated counters and reset them to zero.
    pub fn take(&mut self) -> GeoStats {
        std::mem::take(self)
    }
}

/// Caller-owned scratch buffers for the accelerated geometry path, in the
/// `DspScratch` style: warm buffers make the per-profile loop
/// allocation-free in steady state.
#[derive(Debug, Default, Clone)]
pub struct GeoScratch {
    /// Last-seen epoch per building id (deduplicates grid-cell visits).
    pub(crate) stamp: Vec<u32>,
    pub(crate) epoch: u32,
    /// Candidate building ids from the last query, ascending.
    pub(crate) candidates: Vec<u32>,
    /// Boundary-crossings buffer shared by the per-building cut.
    pub(crate) hits: Vec<(f64, Point2)>,
    /// Chord-partition buffer shared by the per-building cut.
    pub(crate) ts: Vec<f64>,
    /// Work counters (monotone; drain with [`GeoStats::take`]).
    pub stats: GeoStats,
}

impl GeoScratch {
    /// Fresh scratch (buffers grow on first use, then stay warm).
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate ids from the most recent query.
    pub fn last_candidates(&self) -> &[u32] {
        &self.candidates
    }

    fn begin(&mut self, n_buildings: usize) {
        if self.stamp.len() < n_buildings {
            self.stamp.resize(n_buildings, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrap after ~4e9 queries: reset stamps once, keep going.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.candidates.clear();
        self.stats.queries += 1;
    }
}

/// Exact-bit memo key: a cache hit can only return what the miss path
/// would have computed, because every input that influences the profile
/// (site position and enclosure flag, emitter position, frequency) is
/// captured by its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PathKey {
    site: [u64; 3],
    indoor: bool,
    emitter: [u64; 3],
    freq: u64,
}

impl PathKey {
    pub(crate) fn of(site: &SensorSite, emitter: &LatLon, freq_hz: f64) -> Self {
        Self {
            site: [
                site.position.lat_deg.to_bits(),
                site.position.lon_deg.to_bits(),
                site.position.alt_m.to_bits(),
            ],
            indoor: site.enclosure.is_some(),
            emitter: [
                emitter.lat_deg.to_bits(),
                emitter.lon_deg.to_bits(),
                emitter.alt_m.to_bits(),
            ],
            freq: freq_hz.to_bits(),
        }
    }
}

/// Exact-key propagation memo for static emitters (TV towers, cell
/// towers, obstruction-sweep points).
///
/// A cache belongs to the [`World`] whose profiles it stores: clear or
/// drop it when the world's buildings change. Site/emitter/frequency are
/// all part of the key, so one cache may serve many sites against the
/// same world.
#[derive(Debug, Default, Clone)]
pub struct PathCache {
    map: HashMap<PathKey, PathProfile>,
    hits: u64,
    misses: u64,
    published_hits: u64,
    published_misses: u64,
}

impl PathCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn get(&mut self, key: &PathKey) -> Option<PathProfile> {
        match self.map.get(key) {
            Some(p) => {
                self.hits += 1;
                Some(*p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn put(&mut self, key: PathKey, profile: PathProfile) {
        self.map.insert(key, profile);
    }

    /// Number of memoized profiles.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the geometry path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the memo (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all entries and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
        self.published_hits = 0;
        self.published_misses = 0;
    }

    /// `(hits, misses)` accumulated since the previous call — the delta
    /// form the observability layer wants for monotone counters.
    pub fn take_delta(&mut self) -> (u64, u64) {
        let d = (self.hits - self.published_hits, self.misses - self.published_misses);
        self.published_hits = self.hits;
        self.published_misses = self.misses;
        d
    }
}

/// Bundled accelerator for one world: index + memo + scratch. The
/// ergonomic front door for long-lived holders (network nodes, the
/// calibration engine); hot loops that shard work across threads use the
/// parts individually.
#[derive(Debug, Clone)]
pub struct GeoAccel {
    pub index: WorldIndex,
    pub cache: PathCache,
    pub scratch: GeoScratch,
}

impl GeoAccel {
    /// Build the accelerator for a world.
    pub fn new(world: &World) -> Self {
        Self {
            index: WorldIndex::new(world),
            cache: PathCache::new(),
            scratch: GeoScratch::new(),
        }
    }

    /// Memoized, indexed path profile; bit-identical to
    /// `world.path_profile(site, emitter, freq_hz)` for the world this
    /// accelerator was built from.
    pub fn profile(
        &mut self,
        world: &World,
        site: &SensorSite,
        emitter: &LatLon,
        freq_hz: f64,
    ) -> PathProfile {
        world.path_profile_cached(
            &self.index,
            &mut self.cache,
            site,
            emitter,
            freq_hz,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::Building;
    use aircal_rfprop::Material;

    fn origin() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    fn grid_world(n_per_side: usize) -> World {
        let mut w = World::open(origin());
        for i in 0..n_per_side {
            for j in 0..n_per_side {
                w = w.with_building(Building::rect(
                    format!("b{i}-{j}"),
                    Point2::new(i as f64 * 60.0 - 300.0, j as f64 * 60.0 - 300.0),
                    20.0,
                    20.0,
                    10.0 + ((i + j) % 5) as f64 * 8.0,
                    Material::Concrete,
                ));
            }
        }
        w
    }

    #[test]
    fn empty_world_has_no_candidates() {
        let w = World::open(origin());
        let idx = WorldIndex::new(&w);
        assert_eq!(idx.grid_dims(), (0, 0));
        let mut s = GeoScratch::new();
        let seg = Segment2::new(Point2::new(-100.0, 0.0), Point2::new(100.0, 0.0));
        idx.candidates_into(&seg, &mut s);
        assert!(s.last_candidates().is_empty());
        assert_eq!(s.stats.queries, 1);
    }

    #[test]
    fn candidates_are_sorted_superset_of_interacting_buildings() {
        let w = grid_world(8);
        let idx = WorldIndex::new(&w);
        let mut s = GeoScratch::new();
        for (a, b) in [
            (Point2::new(-400.0, -123.0), Point2::new(400.0, 200.0)),
            (Point2::new(0.0, 0.0), Point2::new(0.0, 0.0)),
            (Point2::new(-290.0, -290.0), Point2::new(150.0, 130.0)),
            (Point2::new(-1000.0, 500.0), Point2::new(1000.0, 500.0)),
        ] {
            let seg = Segment2::new(a, b);
            idx.candidates_into(&seg, &mut s);
            let cands = s.last_candidates().to_vec();
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            let set: std::collections::HashSet<u32> = cands.iter().copied().collect();
            for (bi, bld) in w.buildings.iter().enumerate() {
                if bld.blocks_track(&seg) {
                    assert!(
                        set.contains(&(bi as u32)),
                        "building {bi} interacts but was pruned"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_discards_most_of_a_dense_world() {
        let w = grid_world(16); // 256 buildings
        let idx = WorldIndex::new(&w);
        let mut s = GeoScratch::new();
        let seg = Segment2::new(Point2::new(-310.0, 7.0), Point2::new(620.0, 11.0));
        idx.candidates_into(&seg, &mut s);
        assert!(
            s.last_candidates().len() < w.buildings.len() / 4,
            "only {} of {} pruned",
            s.last_candidates().len(),
            w.buildings.len()
        );
    }

    #[test]
    fn path_cache_counts_hits_and_misses() {
        let w = grid_world(3);
        let mut accel = GeoAccel::new(&w);
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 5.0));
        let mut em = origin().destination(45.0, 30_000.0);
        em.alt_m = 5_000.0;
        let a = accel.profile(&w, &site, &em, 1.09e9);
        let b = accel.profile(&w, &site, &em, 1.09e9);
        assert_eq!(a.total_loss_db().to_bits(), b.total_loss_db().to_bits());
        assert_eq!(accel.cache.hits(), 1);
        assert_eq!(accel.cache.misses(), 1);
        assert_eq!(accel.cache.len(), 1);
        assert_eq!(accel.cache.take_delta(), (1, 1));
        assert_eq!(accel.cache.take_delta(), (0, 0));
        // Different frequency is a different key.
        accel.profile(&w, &site, &em, 0.6e9);
        assert_eq!(accel.cache.misses(), 2);
    }

    #[test]
    fn scratch_epoch_dedup_survives_reuse() {
        let w = grid_world(4);
        let idx = WorldIndex::new(&w);
        let mut s = GeoScratch::new();
        let seg = Segment2::new(Point2::new(-400.0, 0.0), Point2::new(400.0, 0.0));
        idx.candidates_into(&seg, &mut s);
        let first = s.last_candidates().to_vec();
        for _ in 0..10 {
            idx.candidates_into(&seg, &mut s);
        }
        assert_eq!(s.last_candidates(), &first[..], "stable across reuse");
    }
}
