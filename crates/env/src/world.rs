//! The world model and the geometry → path-profile computation.

use crate::building::Building;
use crate::site::SensorSite;
use aircal_geo::{LatLon, Point2, Segment2};
use aircal_rfprop::diffraction::knife_edge_loss_db;
use aircal_rfprop::PathProfile;
use serde::{Deserialize, Serialize};

/// A simulated world: a geographic origin anchoring the local ENU frame,
/// plus the buildings that obstruct propagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Geographic anchor of the local ENU frame (all building footprints
    /// are meters east/north of this point).
    pub origin: LatLon,
    /// Obstructing structures.
    pub buildings: Vec<Building>,
}

impl World {
    /// An empty world (free space) anchored at `origin`.
    pub fn open(origin: LatLon) -> Self {
        Self {
            origin,
            buildings: Vec::new(),
        }
    }

    /// Add a building (builder style).
    pub fn with_building(mut self, b: Building) -> Self {
        self.buildings.push(b);
        self
    }

    /// Project a geographic position into the world's 2-D ENU plane.
    pub fn project(&self, pos: &LatLon) -> Point2 {
        let enu = self.origin.enu_of(pos);
        Point2::new(enu.east, enu.north)
    }

    /// Compute the full propagation path profile from an emitter at
    /// `emitter` (altitude in `alt_m`, meters above local ground) to the
    /// sensor at `site`, for a carrier at `freq_hz`.
    ///
    /// For every building whose footprint the 2-D ray track crosses, the
    /// model charges the *cheaper* of (a) knife-edge diffraction over the
    /// roof and (b) wall + interior penetration straight through — radio
    /// takes the easiest path. The sensor's own enclosure (if indoors) adds
    /// its direction-dependent exit loss. Fading statistics (Rician K,
    /// shadowing σ) are set from how obstructed the path ended up, which is
    /// what produces the paper's "close aircraft received regardless of
    /// direction" multipath behaviour.
    pub fn path_profile(&self, site: &SensorSite, emitter: &LatLon, freq_hz: f64) -> PathProfile {
        let ground_dist = site.position.distance_m(emitter).max(1.0);
        let slant = site.position.slant_range_m(emitter).max(1.0);
        let bearing = site.position.bearing_deg(emitter);
        let elevation = site.position.elevation_deg(emitter);

        let sensor_2d = self.project(&site.position);
        let emitter_2d = self.project(emitter);
        let track = Segment2::new(sensor_2d, emitter_2d);

        let h_sensor = site.position.alt_m;
        let h_emitter = emitter.alt_m;

        let mut diffraction_db = 0.0;
        let mut penetration_db = 0.0;

        for b in &self.buildings {
            // The host building of an enclosed sensor is modeled by the
            // enclosure, not by its footprint (avoids double counting).
            if site.enclosure.is_some() && b.footprint.contains(&sensor_2d) {
                continue;
            }
            if !b.blocks_track(&track) {
                continue;
            }
            let d_c = b
                .first_crossing_distance(&track)
                .unwrap_or(1.0)
                .clamp(1.0, ground_dist);
            let t = (d_c / ground_dist).clamp(0.0, 1.0);
            let h_ray = h_sensor + (h_emitter - h_sensor) * t;
            let h_excess = b.height_m - h_ray;
            let over = knife_edge_loss_db(h_excess, d_c, (ground_dist - d_c).max(1.0), freq_hz);
            let through = b.through_loss_db(&track, freq_hz);
            if over <= through {
                diffraction_db += over;
            } else {
                penetration_db += through;
            }
        }

        if let Some(enc) = &site.enclosure {
            penetration_db += enc.exit_loss_db(bearing, elevation, freq_hz);
        }

        let extra = diffraction_db + penetration_db;
        let (k_factor_db, shadowing_sigma_db) = if extra < 3.0 {
            (12.0, 2.0)
        } else if extra < 15.0 {
            (6.0, 4.0)
        } else {
            // Deep obstruction: Rayleigh-like multipath. σ stays moderate —
            // the dominant loss is already deterministic, and a large σ
            // would let implausibly many deep-shadow links "get lucky".
            (1.0, 5.0)
        };

        PathProfile {
            distance_m: slant,
            freq_hz,
            diffraction_db,
            penetration_db,
            excess_db: 0.0,
            k_factor_db,
            shadowing_sigma_db,
        }
    }

    /// Sample the deterministic obstruction loss (diffraction +
    /// penetration, dB) around the full circle at a fixed elevation and
    /// range: the world's ground-truth visibility profile for a site.
    ///
    /// Returns `n` samples at bearings `i·360/n`.
    pub fn obstruction_profile(
        &self,
        site: &SensorSite,
        freq_hz: f64,
        elevation_deg: f64,
        range_m: f64,
        n: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let bearing = i as f64 * 360.0 / n as f64;
                let mut emitter = site.position.destination(bearing, range_m);
                emitter.alt_m =
                    site.position.alt_m + elevation_deg.to_radians().tan() * range_m;
                let p = self.path_profile(site, &emitter, freq_hz);
                p.diffraction_db + p.penetration_db
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_geo::Sector;
    use aircal_rfprop::Material;

    fn origin() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    fn aircraft_at(site: &SensorSite, bearing: f64, range_m: f64, alt_m: f64) -> LatLon {
        let mut p = site.position.destination(bearing, range_m);
        p.alt_m = alt_m;
        p
    }

    #[test]
    fn open_world_is_lossless() {
        let w = World::open(origin());
        let site = SensorSite::outdoor("roof", LatLon::new(37.8716, -122.2727, 20.0));
        let ac = aircraft_at(&site, 90.0, 50_000.0, 10_000.0);
        let p = w.path_profile(&site, &ac, 1.09e9);
        assert_eq!(p.diffraction_db, 0.0);
        assert_eq!(p.penetration_db, 0.0);
        assert!(!p.is_obstructed());
        assert!((p.distance_m - site.position.slant_range_m(&ac)).abs() < 1.0);
    }

    #[test]
    fn building_blocks_low_elevation_not_high() {
        let w = World::open(origin()).with_building(Building::rect(
            "tower",
            Point2::new(20.0, 0.0), // 20 m east of the sensor
            10.0,
            40.0,
            60.0, // much taller than the sensor
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        // Distant aircraft low on the eastern horizon: deeply shadowed.
        let low = aircraft_at(&site, 90.0, 80_000.0, 3_000.0);
        let p_low = w.path_profile(&site, &low, 1.09e9);
        assert!(
            p_low.diffraction_db + p_low.penetration_db > 15.0,
            "low path only {} dB",
            p_low.diffraction_db + p_low.penetration_db
        );
        // Nearby aircraft almost overhead: the ray clears the roof.
        let high = aircraft_at(&site, 90.0, 2_000.0, 10_000.0);
        let p_high = w.path_profile(&site, &high, 1.09e9);
        assert!(
            p_high.diffraction_db + p_high.penetration_db < 1.0,
            "high path {} dB",
            p_high.diffraction_db + p_high.penetration_db
        );
        // West is unaffected.
        let west = aircraft_at(&site, 270.0, 80_000.0, 3_000.0);
        let p_west = w.path_profile(&site, &west, 1.09e9);
        assert_eq!(p_west.diffraction_db + p_west.penetration_db, 0.0);
    }

    #[test]
    fn obstructed_path_gets_multipath_statistics() {
        let w = World::open(origin()).with_building(Building::rect(
            "slab",
            Point2::new(15.0, 0.0),
            6.0,
            60.0,
            80.0,
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let blocked = aircraft_at(&site, 90.0, 60_000.0, 2_000.0);
        let clear = aircraft_at(&site, 270.0, 60_000.0, 2_000.0);
        let p_b = w.path_profile(&site, &blocked, 1.09e9);
        let p_c = w.path_profile(&site, &clear, 1.09e9);
        assert!(p_b.k_factor_db < p_c.k_factor_db);
        assert!(p_b.shadowing_sigma_db > p_c.shadowing_sigma_db);
    }

    #[test]
    fn enclosure_skips_host_building() {
        // Sensor inside a building with a window enclosure: the footprint
        // must not double-charge the exit.
        let host = Building::rect(
            "host",
            Point2::new(0.0, 0.0),
            30.0,
            25.0,
            18.0,
            Material::Concrete,
        );
        let w = World::open(origin()).with_building(host);
        let enc = crate::site::Enclosure::behind_window(Sector::centered(135.0, 40.0));
        let site = SensorSite::indoor("w", LatLon::new(37.8716, -122.2727, 15.0), enc);
        let through_window = aircraft_at(&site, 135.0, 50_000.0, 3_000.0);
        let p = w.path_profile(&site, &through_window, 1.09e9);
        // Only the glass (≈ 2 dB), not glass + concrete.
        assert!(
            p.penetration_db < 4.0,
            "window exit cost {} dB",
            p.penetration_db
        );
    }

    #[test]
    fn obstruction_profile_shape() {
        let w = World::open(origin()).with_building(Building::rect(
            "east-wall",
            Point2::new(25.0, 0.0),
            10.0,
            80.0,
            70.0,
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let prof = w.obstruction_profile(&site, 1.09e9, 2.0, 50_000.0, 36);
        // East (index 9 = 90°) blocked, west (index 27 = 270°) clear.
        assert!(prof[9] > 10.0, "east {}", prof[9]);
        assert_eq!(prof[27], 0.0, "west should be clear");
    }

    #[test]
    fn project_round_trip_accuracy() {
        let w = World::open(origin());
        let p = origin().destination(45.0, 1_000.0);
        let xy = w.project(&p);
        // Spherical destination vs ellipsoidal ENU agree to ~0.3% at 1 km.
        assert!((xy.range_m() - 1_000.0).abs() < 5.0);
        assert!((xy.bearing_deg() - 45.0).abs() < 0.5);
    }
}
