//! The world model and the geometry → path-profile computation.

use crate::building::Building;
use crate::index::{GeoScratch, PathCache, PathKey, WorldIndex};
use crate::site::SensorSite;
use aircal_geo::{LatLon, Point2, Segment2};
use aircal_rfprop::diffraction::knife_edge_loss_db;
use aircal_rfprop::PathProfile;
use serde::{Deserialize, Serialize};

/// A simulated world: a geographic origin anchoring the local ENU frame,
/// plus the buildings that obstruct propagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Geographic anchor of the local ENU frame (all building footprints
    /// are meters east/north of this point).
    pub origin: LatLon,
    /// Obstructing structures.
    pub buildings: Vec<Building>,
}

impl World {
    /// An empty world (free space) anchored at `origin`.
    pub fn open(origin: LatLon) -> Self {
        Self {
            origin,
            buildings: Vec::new(),
        }
    }

    /// Add a building (builder style).
    pub fn with_building(mut self, b: Building) -> Self {
        self.buildings.push(b);
        self
    }

    /// Project a geographic position into the world's 2-D ENU plane.
    pub fn project(&self, pos: &LatLon) -> Point2 {
        let enu = self.origin.enu_of(pos);
        Point2::new(enu.east, enu.north)
    }

    /// Compute the full propagation path profile from an emitter at
    /// `emitter` (altitude in `alt_m`, meters above local ground) to the
    /// sensor at `site`, for a carrier at `freq_hz`.
    ///
    /// For every building whose footprint the 2-D ray track crosses, the
    /// model charges the *cheaper* of (a) knife-edge diffraction over the
    /// roof and (b) wall + interior penetration straight through — radio
    /// takes the easiest path. The sensor's own enclosure (if indoors) adds
    /// its direction-dependent exit loss. Fading statistics (Rician K,
    /// shadowing σ) are set from how obstructed the path ended up, which is
    /// what produces the paper's "close aircraft received regardless of
    /// direction" multipath behaviour.
    pub fn path_profile(&self, site: &SensorSite, emitter: &LatLon, freq_hz: f64) -> PathProfile {
        let sensor_2d = self.project(&site.position);
        let emitter_2d = self.project(emitter);
        let (mut hits, mut ts) = (Vec::new(), Vec::new());
        self.profile_core(
            site,
            emitter,
            freq_hz,
            sensor_2d,
            emitter_2d,
            0..self.buildings.len(),
            &mut hits,
            &mut ts,
        )
    }

    /// [`path_profile`](Self::path_profile) accelerated by a prebuilt
    /// [`WorldIndex`]: only buildings whose padded AABB the track can
    /// touch run the exact polygon math. **Bit-identical** to the brute
    /// force scan — pruned buildings would have contributed exactly 0 dB,
    /// and survivors are visited in the same ascending order.
    pub fn path_profile_indexed(
        &self,
        index: &WorldIndex,
        site: &SensorSite,
        emitter: &LatLon,
        freq_hz: f64,
        scratch: &mut GeoScratch,
    ) -> PathProfile {
        let sensor_2d = index.project(&site.position);
        self.profile_indexed_at(index, site, emitter, freq_hz, sensor_2d, scratch)
    }

    /// Indexed profile with the site's 2-D projection already in hand
    /// (the batched entry points hoist it out of the per-emitter loop).
    fn profile_indexed_at(
        &self,
        index: &WorldIndex,
        site: &SensorSite,
        emitter: &LatLon,
        freq_hz: f64,
        sensor_2d: Point2,
        scratch: &mut GeoScratch,
    ) -> PathProfile {
        let emitter_2d = index.project(emitter);
        let track = Segment2::new(sensor_2d, emitter_2d);
        index.candidates_into(&track, scratch);
        let GeoScratch {
            candidates,
            hits,
            ts,
            ..
        } = scratch;
        self.profile_core(
            site,
            emitter,
            freq_hz,
            sensor_2d,
            emitter_2d,
            candidates.iter().map(|&i| i as usize),
            hits,
            ts,
        )
    }

    /// Memoized indexed profile: serves repeat (site, emitter, frequency)
    /// lookups — static TV/cell towers, obstruction-sweep points — from
    /// the [`PathCache`]. Exact bit-pattern keys, so a hit returns exactly
    /// what the miss path would have computed.
    pub fn path_profile_cached(
        &self,
        index: &WorldIndex,
        cache: &mut PathCache,
        site: &SensorSite,
        emitter: &LatLon,
        freq_hz: f64,
        scratch: &mut GeoScratch,
    ) -> PathProfile {
        let key = PathKey::of(site, emitter, freq_hz);
        if let Some(p) = cache.get(&key) {
            return p;
        }
        let p = self.path_profile_indexed(index, site, emitter, freq_hz, scratch);
        cache.put(key, p);
        p
    }

    /// Batched profiles for many emitters against one site, writing into a
    /// caller-owned buffer: hoists the site projection out of the
    /// per-emitter loop and reuses the scratch buffers throughout.
    /// `out[i]` is bit-identical to `path_profile(site, &emitters[i], freq_hz)`.
    pub fn path_profiles_into(
        &self,
        index: &WorldIndex,
        site: &SensorSite,
        freq_hz: f64,
        emitters: &[LatLon],
        scratch: &mut GeoScratch,
        out: &mut Vec<PathProfile>,
    ) {
        out.clear();
        let sensor_2d = index.project(&site.position);
        for e in emitters {
            out.push(self.profile_indexed_at(index, site, e, freq_hz, sensor_2d, scratch));
        }
    }

    /// Memoized form of [`path_profiles_into`](Self::path_profiles_into).
    #[allow(clippy::too_many_arguments)]
    pub fn path_profiles_cached_into(
        &self,
        index: &WorldIndex,
        cache: &mut PathCache,
        site: &SensorSite,
        freq_hz: f64,
        emitters: &[LatLon],
        scratch: &mut GeoScratch,
        out: &mut Vec<PathProfile>,
    ) {
        out.clear();
        for e in emitters {
            out.push(self.path_profile_cached(index, cache, site, e, freq_hz, scratch));
        }
    }

    /// The shared per-building accumulation loop. `ids` selects which
    /// buildings to test (all of them for the brute-force reference, the
    /// index's pruned candidate set for the accelerated paths); every
    /// survivor runs the identical arithmetic in ascending-id order, so
    /// any `ids` superset of the interacting buildings yields identical
    /// bits.
    #[allow(clippy::too_many_arguments)]
    fn profile_core<I: Iterator<Item = usize>>(
        &self,
        site: &SensorSite,
        emitter: &LatLon,
        freq_hz: f64,
        sensor_2d: Point2,
        emitter_2d: Point2,
        ids: I,
        hits: &mut Vec<(f64, Point2)>,
        ts: &mut Vec<f64>,
    ) -> PathProfile {
        let ground_raw = site.position.distance_m(emitter);
        let ground_dist = ground_raw.max(1.0);
        let dh = emitter.alt_m - site.position.alt_m;
        let slant = (ground_raw * ground_raw + dh * dh).sqrt().max(1.0);
        let bearing = site.position.bearing_deg(emitter);
        let elevation = dh.atan2(ground_raw).to_degrees();

        let track = Segment2::new(sensor_2d, emitter_2d);

        let h_sensor = site.position.alt_m;
        let h_emitter = emitter.alt_m;

        let mut diffraction_db = 0.0;
        let mut penetration_db = 0.0;

        for idx in ids {
            let b = &self.buildings[idx];
            // The host building of an enclosed sensor is modeled by the
            // enclosure, not by its footprint (avoids double counting).
            if site.enclosure.is_some() && b.footprint.contains(&sensor_2d) {
                continue;
            }
            let Some((first_crossing_m, through)) = b.cut_with(&track, freq_hz, hits, ts) else {
                continue;
            };
            // A blocking footprint with no boundary crossing (sensor and
            // emitter both project inside it) has no crossing distance;
            // fall back to the track midpoint rather than pinning the
            // edge 1 m from the sensor, which maximized knife-edge loss.
            let d_c = first_crossing_m
                .unwrap_or(0.5 * ground_dist)
                .clamp(1.0, ground_dist);
            let t = (d_c / ground_dist).clamp(0.0, 1.0);
            let h_ray = h_sensor + (h_emitter - h_sensor) * t;
            let h_excess = b.height_m - h_ray;
            let over = knife_edge_loss_db(h_excess, d_c, (ground_dist - d_c).max(1.0), freq_hz);
            if over <= through {
                diffraction_db += over;
            } else {
                penetration_db += through;
            }
        }

        if let Some(enc) = &site.enclosure {
            penetration_db += enc.exit_loss_db(bearing, elevation, freq_hz);
        }

        let extra = diffraction_db + penetration_db;
        let (k_factor_db, shadowing_sigma_db) = if extra < 3.0 {
            (12.0, 2.0)
        } else if extra < 15.0 {
            (6.0, 4.0)
        } else {
            // Deep obstruction: Rayleigh-like multipath. σ stays moderate —
            // the dominant loss is already deterministic, and a large σ
            // would let implausibly many deep-shadow links "get lucky".
            (1.0, 5.0)
        };

        PathProfile {
            distance_m: slant,
            freq_hz,
            diffraction_db,
            penetration_db,
            excess_db: 0.0,
            k_factor_db,
            shadowing_sigma_db,
        }
    }

    /// Sample the deterministic obstruction loss (diffraction +
    /// penetration, dB) around the full circle at a fixed elevation and
    /// range: the world's ground-truth visibility profile for a site.
    ///
    /// Returns `n` samples at bearings `i·360/n`.
    pub fn obstruction_profile(
        &self,
        site: &SensorSite,
        freq_hz: f64,
        elevation_deg: f64,
        range_m: f64,
        n: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let bearing = i as f64 * 360.0 / n as f64;
                let mut emitter = site.position.destination(bearing, range_m);
                emitter.alt_m =
                    site.position.alt_m + elevation_deg.to_radians().tan() * range_m;
                let p = self.path_profile(site, &emitter, freq_hz);
                p.diffraction_db + p.penetration_db
            })
            .collect()
    }

    /// Indexed, optionally memoized [`Self::obstruction_profile`]
    /// writing into a caller-owned buffer.
    /// The sweep emitters are a pure function of (site, elevation, range,
    /// `n`), so with a cache a repeated sweep is served entirely from the
    /// memo. Bit-identical to the brute-force form.
    #[allow(clippy::too_many_arguments)]
    pub fn obstruction_profile_with(
        &self,
        index: &WorldIndex,
        cache: Option<&mut PathCache>,
        site: &SensorSite,
        freq_hz: f64,
        elevation_deg: f64,
        range_m: f64,
        n: usize,
        scratch: &mut GeoScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let sensor_2d = index.project(&site.position);
        let mut cache = cache;
        for i in 0..n {
            let bearing = i as f64 * 360.0 / n as f64;
            let mut emitter = site.position.destination(bearing, range_m);
            emitter.alt_m = site.position.alt_m + elevation_deg.to_radians().tan() * range_m;
            let p = match cache.as_deref_mut() {
                Some(c) => self.path_profile_cached(index, c, site, &emitter, freq_hz, scratch),
                None => self.profile_indexed_at(index, site, &emitter, freq_hz, sensor_2d, scratch),
            };
            out.push(p.diffraction_db + p.penetration_db);
        }
    }

    /// Build the spatial acceleration index for this world's current
    /// buildings (see [`WorldIndex`]); rebuild after mutating them.
    pub fn index(&self) -> WorldIndex {
        WorldIndex::new(self)
    }

    /// Build the bundled accelerator (index + path memo + scratch) for
    /// this world (see [`crate::GeoAccel`]).
    pub fn accel(&self) -> crate::GeoAccel {
        crate::GeoAccel::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_geo::Sector;
    use aircal_rfprop::Material;

    fn origin() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    fn aircraft_at(site: &SensorSite, bearing: f64, range_m: f64, alt_m: f64) -> LatLon {
        let mut p = site.position.destination(bearing, range_m);
        p.alt_m = alt_m;
        p
    }

    #[test]
    fn open_world_is_lossless() {
        let w = World::open(origin());
        let site = SensorSite::outdoor("roof", LatLon::new(37.8716, -122.2727, 20.0));
        let ac = aircraft_at(&site, 90.0, 50_000.0, 10_000.0);
        let p = w.path_profile(&site, &ac, 1.09e9);
        assert_eq!(p.diffraction_db, 0.0);
        assert_eq!(p.penetration_db, 0.0);
        assert!(!p.is_obstructed());
        assert!((p.distance_m - site.position.slant_range_m(&ac)).abs() < 1.0);
    }

    #[test]
    fn building_blocks_low_elevation_not_high() {
        let w = World::open(origin()).with_building(Building::rect(
            "tower",
            Point2::new(20.0, 0.0), // 20 m east of the sensor
            10.0,
            40.0,
            60.0, // much taller than the sensor
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        // Distant aircraft low on the eastern horizon: deeply shadowed.
        let low = aircraft_at(&site, 90.0, 80_000.0, 3_000.0);
        let p_low = w.path_profile(&site, &low, 1.09e9);
        assert!(
            p_low.diffraction_db + p_low.penetration_db > 15.0,
            "low path only {} dB",
            p_low.diffraction_db + p_low.penetration_db
        );
        // Nearby aircraft almost overhead: the ray clears the roof.
        let high = aircraft_at(&site, 90.0, 2_000.0, 10_000.0);
        let p_high = w.path_profile(&site, &high, 1.09e9);
        assert!(
            p_high.diffraction_db + p_high.penetration_db < 1.0,
            "high path {} dB",
            p_high.diffraction_db + p_high.penetration_db
        );
        // West is unaffected.
        let west = aircraft_at(&site, 270.0, 80_000.0, 3_000.0);
        let p_west = w.path_profile(&site, &west, 1.09e9);
        assert_eq!(p_west.diffraction_db + p_west.penetration_db, 0.0);
    }

    #[test]
    fn obstructed_path_gets_multipath_statistics() {
        let w = World::open(origin()).with_building(Building::rect(
            "slab",
            Point2::new(15.0, 0.0),
            6.0,
            60.0,
            80.0,
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let blocked = aircraft_at(&site, 90.0, 60_000.0, 2_000.0);
        let clear = aircraft_at(&site, 270.0, 60_000.0, 2_000.0);
        let p_b = w.path_profile(&site, &blocked, 1.09e9);
        let p_c = w.path_profile(&site, &clear, 1.09e9);
        assert!(p_b.k_factor_db < p_c.k_factor_db);
        assert!(p_b.shadowing_sigma_db > p_c.shadowing_sigma_db);
    }

    #[test]
    fn enclosure_skips_host_building() {
        // Sensor inside a building with a window enclosure: the footprint
        // must not double-charge the exit.
        let host = Building::rect(
            "host",
            Point2::new(0.0, 0.0),
            30.0,
            25.0,
            18.0,
            Material::Concrete,
        );
        let w = World::open(origin()).with_building(host);
        let enc = crate::site::Enclosure::behind_window(Sector::centered(135.0, 40.0));
        let site = SensorSite::indoor("w", LatLon::new(37.8716, -122.2727, 15.0), enc);
        let through_window = aircraft_at(&site, 135.0, 50_000.0, 3_000.0);
        let p = w.path_profile(&site, &through_window, 1.09e9);
        // Only the glass (≈ 2 dB), not glass + concrete.
        assert!(
            p.penetration_db < 4.0,
            "window exit cost {} dB",
            p.penetration_db
        );
    }

    #[test]
    fn obstruction_profile_shape() {
        let w = World::open(origin()).with_building(Building::rect(
            "east-wall",
            Point2::new(25.0, 0.0),
            10.0,
            80.0,
            70.0,
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let prof = w.obstruction_profile(&site, 1.09e9, 2.0, 50_000.0, 36);
        // East (index 9 = 90°) blocked, west (index 27 = 270°) clear.
        assert!(prof[9] > 10.0, "east {}", prof[9]);
        assert_eq!(prof[27], 0.0, "west should be clear");
    }

    #[test]
    fn tangent_ray_along_footprint_edge_uses_real_crossing() {
        // Track collinear with the building's southern edge: the overlap
        // start is a legitimate crossing, so the knife edge must sit at
        // the footprint, not at a degenerate fallback distance.
        let b = Building::rect("slab", Point2::new(15.0, 5.0), 10.0, 10.0, 40.0, Material::Concrete);
        // Southern edge runs y = 0 from x = 10 to x = 20.
        let track = Segment2::new(Point2::new(0.0, 0.0), Point2::new(40.0, 0.0));
        let d = b.first_crossing_distance(&track).expect("tangent ray crosses");
        assert!((d - 10.0).abs() < 1e-9, "crossing at {d}");
        assert!(b.blocks_track(&track));
    }

    #[test]
    fn degenerate_crossing_falls_back_to_track_midpoint() {
        // Outdoor sensor standing inside a footprint (courtyard-style
        // model, no enclosure) with the aircraft almost overhead: the
        // 2-D track never crosses the boundary, so there is no crossing
        // distance. The fallback must place the edge at the track
        // midpoint — the old 1 m fallback pinned it at the sensor and
        // maximized knife-edge loss.
        let w = World::open(origin()).with_building(Building::rect(
            "hall",
            Point2::new(0.0, 0.0),
            60.0,
            60.0,
            30.0,
            Material::Concrete,
        ));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let overhead = aircraft_at(&site, 0.0, 5.0, 9_000.0);
        let p = w.path_profile(&site, &overhead, 1.09e9);

        // Reproduce the loop arithmetic with the midpoint fallback and
        // check the charged loss matches exactly.
        let ground_raw = site.position.distance_m(&overhead);
        let ground_dist = ground_raw.max(1.0);
        let d_c = (0.5 * ground_dist).clamp(1.0, ground_dist);
        let t = (d_c / ground_dist).clamp(0.0, 1.0);
        let h_ray = 2.0 + (9_000.0 - 2.0) * t;
        let over = aircal_rfprop::diffraction::knife_edge_loss_db(
            30.0 - h_ray,
            d_c,
            (ground_dist - d_c).max(1.0),
            1.09e9,
        );
        let sensor_2d = w.project(&site.position);
        let emitter_2d = w.project(&overhead);
        let through = w.buildings[0]
            .through_loss_db(&Segment2::new(sensor_2d, emitter_2d), 1.09e9);
        let expect = if over <= through { (over, 0.0) } else { (0.0, through) };
        assert_eq!(p.diffraction_db.to_bits(), expect.0.to_bits());
        assert_eq!(p.penetration_db.to_bits(), expect.1.to_bits());
        // Overhead ray well above the 30 m roof at midpoint: no loss.
        assert_eq!(p.diffraction_db + p.penetration_db, 0.0);
    }

    #[test]
    fn indexed_and_cached_profiles_match_brute_force_bits() {
        let mut w = World::open(origin());
        for i in 0..40 {
            let ang = i as f64 * 9.0;
            w = w.with_building(Building::rect(
                format!("b{i}"),
                Point2::from_bearing(ang, 40.0 + (i % 7) as f64 * 35.0),
                12.0 + (i % 4) as f64 * 6.0,
                9.0 + (i % 5) as f64 * 7.0,
                6.0 + (i % 6) as f64 * 9.0,
                Material::Concrete,
            ));
        }
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let index = w.index();
        let mut scratch = crate::GeoScratch::new();
        let mut cache = crate::PathCache::new();
        for (brg, rng, alt, freq) in [
            (10.0, 60_000.0, 9_000.0, 1.09e9),
            (97.0, 1_500.0, 300.0, 0.615e9),
            (211.0, 30_000.0, 11_000.0, 1.09e9),
            (340.0, 250.0, 50.0, 2.65e9),
        ] {
            let ac = aircraft_at(&site, brg, rng, alt);
            let brute = w.path_profile(&site, &ac, freq);
            let fast = w.path_profile_indexed(&index, &site, &ac, freq, &mut scratch);
            let cold = w.path_profile_cached(&index, &mut cache, &site, &ac, freq, &mut scratch);
            let warm = w.path_profile_cached(&index, &mut cache, &site, &ac, freq, &mut scratch);
            for got in [&fast, &cold, &warm] {
                assert_eq!(brute.distance_m.to_bits(), got.distance_m.to_bits());
                assert_eq!(brute.diffraction_db.to_bits(), got.diffraction_db.to_bits());
                assert_eq!(brute.penetration_db.to_bits(), got.penetration_db.to_bits());
                assert_eq!(brute.k_factor_db.to_bits(), got.k_factor_db.to_bits());
                assert_eq!(brute.shadowing_sigma_db.to_bits(), got.shadowing_sigma_db.to_bits());
            }
        }
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn batched_and_sweep_variants_match_pointwise_calls() {
        let w = World::open(origin())
            .with_building(Building::rect("a", Point2::new(25.0, 0.0), 10.0, 80.0, 70.0, Material::Concrete))
            .with_building(Building::rect("b", Point2::new(-40.0, 10.0), 30.0, 12.0, 22.0, Material::Brick));
        let site = SensorSite::outdoor("s", LatLon::new(37.8716, -122.2727, 2.0));
        let index = w.index();
        let mut scratch = crate::GeoScratch::new();
        let emitters: Vec<LatLon> = (0..24)
            .map(|i| aircraft_at(&site, i as f64 * 15.0, 20_000.0, 6_000.0))
            .collect();
        let mut batched = Vec::new();
        w.path_profiles_into(&index, &site, 1.09e9, &emitters, &mut scratch, &mut batched);
        assert_eq!(batched.len(), emitters.len());
        for (e, got) in emitters.iter().zip(&batched) {
            let want = w.path_profile(&site, e, 1.09e9);
            assert_eq!(want.diffraction_db.to_bits(), got.diffraction_db.to_bits());
            assert_eq!(want.penetration_db.to_bits(), got.penetration_db.to_bits());
            assert_eq!(want.distance_m.to_bits(), got.distance_m.to_bits());
        }

        let brute = w.obstruction_profile(&site, 1.09e9, 2.0, 50_000.0, 36);
        let mut cache = crate::PathCache::new();
        let mut fast = Vec::new();
        w.obstruction_profile_with(
            &index, Some(&mut cache), &site, 1.09e9, 2.0, 50_000.0, 36, &mut scratch, &mut fast,
        );
        assert_eq!(brute.len(), fast.len());
        for (a, b) in brute.iter().zip(&fast) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Second sweep is served entirely from the memo, same bits.
        let mut warm = Vec::new();
        w.obstruction_profile_with(
            &index, Some(&mut cache), &site, 1.09e9, 2.0, 50_000.0, 36, &mut scratch, &mut warm,
        );
        assert_eq!(cache.hits(), 36);
        for (a, b) in fast.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn project_round_trip_accuracy() {
        let w = World::open(origin());
        let p = origin().destination(45.0, 1_000.0);
        let xy = w.project(&p);
        // Spherical destination vs ellipsoidal ENU agree to ~0.3% at 1 km.
        assert!((xy.range_m() - 1_000.0).abs() < 5.0);
        assert!((xy.bearing_deg() - 45.0).abs() < 0.5);
    }
}
