//! Byzantine-robust fusion of overlapping frequency profiles.
//!
//! A crowd-sourced fleet contains sensors that *lie*, not just links that
//! drop: gain-inflated band powers, frozen front ends, slow calibration
//! poisoning. Per-node intake trusts each report in isolation; this module
//! fuses the overlapping reports of many nodes with estimators that a
//! strict minority of corrupted sensors (`f < n/2`) cannot steer —
//! coordinate-wise median and trimmed mean — and scores each node by its
//! residual against the fused consensus.
//!
//! All estimators are NaN-proof: non-finite samples are dropped before
//! aggregation, so a single `f64::NAN` band-power sample cannot poison a
//! fleet report.

use crate::freqprofile::{FrequencyProfile, SourceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which robust estimator fuses overlapping band measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FusionRule {
    /// Coordinate-wise median: tolerates any corrupted strict minority.
    Median,
    /// Mean after trimming `trim_frac` of samples from each tail.
    TrimmedMean {
        /// Fraction trimmed from *each* tail, in `[0, 0.5)`.
        trim_frac: f64,
    },
}

/// Median of the finite samples in `xs` (`None` if there are none).
///
/// Non-finite values (NaN, ±∞) are dropped, never propagated; ties use
/// the even-count midpoint. Sorting uses `total_cmp`, so this never
/// panics on exotic floats.
pub fn median(xs: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Mean of the finite samples in `xs` after trimming `trim_frac` of the
/// samples from each tail (`None` if there are no finite samples).
///
/// `trim_frac` is clamped to `[0, 0.5)`; if trimming would consume every
/// sample the median is returned instead.
pub fn trimmed_mean(xs: &[f64], trim_frac: f64) -> Option<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let frac = if trim_frac.is_finite() {
        trim_frac.clamp(0.0, 0.499)
    } else {
        0.0
    };
    let k = (v.len() as f64 * frac).floor() as usize;
    if 2 * k >= v.len() {
        return median(&v);
    }
    let kept = &v[k..v.len() - k];
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// One fused band: the consensus value across contributing nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedBand {
    /// Source label ("Tower 2", "KSE-22 (521 MHz)").
    pub label: String,
    /// Carrier/center frequency, Hz.
    pub freq_hz: f64,
    /// Source type.
    pub source: SourceKind,
    /// Robustly fused measured value (`None` if no node measured it).
    pub fused_db: Option<f64>,
    /// Nodes that contributed a finite measurement.
    pub contributors: usize,
    /// Max − min across finite contributions (0 with < 2 contributors).
    pub spread_db: f64,
}

/// Coordinate-wise robust fusion of a fleet's frequency profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedProfile {
    /// Fused bands, sorted by frequency then label.
    pub bands: Vec<FusedBand>,
    /// Estimator used.
    pub rule: FusionRule,
    /// Number of input profiles.
    pub nodes: usize,
}

impl FusedProfile {
    /// Fused value for a (label, source) coordinate, if any node measured it.
    pub fn fused_for(&self, label: &str, source: SourceKind) -> Option<f64> {
        self.bands
            .iter()
            .find(|b| b.source == source && b.label == label)
            .and_then(|b| b.fused_db)
    }
}

fn source_tag(s: SourceKind) -> u8 {
    match s {
        SourceKind::Cellular => 0,
        SourceKind::BroadcastTv => 1,
    }
}

/// Fuse overlapping frequency profiles coordinate-wise (bands aligned by
/// `(source, label)`), applying `rule` to the finite measurements of each
/// band. Deterministic: output bands are sorted by frequency, then label.
pub fn fuse_profiles(profiles: &[&FrequencyProfile], rule: FusionRule) -> FusedProfile {
    // (source tag, label) -> (freq, samples). BTreeMap keeps alignment
    // deterministic regardless of input order.
    let mut coords: BTreeMap<(u8, String), (f64, SourceKind, Vec<f64>)> = BTreeMap::new();
    for p in profiles {
        for b in &p.bands {
            let entry = coords
                .entry((source_tag(b.source), b.label.clone()))
                .or_insert((b.freq_hz, b.source, Vec::new()));
            if let Some(m) = b.measured_db {
                if m.is_finite() {
                    entry.2.push(m);
                }
            }
        }
    }
    let mut bands: Vec<FusedBand> = coords
        .into_iter()
        .map(|((_, label), (freq_hz, source, samples))| {
            let fused_db = match rule {
                FusionRule::Median => median(&samples),
                FusionRule::TrimmedMean { trim_frac } => trimmed_mean(&samples, trim_frac),
            };
            let spread_db = if samples.len() >= 2 {
                let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            } else {
                0.0
            };
            FusedBand {
                label,
                freq_hz,
                source,
                fused_db,
                contributors: samples.len(),
                spread_db,
            }
        })
        .collect();
    bands.sort_by(|a, b| {
        a.freq_hz
            .total_cmp(&b.freq_hz)
            .then_with(|| a.label.cmp(&b.label))
    });
    FusedProfile {
        bands,
        rule,
        nodes: profiles.len(),
    }
}

/// Mean absolute deviation of a node's finite band measurements from the
/// fused consensus, dB, over the coordinates both sides measured
/// (`None` if there is no overlap).
pub fn residual_db(profile: &FrequencyProfile, fused: &FusedProfile) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for b in &profile.bands {
        let Some(m) = b.measured_db.filter(|m| m.is_finite()) else {
            continue;
        };
        if let Some(f) = fused.fused_for(&b.label, b.source) {
            sum += (m - f).abs();
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Map a residual (dB) to a `[0, 1]` agreement score: 1 at zero residual,
/// 0.5 at `scale_db`, falling toward 0. Non-finite residuals score 0.
pub fn residual_score(residual_db: f64, scale_db: f64) -> f64 {
    if !residual_db.is_finite() || !scale_db.is_finite() || scale_db <= 0.0 {
        return 0.0;
    }
    (1.0 / (1.0 + residual_db.max(0.0) / scale_db)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqprofile::BandMeasurement;

    fn profile_with(values: &[f64]) -> FrequencyProfile {
        FrequencyProfile {
            bands: values
                .iter()
                .enumerate()
                .map(|(i, &v)| BandMeasurement {
                    label: format!("b{i}"),
                    freq_hz: 1e9 + i as f64 * 1e8,
                    source: SourceKind::Cellular,
                    measured_db: Some(v),
                    expected_clear_db: -58.0,
                })
                .collect(),
            missing_sources: Vec::new(),
        }
    }

    #[test]
    fn median_basics() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 9.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn median_ignores_non_finite() {
        assert_eq!(median(&[f64::NAN, 5.0, f64::INFINITY]), Some(5.0));
        assert_eq!(median(&[f64::NAN, f64::NEG_INFINITY]), None);
    }

    #[test]
    fn trimmed_mean_discards_tails() {
        // 10 samples, trim 20% each side -> drops the 100s and the -100.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 100.0, -100.0];
        let tm = trimmed_mean(&xs, 0.2).unwrap();
        assert!((tm - 4.5).abs() < 1e-9, "got {tm}");
        // Degenerate trim falls back to the median.
        assert_eq!(trimmed_mean(&[1.0, 100.0], 0.5), Some(50.5));
        assert_eq!(trimmed_mean(&[], 0.2), None);
    }

    #[test]
    fn fusion_resists_minority_corruption() {
        let honest: Vec<FrequencyProfile> =
            (0..4).map(|i| profile_with(&[-60.0 + i as f64; 5])).collect();
        let liar = profile_with(&[40.0; 5]); // +100 dB gain inflation
        let mut all: Vec<&FrequencyProfile> = honest.iter().collect();
        all.push(&liar);
        let fused = fuse_profiles(&all, FusionRule::Median);
        for b in &fused.bands {
            let v = b.fused_db.unwrap();
            assert!(
                (-61.0..=-57.0).contains(&v),
                "median steered to {v} by one liar"
            );
            assert_eq!(b.contributors, 5);
        }
    }

    #[test]
    fn nan_band_cannot_poison_fusion() {
        let honest: Vec<FrequencyProfile> = (0..3).map(|_| profile_with(&[-60.0; 5])).collect();
        let mut poisoned = profile_with(&[-60.0; 5]);
        poisoned.bands[2].measured_db = Some(f64::NAN);
        let mut all: Vec<&FrequencyProfile> = honest.iter().collect();
        all.push(&poisoned);
        for rule in [FusionRule::Median, FusionRule::TrimmedMean { trim_frac: 0.25 }] {
            let fused = fuse_profiles(&all, rule);
            for b in &fused.bands {
                let v = b.fused_db.unwrap();
                assert!(v.is_finite(), "NaN leaked through {rule:?}");
                assert!((v - -60.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn residual_flags_the_outlier() {
        let honest: Vec<FrequencyProfile> =
            (0..4).map(|i| profile_with(&[-60.0 + 0.1 * i as f64; 5])).collect();
        let liar = profile_with(&[-20.0; 5]);
        let mut all: Vec<&FrequencyProfile> = honest.iter().collect();
        all.push(&liar);
        let fused = fuse_profiles(&all, FusionRule::Median);
        let r_honest = residual_db(&honest[0], &fused).unwrap();
        let r_liar = residual_db(&liar, &fused).unwrap();
        assert!(r_honest < 1.0, "honest residual {r_honest}");
        assert!(r_liar > 30.0, "liar residual {r_liar}");
        assert!(residual_score(r_honest, 10.0) > 0.9);
        assert!(residual_score(r_liar, 10.0) < 0.25);
        assert_eq!(residual_score(f64::NAN, 10.0), 0.0);
    }

    #[test]
    fn fusion_deterministic_in_input_order() {
        let a = profile_with(&[-60.0, -61.0, -62.0]);
        let b = profile_with(&[-59.0, -60.5, -63.0]);
        let f1 = fuse_profiles(&[&a, &b], FusionRule::Median);
        let f2 = fuse_profiles(&[&b, &a], FusionRule::Median);
        assert_eq!(f1, f2);
    }
}
