//! Repeated surveys and estimate stability.
//!
//! §3.1: "We repeated these experiments over 10 times at these locations,
//! obtaining similar results." This module is that methodology as code:
//! run the survey N times against *fresh* traffic (different flights, as
//! at different times of day), pool the evidence, and quantify how stable
//! the field-of-view estimate is across runs.

use crate::fov::{FovEstimate, FovEstimator};
use crate::survey::{run_survey, SurveyConfig, SurveyPoint, SurveyResult};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_env::{SensorSite, World};
use serde::{Deserialize, Serialize};

/// The outcome of N independent surveys of one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedSurvey {
    /// Individual runs, in execution order.
    pub runs: Vec<SurveyResult>,
}

/// Stability statistics across the runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityReport {
    /// FoV estimate from each individual run.
    pub per_run: Vec<FovEstimate>,
    /// FoV estimate from all runs' points pooled together.
    pub pooled: FovEstimate,
    /// Mean pairwise IoU between the per-run estimated sectors ("similar
    /// results" ⇔ close to 1).
    pub mean_pairwise_iou: f64,
}

/// Run `n` surveys with fresh traffic per run.
pub fn run_repeated(
    world: &World,
    site: &SensorSite,
    config: &SurveyConfig,
    traffic_count: usize,
    n: usize,
    base_seed: u64,
) -> RepeatedSurvey {
    let runs = (0..n)
        .map(|k| {
            let seed = base_seed.wrapping_add(k as u64 * 0x9E3779B9);
            let traffic = TrafficSim::generate(
                TrafficConfig {
                    count: traffic_count,
                    ..TrafficConfig::paper_default(site.position)
                },
                seed,
            );
            run_survey(world, site, &traffic, config, seed)
        })
        .collect();
    RepeatedSurvey { runs }
}

impl RepeatedSurvey {
    /// All points from all runs, concatenated (each run's aircraft are
    /// distinct individuals, so pooling is sound).
    pub fn pooled_points(&self) -> Vec<SurveyPoint> {
        self.runs.iter().flat_map(|r| r.points.clone()).collect()
    }

    /// Total aircraft observed / total aircraft seen by the ground truth.
    pub fn overall_observation_rate(&self) -> f64 {
        let total: usize = self.runs.iter().map(|r| r.points.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let observed: usize = self
            .runs
            .iter()
            .map(|r| r.points.iter().filter(|p| p.observed).count())
            .sum();
        observed as f64 / total as f64
    }

    /// Estimate FoV per run and pooled; report cross-run stability.
    pub fn stability(&self, estimator: &FovEstimator) -> StabilityReport {
        let per_run: Vec<FovEstimate> = self
            .runs
            .iter()
            .map(|r| estimator.estimate(&r.points))
            .collect();
        let pooled = estimator.estimate(&self.pooled_points());
        let mut iou_sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..per_run.len() {
            for j in i + 1..per_run.len() {
                iou_sum += per_run[i].estimated.iou(&per_run[j].estimated);
                pairs += 1;
            }
        }
        StabilityReport {
            mean_pairwise_iou: if pairs == 0 { 1.0 } else { iou_sum / pairs as f64 },
            per_run,
            pooled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_env::{Scenario, ScenarioKind};

    fn repeated(kind: ScenarioKind, n: usize) -> (Scenario, RepeatedSurvey) {
        let s = Scenario::build(kind);
        // Full paper-length captures: short surveys are legitimately less
        // stable (that's ablation A2's finding), which isn't what this
        // test probes.
        let r = run_repeated(&s.world, &s.site, &SurveyConfig::default(), 70, n, 900);
        (s, r)
    }

    /// The paper's claim: repetitions give "similar results".
    #[test]
    fn rooftop_estimates_stable_across_runs() {
        let (s, rep) = repeated(ScenarioKind::Rooftop, 4);
        let stab = rep.stability(&FovEstimator::default());
        assert!(
            stab.mean_pairwise_iou > 0.4,
            "pairwise IoU {}",
            stab.mean_pairwise_iou
        );
        // Every run's estimate points west.
        for est in &stab.per_run {
            assert!(
                s.expected_fov.contains(est.estimated.center_deg()),
                "run estimated {:?}",
                est.estimated
            );
        }
    }

    /// Pooling runs must not collapse the estimate. (It can be slightly
    /// *worse* than the best single run: the histogram opens a bin on any
    /// observation past the range threshold, and pooling gives lucky
    /// deep-shadow decodes more chances — an instructive property of the
    /// paper's any-hit matching rule.)
    #[test]
    fn pooling_does_not_collapse() {
        let (s, rep) = repeated(ScenarioKind::Rooftop, 4);
        let stab = rep.stability(&FovEstimator::default());
        let mut ious: Vec<f64> = stab
            .per_run
            .iter()
            .map(|e| e.iou(&s.expected_fov))
            .collect();
        ious.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let worst = ious[0];
        let pooled = stab.pooled.iou(&s.expected_fov);
        assert!(
            pooled >= (worst - 0.1).min(0.5),
            "pooled IoU {pooled} vs worst single-run {worst}"
        );
        // And the pooled estimate still points the right way.
        assert!(s.expected_fov.contains(stab.pooled.estimated.center_deg()));
    }

    #[test]
    fn indoor_consistently_empty() {
        let (_, rep) = repeated(ScenarioKind::Indoor, 3);
        let stab = rep.stability(&FovEstimator::default());
        for est in &stab.per_run {
            assert!(est.open_fraction() < 0.2);
        }
        assert!(rep.overall_observation_rate() < 0.2);
    }

    #[test]
    fn pooled_points_concatenate() {
        let (_, rep) = repeated(ScenarioKind::OpenField, 3);
        let total: usize = rep.runs.iter().map(|r| r.points.len()).sum();
        assert_eq!(rep.pooled_points().len(), total);
        assert!(total > 100, "three 50-aircraft runs should pool >100 points");
    }

    #[test]
    fn single_run_stability_is_defined() {
        let (_, rep) = repeated(ScenarioKind::OpenField, 1);
        let stab = rep.stability(&FovEstimator::default());
        assert_eq!(stab.mean_pairwise_iou, 1.0);
        assert_eq!(stab.per_run.len(), 1);
    }
}
