//! Serializable calibration reports.

use crate::classifier::{InstallFeatures, InstallVerdict};
use crate::fov::FovEstimate;
use crate::freqprofile::FrequencyProfile;
use crate::trust::TrustScore;
use serde::{Deserialize, Serialize};

/// Summary statistics of the directional survey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySummary {
    /// Ground-truth aircraft in the query disc.
    pub aircraft_total: usize,
    /// Aircraft with at least one decoded message.
    pub aircraft_observed: usize,
    /// Total messages decoded.
    pub messages: usize,
    /// Farthest observed aircraft, meters.
    pub max_observed_range_m: f64,
}

/// The complete calibration report for one sensor node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Node/site name.
    pub site_name: String,
    /// Directional survey summary.
    pub survey: SurveySummary,
    /// Estimated field of view.
    pub fov: FovEstimate,
    /// Per-band frequency response.
    pub frequency: FrequencyProfile,
    /// Extracted classifier features.
    pub features: InstallFeatures,
    /// Indoor/outdoor verdict.
    pub install: InstallVerdict,
    /// Trust audit.
    pub trust: TrustScore,
}

impl CalibrationReport {
    /// Serialize to pretty JSON (the wire format a cloud auditor would
    /// store per node).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// One-line human summary.
    pub fn headline(&self) -> String {
        format!(
            "{}: FoV {:.0}° wide @ {:.0}°, {} / {} aircraft, {:.0}% bands usable, {} install, trust {:.0}",
            self.site_name,
            self.fov.estimated.width_deg,
            self.fov.estimated.center_deg(),
            self.survey.aircraft_observed,
            self.survey.aircraft_total,
            self.frequency.usable_fraction() * 100.0,
            if self.install.outdoor { "outdoor" } else { "indoor" },
            self.trust.score,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::IndoorOutdoorClassifier;
    use crate::freqprofile::{BandMeasurement, SourceKind};
    use aircal_geo::Sector;

    fn sample_report() -> CalibrationReport {
        let fov = FovEstimate {
            estimated: Sector::centered(270.0, 120.0),
            open_ring: vec![true; 24].into_iter().chain(vec![false; 48]).collect(),
            method_name: "sector-histogram".into(),
        };
        let frequency = FrequencyProfile {
            bands: vec![BandMeasurement {
                label: "Tower 1".into(),
                freq_hz: 731e6,
                source: SourceKind::Cellular,
                measured_db: Some(-50.0),
                expected_clear_db: -49.0,
            }],
            missing_sources: Vec::new(),
        };
        let features = InstallFeatures {
            sky_open_fraction: 0.33,
            max_range_norm: 0.95,
            midband_attenuation_db: 3.0,
            band_usable_fraction: 1.0,
            fov_rssi_deficit_db: 3.0,
        };
        let install = IndoorOutdoorClassifier::default().classify(&features);
        CalibrationReport {
            site_name: "rooftop".into(),
            survey: SurveySummary {
                aircraft_total: 60,
                aircraft_observed: 30,
                messages: 1_500,
                max_observed_range_m: 95_000.0,
            },
            fov,
            frequency,
            features,
            install,
            trust: TrustScore {
                fov_coverage: 0.33,
                spectral_coverage: 1.0,
                position_consistency: 1.0,
                rssi_plausibility: 0.8,
                ghost_free: 1.0,
                score: 82.0,
                flags: vec![],
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let r = sample_report();
        let json = r.to_json();
        let back = CalibrationReport::from_json(&json).unwrap();
        assert_eq!(back.site_name, r.site_name);
        assert_eq!(back.survey, r.survey);
        assert_eq!(back.trust, r.trust);
        assert_eq!(back.fov.estimated, r.fov.estimated);
    }

    #[test]
    fn headline_mentions_key_facts() {
        let h = sample_report().headline();
        assert!(h.contains("rooftop"));
        assert!(h.contains("120"));
        assert!(h.contains("outdoor"));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(CalibrationReport::from_json("{not json").is_err());
        assert!(CalibrationReport::from_json("{}").is_err());
    }
}
