//! Frequency-response profiling across bands (§3.2).
//!
//! "Our automatic evaluation technique aims to effectively characterize
//! the node's performance at all frequency bands supported by the node."
//! The profiler measures every known source (cellular RSRP, TV band
//! power), predicts what an *unobstructed* installation at the same
//! coordinates would have measured, and reports the difference as the
//! band's attenuation. A failed measurement (no cell sync) is a **blind**
//! band.

use aircal_cellular::{CellScanner, TowerDatabase};
use aircal_env::{GeoAccel, SensorSite, World};
use aircal_tv::{TvPowerProbe, TvTower};
use serde::{Deserialize, Serialize};

/// Which opportunistic source produced a band measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceKind {
    /// 4G/5G downlink (RSRP, dBm scale).
    Cellular,
    /// ATSC broadcast (band power, dBFS scale).
    BroadcastTv,
}

/// Verdict for one band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandVerdict {
    /// Within ~6 dB of the unobstructed expectation.
    Full,
    /// Usable but attenuated by the given dB.
    Degraded(f64),
    /// No measurement possible.
    Blind,
}

impl core::fmt::Display for BandVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BandVerdict::Full => write!(f, "full"),
            BandVerdict::Degraded(db) => write!(f, "degraded −{db:.1} dB"),
            BandVerdict::Blind => write!(f, "blind"),
        }
    }
}

/// One band's measurement vs expectation (both on the source's own scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandMeasurement {
    /// Source label ("Tower 2", "KSE-22 (521 MHz)").
    pub label: String,
    /// Carrier/center frequency, Hz.
    pub freq_hz: f64,
    /// Source type.
    pub source: SourceKind,
    /// Measured value (RSRP dBm or band power dBFS); `None` = no decode.
    pub measured_db: Option<f64>,
    /// Predicted value for an unobstructed outdoor installation at the
    /// same coordinates.
    pub expected_clear_db: f64,
}

impl BandMeasurement {
    /// Estimated excess attenuation, dB (`None` if the band is blind or
    /// either side of the comparison is non-finite — corrupted inputs are
    /// treated as blind rather than propagated).
    pub fn attenuation_db(&self) -> Option<f64> {
        self.measured_db
            .filter(|m| m.is_finite() && self.expected_clear_db.is_finite())
            .map(|m| (self.expected_clear_db - m).max(0.0))
    }

    /// Classify the band.
    pub fn verdict(&self) -> BandVerdict {
        match self.attenuation_db() {
            None => BandVerdict::Blind,
            Some(a) if a < 6.0 => BandVerdict::Full,
            Some(a) => BandVerdict::Degraded(a),
        }
    }
}

/// The full per-band profile of a node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencyProfile {
    /// All band measurements, sorted by frequency.
    pub bands: Vec<BandMeasurement>,
    /// Sources whose sweep never arrived (a failed audit step, not a
    /// blind receiver): bands from these sources are *absent*, and the
    /// profile must be read as incomplete rather than low-coverage.
    pub missing_sources: Vec<SourceKind>,
}

impl FrequencyProfile {
    /// Whether every commissioned sweep actually arrived.
    pub fn is_complete(&self) -> bool {
        self.missing_sources.is_empty()
    }

    /// Fraction of bands that produced any measurement.
    pub fn usable_fraction(&self) -> f64 {
        if self.bands.is_empty() {
            return 0.0;
        }
        self.bands
            .iter()
            .filter(|b| b.measured_db.is_some_and(|m| m.is_finite()))
            .count() as f64
            / self.bands.len() as f64
    }

    /// Mean attenuation over measurable bands at or above `min_freq_hz`
    /// (blind bands count as `blind_penalty_db`).
    pub fn mean_attenuation_above(&self, min_freq_hz: f64, blind_penalty_db: f64) -> f64 {
        let xs: Vec<f64> = self
            .bands
            .iter()
            .filter(|b| b.freq_hz >= min_freq_hz)
            .map(|b| b.attenuation_db().unwrap_or(blind_penalty_db))
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Highest frequency with a non-blind measurement, Hz.
    pub fn max_usable_freq_hz(&self) -> Option<f64> {
        self.bands
            .iter()
            .filter(|b| b.measured_db.is_some_and(|m| m.is_finite()) && b.freq_hz.is_finite())
            .map(|b| b.freq_hz)
            .fold(None, |acc: Option<f64>, f| Some(acc.map_or(f, |a| a.max(f))))
    }
}

/// Runs the full cross-band measurement campaign.
#[derive(Debug, Clone, Default)]
pub struct FrequencyProfiler {
    /// Cellular scanner (srsUE stand-in).
    pub scanner: CellScanner,
    /// TV probe (GNU-Radio stand-in).
    pub tv_probe: TvPowerProbe,
}

impl FrequencyProfiler {
    /// Profile a node: measure all towers/stations through the real world
    /// and compare against an unobstructed twin of the site. Builds a
    /// throwaway geometry accelerator; callers that profile repeatedly
    /// against the same world should hold a [`GeoAccel`] and use
    /// [`FrequencyProfiler::profile_with_geo`].
    pub fn profile(
        &self,
        world: &World,
        site: &SensorSite,
        cells: &TowerDatabase,
        tv: &[TvTower],
        seed: u64,
    ) -> FrequencyProfile {
        let mut accel = world.accel();
        self.profile_with_geo(world, &mut accel, site, cells, tv, seed)
    }

    /// [`FrequencyProfiler::profile`] resolving the real-world sweeps
    /// through a caller-owned geometry accelerator (spatial index + path
    /// memo). The unobstructed twin lives in an *empty* world, where brute
    /// force is already trivial, so only the real sweeps go through
    /// `accel`. Bit-identical to the brute-force profile.
    pub fn profile_with_geo(
        &self,
        world: &World,
        accel: &mut GeoAccel,
        site: &SensorSite,
        cells: &TowerDatabase,
        tv: &[TvTower],
        seed: u64,
    ) -> FrequencyProfile {
        // The unobstructed twin: same coordinates/antenna, empty world, no
        // enclosure, no fault — what a perfect install would measure. The
        // baseline is computed from *public* knowledge (tower database),
        // so it uses fault-free instruments regardless of the node's own
        // condition.
        let clear_world = World::open(world.origin);
        let clear_site = SensorSite {
            enclosure: None,
            ..site.clone()
        };
        let mut clear_scanner = self.scanner.clone();
        clear_scanner.config.fault = aircal_sdr::FrontendFault::None;
        let mut clear_probe = self.tv_probe.clone();
        clear_probe.config.fault = aircal_sdr::FrontendFault::None;

        let mut bands = Vec::new();
        let mut real_cell = Vec::new();
        self.scanner
            .scan_with_geo(world, accel, site, cells, seed, &mut real_cell);
        let clear_cell = clear_scanner.scan(&clear_world, &clear_site, cells, seed ^ 1);
        for (r, c) in real_cell.iter().zip(&clear_cell) {
            bands.push(BandMeasurement {
                label: r.tower_name.clone(),
                freq_hz: r.freq_hz,
                source: SourceKind::Cellular,
                measured_db: r.rsrp_dbm,
                expected_clear_db: c.rsrp_dbm.unwrap_or(-120.0),
            });
        }

        let real_tv = self.tv_probe.sweep_with_geo(world, accel, site, tv, seed);
        let clear_tv = clear_probe.sweep(&clear_world, &clear_site, tv, seed ^ 1);
        for (r, c) in real_tv.iter().zip(&clear_tv) {
            bands.push(BandMeasurement {
                label: r.station.clone(),
                freq_hz: r.center_hz,
                source: SourceKind::BroadcastTv,
                measured_db: Some(r.power_dbfs),
                expected_clear_db: c.power_dbfs,
            });
        }

        bands.sort_by(|a, b| a.freq_hz.total_cmp(&b.freq_hz));
        FrequencyProfile {
            bands,
            missing_sources: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_cellular::paper_towers;
    use aircal_env::{Scenario, ScenarioKind};
    use aircal_tv::paper_tv_towers;

    fn profile(kind: ScenarioKind) -> FrequencyProfile {
        let s = Scenario::build(kind);
        let cells = paper_towers(&s.world.origin);
        let tv = paper_tv_towers(&s.world.origin);
        FrequencyProfiler::default().profile(&s.world, &s.site, &cells, &tv, 17)
    }

    #[test]
    fn rooftop_profile_mostly_full() {
        let p = profile(ScenarioKind::Rooftop);
        assert_eq!(p.usable_fraction(), 1.0, "rooftop must measure every band");
        let full = p
            .bands
            .iter()
            .filter(|b| matches!(b.verdict(), BandVerdict::Full))
            .count();
        assert!(full >= 5, "only {full} bands Full on the rooftop");
    }

    #[test]
    fn indoor_blind_at_midband_usable_low() {
        let p = profile(ScenarioKind::Indoor);
        // Cellular towers 2–5 blind.
        let blind = p
            .bands
            .iter()
            .filter(|b| b.source == SourceKind::Cellular && b.measured_db.is_none())
            .count();
        assert_eq!(blind, 4, "indoor must lose towers 2–5");
        // But sub-600 MHz TV still usable (the paper's conclusion).
        assert!(p
            .bands
            .iter()
            .filter(|b| b.source == SourceKind::BroadcastTv)
            .all(|b| b.measured_db.is_some()));
        // Max usable frequency collapses to ≤ 731 MHz for cellular…
        let max_cell = p
            .bands
            .iter()
            .filter(|b| b.source == SourceKind::Cellular && b.measured_db.is_some())
            .map(|b| b.freq_hz)
            .fold(0.0, f64::max);
        assert_eq!(max_cell, 731e6);
    }

    #[test]
    fn attenuation_ordering_rooftop_vs_indoor() {
        let roof = profile(ScenarioKind::Rooftop);
        let indoor = profile(ScenarioKind::Indoor);
        let a_roof = roof.mean_attenuation_above(1e9, 40.0);
        let a_indoor = indoor.mean_attenuation_above(1e9, 40.0);
        assert!(
            a_indoor > a_roof + 10.0,
            "indoor attenuation {a_indoor} vs rooftop {a_roof}"
        );
    }

    #[test]
    fn verdicts_classify_sensibly() {
        let b = BandMeasurement {
            label: "x".into(),
            freq_hz: 1e9,
            source: SourceKind::Cellular,
            measured_db: Some(-60.0),
            expected_clear_db: -57.0,
        };
        assert_eq!(b.verdict(), BandVerdict::Full);
        let b2 = BandMeasurement {
            measured_db: Some(-80.0),
            ..b.clone()
        };
        match b2.verdict() {
            BandVerdict::Degraded(a) => assert!((a - 23.0).abs() < 1e-9),
            v => panic!("expected Degraded, got {v:?}"),
        }
        let b3 = BandMeasurement {
            measured_db: None,
            ..b
        };
        assert_eq!(b3.verdict(), BandVerdict::Blind);
    }

    #[test]
    fn profile_sorted_by_frequency() {
        let p = profile(ScenarioKind::Rooftop);
        for w in p.bands.windows(2) {
            assert!(w[0].freq_hz <= w[1].freq_hz);
        }
        assert_eq!(p.bands.len(), 11); // 5 cells + 6 TV stations
    }

    #[test]
    fn missing_sources_mark_profile_incomplete() {
        let mut p = profile(ScenarioKind::Rooftop);
        assert!(p.is_complete());
        p.missing_sources.push(SourceKind::BroadcastTv);
        assert!(!p.is_complete());
        // Incompleteness survives the wire.
        let back: FrequencyProfile =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(back.missing_sources, vec![SourceKind::BroadcastTv]);
    }

    #[test]
    fn attenuation_never_negative() {
        for kind in [
            ScenarioKind::Rooftop,
            ScenarioKind::BehindWindow,
            ScenarioKind::Indoor,
        ] {
            for b in profile(kind).bands {
                if let Some(a) = b.attenuation_db() {
                    assert!(a >= 0.0);
                }
            }
        }
    }
}
