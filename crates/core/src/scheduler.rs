//! Measurement scheduling (§5 "End-to-end system").
//!
//! "An end-to-end system must decide when to perform ADS-B measurements to
//! gain as much information as possible, as flight schedules vary over
//! time." The scheduler models the diurnal air-traffic density and greedily
//! picks capture windows that maximize expected information, with
//! diminishing returns for captures close together in time (the same
//! flights would be re-observed).

use serde::{Deserialize, Serialize};

/// A diurnal traffic-density model: expected aircraft within the survey
/// disc as a function of local hour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficDensityModel {
    /// Density multiplier per hour of day, 24 entries (index = hour).
    pub hourly: [f64; 24],
    /// Peak aircraft count within the disc.
    pub peak_count: f64,
}

impl Default for TrafficDensityModel {
    /// A typical continental-US diurnal curve: near-dead 02:00–05:00,
    /// morning and evening bank peaks.
    fn default() -> Self {
        let hourly = [
            0.25, 0.15, 0.08, 0.06, 0.08, 0.20, 0.45, 0.75, 0.90, 0.95, 0.90, 0.85, 0.85, 0.90,
            0.95, 1.00, 0.95, 0.90, 0.85, 0.75, 0.60, 0.50, 0.40, 0.30,
        ];
        Self {
            hourly,
            peak_count: 70.0,
        }
    }
}

impl TrafficDensityModel {
    /// Expected aircraft in the disc at a time (hours since local
    /// midnight; fractional hours interpolate linearly).
    pub fn expected_aircraft(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        let i = h.floor() as usize % 24;
        let j = (i + 1) % 24;
        let frac = h - h.floor();
        self.peak_count * (self.hourly[i] * (1.0 - frac) + self.hourly[j] * frac)
    }
}

/// A planned capture window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedCapture {
    /// Start time, hours since local midnight.
    pub start_hour: f64,
    /// Expected aircraft during the capture.
    pub expected_aircraft: f64,
    /// Marginal information value assigned by the planner.
    pub marginal_value: f64,
}

/// Greedy capture planner.
#[derive(Debug, Clone)]
pub struct MeasurementScheduler {
    /// Traffic model.
    pub density: TrafficDensityModel,
    /// Candidate grid resolution, hours.
    pub grid_hours: f64,
    /// Correlation time: captures closer than this see mostly the same
    /// flights, hours.
    pub decorrelation_hours: f64,
}

impl Default for MeasurementScheduler {
    fn default() -> Self {
        Self {
            density: TrafficDensityModel::default(),
            grid_hours: 0.5,
            decorrelation_hours: 2.0,
        }
    }
}

impl MeasurementScheduler {
    /// Plan `n` capture windows within a 24 h horizon, maximizing total
    /// discounted information. The value of a candidate is its expected
    /// aircraft count times a penalty `min(Δt/decorrelation, 1)` to its
    /// nearest already-planned capture.
    pub fn plan(&self, n: usize) -> Vec<PlannedCapture> {
        let mut chosen: Vec<PlannedCapture> = Vec::new();
        let steps = (24.0 / self.grid_hours).round() as usize;
        for _ in 0..n {
            let mut best: Option<PlannedCapture> = None;
            for k in 0..steps {
                let hour = k as f64 * self.grid_hours;
                if chosen.iter().any(|c| (c.start_hour - hour).abs() < 1e-9) {
                    continue;
                }
                let expected = self.density.expected_aircraft(hour);
                let penalty = chosen
                    .iter()
                    .map(|c| {
                        let dt = circular_hour_gap(c.start_hour, hour);
                        (dt / self.decorrelation_hours).min(1.0)
                    })
                    .fold(1.0, f64::min);
                let value = expected * penalty;
                if best.map(|b| value > b.marginal_value).unwrap_or(true) {
                    best = Some(PlannedCapture {
                        start_hour: hour,
                        expected_aircraft: expected,
                        marginal_value: value,
                    });
                }
            }
            match best {
                Some(b) => chosen.push(b),
                None => break,
            }
        }
        chosen.sort_by(|a, b| a.start_hour.partial_cmp(&b.start_hour).unwrap());
        chosen
    }
}

/// Gap between two hours on the 24 h circle.
fn circular_hour_gap(a: f64, b: f64) -> f64 {
    let d = (a - b).abs() % 24.0;
    d.min(24.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_in_afternoon_dies_at_night() {
        let m = TrafficDensityModel::default();
        assert!(m.expected_aircraft(15.0) > m.expected_aircraft(3.0) * 8.0);
        assert!((m.expected_aircraft(15.0) - 70.0).abs() < 1.0);
    }

    #[test]
    fn density_interpolates_and_wraps() {
        let m = TrafficDensityModel::default();
        let a = m.expected_aircraft(6.0);
        let b = m.expected_aircraft(7.0);
        let mid = m.expected_aircraft(6.5);
        assert!((mid - (a + b) / 2.0).abs() < 1e-9);
        assert_eq!(m.expected_aircraft(0.0), m.expected_aircraft(24.0));
        assert_eq!(m.expected_aircraft(-1.0), m.expected_aircraft(23.0));
    }

    #[test]
    fn first_pick_is_the_peak() {
        let s = MeasurementScheduler::default();
        let plan = s.plan(1);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].start_hour, 15.0);
    }

    #[test]
    fn picks_spread_across_the_day() {
        let s = MeasurementScheduler::default();
        let plan = s.plan(4);
        assert_eq!(plan.len(), 4);
        for w in plan.windows(2) {
            assert!(
                circular_hour_gap(w[0].start_hour, w[1].start_hour) >= s.decorrelation_hours * 0.5,
                "captures too close: {} and {}",
                w[0].start_hour,
                w[1].start_hour
            );
        }
    }

    #[test]
    fn avoids_dead_of_night_until_forced() {
        let s = MeasurementScheduler::default();
        let plan = s.plan(6);
        // With 6 picks and a 2 h decorrelation there is still no reason to
        // measure at 03:00 (density 0.06).
        assert!(plan.iter().all(|c| c.start_hour < 2.0 || c.start_hour > 5.0));
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let s = MeasurementScheduler::default();
        let a = s.plan(5);
        let b = s.plan(5);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].start_hour < w[1].start_hour);
        }
    }

    #[test]
    fn more_picks_than_grid_slots_saturates() {
        let s = MeasurementScheduler {
            grid_hours: 8.0,
            ..Default::default()
        };
        let plan = s.plan(10);
        assert_eq!(plan.len(), 3); // only 3 grid slots exist
    }
}
