//! The calibration engine: one call runs the paper's full §3 pipeline.

use crate::classifier::{IndoorOutdoorClassifier, InstallFeatures};
use crate::fov::{FovEstimator, FovMethod};
use crate::freqprofile::FrequencyProfiler;
use crate::report::{CalibrationReport, SurveySummary};
use crate::survey::{run_survey_indexed, SurveyConfig};
use crate::trust::TrustAuditor;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_cellular::paper_towers;
use aircal_env::{GeoAccel, SensorSite, World};
use aircal_obs::Obs;
use aircal_tv::paper_tv_towers;

/// Orchestrates survey → FoV estimate → frequency profile → classification
/// → trust audit for a node.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Directional-survey configuration.
    pub survey: SurveyConfig,
    /// FoV estimation method.
    pub fov_method: FovMethod,
    /// Frequency profiler (cellular + TV).
    pub profiler: FrequencyProfiler,
    /// Indoor/outdoor model.
    pub classifier: IndoorOutdoorClassifier,
    /// Trust auditor.
    pub auditor: TrustAuditor,
    /// Aircraft to simulate in the survey disc.
    pub traffic_count: usize,
    /// Observability handle: counters, gauges and per-stage latency
    /// histograms. Disabled (free) by default; see [`Calibrator::with_obs`].
    pub obs: Obs,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self {
            survey: SurveyConfig::default(),
            fov_method: FovMethod::default_histogram(),
            profiler: FrequencyProfiler::default(),
            classifier: IndoorOutdoorClassifier::default(),
            auditor: TrustAuditor::default(),
            traffic_count: 60,
            obs: Obs::disabled(),
        }
    }
}

impl Calibrator {
    /// A fast preset for tests and examples: 10 s survey, 40 aircraft.
    pub fn quick() -> Self {
        Self {
            survey: SurveyConfig::quick(),
            traffic_count: 40,
            ..Self::default()
        }
    }

    /// Inject a front-end fault into *every* measurement chain (ADS-B,
    /// cellular, TV) — a hardware fault is band-agnostic at the port.
    pub fn with_fault(mut self, fault: aircal_sdr::FrontendFault) -> Self {
        self.survey.fault = fault;
        self.profiler.scanner.config.fault = fault;
        self.profiler.tv_probe.config.fault = fault;
        self
    }

    /// Set the worker-thread count for every parallelizable stage (survey
    /// burst pipeline, TV sweep). `0` = all available cores. Results are
    /// bit-identical for every value.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.survey.parallelism = parallelism;
        self.profiler.tv_probe.config.parallelism = parallelism;
        self
    }

    /// Publish metrics into `obs`: pipeline counters (`survey.*`,
    /// `profile.*`), a `trust.score` gauge, and per-stage latency
    /// histograms (`stage.*`). Observing never changes the report —
    /// results stay bit-identical to an unobserved run.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Calibrate a node. The world's origin anchors the opportunistic
    /// sources (paper tower layouts); `seed` fixes traffic and channel
    /// randomness.
    pub fn calibrate(&self, world: &World, site: &SensorSite, seed: u64) -> CalibrationReport {
        let _span = aircal_obs::span!("calibrate");
        // One spatial index + path memo serves every stage below; building
        // it is O(buildings) and the accelerated paths are bit-identical
        // to brute force, so the report cannot change.
        let mut geo = self.obs.time("stage.geo_index", || world.accel());
        // Traffic + directional survey (§3.1).
        let traffic = self.obs.time("stage.traffic", || {
            TrafficSim::generate(
                TrafficConfig {
                    count: self.traffic_count,
                    ..TrafficConfig::paper_default(site.position)
                },
                seed,
            )
        });
        let survey = self.obs.time("stage.survey", || {
            run_survey_indexed(world, &geo.index, site, &traffic, &self.survey, seed)
        });
        publish_survey_metrics(&self.obs, &survey);

        // Field of view.
        let fov = self
            .obs
            .time("stage.fov", || FovEstimator::new(self.fov_method).estimate(&survey.points));

        // Frequency response (§3.2).
        let cells = paper_towers(&world.origin);
        let tv = paper_tv_towers(&world.origin);
        let frequency = self.obs.time("stage.profile", || {
            self.profiler
                .profile_with_geo(world, &mut geo, site, &cells, &tv, seed ^ 0xF00D)
        });
        publish_profile_metrics(&self.obs, &frequency);
        publish_geometry_metrics(&self.obs, &mut geo);

        // Derived inferences.
        let features = InstallFeatures::extract(&survey, &fov, &frequency);
        let install = self
            .obs
            .time("stage.classify", || self.classifier.classify(&features));
        let trust = self.obs.time("stage.trust", || {
            self.auditor
                .audit(&survey, &frequency, &traffic, fov.open_fraction())
        });
        self.obs
            .incr("calibrate.runs", 1);
        self.obs
            .incr("classify.outdoor", u64::from(install.outdoor));
        self.obs.set_gauge("trust.score", trust.score);
        // Record which DSP dispatch arm produced this report's numbers.
        // The arms are bit-identical, so this is purely diagnostic — it
        // lets a fleet operator confirm a node is on its vector path.
        self.obs.incr(dsp_dispatch_metric(), 1);

        CalibrationReport {
            site_name: site.name.clone(),
            survey: SurveySummary {
                aircraft_total: survey.points.len(),
                aircraft_observed: survey.points.iter().filter(|p| p.observed).count(),
                messages: survey.total_messages,
                max_observed_range_m: survey.max_observed_range_m(),
            },
            fov,
            frequency,
            features,
            install,
            trust,
        }
    }
}

/// The counter name recording the selected SIMD dispatch arm, as a
/// static string so publishing it never allocates.
fn dsp_dispatch_metric() -> &'static str {
    match aircal_dsp::dispatch_label() {
        "avx2" => "dsp.dispatch.avx2",
        "sse2" => "dsp.dispatch.sse2",
        "neon" => "dsp.dispatch.neon",
        _ => "dsp.dispatch.scalar",
    }
}

/// Publish the paper's survey telemetry (decode counts, SNR-gate skips,
/// observation coverage) into `obs`. Also used by the cloud when it
/// judges a commissioned survey reported over the wire.
pub fn publish_survey_metrics(obs: &Obs, survey: &crate::survey::SurveyResult) {
    obs.incr("survey.messages", survey.total_messages as u64);
    obs.incr("survey.unmatched_messages", survey.unmatched_messages as u64);
    obs.incr("survey.skipped_low_snr", survey.skipped_low_snr as u64);
    obs.incr("survey.positions_decoded", survey.decoded_positions.len() as u64);
    obs.incr("survey.aircraft_total", survey.points.len() as u64);
    obs.incr(
        "survey.aircraft_observed",
        survey.points.iter().filter(|p| p.observed).count() as u64,
    );
}

/// Publish geometry-acceleration telemetry into `obs`: path-memo hit/miss
/// deltas and spatial-index work counters. Draining the deltas here keeps
/// the obs counters monotone even when the same accelerator serves many
/// calibrations.
pub fn publish_geometry_metrics(obs: &Obs, geo: &mut GeoAccel) {
    let (hits, misses) = geo.cache.take_delta();
    obs.incr("geom.path_cache.hits", hits);
    obs.incr("geom.path_cache.misses", misses);
    let stats = geo.scratch.stats.take();
    obs.incr("geom.index.queries", stats.queries);
    obs.incr("geom.index.aabb_tests", stats.aabb_tests);
    obs.incr("geom.index.candidates", stats.candidates);
}

/// Publish frequency-profile telemetry (per-source band counts) into `obs`.
pub fn publish_profile_metrics(obs: &Obs, profile: &crate::freqprofile::FrequencyProfile) {
    use crate::freqprofile::SourceKind;
    obs.incr("profile.bands", profile.bands.len() as u64);
    for (name, kind) in [
        ("profile.cell_bands", SourceKind::Cellular),
        ("profile.tv_bands", SourceKind::BroadcastTv),
    ] {
        obs.incr(
            name,
            profile.bands.iter().filter(|b| b.source == kind).count() as u64,
        );
    }
    obs.incr("profile.missing_sources", profile.missing_sources.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_env::{Scenario, ScenarioKind};

    #[test]
    fn rooftop_report_end_to_end() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 42);
        // FoV roughly west.
        assert!(
            r.fov.iou(&s.expected_fov) > 0.4,
            "rooftop FoV IoU {} (estimated {:?})",
            r.fov.iou(&s.expected_fov),
            r.fov.estimated
        );
        // All bands measurable; classified outdoor; trustworthy.
        assert_eq!(r.frequency.usable_fraction(), 1.0);
        assert!(r.install.outdoor, "p_outdoor {}", r.install.probability_outdoor);
        assert!(r.trust.score > 60.0, "trust {}", r.trust.score);
    }

    #[test]
    fn indoor_report_end_to_end() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 43);
        assert!(r.fov.estimated.width_deg < 90.0, "{:?}", r.fov.estimated);
        assert!(!r.install.outdoor, "p_outdoor {}", r.install.probability_outdoor);
        assert!(r.frequency.usable_fraction() < 1.0);
        assert!(r.survey.max_observed_range_m < 35_000.0);
    }

    #[test]
    fn window_report_narrow_fov_indoor() {
        let s = Scenario::build(ScenarioKind::BehindWindow);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 44);
        // Narrow aperture: open fraction well below half.
        assert!(r.fov.open_fraction() < 0.5, "open {}", r.fov.open_fraction());
        assert!(!r.install.outdoor);
        // The aperture supports long-range reception.
        assert!(r.survey.max_observed_range_m > 40_000.0);
    }

    /// The engine publishes geometry-acceleration counters, and observing
    /// them never changes the report.
    #[test]
    fn geometry_metrics_published() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let obs = Obs::recording();
        let observed = Calibrator::quick().with_obs(obs.clone()).calibrate(&s.world, &s.site, 42);
        let silent = Calibrator::quick().calibrate(&s.world, &s.site, 42);
        assert_eq!(observed.to_json(), silent.to_json());
        assert!(obs.counter("geom.index.queries") > 0);
        // 5 cell towers + 6 TV stations, each profiled exactly once.
        assert_eq!(obs.counter("geom.path_cache.misses"), 11);
        assert_eq!(obs.counter("geom.path_cache.hits"), 0);
    }

    #[test]
    fn report_headline_and_json() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 45);
        assert!(r.headline().contains("open-field"));
        let back = CalibrationReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.site_name, "open-field");
    }
}
