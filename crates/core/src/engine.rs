//! The calibration engine: one call runs the paper's full §3 pipeline.

use crate::classifier::{IndoorOutdoorClassifier, InstallFeatures};
use crate::fov::{FovEstimator, FovMethod};
use crate::freqprofile::FrequencyProfiler;
use crate::report::{CalibrationReport, SurveySummary};
use crate::survey::{run_survey, SurveyConfig};
use crate::trust::TrustAuditor;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_cellular::paper_towers;
use aircal_env::{SensorSite, World};
use aircal_tv::paper_tv_towers;

/// Orchestrates survey → FoV estimate → frequency profile → classification
/// → trust audit for a node.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Directional-survey configuration.
    pub survey: SurveyConfig,
    /// FoV estimation method.
    pub fov_method: FovMethod,
    /// Frequency profiler (cellular + TV).
    pub profiler: FrequencyProfiler,
    /// Indoor/outdoor model.
    pub classifier: IndoorOutdoorClassifier,
    /// Trust auditor.
    pub auditor: TrustAuditor,
    /// Aircraft to simulate in the survey disc.
    pub traffic_count: usize,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self {
            survey: SurveyConfig::default(),
            fov_method: FovMethod::default_histogram(),
            profiler: FrequencyProfiler::default(),
            classifier: IndoorOutdoorClassifier::default(),
            auditor: TrustAuditor::default(),
            traffic_count: 60,
        }
    }
}

impl Calibrator {
    /// A fast preset for tests and examples: 10 s survey, 40 aircraft.
    pub fn quick() -> Self {
        Self {
            survey: SurveyConfig::quick(),
            traffic_count: 40,
            ..Self::default()
        }
    }

    /// Inject a front-end fault into *every* measurement chain (ADS-B,
    /// cellular, TV) — a hardware fault is band-agnostic at the port.
    pub fn with_fault(mut self, fault: aircal_sdr::FrontendFault) -> Self {
        self.survey.fault = fault;
        self.profiler.scanner.config.fault = fault;
        self.profiler.tv_probe.config.fault = fault;
        self
    }

    /// Set the worker-thread count for every parallelizable stage (survey
    /// burst pipeline, TV sweep). `0` = all available cores. Results are
    /// bit-identical for every value.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.survey.parallelism = parallelism;
        self.profiler.tv_probe.config.parallelism = parallelism;
        self
    }

    /// Calibrate a node. The world's origin anchors the opportunistic
    /// sources (paper tower layouts); `seed` fixes traffic and channel
    /// randomness.
    pub fn calibrate(&self, world: &World, site: &SensorSite, seed: u64) -> CalibrationReport {
        // Traffic + directional survey (§3.1).
        let traffic = TrafficSim::generate(
            TrafficConfig {
                count: self.traffic_count,
                ..TrafficConfig::paper_default(site.position)
            },
            seed,
        );
        let survey = run_survey(world, site, &traffic, &self.survey, seed);

        // Field of view.
        let fov = FovEstimator::new(self.fov_method).estimate(&survey.points);

        // Frequency response (§3.2).
        let cells = paper_towers(&world.origin);
        let tv = paper_tv_towers(&world.origin);
        let frequency = self.profiler.profile(world, site, &cells, &tv, seed ^ 0xF00D);

        // Derived inferences.
        let features = InstallFeatures::extract(&survey, &fov, &frequency);
        let install = self.classifier.classify(&features);
        let trust = self
            .auditor
            .audit(&survey, &frequency, &traffic, fov.open_fraction());

        CalibrationReport {
            site_name: site.name.clone(),
            survey: SurveySummary {
                aircraft_total: survey.points.len(),
                aircraft_observed: survey.points.iter().filter(|p| p.observed).count(),
                messages: survey.total_messages,
                max_observed_range_m: survey.max_observed_range_m(),
            },
            fov,
            frequency,
            features,
            install,
            trust,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_env::{Scenario, ScenarioKind};

    #[test]
    fn rooftop_report_end_to_end() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 42);
        // FoV roughly west.
        assert!(
            r.fov.iou(&s.expected_fov) > 0.4,
            "rooftop FoV IoU {} (estimated {:?})",
            r.fov.iou(&s.expected_fov),
            r.fov.estimated
        );
        // All bands measurable; classified outdoor; trustworthy.
        assert_eq!(r.frequency.usable_fraction(), 1.0);
        assert!(r.install.outdoor, "p_outdoor {}", r.install.probability_outdoor);
        assert!(r.trust.score > 60.0, "trust {}", r.trust.score);
    }

    #[test]
    fn indoor_report_end_to_end() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 43);
        assert!(r.fov.estimated.width_deg < 90.0, "{:?}", r.fov.estimated);
        assert!(!r.install.outdoor, "p_outdoor {}", r.install.probability_outdoor);
        assert!(r.frequency.usable_fraction() < 1.0);
        assert!(r.survey.max_observed_range_m < 35_000.0);
    }

    #[test]
    fn window_report_narrow_fov_indoor() {
        let s = Scenario::build(ScenarioKind::BehindWindow);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 44);
        // Narrow aperture: open fraction well below half.
        assert!(r.fov.open_fraction() < 0.5, "open {}", r.fov.open_fraction());
        assert!(!r.install.outdoor);
        // The aperture supports long-range reception.
        assert!(r.survey.max_observed_range_m > 40_000.0);
    }

    #[test]
    fn report_headline_and_json() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let r = Calibrator::quick().calibrate(&s.world, &s.site, 45);
        assert!(r.headline().contains("open-field"));
        let back = CalibrationReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.site_name, "open-field");
    }
}
